//! Corrective query processing recovering from a bad initial plan
//! (the scenario of the paper's Example 2.1 and Section 4).
//!
//! We force phase 0 to a deliberately poor join order for Q10A, then let
//! the monitor discover real selectivities, switch to a better plan
//! mid-stream, and stitch the phases together. The same query also runs
//! statically from the same bad order for comparison.
//!
//! Run with: `cargo run --release --example corrective_recovery`

use tukwila::core::{lower_plan, CorrectiveConfig, CorrectiveExec};
use tukwila::datagen::{queries, Dataset, DatasetConfig, TableId};
use tukwila::exec::{CpuCostModel, SimDriver};
use tukwila::optimizer::{Optimizer, OptimizerContext};
use tukwila::source::{MemSource, Source};

fn sources_for(d: &Dataset, q: &tukwila::optimizer::LogicalQuery) -> Vec<Box<dyn Source>> {
    queries::tables_of(q)
        .into_iter()
        .map(|t| {
            Box::new(MemSource::new(
                t.rel_id(),
                t.name(),
                Dataset::schema(t),
                d.table(t).to_vec(),
            )) as Box<dyn Source>
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::generate(DatasetConfig::uniform(0.01));
    let query = queries::q10a();

    // A poor ordering: build the full orders ⋈ lineitem product before
    // filtering through customer.
    let bad_order = vec![
        TableId::Orders.rel_id(),
        TableId::Lineitem.rel_id(),
        TableId::Customer.rel_id(),
        TableId::Nation.rel_id(),
    ];

    // Baseline: execute the bad plan statically, to completion.
    let opt = Optimizer::new(OptimizerContext::no_statistics());
    let bad_plan = opt.plan_with_order(&query, &bad_order)?;
    println!("static (bad) plan : {}", bad_plan.describe());
    let lowered = lower_plan(&bad_plan, None, true)?;
    let mut pipeline = lowered.pipeline;
    let driver = SimDriver::new(1024, CpuCostModel::Measured);
    let mut sources = sources_for(&dataset, &query);
    let (static_rows, static_report) = driver.run(&mut pipeline, &mut sources)?;
    println!(
        "static execution  : {:.1} ms, {} groups",
        static_report.cpu_us as f64 / 1000.0,
        static_rows.len()
    );

    // Corrective: start from the same bad plan, but monitor and correct.
    let exec = CorrectiveExec::new(
        query,
        CorrectiveConfig {
            batch_size: 1024,
            cpu: CpuCostModel::Measured,
            initial_order: Some(bad_order),
            poll_every_batches: 4,
            switch_threshold: 0.8,
            ..Default::default()
        },
    );
    let mut sources = sources_for(&dataset, &exec.q);
    let report = exec.run(&mut sources)?;
    println!("\ncorrective phases :");
    for (i, phase) in report.phases.iter().enumerate() {
        println!("  phase {i}: {} ({} batches)", phase.plan, phase.batches);
    }
    println!(
        "corrective        : {:.1} ms total ({:.1} ms stitch-up), {} groups",
        report.exec.cpu_us as f64 / 1000.0,
        report.stitch_us as f64 / 1000.0,
        report.rows.len()
    );
    println!(
        "reuse             : {} tuples reused from prior phases, {} discarded",
        report.reuse.reused_tuples, report.reuse.discarded_tuples
    );
    assert_eq!(static_rows.len(), report.rows.len(), "same answer");
    Ok(())
}
