//! Corrective query processing over a bursty wireless link (the setting of
//! the paper's Figure 3): sources trickle in over a simulated 802.11b-style
//! network, and the engine adapts on partial, time-skewed information. The
//! virtual clock makes the run fast and deterministic while still modelling
//! hours of arrival schedule.
//!
//! Run with: `cargo run --release --example wireless_network`

use tukwila::core::{CorrectiveConfig, CorrectiveExec};
use tukwila::datagen::{queries, Dataset, DatasetConfig};
use tukwila::exec::CpuCostModel;
use tukwila::source::{DelayModel, DelayedSource, Source};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::generate(DatasetConfig::uniform(0.005));
    let query = queries::q10a();

    let model = DelayModel::Wireless {
        bytes_per_sec: 600_000.0, // ~5 Mbit/s effective 802.11b
        burst_ms: 40.0,
        gap_ms: 60.0,
        seed: 7,
    };
    let mut sources: Vec<Box<dyn Source>> = queries::tables_of(&query)
        .into_iter()
        .map(|t| {
            Box::new(DelayedSource::new(
                t.rel_id(),
                t.name(),
                Dataset::schema(t),
                dataset.table(t).to_vec(),
                &model,
            )) as Box<dyn Source>
        })
        .collect();

    let exec = CorrectiveExec::new(
        query,
        CorrectiveConfig {
            batch_size: 512,
            cpu: CpuCostModel::Measured,
            poll_every_batches: 8,
            ..Default::default()
        },
    );
    let report = exec.run(&mut sources)?;

    println!("bursty-wireless corrective execution");
    println!("  phases: {}", report.phase_count());
    for (i, p) in report.phases.iter().enumerate() {
        println!("    phase {i}: {}", p.plan);
    }
    println!(
        "  virtual completion: {:.2} s ({:.2} s waiting on the network, {:.2} s CPU)",
        report.exec.virtual_us as f64 / 1e6,
        report.exec.idle_us as f64 / 1e6,
        report.exec.cpu_us as f64 / 1e6,
    );
    println!(
        "  stitch-up: {:.1} ms, {} cross-phase tuples",
        report.stitch_us as f64 / 1000.0,
        report.stitch.mixed_tuples
    );
    println!("  result groups: {}", report.rows.len());
    Ok(())
}
