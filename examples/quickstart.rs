//! Quickstart: run one adaptive query end to end.
//!
//! Generates a small TPC-H-style database, poses the paper's Q3A
//! (customer ⋈ orders ⋈ lineitem, grouped by order, summing revenue), and
//! executes it with corrective query processing — the engine monitors its
//! own plan, re-optimizes from observed statistics, and switches plans
//! mid-stream if the initial guess was poor.
//!
//! Run with: `cargo run --release --example quickstart`

use tukwila::core::{CorrectiveConfig, CorrectiveExec};
use tukwila::datagen::{queries, Dataset, DatasetConfig};
use tukwila::exec::CpuCostModel;
use tukwila::source::{MemSource, Source};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Data: scale factor 0.01 ≈ 100k tuples across the workload tables.
    let dataset = Dataset::generate(DatasetConfig::uniform(0.01));
    println!(
        "generated {} tuples across {} tables",
        dataset.total_tuples(),
        8
    );

    // 2. Query: the paper's Q3A (TPC-H Q3 without date predicates).
    let query = queries::q3a();

    // 3. Sources: sequential-access-only feeds, as in data integration.
    let mut sources: Vec<Box<dyn Source>> = queries::tables_of(&query)
        .into_iter()
        .map(|t| {
            Box::new(MemSource::new(
                t.rel_id(),
                t.name(),
                Dataset::schema(t),
                dataset.table(t).to_vec(),
            )) as Box<dyn Source>
        })
        .collect();

    // 4. Execute with corrective query processing. The optimizer starts
    //    with no statistics (every relation assumed to hold 20,000 tuples).
    let exec = CorrectiveExec::new(
        query,
        CorrectiveConfig {
            batch_size: 1024,
            cpu: CpuCostModel::Measured,
            ..Default::default()
        },
    );
    let report = exec.run(&mut sources)?;

    println!("\nphases executed: {}", report.phase_count());
    for (i, phase) in report.phases.iter().enumerate() {
        println!("  phase {i}: {} ({} batches)", phase.plan, phase.batches);
    }
    println!(
        "stitch-up: {} cross-phase tuples in {:.1} ms ({} registry entries reused)",
        report.stitch.mixed_tuples,
        report.stitch_us as f64 / 1000.0,
        report.stitch.entries_reused,
    );
    println!(
        "intermediate-result reuse: {} tuples reused, {} discarded",
        report.reuse.reused_tuples, report.reuse.discarded_tuples
    );
    println!(
        "\n{} result groups in {:.1} ms virtual time ({:.1} ms CPU)",
        report.rows.len(),
        report.exec.virtual_us as f64 / 1000.0,
        report.exec.cpu_us as f64 / 1000.0,
    );
    for row in report.rows.iter().take(5) {
        println!("  {row:?}");
    }
    if report.rows.len() > 5 {
        println!("  … {} more", report.rows.len() - 5);
    }
    Ok(())
}
