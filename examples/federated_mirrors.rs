//! Federated mirrored sources: a query whose fast mirror degrades mid-run.
//!
//! Every base relation of Q3A is offered by two mirrors: a nominally fast
//! one behind a bursty 802.11b-style wireless link (long outages between
//! bursts) and a steady mirror at half the bandwidth. A static client
//! pinned to the flaky mirror eats every outage; the federation layer
//! profiles both mirrors online, fails over when the active one is silent
//! past its profile-derived stall threshold, dedupes the overlap by key,
//! and re-ranks the permutation as evidence accumulates.
//!
//! Run with: `cargo run --release --example federated_mirrors`

use tukwila::core::run_static;
use tukwila::datagen::{queries, Dataset, DatasetConfig, TableId};
use tukwila::exec::CpuCostModel;
use tukwila::federation::{FederatedCatalog, FederatedSource, FederationConfig};
use tukwila::optimizer::OptimizerContext;
use tukwila::source::{DelayModel, DelayedSource, Source};

fn mirror(d: &Dataset, t: TableId, suffix: &str, model: &DelayModel) -> Box<dyn Source> {
    Box::new(DelayedSource::new(
        t.rel_id(),
        format!("{}-{suffix}", t.name()),
        Dataset::schema(t),
        d.table(t).to_vec(),
        model,
    ))
}

fn flaky_model(rel: u32) -> DelayModel {
    // Fast while bursting, but ~90% of the time the link is down.
    DelayModel::Wireless {
        bytes_per_sec: 6_000_000.0,
        burst_ms: 30.0,
        gap_ms: 300.0,
        seed: 42 ^ u64::from(rel) << 8,
    }
}

fn steady_model() -> DelayModel {
    DelayModel::Bandwidth {
        bytes_per_sec: 750_000.0,
        initial_latency_us: 2_000,
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = Dataset::generate(DatasetConfig::uniform(0.01));
    let query = queries::q3a();
    let cpu = CpuCostModel::PerTupleNs(200); // deterministic virtual clock

    // Static baseline: pinned to the flaky fast mirror.
    let mut pinned: Vec<Box<dyn Source>> = queries::tables_of(&query)
        .into_iter()
        .map(|t| mirror(&dataset, t, "flaky", &flaky_model(t.rel_id())))
        .collect();
    let ctx = OptimizerContext::no_statistics;
    let static_run = run_static(&query, &mut pinned, ctx(), 1024, cpu)?;

    // Federated: both mirrors registered per relation, flaky first (the
    // adversarial initial permutation).
    let mut catalog = FederatedCatalog::new(FederationConfig::default());
    for t in queries::tables_of(&query) {
        catalog.register(
            t.key_cols(),
            mirror(&dataset, t, "flaky", &flaky_model(t.rel_id())),
        )?;
        catalog.register(t.key_cols(), mirror(&dataset, t, "steady", &steady_model()))?;
    }
    let mut federated = catalog.into_sources()?;
    let fed_run = run_static(&query, &mut federated, ctx(), 1024, cpu)?;

    println!("federated mirrors over Q3A (plan {})\n", fed_run.plan);
    println!(
        "static, pinned to flaky mirror: {:7.2} s virtual ({} rows)",
        static_run.exec.virtual_us as f64 / 1e6,
        static_run.rows.len()
    );
    println!(
        "federated [flaky, steady]:      {:7.2} s virtual ({} rows)\n",
        fed_run.exec.virtual_us as f64 / 1e6,
        fed_run.rows.len()
    );

    for s in &federated {
        let Some(fed) = s.as_any().and_then(|a| a.downcast_ref::<FederatedSource>()) else {
            continue;
        };
        let r = fed.report();
        println!(
            "{}: {} distinct tuples, {} failover(s)",
            r.name, r.delivered, r.failovers
        );
        for c in &r.candidates {
            println!(
                "    {:<18} delivered {:>6}  deduped {:>6}  stalls {:>2}  rate {}",
                c.descriptor.name,
                c.delivered,
                c.duplicates,
                c.stalls,
                c.rate_tuples_per_sec
                    .map_or("n/a".into(), |r| format!("{:.0} tuples/s", r)),
            );
        }
    }

    assert_eq!(
        static_run.rows.len(),
        fed_run.rows.len(),
        "answers must agree"
    );
    println!(
        "\nspeedup vs the degraded pin: {:.2}x, identical answers",
        static_run.exec.virtual_us as f64 / fed_run.exec.virtual_us as f64
    );
    Ok(())
}
