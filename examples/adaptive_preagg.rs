//! Adjustable-window pre-aggregation (paper §6) on the Example 2.1 query:
//! "the flight with the traveler who has the most children".
//!
//! When travelers fly many times, pre-aggregating `max(num)` before the
//! join coalesces heavily and pays off; when each traveler flies once, the
//! adjustable window shrinks itself to a pass-through pseudogroup and costs
//! almost nothing. We run both workload shapes under all three strategies.
//!
//! Run with: `cargo run --release --example adaptive_preagg`

use std::time::Instant;

use tukwila::core::lower_plan;
use tukwila::datagen::flights;
use tukwila::exec::{CpuCostModel, SimDriver};
use tukwila::optimizer::{Optimizer, OptimizerContext, PreAggConfig, PreAggMode};
use tukwila::source::{MemSource, Source};

fn run(
    data: &flights::FlightsData,
    preagg: PreAggConfig,
) -> Result<(usize, f64), Box<dyn std::error::Error>> {
    let q = flights::query();
    let mut ctx = OptimizerContext::no_statistics();
    ctx.preagg = preagg;
    let opt = Optimizer::new(ctx);
    let plan = opt.optimize(&q)?;
    let lowered = lower_plan(&plan, None, true)?;
    let mut pipeline = lowered.pipeline;
    let mut sources: Vec<Box<dyn Source>> = vec![
        Box::new(MemSource::new(
            flights::FLIGHTS,
            "F",
            flights::flights_schema(),
            data.flights.clone(),
        )),
        Box::new(MemSource::new(
            flights::TRAVELERS,
            "T",
            flights::travelers_schema(),
            data.travelers.clone(),
        )),
        Box::new(MemSource::new(
            flights::CHILDREN,
            "C",
            flights::children_schema(),
            data.children.clone(),
        )),
    ];
    let driver = SimDriver::new(1024, CpuCostModel::Measured);
    let start = Instant::now();
    let (rows, _) = driver.run(&mut pipeline, &mut sources)?;
    Ok((rows.len(), start.elapsed().as_secs_f64() * 1000.0))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for (label, trips) in [("frequent flyers (8 trips each)", 8), ("one trip each", 1)] {
        let data = flights::generate(2_000, 30_000, trips, 42);
        println!(
            "\n{label}: {} flights, {} trips, {} traveler records",
            data.flights.len(),
            data.travelers.len(),
            data.children.len()
        );
        let mut reference = None;
        for (name, cfg) in [
            ("single aggregation", PreAggConfig::Off),
            (
                "adjustable-window pre-agg",
                PreAggConfig::Insert(PreAggMode::AdaptiveWindow),
            ),
            (
                "traditional pre-agg",
                PreAggConfig::Insert(PreAggMode::Traditional),
            ),
            (
                "pseudogroup only",
                PreAggConfig::Insert(PreAggMode::Pseudogroup),
            ),
        ] {
            let (groups, ms) = run(&data, cfg)?;
            match reference {
                None => reference = Some(groups),
                Some(r) => assert_eq!(r, groups, "strategies must agree"),
            }
            println!("  {name:<28} {ms:>8.1} ms   ({groups} groups)");
        }
    }
    Ok(())
}
