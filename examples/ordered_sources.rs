//! Exploiting (partial) order with complementary join pairs (paper §5).
//!
//! LINEITEM and ORDERS arrive clustered by order key; the complementary
//! join pair speculates on that order, sending conforming tuples to a
//! merge join and violators to a pipelined hash join, with a mini
//! stitch-up at the end. We compare a plain pipelined hash join, the naive
//! complementary pair, and the priority-queue variant over increasingly
//! disordered inputs.
//!
//! Run with: `cargo run --release --example ordered_sources`

use std::time::Instant;

use tukwila::core::{ComplementaryJoinPair, RouterKind};
use tukwila::datagen::{perturb, Dataset, DatasetConfig, TableId};
use tukwila::exec::join::PipelinedHashJoin;
use tukwila::exec::op::IncOp;
use tukwila::relation::Tuple;

fn run_hash(orders: &[Tuple], lineitem: &[Tuple]) -> (usize, f64) {
    let mut j = PipelinedHashJoin::new(
        Dataset::schema(TableId::Orders),
        Dataset::schema(TableId::Lineitem),
        0,
        0,
    );
    let mut out = Vec::new();
    let start = Instant::now();
    for chunk in orders.chunks(1024) {
        j.push(0, chunk, &mut out).unwrap();
    }
    for chunk in lineitem.chunks(1024) {
        j.push(1, chunk, &mut out).unwrap();
    }
    (out.len(), start.elapsed().as_secs_f64() * 1000.0)
}

fn run_complementary(
    orders: &[Tuple],
    lineitem: &[Tuple],
    router: RouterKind,
) -> (usize, f64, tukwila::core::ComplementaryStats) {
    let mut j = ComplementaryJoinPair::new(
        Dataset::schema(TableId::Orders),
        Dataset::schema(TableId::Lineitem),
        0,
        0,
        router,
    );
    let mut out = Vec::new();
    let start = Instant::now();
    for chunk in orders.chunks(1024) {
        j.push(0, chunk, &mut out).unwrap();
    }
    for chunk in lineitem.chunks(1024) {
        j.push(1, chunk, &mut out).unwrap();
    }
    j.finish_input(0, &mut out).unwrap();
    j.finish_input(1, &mut out).unwrap();
    j.finish(&mut out).unwrap();
    (out.len(), start.elapsed().as_secs_f64() * 1000.0, j.stats())
}

fn main() {
    let dataset = Dataset::generate(DatasetConfig::uniform(0.01));
    println!(
        "joining orders ({}) with lineitem ({}) on orderkey\n",
        dataset.orders.len(),
        dataset.lineitem.len()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>24}",
        "reordered", "hash ms", "naive ms", "pq ms", "pq routing (mrg/hash)"
    );
    for frac in [0.0, 0.01, 0.1, 0.5] {
        let mut orders = dataset.orders.clone();
        let mut lineitem = dataset.lineitem.clone();
        perturb::reorder_fraction(&mut orders, frac, 11);
        perturb::reorder_fraction(&mut lineitem, frac, 12);

        let (n_hash, t_hash) = run_hash(&orders, &lineitem);
        let (n_naive, t_naive, _) = run_complementary(&orders, &lineitem, RouterKind::Naive);
        let (n_pq, t_pq, s_pq) =
            run_complementary(&orders, &lineitem, RouterKind::PriorityQueue(1024));
        assert_eq!(n_hash, n_naive);
        assert_eq!(n_hash, n_pq);
        println!(
            "{:<22} {:>10.1} {:>10.1} {:>10.1} {:>12}/{:<12}",
            format!("{:.0}%", frac * 100.0),
            t_hash,
            t_naive,
            t_pq,
            s_pq.merge_tuples,
            s_pq.hash_tuples,
        );
    }
    println!("\nall three strategies produced identical join results");
}
