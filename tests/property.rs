//! Property-based tests over the invariants adaptive data partitioning
//! relies on: distributivity of aggregation over union, equivalence of
//! join algorithms, router completeness, state-structure agreement, and
//! end-to-end corrective-vs-static equivalence under randomized phase
//! boundaries.

use proptest::prelude::*;

use tukwila::core::{ComplementaryJoinPair, CorrectiveConfig, CorrectiveExec, RouterKind};
use tukwila::exec::join::{MergeJoin, PipelinedHashJoin};
use tukwila::exec::op::IncOp;
use tukwila::exec::reference::{canonicalize, canonicalize_approx};
use tukwila::exec::CpuCostModel;
use tukwila::relation::agg::{AggFunc, AggState};
use tukwila::relation::{DataType, Field, Schema, Tuple, Value};
use tukwila::source::{MemSource, Source};
use tukwila::storage::btree::BPlusTree;
use tukwila::storage::{SortedList, StateStructure, TupleHashTable};

fn schema2(p: &str) -> Schema {
    Schema::new(vec![
        Field::new(format!("{p}.k"), DataType::Int),
        Field::new(format!("{p}.v"), DataType::Int),
    ])
}

fn tuples_from(pairs: &[(i64, i64)]) -> Vec<Tuple> {
    pairs
        .iter()
        .map(|&(k, v)| Tuple::new(vec![Value::Int(k), Value::Int(v)]))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Splitting a value stream at arbitrary points, folding each part and
    /// merging equals folding the whole stream — for every aggregate.
    #[test]
    fn aggregation_distributes_over_arbitrary_partitions(
        vals in prop::collection::vec(-1000i64..1000, 0..200),
        cuts in prop::collection::vec(0usize..200, 0..5),
        func in prop::sample::select(vec![
            AggFunc::Min, AggFunc::Max, AggFunc::Sum, AggFunc::Count, AggFunc::Avg,
        ]),
    ) {
        let mut whole = AggState::new(func);
        for v in &vals {
            whole.update(&Value::Int(*v)).unwrap();
        }
        let mut bounds: Vec<usize> = cuts.iter().map(|c| c % (vals.len() + 1)).collect();
        bounds.push(0);
        bounds.push(vals.len());
        bounds.sort_unstable();
        let mut merged = AggState::new(func);
        for w in bounds.windows(2) {
            let mut part = AggState::new(func);
            for v in &vals[w[0]..w[1]] {
                part.update(&Value::Int(*v)).unwrap();
            }
            merged.merge(&part).unwrap();
        }
        prop_assert_eq!(merged.finish(), whole.finish());
    }

    /// Merge join on sorted inputs produces exactly the hash join's result
    /// multiset, regardless of batch boundaries.
    #[test]
    fn merge_join_equals_hash_join_on_sorted_inputs(
        mut lkeys in prop::collection::vec(0i64..50, 0..120),
        mut rkeys in prop::collection::vec(0i64..50, 0..120),
        lchunk in 1usize..40,
        rchunk in 1usize..40,
    ) {
        lkeys.sort_unstable();
        rkeys.sort_unstable();
        let left: Vec<Tuple> = lkeys.iter().enumerate()
            .map(|(i, &k)| Tuple::new(vec![Value::Int(k), Value::Int(i as i64)]))
            .collect();
        let right: Vec<Tuple> = rkeys.iter().enumerate()
            .map(|(i, &k)| Tuple::new(vec![Value::Int(k), Value::Int(1000 + i as i64)]))
            .collect();
        let mut mj = MergeJoin::new(schema2("l"), schema2("r"), 0, 0);
        let mut hj = PipelinedHashJoin::new(schema2("l"), schema2("r"), 0, 0);
        let mut mout = Vec::new();
        let mut hout = Vec::new();
        for c in left.chunks(lchunk) {
            mj.push(0, c, &mut mout).unwrap();
            hj.push(0, c, &mut hout).unwrap();
        }
        for c in right.chunks(rchunk) {
            mj.push(1, c, &mut mout).unwrap();
            hj.push(1, c, &mut hout).unwrap();
        }
        mj.finish_input(0, &mut mout).unwrap();
        mj.finish_input(1, &mut mout).unwrap();
        prop_assert_eq!(canonicalize(&mout), canonicalize(&hout));
    }

    /// The complementary join pair is complete and duplicate-free for any
    /// input order, under both router flavors.
    #[test]
    fn complementary_pair_complete_for_any_order(
        left in prop::collection::vec((0i64..30, 0i64..1000), 0..80),
        right in prop::collection::vec((0i64..30, 0i64..1000), 0..80),
        pq_cap in 1usize..64,
    ) {
        let left = tuples_from(&left);
        let right = tuples_from(&right);
        let mut expected_src = PipelinedHashJoin::new(schema2("l"), schema2("r"), 0, 0);
        let mut expected = Vec::new();
        expected_src.push(0, &left, &mut expected).unwrap();
        expected_src.push(1, &right, &mut expected).unwrap();

        for router in [RouterKind::Naive, RouterKind::PriorityQueue(pq_cap)] {
            let mut pair = ComplementaryJoinPair::new(
                schema2("l"), schema2("r"), 0, 0, router,
            );
            let mut out = Vec::new();
            pair.push(0, &left, &mut out).unwrap();
            pair.push(1, &right, &mut out).unwrap();
            pair.finish_input(0, &mut out).unwrap();
            pair.finish_input(1, &mut out).unwrap();
            pair.finish(&mut out).unwrap();
            prop_assert_eq!(
                canonicalize(&out),
                canonicalize(&expected),
                "router {:?}", router
            );
        }
    }

    /// Hash table, B+ tree, and sorted list answer point probes
    /// identically.
    #[test]
    fn state_structures_agree_on_probes(
        rows in prop::collection::vec((0i64..40, 0i64..1000), 0..150),
        probes in prop::collection::vec(0i64..50, 1..20),
    ) {
        let tuples = tuples_from(&rows);
        let mut hash = TupleHashTable::new(0);
        let mut tree = BPlusTree::new(0);
        let mut sorted = SortedList::new(vec![tukwila::relation::SortKey::asc(0)]);
        for t in &tuples {
            hash.insert(t.clone()).unwrap();
            tree.insert(t.clone());
            sorted.insert(t.clone());
        }
        prop_assert_eq!(hash.len(), tree.len());
        prop_assert_eq!(hash.len(), sorted.len());
        for p in probes {
            let key = Value::Int(p).to_key();
            let mut h = Vec::new();
            let mut b = Vec::new();
            let mut s = Vec::new();
            hash.probe_into(&key, &mut h);
            tree.probe_into(&key, &mut b);
            sorted.probe_into(&key, &mut s);
            prop_assert_eq!(canonicalize(&h), canonicalize(&b));
            prop_assert_eq!(canonicalize(&h), canonicalize(&s));
        }
    }

    /// Spill roundtrip preserves arbitrary tuples exactly.
    #[test]
    fn spill_roundtrip_preserves_tuples(
        rows in prop::collection::vec((any::<i64>(), -1e9f64..1e9, ".{0,12}"), 0..50),
    ) {
        use tukwila::storage::spill::SpillFile;
        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|(i, f, s)| {
                Tuple::new(vec![
                    Value::Int(*i),
                    Value::Float(*f),
                    Value::str(s),
                    Value::Null,
                ])
            })
            .collect();
        let mut file = SpillFile::create().unwrap();
        let seg = file.write_tuples(&tuples).unwrap();
        let back = file.read_segment(seg).unwrap();
        prop_assert_eq!(back, tuples);
    }

    /// Tuple adapters invert: adapting A→B then B→A is the identity.
    #[test]
    fn tuple_adapter_roundtrips(perm in prop::sample::subsequence(
        (0usize..8).collect::<Vec<_>>(), 8)
    ) {
        // A permutation of 0..8 (subsequence of all 8 elements = identity;
        // shuffle deterministically by reversing halves).
        let mut perm = perm;
        perm.reverse();
        let fields: Vec<Field> = (0..8)
            .map(|i| Field::new(format!("f{i}"), DataType::Int))
            .collect();
        let a = Schema::new(fields);
        let b = a.project(&perm);
        let fwd = a.adapter_to(&b).unwrap();
        let back = b.adapter_to(&a).unwrap();
        let t = Tuple::new((0..8).map(Value::Int).collect());
        prop_assert_eq!(back.adapt(&fwd.adapt(&t)), t);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end fuzz: corrective execution with randomized batch sizes,
    /// polling cadence, and forced switching must equal static execution on
    /// the Example 2.1 query over random data shapes. This effectively
    /// fuzzes the phase boundaries the stitch-up must cover.
    #[test]
    fn corrective_equals_static_under_random_phasing(
        n_flights in 5usize..60,
        n_travelers in 5usize..120,
        trips in 1usize..4,
        seed in 0u64..1000,
        batch in 8usize..64,
        poll in 1u64..4,
    ) {
        use tukwila::datagen::flights;
        let data = flights::generate(n_flights, n_travelers, trips, seed);
        let q = flights::query();
        let mk_sources = || -> Vec<Box<dyn Source>> {
            vec![
                Box::new(MemSource::new(
                    flights::FLIGHTS, "F", flights::flights_schema(),
                    data.flights.clone(),
                )),
                Box::new(MemSource::new(
                    flights::TRAVELERS, "T", flights::travelers_schema(),
                    data.travelers.clone(),
                )),
                Box::new(MemSource::new(
                    flights::CHILDREN, "C", flights::children_schema(),
                    data.children.clone(),
                )),
            ]
        };
        let mut static_sources = mk_sources();
        let static_run = tukwila::core::run_static(
            &q,
            &mut static_sources,
            tukwila::optimizer::OptimizerContext::no_statistics(),
            batch,
            CpuCostModel::Zero,
        ).unwrap();

        let exec = CorrectiveExec::new(q, CorrectiveConfig {
            batch_size: batch,
            cpu: CpuCostModel::Zero,
            poll_every_batches: poll,
            switch_threshold: 100.0,
            max_phases: 4,
            warmup_batches: 1,
            min_remaining_fraction: 0.0,
            ..Default::default()
        });
        let mut sources = mk_sources();
        let report = exec.run(&mut sources).unwrap();
        prop_assert_eq!(
            canonicalize_approx(&report.rows),
            canonicalize_approx(&static_run.rows),
            "phases: {:?}",
            report.phases.iter().map(|p| p.plan.clone()).collect::<Vec<_>>()
        );
    }
}
