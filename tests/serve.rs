//! The cross-query serving battery: dual-clock equivalence of a served
//! fleet, cross-query learning (warm hedges, invariant answers), the
//! core-budget arbiter's ledger invariants under randomized op
//! sequences, and the `--ignored` serving soak.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use tukwila::datagen::flights::{self, FlightsData};
use tukwila::federation::{DeclaredRate, FederatedCatalog, FederationConfig};
use tukwila::serve::{QuerySpec, ServeMode, Server, ServerConfig};
use tukwila::source::{DelayModel, DelayedSource, Source};
use tukwila::stats::{hedge_signatures, CoreArbiter, QueryLease, TraceEvent, TraceRecord};

mod common;
use common::{mem_answer, tables};

/// Timeline patience of a cold query: the first stall of an unknown
/// candidate is declared only after this much silence.
const COLD_STALL_US: u64 = 2_000_000;
/// Patience once past queries learned the candidate dead: 20× tighter.
const WARM_STALL_US: u64 = 100_000;

/// The serving scenario's federation knobs — the same shape as the
/// `repro serve` scenario: conservative cold patience (so wall-clock
/// jitter cannot fake a stall) and a warm floor that lets learning
/// reprice the wait.
fn server_config() -> ServerConfig {
    ServerConfig {
        federation: FederationConfig {
            min_stall_us: COLD_STALL_US,
            stall_sigma: 8.0,
            warm_stall_us: Some(WARM_STALL_US),
            ..FederationConfig::default()
        },
        ..ServerConfig::default()
    }
}

/// One serving query over the degraded mirror set: every relation has a
/// dead primary (silent forever), a slow declared-rate standby, and a
/// fast one. All links are connect-on-demand ([`DelayedSource::anchored`])
/// so *when* the hedge wakes a standby moves the completion time — the
/// quantity cross-query learning improves.
fn degraded_spec(d: Arc<FlightsData>, name: &str) -> QuerySpec {
    QuerySpec::new(name, flights::query(), move |fed| {
        let mut catalog = FederatedCatalog::new(fed);
        for (rel, tname, schema, rows) in tables(&d) {
            let delayed = |suffix: &str, model: &DelayModel| -> Box<dyn Source> {
                Box::new(
                    DelayedSource::new(
                        rel,
                        format!("{tname}-{suffix}"),
                        schema.clone(),
                        rows.clone(),
                        model,
                    )
                    .anchored(),
                )
            };
            catalog.register(
                vec![0],
                delayed(
                    "dead",
                    &DelayModel::Bandwidth {
                        bytes_per_sec: 1e-3,
                        initial_latency_us: u32::MAX as u64,
                    },
                ),
            )?;
            let standby = |suffix: &str, bps: f64, declared: f64| -> Box<dyn Source> {
                Box::new(DeclaredRate::new(
                    delayed(
                        suffix,
                        &DelayModel::Bandwidth {
                            bytes_per_sec: bps,
                            initial_latency_us: 1_000,
                        },
                    ),
                    declared,
                ))
            };
            catalog.register(vec![0], standby("slow", 50_000.0, 50.0))?;
            catalog.register(vec![0], standby("fast", 200_000.0, 100_000.0))?;
        }
        Ok(catalog)
    })
}

/// One single-query admission wave per name — the sequence along which
/// learning flows.
fn waves(d: &Arc<FlightsData>, names: &[&str]) -> Vec<Vec<QuerySpec>> {
    names
        .iter()
        .map(|name| vec![degraded_spec(d.clone(), name)])
        .collect()
}

/// Per-relation hedge signatures with the adapter naming stripped (the
/// sequential adapter says `fed(F-dead×3)`, the threaded one
/// `fed-mt(F-dead×3)`): keys keep the `(first-candidate×n)` core, each
/// signature its `|stalled=…|chosen=…|fired=…` tail. What remains is
/// pure decision content.
fn normalized_signatures(records: &[TraceRecord]) -> BTreeMap<String, Vec<String>> {
    hedge_signatures(records)
        .into_iter()
        .map(|(rel, sigs)| {
            let key = rel[rel.find('(').unwrap_or(0)..].to_string();
            let tails: Vec<String> = sigs
                .iter()
                .map(|s| s[s.find('|').unwrap_or(0)..].to_string())
                .collect();
            (key, tails)
        })
        .collect()
}

/// Timeline instant of a query's first hedge-gate decision, from its
/// journal.
fn first_hedge_at_us(records: &[TraceRecord]) -> Option<u64> {
    records.iter().find_map(|r| match &r.event {
        TraceEvent::HedgeDecision { .. } => Some(r.at_us),
        _ => None,
    })
}

/// Dual-clock serving equivalence: an N-query serve run under
/// per-query [`tukwila::stats::VirtualClock`]s and the same waves racing
/// on real threads against one shared accelerated wall clock produce —
/// per query — identical canonical answers and identical per-relation
/// hedge-decision sequences. This extends the single-query dual-clock
/// contract across admission waves: the learning snapshot each wave sees
/// is fixed at admission, so the clock cannot change what is learned.
#[test]
fn dual_clock_serving_equivalence() {
    let d = Arc::new(flights::generate(300, 1500, 1, 13));
    let expected = mem_answer(&d, &flights::query());
    let names = ["s1", "s2", "s3"];

    let virt = Server::new(server_config())
        .serve(&waves(&d, &names), ServeMode::Virtual)
        .unwrap();
    let wall = Server::new(server_config())
        .serve(&waves(&d, &names), ServeMode::Threaded)
        .unwrap();

    assert_eq!(virt.queries(), names.len());
    assert_eq!(wall.queries(), names.len());
    for (v, w) in virt.outcomes.iter().zip(&wall.outcomes) {
        assert_eq!(v.name, w.name, "outcome order is admission order");
        assert_eq!(v.rows, expected, "virtual answer diverged ({})", v.name);
        assert_eq!(w.rows, expected, "threaded answer diverged ({})", w.name);
        let vsig = normalized_signatures(&v.records);
        let wsig = normalized_signatures(&w.records);
        assert_eq!(
            vsig.len(),
            3,
            "{}: every relation's scheduler must journal its hedge",
            v.name
        );
        assert_eq!(
            vsig, wsig,
            "{}: hedge-decision sequences must be clock-invariant",
            v.name
        );
        for (rel, sigs) in &vsig {
            assert_eq!(sigs.len(), 1, "{rel}: the stall latch fires once");
            assert!(
                sigs[0].contains("-dead") && sigs[0].contains("-fast"),
                "{rel}: dead primary stalls, fast standby chosen ({})",
                sigs[0]
            );
        }
    }
    // The serving effect is visible on both clocks: the cold first query
    // waits out the full patience, the warm last one does not.
    assert!(
        virt.outcomes[0].latency_us > virt.outcomes[2].latency_us,
        "virtual: warm query must be faster than the cold one"
    );
    assert!(
        wall.outcomes[0].latency_us > wall.outcomes[2].latency_us,
        "threaded: warm query must be faster than the cold one"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Cross-query learning: whatever the data (seeded) and however many
    /// follower queries ride behind the cold one, every follower's first
    /// hedge fires off the learned profile — before the cold patience
    /// would even declare the stall — while every answer (shared or
    /// isolated catalog) stays byte-identical.
    #[test]
    fn cross_query_learning_reprices_hedges_not_answers(
        seed in 0u64..1_000,
        followers in 1usize..3,
    ) {
        let d = Arc::new(flights::generate(200, 900, 1, seed));
        let expected = mem_answer(&d, &flights::query());
        let names: Vec<String> = (0..=followers).map(|i| format!("q{i}")).collect();
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

        let server = Server::new(server_config());
        let fleet = server
            .serve(&waves(&d, &name_refs), ServeMode::Virtual)
            .unwrap();
        prop_assert_eq!(fleet.queries(), names.len());

        let cold_hedge = first_hedge_at_us(&fleet.outcomes[0].records)
            .expect("the cold query must hedge off the dead primary");
        prop_assert!(
            cold_hedge >= COLD_STALL_US,
            "cold query pays the full patience (hedged at {cold_hedge} us)"
        );
        for o in &fleet.outcomes {
            prop_assert_eq!(&o.rows, &expected, "answer diverged ({})", &o.name);
        }
        for o in &fleet.outcomes[1..] {
            let warm_hedge = first_hedge_at_us(&o.records)
                .expect("warm queries must still hedge");
            prop_assert!(
                warm_hedge < COLD_STALL_US,
                "{}: first hedge must use the learned profile, not the cold \
                 floor (hedged at {warm_hedge} us)",
                &o.name
            );
            prop_assert!(
                o.latency_us < fleet.outcomes[0].latency_us,
                "{}: warm query must finish before the cold one",
                &o.name
            );
        }
        prop_assert!(
            server.learning().len() >= 3,
            "every relation's dead primary must be published"
        );

        // Isolated-catalog control: each query served alone by a fresh
        // server answers identically — learning moved timing only.
        for name in &name_refs {
            let iso = Server::new(server_config())
                .serve(&waves(&d, std::slice::from_ref(name)), ServeMode::Virtual)
                .unwrap();
            prop_assert_eq!(
                &iso.outcomes[0].rows, &expected,
                "isolated run diverged ({name})"
            );
        }
    }

    /// The arbiter's ledger invariants under randomized op sequences
    /// over several leases: Σ held equals the grant total, never exceeds
    /// the budget, grants never exceed the request, release clamps at
    /// held, and replacing (dropping) a lease reclaims its cores.
    #[test]
    fn arbiter_ledger_invariants_hold_under_random_ops(
        budget in 1usize..6,
        ops in prop::collection::vec((0usize..3, 0usize..3, 1usize..5), 1..120),
    ) {
        let arb = CoreArbiter::new(budget);
        let mut leases: Vec<QueryLease> = (0..3).map(|_| arb.lease()).collect();
        let mut held = [0usize; 3];
        for (l, action, n) in ops {
            match action {
                0 => {
                    let got = leases[l].try_acquire(n);
                    prop_assert!(got <= n, "never grants more than asked");
                    held[l] += got;
                }
                1 => {
                    let gave = leases[l].release(n);
                    prop_assert_eq!(gave, n.min(held[l]), "release clamps at held");
                    held[l] -= gave;
                }
                _ => {
                    // The query finished: its lease drops, a new one is
                    // admitted in its slot.
                    leases[l] = arb.lease();
                    held[l] = 0;
                }
            }
            prop_assert_eq!(leases[l].held(), held[l]);
            prop_assert!(arb.granted() <= budget, "Σ held ≤ budget, always");
            prop_assert_eq!(arb.granted(), held.iter().sum::<usize>());
        }
        leases.clear();
        prop_assert_eq!(arb.granted(), 0, "dropped leases return everything");
        prop_assert!(arb.registered() >= 3);
    }
}

/// Serving soak: 8 queries over one shared 3-mirror catalog with
/// 10k-tuple base relations, virtual anchor plus a threaded leg. Run
/// with `cargo test -- --ignored serving_soak`.
#[test]
#[ignore = "serving soak (8 queries × shared 3-mirror catalog × 10k tuples); run with --ignored"]
fn serving_soak_eight_queries_shared_catalog() {
    let d = Arc::new(flights::generate(2_000, 8_000, 1, 17));
    let total: usize = tables(&d).iter().map(|(_, _, _, rows)| rows.len()).sum();
    assert!(total >= 10_000, "soak wants ≥10k base tuples, got {total}");
    let expected = mem_answer(&d, &flights::query());
    let names: Vec<String> = (1..=8).map(|i| format!("soak{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();

    let server = Server::new(server_config());
    let fleet = server
        .serve(&waves(&d, &name_refs), ServeMode::Virtual)
        .unwrap();
    assert_eq!(fleet.queries(), 8);
    for o in &fleet.outcomes {
        assert_eq!(o.rows, expected, "soak answer diverged ({})", o.name);
        assert!(
            o.summary.hedges_fired >= 1,
            "{}: every soak query must hedge off the dead primaries",
            o.name
        );
    }
    for o in &fleet.outcomes[1..] {
        assert!(
            o.latency_us < fleet.outcomes[0].latency_us,
            "{}: warm soak queries must beat the cold first one",
            o.name
        );
    }
    assert!(server.learning().len() >= 3);
    assert!(fleet.p50_latency_us() > 0);
    assert!(fleet.p99_latency_us() >= fleet.p50_latency_us());
    assert!(fleet.throughput_qps() > 0.0);

    // The threaded leg: same fleet racing on producer threads; answers
    // and decision sequences must survive the clock swap at soak scale.
    let wall = Server::new(server_config())
        .serve(&waves(&d, &name_refs), ServeMode::Threaded)
        .unwrap();
    for (v, w) in fleet.outcomes.iter().zip(&wall.outcomes) {
        assert_eq!(w.rows, v.rows, "soak threaded answer diverged ({})", w.name);
        assert_eq!(
            normalized_signatures(&v.records),
            normalized_signatures(&w.records),
            "soak decision sequences must be clock-invariant ({})",
            v.name
        );
    }
}
