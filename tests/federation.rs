//! Integration tests for the federation layer: mirrored/replicated
//! sources behind the online permutation scheduler must be invisible to
//! the engine — same answers as plain single sources, no lost or
//! duplicated tuples — while adapting to stalls mid-query.

use std::sync::Arc;

use proptest::prelude::*;

use tukwila::core::{run_static, run_static_with_driver, CorrectiveConfig, CorrectiveExec};
use tukwila::datagen::flights::{self, FlightsData};
use tukwila::exec::reference::canonicalize_approx;
use tukwila::exec::{CpuCostModel, SimDriver};
use tukwila::federation::{
    DeclaredRate, FederatedCatalog, FederatedSource, FederationConfig, PartialReplica,
};
use tukwila::optimizer::OptimizerContext;
use tukwila::relation::{Schema, Tuple};
use tukwila::source::{DelayModel, DelayedSource, Source};
use tukwila::stats::{Clock, WallClock};

mod common;
use common::{mem_answer, tables};

fn delayed(
    rel: u32,
    name: String,
    schema: Schema,
    rows: Vec<Tuple>,
    model: &DelayModel,
) -> Box<dyn Source> {
    Box::new(DelayedSource::new(rel, name, schema, rows, model))
}

/// Fast while bursting but mostly dark: the "preferred mirror that
/// degrades mid-query".
fn flaky_model(seed: u64) -> DelayModel {
    DelayModel::Wireless {
        bytes_per_sec: 200_000.0,
        burst_ms: 30.0,
        gap_ms: 100.0,
        seed,
    }
}

fn steady_model() -> DelayModel {
    DelayModel::Bandwidth {
        bytes_per_sec: 50_000.0,
        initial_latency_us: 1_000,
    }
}

fn fed_reports(sources: &[Box<dyn Source>]) -> Vec<tukwila::federation::FederationReport> {
    sources
        .iter()
        .filter_map(|s| s.as_any())
        .filter_map(|a| a.downcast_ref::<FederatedSource>())
        .map(|f| f.report())
        .collect()
}

/// The headline scenario: every relation's preferred mirror is the flaky
/// one; it stalls mid-query and the scheduler hedges onto the steady
/// backup. Run under the full corrective executor (which also publishes
/// the federated delivery rates into the re-optimizer's catalog) and
/// compare against plain local execution.
#[test]
fn preferred_mirror_stall_fails_over_without_loss_or_dup() {
    let d = flights::generate(500, 3000, 1, 11);
    let q = flights::query();
    let expected = mem_answer(&d, &q);

    let mut catalog = FederatedCatalog::new(FederationConfig::default());
    for (rel, name, schema, rows) in tables(&d) {
        catalog
            .register(
                vec![0],
                delayed(
                    rel,
                    format!("{name}-flaky"),
                    schema.clone(),
                    rows.clone(),
                    &flaky_model(7 ^ u64::from(rel)),
                ),
            )
            .unwrap();
        catalog
            .register(
                vec![0],
                delayed(
                    rel,
                    format!("{name}-steady"),
                    schema,
                    rows.clone(),
                    &steady_model(),
                ),
            )
            .unwrap();
    }
    let mut sources = catalog.into_sources().unwrap();

    let exec = CorrectiveExec::new(
        q,
        CorrectiveConfig {
            batch_size: 256,
            cpu: CpuCostModel::Zero,
            poll_every_batches: 3,
            warmup_batches: 2,
            min_remaining_fraction: 0.0,
            ..Default::default()
        },
    );
    let report = exec.run(&mut sources).unwrap();
    assert_eq!(
        canonicalize_approx(&report.rows),
        expected,
        "federated corrective answer diverged from local execution"
    );

    let reports = fed_reports(&sources);
    assert_eq!(reports.len(), 3);
    let sizes = [d.flights.len(), d.travelers.len(), d.children.len()];
    let mut total_failovers = 0;
    for r in &reports {
        let size = match r.rel_id {
            flights::FLIGHTS => sizes[0],
            flights::TRAVELERS => sizes[1],
            _ => sizes[2],
        };
        assert_eq!(
            r.delivered as usize, size,
            "{}: engine must see each tuple exactly once",
            r.name
        );
        total_failovers += r.failovers;
    }
    assert!(
        total_failovers >= 1,
        "the flaky mirrors' outages must trigger at least one failover"
    );
    let deduped: u64 = reports
        .iter()
        .flat_map(|r| r.candidates.iter().map(|c| c.duplicates))
        .sum();
    assert!(deduped > 0, "hedged mirrors must overlap and be deduped");
}

/// Overlapping partial replicas jointly covering a relation behave like
/// one complete source.
#[test]
fn overlapping_partial_replicas_union_to_full_relation() {
    let d = flights::generate(300, 2000, 1, 23);
    let q = flights::query();
    let expected = mem_answer(&d, &q);

    let mut catalog = FederatedCatalog::new(FederationConfig::default());
    for (rel, name, schema, rows) in tables(&d) {
        if rel == flights::TRAVELERS {
            // Two overlapping halves: [0, 60%) and [40%, 100%).
            let cut_hi = rows.len() * 6 / 10;
            let cut_lo = rows.len() * 4 / 10;
            for (suffix, slice, model) in [
                ("head", &rows[..cut_hi], flaky_model(5)),
                ("tail", &rows[cut_lo..], steady_model()),
            ] {
                catalog
                    .register(
                        vec![0],
                        Box::new(PartialReplica::new(delayed(
                            rel,
                            format!("{name}-{suffix}"),
                            schema.clone(),
                            slice.to_vec(),
                            &model,
                        ))),
                    )
                    .unwrap();
            }
        } else {
            catalog
                .register(
                    vec![0],
                    delayed(rel, name.into(), schema, rows.clone(), &steady_model()),
                )
                .unwrap();
        }
    }
    let mut sources = catalog.into_sources().unwrap();
    let run = run_static(
        &q,
        &mut sources,
        OptimizerContext::no_statistics(),
        256,
        CpuCostModel::Zero,
    )
    .unwrap();
    assert_eq!(canonicalize_approx(&run.rows), expected);

    let reports = fed_reports(&sources);
    let travelers = reports
        .iter()
        .find(|r| r.rel_id == flights::TRAVELERS)
        .unwrap();
    assert_eq!(travelers.delivered as usize, d.travelers.len());
    assert!(
        travelers.candidates.iter().all(|c| c.activated),
        "both partial replicas must be read to cover the relation"
    );
}

/// Gate-aware standby ordering: when the primary goes dark, the hedge
/// gate scores *every* parked standby with its declared rate and wakes
/// the best payer — so the wake decision is invariant under the
/// registration order of the standbys (the legacy rule always raced
/// whichever standby registered first).
#[test]
fn gate_aware_standby_wake_is_registration_order_invariant() {
    let rows: Vec<Tuple> = (0..120)
        .map(|k| Tuple::new(vec![tukwila::relation::Value::Int(k)]))
        .collect();
    let schema = Schema::new(vec![tukwila::relation::Field::new(
        "t.k",
        tukwila::relation::DataType::Int,
    )]);
    let dead = || -> Box<dyn Source> {
        // The primary never delivers: its first tuple is eons away.
        Box::new(DelayedSource::new(
            1,
            "dead-primary",
            schema.clone(),
            rows.clone(),
            &DelayModel::Bandwidth {
                bytes_per_sec: 1e-3,
                initial_latency_us: u32::MAX as u64,
            },
        ))
    };
    let standby = |name: &str, declared: f64| -> Box<dyn Source> {
        Box::new(DeclaredRate::new(
            Box::new(DelayedSource::new(
                1,
                name,
                schema.clone(),
                rows.clone(),
                &steady_model(),
            )),
            declared,
        ))
    };

    for reversed in [false, true] {
        let mut candidates = vec![dead()];
        if reversed {
            candidates.push(standby("fast", 100_000.0));
            candidates.push(standby("slow", 50.0));
        } else {
            candidates.push(standby("slow", 50.0));
            candidates.push(standby("fast", 100_000.0));
        }
        let mut fed =
            FederatedSource::new(vec![0], candidates, FederationConfig::default()).unwrap();
        // Drive like the virtual-clock driver: poll, jump to next_ready.
        let mut now = 0u64;
        let mut got = 0usize;
        loop {
            match fed.poll(now, 64) {
                tukwila::source::Poll::Ready(batch) => got += batch.len(),
                tukwila::source::Poll::Pending { next_ready_us } => now = next_ready_us,
                tukwila::source::Poll::Eof => break,
            }
        }
        assert_eq!(got, rows.len(), "union complete despite the dead primary");
        let report = fed.report();
        let by_name = |n: &str| {
            report
                .candidates
                .iter()
                .find(|c| c.descriptor.name == n)
                .unwrap()
        };
        assert!(
            by_name("fast").activated,
            "reversed={reversed}: the fast-declared standby must be woken"
        );
        assert!(
            !by_name("slow").activated,
            "reversed={reversed}: the slow-declared standby must stay parked \
             (the gate wakes the best payer, not the next registered)"
        );
    }
}

/// Build the candidate catalog for each federation scenario this suite
/// covers, so the dual-clock equivalence test can replay all of them
/// under both clocks.
fn scenario_catalog(name: &str, d: &FlightsData, seed: u64) -> FederatedCatalog {
    let mut catalog = FederatedCatalog::new(FederationConfig::default());
    match name {
        // Every relation: a flaky preferred mirror plus a steady backup.
        "mirrors" => {
            for (rel, name, schema, rows) in tables(d) {
                catalog
                    .register(
                        vec![0],
                        delayed(
                            rel,
                            format!("{name}-flaky"),
                            schema.clone(),
                            rows.clone(),
                            &flaky_model(seed ^ u64::from(rel)),
                        ),
                    )
                    .unwrap();
                catalog
                    .register(
                        vec![0],
                        delayed(
                            rel,
                            format!("{name}-steady"),
                            schema,
                            rows.clone(),
                            &steady_model(),
                        ),
                    )
                    .unwrap();
            }
        }
        // TRAVELERS split into two overlapping partial replicas.
        "partial" => {
            for (rel, name, schema, rows) in tables(d) {
                if rel == flights::TRAVELERS {
                    let cut_hi = rows.len() * 6 / 10;
                    let cut_lo = rows.len() * 4 / 10;
                    for (suffix, slice, model) in [
                        ("head", &rows[..cut_hi], flaky_model(seed)),
                        ("tail", &rows[cut_lo..], steady_model()),
                    ] {
                        catalog
                            .register(
                                vec![0],
                                Box::new(PartialReplica::new(delayed(
                                    rel,
                                    format!("{name}-{suffix}"),
                                    schema.clone(),
                                    slice.to_vec(),
                                    &model,
                                ))),
                            )
                            .unwrap();
                    }
                } else {
                    catalog
                        .register(
                            vec![0],
                            delayed(rel, name.into(), schema, rows.clone(), &steady_model()),
                        )
                        .unwrap();
                }
            }
        }
        // Three full mirrors of mixed behavior per relation.
        "triple" => {
            let models = [
                flaky_model(seed ^ 0xA5),
                steady_model(),
                DelayModel::Wireless {
                    bytes_per_sec: 80_000.0,
                    burst_ms: 20.0,
                    gap_ms: 40.0,
                    seed: seed ^ 0x5A,
                },
            ];
            for (rel, name, schema, rows) in tables(d) {
                for (m, model) in models.iter().enumerate() {
                    catalog
                        .register(
                            vec![0],
                            delayed(
                                rel,
                                format!("{name}-m{m}"),
                                schema.clone(),
                                rows.clone(),
                                model,
                            ),
                        )
                        .unwrap();
                }
            }
        }
        other => panic!("unknown scenario {other}"),
    }
    catalog
}

/// The dual-clock equivalence property: every scenario of this suite,
/// with a fixed seed, must produce the identical deduped answer whether
/// the mirrors are polled sequentially under the deterministic virtual
/// clock or race on real threads against an accelerated wall clock.
#[test]
fn dual_clock_equivalence_across_all_scenarios() {
    let d = flights::generate(200, 1200, 1, 41);
    let q = flights::query();
    let expected = mem_answer(&d, &q);

    for scenario in ["mirrors", "partial", "triple"] {
        // Virtual: deterministic sequential run.
        let mut virt = scenario_catalog(scenario, &d, 41).into_sources().unwrap();
        let virt_run = run_static(
            &q,
            &mut virt,
            OptimizerContext::no_statistics(),
            256,
            CpuCostModel::Zero,
        )
        .unwrap();
        let virt_answer = canonicalize_approx(&virt_run.rows);
        assert_eq!(virt_answer, expected, "{scenario}: virtual run diverged");

        // Threaded: same candidates, real producer threads, real racing.
        let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(200.0));
        let mut threaded = scenario_catalog(scenario, &d, 41)
            .into_concurrent_sources(clock.clone())
            .unwrap();
        let wall_run = run_static_with_driver(
            &q,
            &mut threaded,
            OptimizerContext::no_statistics(),
            SimDriver::new(256, CpuCostModel::Measured).with_clock(clock),
            None,
        )
        .unwrap();
        assert_eq!(
            canonicalize_approx(&wall_run.rows),
            virt_answer,
            "{scenario}: threaded answer diverged from the virtual-clock answer"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any permutation of the candidate mirrors — and any mix of delivery
    /// behaviors — yields the same final answer under the virtual clock.
    #[test]
    fn any_source_permutation_yields_same_answer(
        seed in 0u64..500,
        perm in prop::sample::select(vec![
            [0usize, 1, 2], [0, 2, 1], [1, 0, 2], [1, 2, 0], [2, 0, 1], [2, 1, 0],
        ]),
        n_flights in 30usize..120,
        n_travelers in 50usize..400,
    ) {
        let d = flights::generate(n_flights, n_travelers, 1, seed);
        let q = flights::query();
        let expected = mem_answer(&d, &q);

        let models = [
            flaky_model(seed ^ 0xA5),
            steady_model(),
            DelayModel::Wireless {
                bytes_per_sec: 80_000.0,
                burst_ms: 20.0,
                gap_ms: 40.0,
                seed: seed ^ 0x5A,
            },
        ];
        let mut catalog = FederatedCatalog::new(FederationConfig::default());
        for (rel, name, schema, rows) in tables(&d) {
            for &m in &perm {
                catalog.register(
                    vec![0],
                    delayed(
                        rel,
                        format!("{name}-m{m}"),
                        schema.clone(),
                        rows.clone(),
                        &models[m],
                    ),
                ).unwrap();
            }
        }
        let mut sources = catalog.into_sources().unwrap();
        let run = run_static(
            &q,
            &mut sources,
            OptimizerContext::no_statistics(),
            128,
            CpuCostModel::Zero,
        ).unwrap();
        prop_assert_eq!(
            canonicalize_approx(&run.rows),
            expected,
            "permutation {:?} changed the answer", perm
        );
        for r in fed_reports(&sources) {
            prop_assert_eq!(r.candidates.len(), 3);
        }
    }
}
