//! Cross-crate integration tests: every execution strategy must produce
//! the same answers as every other (and as the naive reference executor),
//! on every workload query, over uniform and skewed data.

use std::collections::HashMap;

use tukwila::core::{run_plan_partitioning, run_static, CorrectiveConfig, CorrectiveExec};
use tukwila::datagen::{queries, Dataset, DatasetConfig, TableId};
use tukwila::exec::reference::canonicalize_approx;
use tukwila::exec::CpuCostModel;
use tukwila::optimizer::{LogicalQuery, OptimizerContext, PreAggConfig, PreAggMode};
use tukwila::source::{MemSource, Source};

fn sources_for(d: &Dataset, q: &LogicalQuery) -> Vec<Box<dyn Source>> {
    queries::tables_of(q)
        .into_iter()
        .map(|t| {
            Box::new(MemSource::new(
                t.rel_id(),
                t.name(),
                Dataset::schema(t),
                d.table(t).to_vec(),
            )) as Box<dyn Source>
        })
        .collect()
}

fn static_answer(d: &Dataset, q: &LogicalQuery) -> Vec<String> {
    let mut s = sources_for(d, q);
    let run = run_static(
        q,
        &mut s,
        OptimizerContext::no_statistics(),
        512,
        CpuCostModel::Zero,
    )
    .unwrap();
    canonicalize_approx(&run.rows)
}

fn all_queries() -> Vec<(&'static str, LogicalQuery)> {
    vec![
        ("q3", queries::q3()),
        ("q3a", queries::q3a()),
        ("q10", queries::q10()),
        ("q10a", queries::q10a()),
        ("q5", queries::q5()),
    ]
}

#[test]
fn corrective_matches_static_on_all_queries_uniform() {
    let d = Dataset::generate(DatasetConfig::uniform(0.002));
    for (name, q) in all_queries() {
        let expected = static_answer(&d, &q);
        let exec = CorrectiveExec::new(
            q.clone(),
            CorrectiveConfig {
                batch_size: 300,
                cpu: CpuCostModel::Zero,
                poll_every_batches: 3,
                switch_threshold: 100.0, // force switches aggressively
                max_phases: 4,
                warmup_batches: 2,
                ..Default::default()
            },
        );
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert_eq!(
            canonicalize_approx(&report.rows),
            expected,
            "{name}: corrective ({} phases) disagrees with static",
            report.phase_count()
        );
    }
}

#[test]
fn corrective_matches_static_on_all_queries_skewed() {
    let d = Dataset::generate(DatasetConfig::skewed(0.002));
    for (name, q) in all_queries() {
        let expected = static_answer(&d, &q);
        let exec = CorrectiveExec::new(
            q.clone(),
            CorrectiveConfig {
                batch_size: 450,
                cpu: CpuCostModel::Zero,
                poll_every_batches: 2,
                switch_threshold: 100.0,
                max_phases: 3,
                warmup_batches: 2,
                ..Default::default()
            },
        );
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert_eq!(
            canonicalize_approx(&report.rows),
            expected,
            "{name} (skewed, {} phases)",
            report.phase_count()
        );
    }
}

#[test]
fn plan_partitioning_matches_static_on_all_queries() {
    let d = Dataset::generate(DatasetConfig::uniform(0.002));
    for (name, q) in all_queries() {
        let expected = static_answer(&d, &q);
        let run = run_plan_partitioning(
            &q,
            sources_for(&d, &q),
            OptimizerContext::no_statistics(),
            512,
            CpuCostModel::Zero,
        )
        .unwrap();
        assert_eq!(canonicalize_approx(&run.rows), expected, "{name}");
    }
}

#[test]
fn preagg_strategies_match_on_all_queries() {
    let d = Dataset::generate(DatasetConfig::skewed(0.002));
    for (name, q) in all_queries() {
        let expected = static_answer(&d, &q);
        for mode in [
            PreAggMode::AdaptiveWindow,
            PreAggMode::Traditional,
            PreAggMode::Pseudogroup,
        ] {
            let mut ctx = OptimizerContext::no_statistics();
            ctx.preagg = PreAggConfig::Insert(mode);
            let mut s = sources_for(&d, &q);
            let run = run_static(&q, &mut s, ctx, 512, CpuCostModel::Zero).unwrap();
            assert_eq!(
                canonicalize_approx(&run.rows),
                expected,
                "{name} with {mode:?}"
            );
        }
    }
}

#[test]
fn given_cardinalities_mode_matches_no_statistics_results() {
    let d = Dataset::generate(DatasetConfig::uniform(0.002));
    let q = queries::q5();
    let expected = static_answer(&d, &q);
    let mut cards = HashMap::new();
    for t in queries::tables_of(&q) {
        cards.insert(t.rel_id(), d.table(t).len() as u64);
    }
    let mut s = sources_for(&d, &q);
    let run = run_static(
        &q,
        &mut s,
        OptimizerContext::with_cards(cards),
        512,
        CpuCostModel::Zero,
    )
    .unwrap();
    assert_eq!(canonicalize_approx(&run.rows), expected);
}

#[test]
fn corrective_over_delayed_sources_matches_local() {
    use tukwila::source::{DelayModel, DelayedSource};
    let d = Dataset::generate(DatasetConfig::uniform(0.002));
    let q = queries::q10a();
    let expected = static_answer(&d, &q);
    let model = DelayModel::Wireless {
        bytes_per_sec: 2e6,
        burst_ms: 10.0,
        gap_ms: 15.0,
        seed: 99,
    };
    let mut sources: Vec<Box<dyn Source>> = queries::tables_of(&q)
        .into_iter()
        .map(|t| {
            Box::new(DelayedSource::new(
                t.rel_id(),
                t.name(),
                Dataset::schema(t),
                d.table(t).to_vec(),
                &model,
            )) as Box<dyn Source>
        })
        .collect();
    let exec = CorrectiveExec::new(
        q,
        CorrectiveConfig {
            batch_size: 256,
            cpu: CpuCostModel::Zero,
            poll_every_batches: 4,
            switch_threshold: 100.0,
            max_phases: 3,
            warmup_batches: 2,
            ..Default::default()
        },
    );
    let report = exec.run(&mut sources).unwrap();
    assert_eq!(canonicalize_approx(&report.rows), expected);
    assert!(
        report.exec.idle_us > 0,
        "bursty sources must leave the CPU idle at times"
    );
}

#[test]
fn forced_phase_counts_stay_bounded() {
    // Even with an absurd switch threshold, max_phases bounds the phase
    // count and stitch-up still completes.
    let d = Dataset::generate(DatasetConfig::uniform(0.001));
    let q = queries::q10a();
    let expected = static_answer(&d, &q);
    let exec = CorrectiveExec::new(
        q.clone(),
        CorrectiveConfig {
            batch_size: 64,
            cpu: CpuCostModel::Zero,
            poll_every_batches: 1,
            switch_threshold: 1000.0,
            max_phases: 5,
            warmup_batches: 1,
            initial_order: Some(vec![
                TableId::Orders.rel_id(),
                TableId::Lineitem.rel_id(),
                TableId::Customer.rel_id(),
                TableId::Nation.rel_id(),
            ]),
            ..Default::default()
        },
    );
    let mut sources = sources_for(&d, &q);
    let report = exec.run(&mut sources).unwrap();
    assert!(report.phase_count() <= 5);
    assert_eq!(canonicalize_approx(&report.rows), expected);
}
