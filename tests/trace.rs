//! Integration tests for the adaptivity trace journal (`tukwila_stats::
//! trace`): the dual-clock decision-sequence equivalence and the
//! observer-purity / bounded-overhead contracts.

use std::collections::BTreeMap;
use std::sync::Arc;

use tukwila::core::{run_static, run_static_with_driver};
use tukwila::datagen::flights;
use tukwila::exec::reference::canonicalize_approx;
use tukwila::exec::{CpuCostModel, SimDriver};
use tukwila::federation::{DeclaredRate, FederatedCatalog, FederationConfig};
use tukwila::optimizer::OptimizerContext;
use tukwila::relation::{Schema, Tuple};
use tukwila::source::{DelayModel, DelayedSource, Source};
use tukwila::stats::{
    hedge_signatures, Clock, QuerySummary, TraceEvent, TraceRecord, TraceSink, VirtualClock,
    WallClock,
};

mod common;
use common::{mem_answer, tables};

fn delayed(
    rel: u32,
    name: String,
    schema: Schema,
    rows: Vec<Tuple>,
    model: &DelayModel,
) -> Box<dyn Source> {
    Box::new(DelayedSource::new(rel, name, schema, rows, model))
}

/// A primary that never delivers: its first tuple is eons away, so the
/// stall latch fires the hedge gate exactly once per relation — under
/// *any* clock — and the gate's choice among the declared-rate standbys
/// is a pure function of the declared rates.
fn dead_model() -> DelayModel {
    DelayModel::Bandwidth {
        bytes_per_sec: 1e-3,
        initial_latency_us: u32::MAX as u64,
    }
}

/// The seed-pinned mirrors scenario of the dual-clock test: every
/// relation served by a dead primary plus two declared-rate standbys
/// (fast and slow). The decision the journal must witness, per relation:
/// one fired hedge, stalled = the dead primary, chosen = the fast
/// standby.
fn dead_primary_catalog(d: &flights::FlightsData, trace: TraceSink) -> FederatedCatalog {
    let mut catalog = FederatedCatalog::new(FederationConfig {
        // The wall-clock leg races real producer threads: an OS
        // scheduling hiccup must not read as a stall, or the journal
        // gains jitter-dependent decisions. The floor sits far above any
        // healthy standby's inter-batch gap (timeline µs), so only the
        // dead primary — silent forever — can trip the gate.
        min_stall_us: 2_000_000,
        stall_sigma: 8.0,
        trace,
        ..FederationConfig::default()
    });
    for (rel, name, schema, rows) in tables(d) {
        catalog
            .register(
                vec![0],
                delayed(
                    rel,
                    format!("{name}-dead"),
                    schema.clone(),
                    rows.clone(),
                    &dead_model(),
                ),
            )
            .unwrap();
        let standby = |suffix: &str, bps: f64, declared: f64| -> Box<dyn Source> {
            Box::new(DeclaredRate::new(
                delayed(
                    rel,
                    format!("{name}-{suffix}"),
                    schema.clone(),
                    rows.clone(),
                    &DelayModel::Bandwidth {
                        bytes_per_sec: bps,
                        initial_latency_us: 1_000,
                    },
                ),
                declared,
            ))
        };
        catalog
            .register(vec![0], standby("slow", 50_000.0, 50.0))
            .unwrap();
        catalog
            .register(vec![0], standby("fast", 200_000.0, 100_000.0))
            .unwrap();
    }
    catalog
}

/// Per-relation hedge signatures with the adapter naming stripped: the
/// sequential adapter calls a relation `fed(F-dead×3)` where the
/// threaded one says `fed-mt(F-dead×3)`, so keys are normalized to the
/// `(first-candidate×n)` core and each signature to its
/// `|stalled=…|chosen=…|fired=…` tail. Everything that remains is pure
/// decision content.
fn normalized_signatures(records: &[TraceRecord]) -> BTreeMap<String, Vec<String>> {
    hedge_signatures(records)
        .into_iter()
        .map(|(rel, sigs)| {
            let key = rel[rel.find('(').unwrap_or(0)..].to_string();
            let tails: Vec<String> = sigs
                .iter()
                .map(|s| s[s.find('|').unwrap_or(0)..].to_string())
                .collect();
            (key, tails)
        })
        .collect()
}

/// The dual-clock decision-sequence equivalence: the ordered list of
/// hedge-gate decision events per relation is identical between a
/// deterministic [`VirtualClock`] run and a threaded [`WallClock`] run
/// of the same mirrors scenario. Timing fields (timestamps, win/waste
/// magnitudes) differ with the clock; the *decisions* — which candidate
/// stalled, which standby was chosen, whether the gate fired — must not.
#[test]
fn dual_clock_hedge_decision_sequences_match() {
    let d = flights::generate(300, 1500, 1, 13);
    let q = flights::query();
    let expected = mem_answer(&d, &q);

    // Virtual: the sequential federated adapter under the engine's
    // simulated timeline.
    let virtual_trace = TraceSink::unbounded(Arc::new(VirtualClock::new()));
    let mut vsources = dead_primary_catalog(&d, virtual_trace.clone())
        .into_sources()
        .unwrap();
    let vrun = run_static(
        &q,
        &mut vsources,
        OptimizerContext::no_statistics(),
        256,
        CpuCostModel::Zero,
    )
    .unwrap();
    assert_eq!(
        canonicalize_approx(&vrun.rows),
        expected,
        "virtual run answer diverged"
    );

    // Threaded: the same candidates racing on real producer threads
    // against an accelerated wall clock shared with the driver.
    // Moderate acceleration: the 2 s (timeline) stall floor is then
    // 100 ms of real silence — far beyond scheduler jitter, so the
    // journal's decision content is reproducible on a loaded machine.
    let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(20.0));
    let threaded_trace = TraceSink::unbounded(clock.clone());
    let mut tsources = dead_primary_catalog(&d, threaded_trace.clone())
        .into_concurrent_sources(clock.clone())
        .unwrap();
    let trun = run_static_with_driver(
        &q,
        &mut tsources,
        OptimizerContext::no_statistics(),
        SimDriver::new(256, CpuCostModel::Measured).with_clock(clock),
        None,
    )
    .unwrap();
    assert_eq!(
        canonicalize_approx(&trun.rows),
        expected,
        "threaded run answer diverged"
    );

    let virt = normalized_signatures(&virtual_trace.snapshot());
    let wall = normalized_signatures(&threaded_trace.snapshot());
    assert_eq!(
        virt.len(),
        3,
        "every relation's scheduler must journal its hedge decision"
    );
    assert_eq!(
        virt, wall,
        "hedge-gate decision sequences must be clock-invariant"
    );
    for (rel, sigs) in &virt {
        assert_eq!(sigs.len(), 1, "{rel}: the stall latch fires the gate once");
        assert!(
            sigs[0].contains("stalled=") && sigs[0].contains("-dead"),
            "{rel}: the dead primary triggers the decision ({})",
            sigs[0]
        );
        assert!(
            sigs[0].contains("chosen=") && sigs[0].contains("-fast"),
            "{rel}: the gate must pick the fast declared-rate standby ({})",
            sigs[0]
        );
        assert!(
            sigs[0].ends_with("fired=true"),
            "{rel}: the hedge must fire"
        );
    }
}

/// Observer purity and bounded overhead: a disabled sink journals
/// nothing and an enabled one changes no answers; the enabled journal is
/// non-empty but bounded (one decision per gate evaluation plus O(1)
/// completion counters per relation — not per tuple).
#[test]
fn trace_overhead_is_bounded_and_answers_unchanged() {
    let d = flights::generate(300, 1500, 1, 13);
    let q = flights::query();
    let expected = mem_answer(&d, &q);

    let run = |trace: TraceSink| -> Vec<String> {
        let mut sources = dead_primary_catalog(&d, trace).into_sources().unwrap();
        let out = run_static(
            &q,
            &mut sources,
            OptimizerContext::no_statistics(),
            256,
            CpuCostModel::Zero,
        )
        .unwrap();
        canonicalize_approx(&out.rows)
    };

    let disabled = TraceSink::disabled();
    assert_eq!(run(disabled.clone()), expected, "disabled-sink answer");
    assert!(!disabled.is_enabled());
    assert!(
        disabled.snapshot().is_empty(),
        "a disabled sink stays empty"
    );

    let enabled = TraceSink::unbounded(Arc::new(VirtualClock::new()));
    assert_eq!(
        run(enabled.clone()),
        expected,
        "enabling the journal changed the answer"
    );
    let records = enabled.snapshot();
    assert!(!records.is_empty(), "the enabled journal must see the run");
    // Bounded: decisions + activations + a handful of completion
    // counters per relation. 3 relations × 3 candidates leaves room for
    // well under 100 records; tuple-proportional emission would blow far
    // past this.
    assert!(
        records.len() < 100,
        "journal must stay decision-proportional, got {} records",
        records.len()
    );
    let summary = QuerySummary::from_records(&records);
    assert_eq!(summary.hedges_fired, 3, "one fired hedge per relation");
    for rec in &records {
        if let TraceEvent::HedgeDecision { scores, fired, .. } = &rec.event {
            assert!(
                !fired || !scores.is_empty(),
                "fired decisions carry candidate-score provenance"
            );
        }
    }

    // A bounded ring keeps only the newest records but counts the drops.
    let ring = TraceSink::bounded(Arc::new(VirtualClock::new()), 4);
    assert_eq!(run(ring.clone()), expected, "bounded-sink answer");
    let kept = ring.snapshot();
    assert!(kept.len() <= 4, "ring respects its capacity");
    assert!(
        ring.dropped() > 0,
        "this scenario emits more than 4 records, so the ring must drop"
    );
}
