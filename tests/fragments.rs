//! Threaded plan fragments: correctness of racing parallel subplans over
//! `exec::queue_pair` exchanges.
//!
//! Mirrors the dual-clock discipline of the federation suites:
//!
//! 1. **Equivalence sweep** — every fragments scenario (local, delayed,
//!    and federated sources; the federated case feeds concurrent mirror
//!    producers straight into fragment queues) must produce the identical
//!    canonicalized answer whether the fragmented plan runs sequentially
//!    under the deterministic virtual clock or threaded against an
//!    accelerated wall clock.
//! 2. **Teardown across an Exchange** — a proptest drives the corrective
//!    executor with forced plan switches over fragmented phase plans:
//!    switching mid-stream across an exchange boundary must never drop or
//!    duplicate tuples, for any seed, data size, or polling cadence.

use std::sync::Arc;

use proptest::prelude::*;

use tukwila::core::{lower_fragmented, CorrectiveConfig, CorrectiveExec};
use tukwila::datagen::flights::{self, FlightsData};
use tukwila::exec::reference::canonicalize_approx;
use tukwila::exec::{CpuCostModel, FragmentOptions, SimDriver};
use tukwila::federation::{FederatedCatalog, FederationConfig};
use tukwila::optimizer::{choose_cuts, FragmentationConfig, Optimizer, OptimizerContext};
use tukwila::source::{DelayModel, DelayedSource, MemSource, Source};
use tukwila::stats::{Clock, WallClock};

mod common;
use common::{mem_answer, tables};

fn flaky_model(seed: u64) -> DelayModel {
    DelayModel::Wireless {
        bytes_per_sec: 200_000.0,
        burst_ms: 30.0,
        gap_ms: 100.0,
        seed,
    }
}

fn steady_model() -> DelayModel {
    DelayModel::Bandwidth {
        bytes_per_sec: 50_000.0,
        initial_latency_us: 1_000,
    }
}

/// Candidate sources for one fragments scenario. The `federated` scenario
/// returns mirrors behind the federation layer — sequential adapters for
/// the virtual run, per-candidate producer threads for the wall run, so
/// federation threads deliver straight into fragment queues.
fn scenario_sources(
    name: &str,
    d: &FlightsData,
    seed: u64,
    clock: Option<Arc<dyn Clock>>,
) -> Vec<Box<dyn Source>> {
    match name {
        "local" => tables(d)
            .into_iter()
            .map(|(rel, name, schema, rows)| {
                Box::new(MemSource::new(rel, name, schema, rows.clone())) as Box<dyn Source>
            })
            .collect(),
        "delayed" => tables(d)
            .into_iter()
            .map(|(rel, name, schema, rows)| {
                Box::new(DelayedSource::new(
                    rel,
                    name,
                    schema,
                    rows.clone(),
                    &flaky_model(seed ^ u64::from(rel)),
                )) as Box<dyn Source>
            })
            .collect(),
        "federated" => {
            let mut catalog = FederatedCatalog::new(FederationConfig::default());
            for (rel, name, schema, rows) in tables(d) {
                catalog
                    .register(
                        vec![0],
                        Box::new(DelayedSource::new(
                            rel,
                            format!("{name}-flaky"),
                            schema.clone(),
                            rows.clone(),
                            &flaky_model(seed ^ u64::from(rel)),
                        )),
                    )
                    .unwrap();
                catalog
                    .register(
                        vec![0],
                        Box::new(DelayedSource::new(
                            rel,
                            format!("{name}-steady"),
                            schema,
                            rows.clone(),
                            &steady_model(),
                        )),
                    )
                    .unwrap();
            }
            match clock {
                None => catalog.into_sources().unwrap(),
                Some(clock) => catalog.into_concurrent_sources(clock).unwrap(),
            }
        }
        other => panic!("unknown scenario {other}"),
    }
}

/// Every fragments scenario: the fragmented plan's sequential
/// virtual-clock answer is the plain local answer, and the threaded
/// wall-clock answer is byte-identical to it.
#[test]
fn dual_clock_equivalence_across_fragment_scenarios() {
    let d = flights::generate(200, 1200, 1, 59);
    let q = flights::query();
    let expected = mem_answer(&d, &q);

    let ctx = OptimizerContext::no_statistics();
    let plan = Optimizer::new(ctx.clone()).optimize(&q).unwrap();
    let cuts = choose_cuts(&plan, &ctx, &FragmentationConfig::aggressive());
    assert!(!cuts.is_empty(), "the flights join tree must be cuttable");

    for scenario in ["local", "delayed", "federated"] {
        // Sequential under the virtual clock: deterministic anchor.
        let frag = lower_fragmented(&plan, &cuts, None, true).unwrap();
        assert!(frag.plan.fragment_count() >= 2, "{scenario}: no exchange");
        let sources = scenario_sources(scenario, &d, 59, None);
        let (rows_v, _) = SimDriver::new(256, CpuCostModel::Zero)
            .run_fragments_sequential(frag.plan, sources)
            .unwrap();
        assert_eq!(
            canonicalize_approx(&rows_v),
            expected,
            "{scenario}: sequential fragmented answer diverged from local execution"
        );

        // Threaded against an accelerated wall clock: same cuts, real
        // producer threads per fragment (and per mirror, in the
        // federated scenario).
        let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(200.0));
        let frag = lower_fragmented(&plan, &cuts, None, true).unwrap();
        let sources = scenario_sources(scenario, &d, 59, Some(clock.clone()));
        let (rows_w, _) = SimDriver::new(256, CpuCostModel::Measured)
            .with_clock(clock)
            .run_fragments(frag.plan, sources, &FragmentOptions::default())
            .unwrap();
        assert_eq!(
            canonicalize_approx(&rows_w),
            expected,
            "{scenario}: threaded fragmented answer diverged from the virtual-clock run"
        );
    }
}

/// The corrective executor over fragmented phase plans, driven off a
/// shared wall clock with threaded federated mirrors — the full stack:
/// federation producer threads feed exchange-fragmented phase plans while
/// the monitor re-optimizes.
#[test]
fn corrective_with_fragments_over_threaded_federation() {
    let d = flights::generate(200, 1200, 1, 67);
    let q = flights::query();
    let expected = mem_answer(&d, &q);

    let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(200.0));
    let mut sources = scenario_sources("federated", &d, 67, Some(clock.clone()));
    let exec = CorrectiveExec::new(
        q,
        CorrectiveConfig {
            batch_size: 256,
            cpu: CpuCostModel::Measured,
            poll_every_batches: 3,
            warmup_batches: 2,
            min_remaining_fraction: 0.0,
            clock: Some(clock),
            fragments: Some(FragmentationConfig::aggressive()),
            ..Default::default()
        },
    );
    let report = exec.run(&mut sources).unwrap();
    assert_eq!(
        canonicalize_approx(&report.rows),
        expected,
        "fragmented corrective answer diverged over threaded federation"
    );
    assert!(
        report.phases.iter().any(|p| p.fragments > 1),
        "phase plans must actually have been fragmented"
    );
}

/// Dual-clock equivalence of the *threaded* corrective executor: with
/// forced switches and aggressive fragmentation, the sequential
/// virtual-clock corrective run and the threaded wall-clock corrective
/// run (producer fragments on real threads, quiesced at every switch,
/// over threaded federated mirrors racing into the fragment queues) must
/// produce the identical canonicalized answer — which both must equal
/// plain local execution.
#[test]
fn dual_clock_threaded_corrective_equivalence() {
    let d = flights::generate(200, 1200, 1, 91);
    let q = flights::query();
    let expected = mem_answer(&d, &q);

    let forced = |clock: Option<Arc<dyn Clock>>| CorrectiveConfig {
        batch_size: 128,
        cpu: if clock.is_some() {
            CpuCostModel::Measured
        } else {
            CpuCostModel::Zero
        },
        poll_every_batches: 3,
        warmup_batches: 2,
        switch_threshold: 100.0,
        max_phases: 4,
        min_remaining_fraction: 0.0,
        fragments: Some(FragmentationConfig::aggressive()),
        clock,
        ..Default::default()
    };

    // Sequential anchor under the deterministic virtual clock.
    let mut sources = scenario_sources("federated", &d, 91, None);
    let exec = CorrectiveExec::new(q.clone(), forced(None));
    let report_v = exec.run(&mut sources).unwrap();
    assert_eq!(
        canonicalize_approx(&report_v.rows),
        expected,
        "sequential corrective anchor diverged from local execution"
    );

    // Threaded corrective: same forced switching, wall clock, federation
    // producer threads feeding threaded fragment queues across switches.
    let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(200.0));
    let mut sources = scenario_sources("federated", &d, 91, Some(clock.clone()));
    let exec = CorrectiveExec::new(q.clone(), forced(Some(clock)));
    let report_w = exec.run(&mut sources).unwrap();
    assert_eq!(
        canonicalize_approx(&report_w.rows),
        canonicalize_approx(&report_v.rows),
        "threaded corrective answer diverged from the sequential run"
    );
    assert!(
        report_w.phases.iter().any(|p| p.fragments > 1),
        "threaded phases must actually have producer fragments"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A mid-stream corrective switch across an Exchange never drops or
    /// duplicates tuples: with forced switches and aggressive
    /// fragmentation, every phase boundary seals fragmented plans
    /// mid-pipeline, and the final answer must still equal plain local
    /// execution — for any seed, data size, and re-optimizer cadence.
    #[test]
    fn corrective_switch_across_exchange_never_drops_or_duplicates(
        seed in 0u64..500,
        n_flights in 30usize..120,
        n_travelers in 50usize..400,
        poll_every in 2u64..6,
    ) {
        let d = flights::generate(n_flights, n_travelers, 1, seed);
        let q = flights::query();
        let expected = mem_answer(&d, &q);

        let mut sources = scenario_sources("delayed", &d, seed, None);
        let exec = CorrectiveExec::new(
            q,
            CorrectiveConfig {
                batch_size: 64,
                cpu: CpuCostModel::Zero,
                poll_every_batches: poll_every,
                warmup_batches: 2,
                // Switch whenever the re-optimizer proposes any
                // structurally different plan — the adversarial case for
                // sealing across exchange boundaries.
                switch_threshold: 100.0,
                max_phases: 4,
                min_remaining_fraction: 0.0,
                fragments: Some(FragmentationConfig::aggressive()),
                ..Default::default()
            },
        );
        let report = exec.run(&mut sources).unwrap();
        prop_assert!(
            report.phases.iter().any(|p| p.fragments > 1),
            "no phase was fragmented (fragments: {:?})",
            report.phases.iter().map(|p| p.fragments).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            canonicalize_approx(&report.rows),
            expected,
            "corrective switch across an exchange changed the answer \
             (seed {}, {} phases)",
            seed,
            report.phase_count()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The quiesce protocol under fire: forced corrective switches land
    /// *while producer fragments run on real threads, mid-batch* — the
    /// wall clock randomizes where in a batch (and in the exchange
    /// queues) each quiesce lands, and the data size / polling cadence /
    /// acceleration vary per case. Whatever the interleaving, the answer
    /// must equal plain local execution: zero tuples dropped, zero
    /// duplicated, every producer joined or resumed.
    #[test]
    fn threaded_corrective_quiesce_mid_batch_never_drops_or_duplicates(
        seed in 0u64..500,
        n_flights in 30usize..120,
        n_travelers in 50usize..400,
        poll_every in 2u64..6,
        accel in prop::sample::select(vec![100.0f64, 200.0, 400.0]),
    ) {
        let d = flights::generate(n_flights, n_travelers, 1, seed);
        let q = flights::query();
        let expected = mem_answer(&d, &q);

        let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(accel));
        let mut sources = scenario_sources("delayed", &d, seed, None);
        let exec = CorrectiveExec::new(
            q,
            CorrectiveConfig {
                batch_size: 64,
                cpu: CpuCostModel::Measured,
                poll_every_batches: poll_every,
                warmup_batches: 2,
                // Switch whenever the re-optimizer proposes any
                // structurally different plan: maximal quiesce churn.
                switch_threshold: 100.0,
                max_phases: 4,
                min_remaining_fraction: 0.0,
                fragments: Some(FragmentationConfig::aggressive()),
                clock: Some(clock),
                ..Default::default()
            },
        );
        let report = exec.run(&mut sources).unwrap();
        prop_assert!(
            report.phases.iter().any(|p| p.fragments > 1),
            "no phase ran threaded producer fragments (fragments: {:?})",
            report.phases.iter().map(|p| p.fragments).collect::<Vec<_>>()
        );
        prop_assert_eq!(
            canonicalize_approx(&report.rows),
            expected,
            "threaded corrective quiesce changed the answer (seed {}, {} phases)",
            seed,
            report.phase_count()
        );
    }
}
