//! Columnar execution equivalence: the vectorized filter / join / dedup /
//! aggregation / sort / stitch-up paths must be indistinguishable from the
//! row-at-a-time code on any input — randomized schemas with nulls,
//! strings, and composite keys, plus the empty-batch and
//! selection-all/none edges — and shipping columns across fragment
//! exchanges (the default) must be logically invisible under both clocks.

use std::sync::Arc;

use proptest::prelude::*;

use tukwila::exec::filter::FilterOp;
use tukwila::exec::join::batch::{hash_join_columnar, hash_join_slices, BatchJoinStats};
use tukwila::exec::op::IncOp;
use tukwila::exec::project::ProjectOp;
use tukwila::exec::reference::{canonicalize, RefQuery, RefRelation};
use tukwila::exec::{CpuCostModel, FragmentOptions, SimDriver};
use tukwila::federation::KeyDedup;
use tukwila::optimizer::{choose_cuts, FragmentationConfig, Optimizer, OptimizerContext};
use tukwila::relation::column::eval_predicate;
use tukwila::relation::{
    Bitmap, CmpOp, ColumnarBatch, DataType, Expr, Field, Schema, Tuple, Value,
};
use tukwila::stats::{Clock, WallClock};

mod common;
use common::{mem_answer, tables};

/// Decode one randomized cell: 0 = Null, then ints, floats, and a small
/// string vocabulary so dictionary columns see repeats *and* batches
/// degrade to `Mixed` columns when types collide.
fn value(code: u8, x: i64) -> Value {
    match code {
        0 => Value::Null,
        1..=4 => Value::Int(x),
        5..=6 => Value::Float(x as f64 / 4.0),
        _ => Value::str(["ada", "grace", "edsger", "barbara"][(x.rem_euclid(4)) as usize]),
    }
}

/// A column plan: every row uses the same code (typed column) or a
/// per-row code (a `Mixed` column once codes disagree).
fn column_values(uniform: Option<u8>, per_row: &[(u8, i64)]) -> Vec<Value> {
    per_row
        .iter()
        .map(|&(c, x)| value(uniform.unwrap_or(c), x))
        .collect()
}

fn tuples_of(cols: &[Vec<Value>]) -> Vec<Tuple> {
    let rows = cols.first().map_or(0, Vec::len);
    (0..rows)
        .map(|r| Tuple::new(cols.iter().map(|c| c[r].clone()).collect()))
        .collect()
}

fn int_schema(arity: usize) -> Schema {
    Schema::new(
        (0..arity)
            .map(|i| Field::new(format!("t.c{i}"), DataType::Int))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `FilterOp::push_columns` (vectorized predicate or row fallback)
    /// equals both `FilterOp::push` and the brute-force reference
    /// executor, for every column mix, null pattern, and predicate shape.
    #[test]
    fn filter_columnar_equals_row_and_reference(
        col_plans in prop::collection::vec(
            (0u8..=9, prop::collection::vec((0u8..=8, -8i64..8), 0..40)),
            1..4,
        ),
        pred_pick in 0u8..=5,
        lit in -8i64..8,
    ) {
        // Code 9 = deliberately non-uniform column (Mixed).
        let rows = col_plans.iter().map(|(_, p)| p.len()).min().unwrap_or(0);
        let cols: Vec<Vec<Value>> = col_plans
            .iter()
            .map(|(u, p)| column_values((*u <= 8).then_some(*u), &p[..rows]))
            .collect();
        let tuples = tuples_of(&cols);
        let arity = cols.len();
        let schema = int_schema(arity);

        let pred = match pred_pick {
            0 => Expr::cmp(Expr::Col(0), CmpOp::Lt, Expr::Lit(Value::Int(lit))),
            1 => Expr::cmp(Expr::Col(0), CmpOp::Eq, Expr::Lit(Value::str("grace"))),
            2 => Expr::cmp(Expr::Col(0), CmpOp::Ge, Expr::Col(arity - 1)),
            3 => Expr::And(vec![
                Expr::cmp(Expr::Col(0), CmpOp::Ne, Expr::Lit(Value::Int(lit))),
                Expr::cmp(Expr::Col(arity - 1), CmpOp::Le, Expr::Lit(Value::Float(1.0))),
            ]),
            4 => Expr::Not(Box::new(Expr::cmp(
                Expr::Col(0), CmpOp::Gt, Expr::Lit(Value::Int(lit)),
            ))),
            // Arithmetic never vectorizes: exercises the row fallback.
            _ => Expr::cmp(
                Expr::Arith(
                    Box::new(Expr::Col(0)),
                    tukwila::relation::expr::ArithOp::Add,
                    Box::new(Expr::Lit(Value::Int(1))),
                ),
                CmpOp::Gt,
                Expr::Lit(Value::Int(lit)),
            ),
        };

        let run_rows = {
            let mut op = FilterOp::new(pred.clone(), schema.clone());
            let mut out = Vec::new();
            op.push(0, &tuples, &mut out).map(|_| out)
        };
        let run_cols = {
            let mut op = FilterOp::new(pred.clone(), schema.clone());
            let mut out = Vec::new();
            op.push_columns(0, &ColumnarBatch::from_tuples(&tuples), &mut out)
                .map(|_| out)
        };
        match (run_rows, run_cols) {
            (Ok(r), Ok(c)) => {
                prop_assert_eq!(canonicalize(&r), canonicalize(&c));
                // Order must match too, not just the multiset.
                prop_assert_eq!(r.len(), c.len());
                for (a, b) in r.iter().zip(&c) {
                    prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
                }
                let mut q = RefQuery::new(vec![RefRelation {
                    schema,
                    tuples: tuples.clone(),
                }]);
                q.filters.push((0, pred));
                prop_assert_eq!(canonicalize(&q.run().unwrap()), canonicalize(&r));
            }
            // Type errors (e.g. a bare-Null as_bool) must agree between
            // the paths; the reference oracle errors identically.
            (Err(_), Err(_)) => {}
            (r, c) => prop_assert!(
                false,
                "row/columnar disagree on error-ness: {:?} vs {:?}",
                r.map(|v| v.len()),
                c.map(|v| v.len())
            ),
        }
    }

    /// Columnar hash join equals the row-path join tuple-for-tuple (same
    /// order, same stats) and the reference executor as a multiset, on
    /// keys with nulls, strings, and duplicates.
    #[test]
    fn join_columnar_equals_row_and_reference(
        lrows in prop::collection::vec(((0u8..=8), -4i64..4, -8i64..8), 0..30),
        rrows in prop::collection::vec(((0u8..=8), -4i64..4, -8i64..8), 0..30),
    ) {
        let mk = |rows: &[(u8, i64, i64)]| -> Vec<Tuple> {
            rows.iter()
                .map(|&(c, k, v)| Tuple::new(vec![value(c, k), Value::Int(v)]))
                .collect()
        };
        let left = mk(&lrows);
        let right = mk(&rrows);

        let mut row_out = Vec::new();
        let mut row_stats = BatchJoinStats::default();
        hash_join_slices(&left, &right, 0, 0, &mut row_out, &mut row_stats).unwrap();

        let mut col_stats = BatchJoinStats::default();
        let col_out = hash_join_columnar(
            &ColumnarBatch::from_tuples(&left),
            &ColumnarBatch::from_tuples(&right),
            0,
            0,
            &mut col_stats,
        )
        .unwrap()
        .to_tuples();

        prop_assert_eq!(row_out.len(), col_out.len());
        for (a, b) in row_out.iter().zip(&col_out) {
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        prop_assert_eq!(row_stats.output, col_stats.output);

        let mut q = RefQuery::new(vec![
            RefRelation { schema: int_schema(2), tuples: left },
            RefRelation { schema: int_schema(2), tuples: right },
        ]);
        q.joins.push(tukwila::exec::reference::RefJoin {
            left_rel: 0,
            left_col: 0,
            right_rel: 1,
            right_col: 0,
        });
        prop_assert_eq!(canonicalize(&q.run().unwrap()), canonicalize(&row_out));
    }

    /// The federated seen-set gives identical fresh-tuple verdicts
    /// whether batches arrive as rows, as columns, or interleaved — on
    /// composite (possibly null / string) keys, for any batch split.
    #[test]
    fn dedup_row_columnar_and_mixed_agree(
        pool in prop::collection::vec(((0u8..=8), -6i64..6, -8i64..8), 1..60),
        splits in prop::collection::vec(1usize..10, 1..6),
    ) {
        // Each candidate delivers a distinct-key slice of the shared pool
        // (a candidate redelivering its own key is a declared-key
        // violation and panics by design, so slices never repeat a key
        // within one candidate).
        let mut seen = std::collections::HashSet::new();
        let pool: Vec<Tuple> = pool
            .iter()
            .map(|&(c, k, v)| Tuple::new(vec![value(c, k), Value::Int(v), Value::Int(1)]))
            .filter(|t| seen.insert(format!("{:?}|{:?}", t.get(0), t.get(1))))
            .collect();
        let key_cols = vec![0usize, 1];

        // Candidate i delivers the pool rotated by i, chopped into
        // `splits[i]` batches — full overlap across candidates.
        let feeds: Vec<(usize, Vec<Vec<Tuple>>)> = splits
            .iter()
            .enumerate()
            .map(|(i, &nb)| {
                let mut rot = pool.clone();
                rot.rotate_left(i % pool.len().max(1));
                let chunk = rot.len().div_ceil(nb).max(1);
                (i, rot.chunks(chunk).map(|c| c.to_vec()).collect())
            })
            .collect();

        let mut d_row = KeyDedup::new(7, key_cols.clone());
        let mut d_col = KeyDedup::new(7, key_cols.clone());
        let mut d_mix = KeyDedup::new(7, key_cols.clone());
        let mut buf = Vec::new();
        let mut mix_flip = false;
        for (cand, batches) in &feeds {
            for b in batches {
                let name = format!("cand-{cand}");
                let fresh_r = d_row.filter(*cand, &name, b.clone());
                let cb = ColumnarBatch::from_tuples(b);
                let fresh_c = d_col.filter_columnar(*cand, &name, &cb, &mut buf);
                let fresh_m = if mix_flip {
                    d_mix.filter(*cand, &name, b.clone())
                } else {
                    d_mix.filter_columnar(*cand, &name, &cb, &mut buf)
                };
                mix_flip = !mix_flip;
                prop_assert_eq!(canonicalize(&fresh_r), canonicalize(&fresh_c));
                prop_assert_eq!(canonicalize(&fresh_r), canonicalize(&fresh_m));
            }
        }
        prop_assert_eq!(d_row.seen_keys(), d_col.seen_keys());
        prop_assert_eq!(d_row.seen_keys(), d_mix.seen_keys());
    }

    /// `HashAggOp::push_columns` equals `push` and the reference executor
    /// for every aggregate mix over nullable int/float/string group keys,
    /// including accumulation across batch boundaries.
    #[test]
    fn agg_columnar_equals_row_and_reference(
        rows in prop::collection::vec(((0u8..=8), -4i64..4, -8i64..8), 0..50),
        funcs in prop::collection::vec(0u8..=4, 1..4),
    ) {
        use tukwila::exec::agg::{AggSpec, GroupSpec, HashAggOp};
        use tukwila::exec::reference::{canonicalize_approx, RefCol};
        use tukwila::relation::agg::AggFunc;

        let tuples: Vec<Tuple> = rows
            .iter()
            .map(|&(c, k, v)| Tuple::new(vec![value(c, k), Value::Int(v)]))
            .collect();
        let schema = int_schema(2);
        let aggs: Vec<AggSpec> = funcs
            .iter()
            .map(|&f| AggSpec {
                func: match f {
                    0 => AggFunc::Count,
                    1 => AggFunc::Sum,
                    2 => AggFunc::Avg,
                    3 => AggFunc::Min,
                    _ => AggFunc::Max,
                },
                col: 1,
            })
            .collect();
        let spec = || GroupSpec::new(vec![0], aggs.clone());

        let mut op = HashAggOp::new(spec(), &schema);
        let mut row_out = Vec::new();
        op.push(0, &tuples, &mut row_out).unwrap();
        op.finish(&mut row_out).unwrap();

        let mut op = HashAggOp::new(spec(), &schema);
        let mut col_out = Vec::new();
        let mid = tuples.len() / 2;
        op.push_columns(0, &ColumnarBatch::from_tuples(&tuples[..mid]), &mut col_out).unwrap();
        op.push_columns(0, &ColumnarBatch::from_tuples(&tuples[mid..]), &mut col_out).unwrap();
        op.finish(&mut col_out).unwrap();

        prop_assert_eq!(canonicalize_approx(&row_out), canonicalize_approx(&col_out));

        let mut q = RefQuery::new(vec![RefRelation { schema, tuples: tuples.clone() }]);
        q.group_cols.push(RefCol { rel: 0, col: 0 });
        for a in &aggs {
            q.aggs.push((a.func, RefCol { rel: 0, col: a.col }));
        }
        prop_assert_eq!(
            canonicalize_approx(&q.run().unwrap()),
            canonicalize_approx(&row_out)
        );
    }

    /// `sort_permutation` + `gather` equals a stable row sort under
    /// `cmp_tuples` — same output order, including nulls, dictionary
    /// strings, mixed-type columns, descending keys, and tie rows.
    #[test]
    fn sort_columnar_equals_row_sort(
        rows in prop::collection::vec(((0u8..=8), -4i64..4, -3i64..3), 0..50),
        descending in any::<bool>(),
        second_key in any::<bool>(),
    ) {
        use tukwila::relation::column::sort_permutation;
        use tukwila::relation::{cmp_tuples, SortKey};

        // Narrow key ranges force ties so stability is actually tested.
        let tuples: Vec<Tuple> = rows
            .iter()
            .enumerate()
            .map(|(i, &(c, k, k2))| {
                Tuple::new(vec![value(c, k), Value::Int(k2), Value::Int(i as i64)])
            })
            .collect();
        let mut keys = vec![SortKey { col: 0, descending }];
        if second_key {
            keys.push(SortKey::asc(1));
        }

        let mut row_sorted = tuples.clone();
        row_sorted.sort_by(|a, b| cmp_tuples(&keys, a, b));

        let batch = ColumnarBatch::from_tuples(&tuples);
        let perm = sort_permutation(&batch, &keys);
        let col_sorted = batch.gather(&perm).to_tuples();

        prop_assert_eq!(row_sorted.len(), col_sorted.len());
        for (a, b) in row_sorted.iter().zip(&col_sorted) {
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    /// The stitch-up columnar table probe equals the row-at-a-time probe
    /// tuple-for-tuple (same order, same stats), with residual equality
    /// predicates spanning both sides of the virtual joined layout.
    #[test]
    fn stitchup_probe_columnar_equals_row(
        table_rows in prop::collection::vec(((0u8..=8), -4i64..4, -2i64..2), 0..40),
        probe_rows in prop::collection::vec(((0u8..=8), -4i64..4, -2i64..2), 0..40),
        with_residual in any::<bool>(),
    ) {
        use tukwila::exec::join::batch::probe_table_columnar;
        use tukwila::storage::TupleHashTable;

        let mk = |rows: &[(u8, i64, i64)]| -> Vec<Tuple> {
            rows.iter()
                .map(|&(c, k, v)| Tuple::new(vec![value(c, k), Value::Int(v)]))
                .collect()
        };
        let table_tuples = mk(&table_rows);
        let probes = mk(&probe_rows);
        let mut table = TupleHashTable::new(0);
        for t in &table_tuples {
            table.insert(t.clone()).unwrap();
        }
        // Residual over the joined layout: probe col 1 vs table col 1.
        let residual: &[(usize, usize)] = if with_residual { &[(1, 3)] } else { &[] };

        let mut row_out = Vec::new();
        let mut row_stats = BatchJoinStats::default();
        for p in &probes {
            row_stats.probes += 1;
            for m in table.probe(&p.key(0)) {
                let joined = p.concat(m);
                if residual
                    .iter()
                    .all(|&(a, b)| joined.get(a).eq_total(joined.get(b)))
                {
                    row_out.push(joined);
                    row_stats.output += 1;
                }
            }
        }

        let mut col_out = Vec::new();
        let mut col_stats = BatchJoinStats::default();
        probe_table_columnar(
            &ColumnarBatch::from_tuples(&probes),
            0,
            &table,
            residual,
            &mut col_stats,
            &mut col_out,
        )
        .unwrap();

        prop_assert_eq!(row_out.len(), col_out.len());
        for (a, b) in row_out.iter().zip(&col_out) {
            prop_assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
        prop_assert_eq!(row_stats, col_stats);
    }
}

/// Selection edges: all-selected, none-selected, and empty batches flow
/// through the vectorized filter and projection without touching the
/// row fallback's semantics.
#[test]
fn selection_all_none_and_empty_edges() {
    let schema = int_schema(2);
    let tuples: Vec<Tuple> = (0..10)
        .map(|i| Tuple::new(vec![Value::Int(i), Value::Int(i * 2)]))
        .collect();
    let pred_all = Expr::cmp(Expr::Col(0), CmpOp::Ge, Expr::Lit(Value::Int(0)));
    let pred_none = Expr::cmp(Expr::Col(0), CmpOp::Lt, Expr::Lit(Value::Int(0)));

    let mut batch = ColumnarBatch::from_tuples(&tuples);
    assert_eq!(eval_predicate(&pred_all, &batch).unwrap().count_ones(), 10);
    assert_eq!(eval_predicate(&pred_none, &batch).unwrap().count_ones(), 0);

    // Pre-select even rows, then filter on top: only even rows may pass.
    let mut even = Bitmap::zeros(10);
    for i in (0..10).step_by(2) {
        even.set(i, true);
    }
    batch.select(even);
    let mut op = FilterOp::new(pred_all, schema.clone());
    let mut out = Vec::new();
    op.push_columns(0, &batch, &mut out).unwrap();
    assert_eq!(out.len(), 5);
    assert!(out.iter().all(|t| t.get(0).as_int().unwrap() % 2 == 0));

    // Projection over a selected batch keeps only selected rows, in order.
    let mut proj = ProjectOp::new(vec![Expr::Col(1), Expr::Col(0)], schema.clone());
    let mut pout = Vec::new();
    proj.push_columns(0, &batch, &mut pout).unwrap();
    assert_eq!(pout.len(), 5);
    assert_eq!(pout[0].get(0).as_int().unwrap(), 0);
    assert_eq!(pout[4].get(1).as_int().unwrap(), 8);

    // Empty batch, zero-arity edge.
    let empty = ColumnarBatch::from_tuples(&[]);
    let mut op = FilterOp::new(Expr::Lit(Value::Bool(true)), schema);
    let mut out = Vec::new();
    op.push_columns(0, &empty, &mut out).unwrap();
    assert!(out.is_empty());
}

/// Dual-clock equivalence with columns shipped across every fragment
/// exchange: the threaded wall-clock run with `columnar_exchange: true`
/// must produce the identical canonicalized answer as the sequential
/// virtual-clock anchor and plain local execution.
#[test]
fn dual_clock_equivalence_with_columnar_exchanges() {
    use tukwila::core::lower_fragmented;
    use tukwila::datagen::flights;
    use tukwila::exec::reference::canonicalize_approx;
    use tukwila::source::{MemSource, Source};

    let d = flights::generate(200, 1200, 1, 59);
    let q = flights::query();
    let expected = mem_answer(&d, &q);

    let ctx = OptimizerContext::no_statistics();
    let plan = Optimizer::new(ctx.clone()).optimize(&q).unwrap();
    let cuts = choose_cuts(&plan, &ctx, &FragmentationConfig::aggressive());
    assert!(!cuts.is_empty(), "the flights join tree must be cuttable");

    let mk_sources = || -> Vec<Box<dyn Source>> {
        tables(&d)
            .into_iter()
            .map(|(rel, name, schema, rows)| {
                Box::new(MemSource::new(rel, name, schema, rows.clone())) as Box<dyn Source>
            })
            .collect()
    };

    // Sequential virtual-clock anchor (row exchanges).
    let frag = lower_fragmented(&plan, &cuts, None, true).unwrap();
    assert!(frag.plan.fragment_count() >= 2, "no exchange in the plan");
    let (rows_v, _) = SimDriver::new(256, CpuCostModel::Zero)
        .run_fragments_sequential(frag.plan, mk_sources())
        .unwrap();
    assert_eq!(canonicalize_approx(&rows_v), expected);

    // Threaded wall-clock run shipping columns across every exchange.
    let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(200.0));
    let frag = lower_fragmented(&plan, &cuts, None, true).unwrap();
    let opts = FragmentOptions {
        columnar_exchange: true,
        ..Default::default()
    };
    let (rows_w, _) = SimDriver::new(256, CpuCostModel::Measured)
        .with_clock(clock)
        .run_fragments(frag.plan, mk_sources(), &opts)
        .unwrap();
    assert_eq!(
        canonicalize_approx(&rows_w),
        expected,
        "columnar exchanges changed the fragmented answer"
    );
}

/// The full corrective executor with fragmentation on and *default*
/// fragment options — columns on the wire is the default now — must
/// answer identically under the sequential virtual-clock driver and the
/// threaded wall-clock driver, and both runs must journal phase spans
/// into the adaptivity trace.
#[test]
fn corrective_dual_clock_with_default_columnar_exchange() {
    use tukwila::core::{CorrectiveConfig, CorrectiveExec};
    use tukwila::datagen::flights;
    use tukwila::exec::reference::canonicalize_approx;
    use tukwila::optimizer::FragmentationConfig;
    use tukwila::source::MemSource;
    use tukwila::stats::{TraceEvent, TraceSink, VirtualClock};

    assert!(
        FragmentOptions::default().columnar_exchange,
        "columns on the wire must be the exchange default"
    );

    let d = flights::generate(200, 1200, 1, 59);
    let q = flights::query();
    let expected = mem_answer(&d, &q);

    let mk_sources = || -> Vec<Box<dyn tukwila::source::Source>> {
        tables(&d)
            .into_iter()
            .map(|(rel, name, schema, rows)| {
                Box::new(MemSource::new(rel, name, schema, rows.clone()))
                    as Box<dyn tukwila::source::Source>
            })
            .collect()
    };
    let run = |clock: Option<Arc<dyn Clock>>, trace: TraceSink| {
        let exec = CorrectiveExec::new(
            q.clone(),
            CorrectiveConfig {
                batch_size: 256,
                cpu: CpuCostModel::Measured,
                poll_every_batches: 3,
                warmup_batches: 2,
                min_remaining_fraction: 0.0,
                clock,
                fragments: Some(FragmentationConfig::aggressive()),
                trace,
                ..Default::default()
            },
        );
        let mut s = mk_sources();
        exec.run(&mut s).unwrap()
    };

    // Sequential virtual-clock anchor.
    let vtrace = TraceSink::unbounded(Arc::new(VirtualClock::new()));
    let report_v = run(None, vtrace.clone());
    assert_eq!(canonicalize_approx(&report_v.rows), expected);

    // Threaded wall-clock run: producers ship columns over every exchange
    // by default, quiesce drains re-materialize rows losslessly.
    let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(200.0));
    let wtrace = TraceSink::unbounded(clock.clone());
    let report_w = run(Some(clock), wtrace.clone());
    assert_eq!(
        canonicalize_approx(&report_w.rows),
        expected,
        "threaded corrective with default columnar exchanges diverged"
    );

    // Both drivers journaled the run under identical span vocabulary.
    for (name, sink) in [("virtual", &vtrace), ("threaded", &wtrace)] {
        let spans: Vec<String> = sink
            .snapshot()
            .iter()
            .filter_map(|r| match &r.event {
                TraceEvent::SpanBegin { kind, .. } => Some(format!("{kind:?}")),
                _ => None,
            })
            .collect();
        assert!(
            spans.iter().any(|k| k.contains("Phase")),
            "{name}: corrective run journaled no phase spans: {spans:?}"
        );
    }
}
