//! Integration tests for the unified delivery cost model: the uniform
//! degenerate case must reproduce the legacy `delivery_bound_us` rule
//! bit-for-bit, cost-aware hedge activation must preserve dual-clock
//! answer equivalence, and declared partial-replica coverage must be
//! verified at registration and exploited by the scheduler.

use std::sync::Arc;

use proptest::prelude::*;

use tukwila::core::run_static;
use tukwila::datagen::flights::{self};
use tukwila::exec::reference::canonicalize_approx;
use tukwila::exec::{CpuCostModel, SimDriver};
use tukwila::federation::{FederatedCatalog, FederatedSource, FederationConfig, PartialReplica};
use tukwila::optimizer::{Optimizer, OptimizerContext, PhysKind, PhysNode};
use tukwila::relation::{Schema, Tuple};
use tukwila::source::{DelayModel, DelayedSource, Source};
use tukwila::stats::{ArrivalSchedule, Clock, SelectivityCatalog, WallClock};
use tukwila_core::run_static_with_driver;

mod common;
use common::{mem_answer, tables};

/// The legacy rule `OptimizerContext::delivery_bound_us` implemented: a
/// uniform delivery term of `card / rate` seconds, as every scan cost
/// used to carry before the shared model existed.
fn legacy_bound_us(rate: f64, card: f64) -> f64 {
    card.max(0.0) / rate * 1e6
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A single-uniform-segment `ArrivalSchedule` answers the k-th
    /// arrival question *bit-identically* to the legacy uniform rule, for
    /// any positive rate and any cardinality.
    #[test]
    fn uniform_schedule_degenerates_to_legacy_bound(
        rate in 1e-9f64..1e9,
        card in -1e12f64..1e12,
    ) {
        let schedule = ArrivalSchedule::uniform(rate);
        prop_assert_eq!(
            schedule.arrival_us(card).to_bits(),
            legacy_bound_us(rate, card).to_bits(),
            "uniform schedule must reproduce the legacy bound bitwise"
        );
    }

    /// Scan costing through the shared `DeliveryModel` with uniform
    /// schedules is byte-identical to the old `scan_tuple · raw +
    /// delivery_per_us · delivery_bound_us(rel, raw)` formula.
    #[test]
    fn scan_costing_degenerates_byte_identically(
        rate in 1e-3f64..1e9,
        card in 1u64..2_000_000,
    ) {
        let q = flights::query();
        let catalog = Arc::new(SelectivityCatalog::new());
        for (i, rel) in [flights::FLIGHTS, flights::TRAVELERS, flights::CHILDREN]
            .into_iter()
            .enumerate()
        {
            // Every relation gets a uniform schedule (different rates).
            catalog.observe_source_rate(rel, rate * (i + 1) as f64);
        }
        let mut ctx = OptimizerContext {
            catalog: Some(catalog),
            ..OptimizerContext::no_statistics()
        };
        ctx.default_card = card;
        let plan = Optimizer::new(ctx.clone()).optimize(&q).unwrap();

        fn check_scans(node: &PhysNode, ctx: &OptimizerContext) {
            match &node.kind {
                PhysKind::Scan { rel, .. } => {
                    let raw = ctx.base_card(*rel);
                    let rate = ctx.observed_rate(*rel).unwrap();
                    let legacy = ctx.cost_model.scan_tuple * raw
                        + ctx.cost_model.delivery_per_us * legacy_bound_us(rate, raw);
                    assert_eq!(
                        node.est_cost.to_bits(),
                        legacy.to_bits(),
                        "scan of {rel}: schedule-aware cost {} != legacy {legacy}",
                        node.est_cost
                    );
                }
                PhysKind::Join { left, right, .. } => {
                    check_scans(left, ctx);
                    check_scans(right, ctx);
                }
                PhysKind::PreAgg { child, .. } => check_scans(child, ctx),
            }
        }
        check_scans(&plan.root, &ctx);
    }
}

/// A bursty (multi-segment) schedule strictly exceeds the uniform bound
/// for early tuples and converges to it in the tail — the lead-in is a
/// planning allowance, not a rate change.
#[test]
fn bursty_schedule_bounds_uniform_from_above() {
    let uniform = ArrivalSchedule::uniform(1_000.0);
    let bursty = ArrivalSchedule::bursty(50_000.0, 1_000.0);
    for k in [1.0, 10.0, 1_000.0, 1e6] {
        assert_eq!(
            bursty.arrival_us(k),
            uniform.arrival_us(k) + 50_000.0,
            "lead-in shifts every arrival by exactly the allowance"
        );
    }
}

fn flaky_model(seed: u64) -> DelayModel {
    DelayModel::Wireless {
        bytes_per_sec: 200_000.0,
        burst_ms: 30.0,
        gap_ms: 100.0,
        seed,
    }
}

fn steady_model() -> DelayModel {
    DelayModel::Bandwidth {
        bytes_per_sec: 50_000.0,
        initial_latency_us: 1_000,
    }
}

/// A sluggish last-resort mirror: the candidate the cost gate should
/// decline to race while the steady mirror is healthy.
fn remote_model() -> DelayModel {
    DelayModel::Bandwidth {
        bytes_per_sec: 5_000.0,
        initial_latency_us: 50_000,
    }
}

fn gate_catalog(d: &flights::FlightsData, seed: u64) -> FederatedCatalog {
    let mut catalog = FederatedCatalog::new(FederationConfig::default());
    for (rel, name, schema, rows) in tables(d) {
        for (suffix, model) in [
            ("flaky", flaky_model(seed ^ u64::from(rel))),
            ("steady", steady_model()),
            ("remote", remote_model()),
        ] {
            catalog
                .register(
                    vec![0],
                    Box::new(DelayedSource::new(
                        rel,
                        format!("{name}-{suffix}"),
                        schema.clone(),
                        rows.clone(),
                        &model,
                    )) as Box<dyn Source>,
                )
                .unwrap();
        }
    }
    catalog
}

/// Cost-aware hedge activation under both clocks: the virtual run is
/// deterministic, declines at least one race the stall-only rule would
/// have taken, and the threaded run — whose gate sees real arrival rates
/// and real `blocked_sends` — produces the byte-identical deduped answer.
#[test]
fn cost_gated_hedging_dual_clock_equivalence() {
    let d = flights::generate(200, 1200, 1, 97);
    let q = flights::query();
    let expected = mem_answer(&d, &q);

    // Virtual: deterministic sequential run.
    let mut virt = gate_catalog(&d, 97).into_sources().unwrap();
    let virt_run = run_static(
        &q,
        &mut virt,
        OptimizerContext::no_statistics(),
        256,
        CpuCostModel::Zero,
    )
    .unwrap();
    let virt_answer = canonicalize_approx(&virt_run.rows);
    assert_eq!(virt_answer, expected, "virtual gated run diverged");
    let (mut declined, mut failovers) = (0u64, 0u64);
    for s in &virt {
        if let Some(fed) = s.as_any().and_then(|a| a.downcast_ref::<FederatedSource>()) {
            declined += fed.report().declined_hedges;
            failovers += fed.report().failovers;
        }
    }
    assert!(failovers >= 1, "flaky outages must still hedge onto steady");
    assert!(
        declined >= 1,
        "the gate must decline at least one remote race the stall-only rule would take"
    );

    // Virtual determinism: gate decisions are pure functions of the
    // timeline, so an identical re-run is byte-identical.
    let mut virt2 = gate_catalog(&d, 97).into_sources().unwrap();
    let virt_run2 = run_static(
        &q,
        &mut virt2,
        OptimizerContext::no_statistics(),
        256,
        CpuCostModel::Zero,
    )
    .unwrap();
    assert_eq!(
        canonicalize_approx(&virt_run2.rows),
        virt_answer,
        "gated virtual runs must be deterministic"
    );

    // Threaded: the same candidates race on real threads; the gate feeds
    // on real arrival rates and blocked_sends, yet the deduped answer is
    // identical whatever it decides.
    let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(200.0));
    let mut threaded = gate_catalog(&d, 97)
        .into_concurrent_sources(clock.clone())
        .unwrap();
    let wall_run = run_static_with_driver(
        &q,
        &mut threaded,
        OptimizerContext::no_statistics(),
        SimDriver::new(256, CpuCostModel::Measured).with_clock(clock),
        None,
    )
    .unwrap();
    assert_eq!(
        canonicalize_approx(&wall_run.rows),
        virt_answer,
        "threaded gated answer diverged from the virtual-clock answer"
    );
}

/// The deprecated stall-only mode (`hedge_costs: None`) still races
/// unconditionally — and produces the same answer, just with more
/// activations.
#[test]
fn legacy_stall_only_mode_races_everything() {
    let d = flights::generate(150, 900, 1, 53);
    let q = flights::query();
    let expected = mem_answer(&d, &q);

    let run = |config: FederationConfig| {
        let mut catalog = FederatedCatalog::new(config);
        for (rel, name, schema, rows) in tables(&d) {
            for (suffix, model) in [
                ("flaky", flaky_model(53 ^ u64::from(rel))),
                ("steady", steady_model()),
                ("remote", remote_model()),
            ] {
                catalog
                    .register(
                        vec![0],
                        Box::new(DelayedSource::new(
                            rel,
                            format!("{name}-{suffix}"),
                            schema.clone(),
                            rows.clone(),
                            &model,
                        )) as Box<dyn Source>,
                    )
                    .unwrap();
            }
        }
        let mut sources = catalog.into_sources().unwrap();
        let out = run_static(
            &q,
            &mut sources,
            OptimizerContext::no_statistics(),
            256,
            CpuCostModel::Zero,
        )
        .unwrap();
        let (mut declined, mut activations) = (0u64, 0usize);
        for s in &sources {
            if let Some(fed) = s.as_any().and_then(|a| a.downcast_ref::<FederatedSource>()) {
                let r = fed.report();
                declined += r.declined_hedges;
                activations += r.candidates.iter().filter(|c| c.activated).count();
            }
        }
        (canonicalize_approx(&out.rows), declined, activations)
    };

    let gated = run(FederationConfig::default());
    let legacy = run(FederationConfig {
        hedge_costs: None,
        ..Default::default()
    });
    assert_eq!(gated.0, expected);
    assert_eq!(legacy.0, expected, "legacy mode must not change the answer");
    assert_eq!(legacy.1, 0, "stall-only mode never declines");
    assert!(
        legacy.2 >= gated.2,
        "the gate can only reduce activations ({} legacy vs {} gated)",
        legacy.2,
        gated.2
    );
}

fn kv_schema() -> Schema {
    use tukwila::relation::{DataType, Field};
    Schema::new(vec![
        Field::new("t.k", DataType::Int),
        Field::new("t.v", DataType::Int),
    ])
}

fn range_rows(lo: i64, hi: i64) -> Vec<Tuple> {
    use tukwila::relation::Value;
    (lo..=hi)
        .map(|k| Tuple::new(vec![Value::Int(k), Value::Int(k * 10)]))
        .collect()
}

fn range_replica(name: &str, lo: i64, hi: i64) -> Box<dyn Source> {
    Box::new(PartialReplica::with_range(
        Box::new(DelayedSource::new(
            1,
            name,
            kv_schema(),
            range_rows(lo, hi),
            &DelayModel::Bandwidth {
                bytes_per_sec: 1e6,
                initial_latency_us: 100,
            },
        )),
        lo,
        hi,
    ))
}

/// Registration-time coverage verification: gap-free declared ranges are
/// accepted, a gap is rejected, and mixing declared with undeclared
/// partial replicas is rejected.
#[test]
fn catalog_verifies_declared_coverage() {
    // Jointly covering (with overlap): OK.
    let mut ok = FederatedCatalog::new(FederationConfig::default());
    ok.register(vec![0], range_replica("head", 0, 60)).unwrap();
    ok.register(vec![0], range_replica("tail", 40, 100))
        .unwrap();
    assert!(ok.into_sources().is_ok());

    // A gap between 40 and 59: rejected at registration.
    let mut gap = FederatedCatalog::new(FederationConfig::default());
    gap.register(vec![0], range_replica("head", 0, 40)).unwrap();
    let err = gap.register(vec![0], range_replica("tail", 60, 100));
    assert!(err.is_err(), "gap in declared coverage must be rejected");

    // Declared + undeclared partials: rejected (unverifiable promise).
    let mut mixed = FederatedCatalog::new(FederationConfig::default());
    mixed
        .register(vec![0], range_replica("head", 0, 60))
        .unwrap();
    let undeclared = Box::new(PartialReplica::new(Box::new(DelayedSource::new(
        1,
        "tail-undeclared",
        kv_schema(),
        range_rows(40, 100),
        &steady_model(),
    ))));
    assert!(mixed.register(vec![0], undeclared).is_err());
}

/// The scheduler skips standbys whose declared range was already fully
/// delivered by drained replicas: the covered standby is never activated
/// and the union is still complete.
#[test]
fn scheduler_skips_standbys_covered_by_drained_replicas() {
    let mut catalog = FederatedCatalog::new(FederationConfig::default());
    catalog
        .register(vec![0], range_replica("head", 0, 60))
        .unwrap();
    catalog
        .register(vec![0], range_replica("tail", 50, 100))
        .unwrap();
    // Fully inside head ∪ tail: holds nothing new once both drain.
    catalog
        .register(vec![0], range_replica("redundant", 20, 80))
        .unwrap();
    let mut sources = catalog.into_sources().unwrap();
    let fed = sources[0]
        .as_any()
        .and_then(|a| a.downcast_ref::<FederatedSource>());
    assert!(fed.is_some());

    // Drain like the driver.
    let mut clock = 0u64;
    let mut keys: Vec<i64> = Vec::new();
    loop {
        match sources[0].poll(clock, 64) {
            tukwila::source::Poll::Ready(batch) => {
                keys.extend(batch.iter().map(|t| t.get(0).as_int().unwrap()));
            }
            tukwila::source::Poll::Pending { next_ready_us } => clock = next_ready_us,
            tukwila::source::Poll::Eof => break,
        }
    }
    keys.sort_unstable();
    keys.dedup();
    assert_eq!(keys, (0..=100).collect::<Vec<_>>(), "union complete");
    let report = sources[0]
        .as_any()
        .and_then(|a| a.downcast_ref::<FederatedSource>())
        .unwrap()
        .report();
    assert!(
        !report.candidates[2].activated,
        "the covered standby must never be woken"
    );
    assert_eq!(report.skipped_covered, 1);
}
