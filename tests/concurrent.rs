//! Wall-clock concurrent federation: correctness of real-thread racing.
//!
//! Three layers of assurance, matching the dual-clock design:
//!
//! 1. **Queue layer** — a property test drives arbitrary interleavings of
//!    per-lane batch arrivals through `exec::queue_pair` (random lane
//!    counts, capacities, batch splits, and writer-drop/EOF edge cases)
//!    and asserts the consumer reassembles exactly the sent multiset —
//!    no loss, no duplicates, and `TryRecv::Closed` only after the final
//!    buffered batch.
//! 2. **Engine layer** — the full corrective executor runs over threaded
//!    federated mirrors on an accelerated wall clock and must agree with
//!    plain local execution (the dual-clock scenario sweep lives in
//!    `tests/federation.rs`).
//! 3. **Soak** — an `--ignored`-by-default stress run (N mirrors × M
//!    relations × 10k tuples) for CI's dedicated threaded job.

use std::sync::Arc;

use proptest::prelude::*;

use tukwila::core::{CorrectiveConfig, CorrectiveExec};
use tukwila::datagen::flights::{self, FlightsData};
use tukwila::exec::op::IncOp;
use tukwila::exec::queue::{queue_pair, TryRecv};
use tukwila::exec::reference::canonicalize_approx;
use tukwila::exec::CpuCostModel;
use tukwila::federation::{ConcurrentFederatedSource, FederatedCatalog, FederationConfig};
use tukwila::relation::{DataType, Field, Schema, Tuple, Value};
use tukwila::source::{DelayModel, DelayedSource, Poll, Source};
use tukwila::stats::{Clock, WallClock};

mod common;
use common::{mem_answer, tables};

fn kv_schema() -> Schema {
    Schema::new(vec![
        Field::new("t.k", DataType::Int),
        Field::new("t.v", DataType::Int),
    ])
}

fn kv(k: i64) -> Tuple {
    Tuple::new(vec![Value::Int(k), Value::Int(k * 10)])
}

// ---------------------------------------------------------------------
// Queue layer
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any interleaving of per-lane batch arrivals through `queue_pair`
    /// yields the same final relation: every sent tuple exactly once per
    /// lane, reassembled in per-lane order, regardless of thread timing,
    /// queue capacity, batch splits — or a writer dropping mid-stream
    /// without `finish()`.
    #[test]
    fn queue_interleavings_lose_nothing_duplicate_nothing(
        lanes in 1usize..5,
        capacity in 1usize..6,
        per_lane in 1usize..120,
        batch_hint in 1usize..17,
        drop_mask in 0u32..16,
    ) {
        let mut handles = Vec::new();
        let mut readers = Vec::new();
        for lane in 0..lanes {
            let (mut writer, reader) = queue_pair(kv_schema(), capacity);
            readers.push(reader);
            // Lanes whose drop_mask bit is set drop the writer without
            // finish() — the dying-producer edge case. Everything they
            // *sent* must still arrive.
            let clean_finish = drop_mask & (1 << lane) == 0;
            handles.push(std::thread::spawn(move || {
                let base = lane as i64 * 1_000_000;
                let mut sent = 0usize;
                while sent < per_lane {
                    // Vary batch sizes per lane so splits differ.
                    let n = (batch_hint + lane).min(per_lane - sent);
                    let batch: Vec<Tuple> =
                        (sent..sent + n).map(|i| kv(base + i as i64)).collect();
                    writer.send(batch).unwrap();
                    sent += n;
                }
                if clean_finish {
                    writer.finish(&mut Vec::new()).unwrap();
                }
                // else: writer dropped here, mid-stream as far as the
                // protocol is concerned.
            }));
        }

        // Multiplexing consumer: non-blocking sweeps over every lane,
        // exactly the shape the threaded federation consumer uses. This
        // only terminates correctly because Empty and Closed are
        // distinguishable.
        let mut got: Vec<Vec<i64>> = vec![Vec::new(); lanes];
        let mut closed = vec![false; lanes];
        while closed.iter().any(|c| !c) {
            let mut progressed = false;
            for (lane, reader) in readers.iter().enumerate() {
                if closed[lane] {
                    continue;
                }
                match reader.try_recv_status() {
                    TryRecv::Batch(b) => {
                        progressed = true;
                        got[lane].extend(b.iter().map(|t| t.get(0).as_int().unwrap()));
                    }
                    TryRecv::Empty => {}
                    TryRecv::Closed => {
                        progressed = true;
                        closed[lane] = true;
                    }
                }
            }
            if !progressed {
                std::thread::yield_now();
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        for (lane, keys) in got.iter().enumerate() {
            let base = lane as i64 * 1_000_000;
            let expected: Vec<i64> = (0..per_lane as i64).map(|i| base + i).collect();
            prop_assert_eq!(
                keys, &expected,
                "lane {} delivered a different relation (capacity {}, drop_mask {:#x})",
                lane, capacity, drop_mask
            );
        }
    }
}

// ---------------------------------------------------------------------
// Engine layer
// ---------------------------------------------------------------------

fn mirror_catalog(d: &FlightsData, seed: u64) -> FederatedCatalog {
    let mut catalog = FederatedCatalog::new(FederationConfig::default());
    for (rel, name, schema, rows) in tables(d) {
        catalog
            .register(
                vec![0],
                Box::new(DelayedSource::new(
                    rel,
                    format!("{name}-flaky"),
                    schema.clone(),
                    rows.clone(),
                    &DelayModel::Wireless {
                        bytes_per_sec: 200_000.0,
                        burst_ms: 30.0,
                        gap_ms: 100.0,
                        seed: seed ^ u64::from(rel),
                    },
                )),
            )
            .unwrap();
        catalog
            .register(
                vec![0],
                Box::new(DelayedSource::new(
                    rel,
                    format!("{name}-steady"),
                    schema,
                    rows.clone(),
                    &DelayModel::Bandwidth {
                        bytes_per_sec: 50_000.0,
                        initial_latency_us: 1_000,
                    },
                )),
            )
            .unwrap();
    }
    catalog
}

/// The corrective executor — monitor, re-optimize, switch — driven off a
/// shared wall clock over threaded federated mirrors must still agree
/// with plain local execution, and the threaded adapters must have
/// published their observed delivery rates to it.
#[test]
fn threaded_corrective_matches_local_execution() {
    // Every relation holds more tuples than one producer batch (256), so
    // each adapter is guaranteed ≥2 queue batches — and therefore a
    // delivery-rate window — even if a starved producer thread ships its
    // whole backlog in one burst (possible on a loaded single-core host).
    let d = flights::generate(400, 1200, 1, 17);
    let expected = mem_answer(&d, &flights::query());

    let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(200.0));
    let mut sources = mirror_catalog(&d, 17)
        .into_concurrent_sources(clock.clone())
        .unwrap();
    let exec = CorrectiveExec::new(
        flights::query(),
        CorrectiveConfig {
            batch_size: 256,
            cpu: CpuCostModel::Measured,
            poll_every_batches: 3,
            warmup_batches: 2,
            min_remaining_fraction: 0.0,
            clock: Some(clock),
            ..Default::default()
        },
    );
    let report = exec.run(&mut sources).unwrap();
    assert_eq!(
        canonicalize_approx(&report.rows),
        expected,
        "threaded corrective answer diverged from local execution"
    );
    for s in &sources {
        let fed = s
            .as_any()
            .and_then(|a| a.downcast_ref::<ConcurrentFederatedSource>())
            .expect("all sources are threaded federated");
        let r = fed.report();
        let size = match r.rel_id {
            flights::FLIGHTS => d.flights.len(),
            flights::TRAVELERS => d.travelers.len(),
            _ => d.children.len(),
        };
        assert_eq!(
            r.delivered as usize, size,
            "{}: engine must see each tuple exactly once",
            r.name
        );
        assert!(
            s.observed_rate().is_some(),
            "threaded adapter must profile its delivery rate: {r:?}"
        );
    }
}

/// A full mirror reaching EOF ends the federated stream even while a
/// sibling lane is mid-delivery — and shutdown must reap every producer
/// thread rather than leak it.
#[test]
fn threaded_early_completion_reaps_producers() {
    let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(500.0));
    let fast: Box<dyn Source> = Box::new(DelayedSource::new(
        1,
        "fast",
        kv_schema(),
        (0..500).map(kv).collect(),
        &DelayModel::Bandwidth {
            bytes_per_sec: 5e6,
            initial_latency_us: 100,
        },
    ));
    let slow: Box<dyn Source> = Box::new(DelayedSource::new(
        1,
        "slow",
        kv_schema(),
        (0..500).map(kv).collect(),
        &DelayModel::Bandwidth {
            bytes_per_sec: 5e4,
            initial_latency_us: 100,
        },
    ));
    let cfg = FederationConfig {
        // Aggressive hedging so both lanes race almost immediately.
        min_stall_us: 1_000,
        ..Default::default()
    };
    let mut fed =
        ConcurrentFederatedSource::new(vec![0], vec![fast, slow], cfg, clock.clone()).unwrap();
    let mut keys: Vec<i64> = Vec::new();
    loop {
        match fed.poll(clock.now_us(), 128) {
            Poll::Ready(batch) => keys.extend(batch.iter().map(|t| t.get(0).as_int().unwrap())),
            Poll::Pending { next_ready_us } => {
                clock.sleep_toward(next_ready_us);
            }
            Poll::Eof => break,
        }
    }
    keys.sort_unstable();
    let n = keys.len();
    keys.dedup();
    assert_eq!(keys.len(), n, "no duplicates");
    assert_eq!(keys, (0..500).collect::<Vec<_>>(), "no losses");
    // Dropping after Eof must return promptly (threads already joined).
    let start = std::time::Instant::now();
    drop(fed);
    assert!(start.elapsed() < std::time::Duration::from_secs(1));
}

// ---------------------------------------------------------------------
// Soak (CI's dedicated threaded job; --ignored by default)
// ---------------------------------------------------------------------

/// N mirrors × M relations × 10k tuples of sustained racing: every
/// relation must deliver its exact key set, with hedging actually
/// overlapping (duplicates deduped) and no thread leaked across
/// iterations.
#[test]
#[ignore = "threaded soak — run explicitly: cargo test --release --test concurrent -- --ignored"]
fn soak_threaded_federation_n_mirrors_m_relations() {
    const RELATIONS: u32 = 3;
    const MIRRORS: usize = 4;
    const TUPLES: i64 = 10_000;
    const ROUNDS: usize = 3;

    for round in 0..ROUNDS {
        // Moderate acceleration: the wireless gaps (tens of timeline ms)
        // must span many real consumer polls, so stalls are genuinely
        // observed and the standbys genuinely race.
        let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(100.0));
        let mut feds: Vec<ConcurrentFederatedSource> = (1..=RELATIONS)
            .map(|rel| {
                let candidates: Vec<Box<dyn Source>> = (0..MIRRORS)
                    .map(|m| {
                        // Mirror speeds differ per (relation, mirror, round)
                        // so each round races a different shape.
                        let bps = 2e5 * (1.0 + ((m + round) % MIRRORS) as f64);
                        Box::new(DelayedSource::new(
                            rel,
                            format!("r{rel}-m{m}"),
                            kv_schema(),
                            (0..TUPLES).map(kv).collect(),
                            &DelayModel::Wireless {
                                bytes_per_sec: bps,
                                burst_ms: 20.0,
                                gap_ms: 60.0,
                                seed: rel as u64 * 31 + m as u64 + round as u64 * 101,
                            },
                        )) as Box<dyn Source>
                    })
                    .collect();
                let cfg = FederationConfig {
                    // Hedge eagerly: the point is maximum concurrent churn.
                    min_stall_us: 2_000,
                    ..Default::default()
                };
                ConcurrentFederatedSource::new(vec![0], candidates, cfg, clock.clone()).unwrap()
            })
            .collect();

        // Interleave the relations like a driver would: round-robin polls.
        let mut done = vec![false; feds.len()];
        let mut keys: Vec<Vec<i64>> = vec![Vec::new(); feds.len()];
        while done.iter().any(|d| !d) {
            let mut wake: Option<u64> = None;
            let mut any = false;
            for (i, fed) in feds.iter_mut().enumerate() {
                if done[i] {
                    continue;
                }
                match fed.poll(clock.now_us(), 512) {
                    Poll::Ready(batch) => {
                        any = true;
                        keys[i].extend(batch.iter().map(|t| t.get(0).as_int().unwrap()));
                    }
                    Poll::Pending { next_ready_us } => {
                        wake = Some(wake.map_or(next_ready_us, |w| w.min(next_ready_us)));
                    }
                    Poll::Eof => {
                        any = true;
                        done[i] = true;
                    }
                }
            }
            if !any {
                if let Some(w) = wake {
                    clock.sleep_toward(w);
                }
            }
        }

        let mut total_dupes = 0;
        for (i, fed) in feds.iter().enumerate() {
            let mut k = std::mem::take(&mut keys[i]);
            let delivered = k.len();
            k.sort_unstable();
            k.dedup();
            assert_eq!(
                k.len(),
                delivered,
                "round {round}, rel {i}: duplicates leaked"
            );
            assert_eq!(
                k,
                (0..TUPLES).collect::<Vec<_>>(),
                "round {round}, rel {i}: lost tuples"
            );
            let r = fed.report();
            total_dupes += r.candidates.iter().map(|c| c.duplicates).sum::<u64>();
        }
        assert!(
            total_dupes > 0,
            "round {round}: mirrors never overlapped — the race isn't racing"
        );
        drop(feds);
    }
}
