//! Helpers shared by the federation integration suites
//! (`tests/federation.rs`, `tests/concurrent.rs`).

use tukwila::core::run_static;
use tukwila::datagen::flights::{self, FlightsData};
use tukwila::exec::reference::canonicalize_approx;
use tukwila::exec::CpuCostModel;
use tukwila::optimizer::{LogicalQuery, OptimizerContext};
use tukwila::relation::{Schema, Tuple};
use tukwila::source::{MemSource, Source};

/// The flights workload's three base relations.
pub fn tables(d: &FlightsData) -> [(u32, &'static str, Schema, &Vec<Tuple>); 3] {
    [
        (flights::FLIGHTS, "F", flights::flights_schema(), &d.flights),
        (
            flights::TRAVELERS,
            "T",
            flights::travelers_schema(),
            &d.travelers,
        ),
        (
            flights::CHILDREN,
            "C",
            flights::children_schema(),
            &d.children,
        ),
    ]
}

/// Ground truth: the query over plain local sources.
pub fn mem_answer(d: &FlightsData, q: &LogicalQuery) -> Vec<String> {
    let mut sources: Vec<Box<dyn Source>> = tables(d)
        .into_iter()
        .map(|(rel, name, schema, rows)| {
            Box::new(MemSource::new(rel, name, schema, rows.clone())) as Box<dyn Source>
        })
        .collect();
    let run = run_static(
        q,
        &mut sources,
        OptimizerContext::no_statistics(),
        256,
        CpuCostModel::Zero,
    )
    .unwrap();
    canonicalize_approx(&run.rows)
}
