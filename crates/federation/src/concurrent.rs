//! Wall-clock concurrent federation: race the candidate mirrors on real
//! threads.
//!
//! The sequential [`FederatedSource`](crate::federated::FederatedSource)
//! *models* hedged reads under the virtual clock: candidates are polled
//! one at a time and "racing" is an accounting fiction. This module makes
//! the race real. [`ConcurrentFederatedSource`] runs every candidate on
//! its own producer thread behind a bounded
//! [`tukwila_exec::queue_pair`] queue:
//!
//! ```text
//!  candidate 0 thread ──poll──▶ QueueWriter ─┐ (bounded, backpressure)
//!  candidate 1 thread ──poll──▶ QueueWriter ─┤
//!  candidate 2 thread ── parked at gate ─────┤ (standby: activated on stall)
//!                                            ▼
//!                    consumer (engine poll) ── PermutationScheduler
//!                      try_recv per lane, dedupe by key, re-rank,
//!                      hedge on stall — same logic, real timestamps
//! ```
//!
//! The scheduling brain is byte-for-byte the same
//! [`PermutationScheduler`] / `BehaviorProfile` machinery the sequential
//! adapter uses — only the *timestamps* differ: they come from a shared
//! [`Clock`] (a real, optionally accelerated
//! [`WallClock`](tukwila_stats::WallClock)) instead of the simulated
//! timeline. That is the dual-clock design: identical decisions given
//! identical observations, so a threaded run and a virtual run over the
//! same mirrors must produce the identical deduped answer set even though
//! their interleavings differ on every execution.
//!
//! ## Lifecycle and loss-freedom
//!
//! * Standby candidates are spawned parked at a gate; activation (first
//!   poll, stall hedge, or end-of-stream standby sweep) opens it. A
//!   parked standby costs nothing at its source, matching the sequential
//!   semantics.
//! * A producer pushes until EOF, then `finish`es its queue; the consumer
//!   sees [`TryRecv::Closed`] only after draining every buffered batch,
//!   so a producer finishing (or dying) early never loses in-flight
//!   tuples.
//! * Completion (a full mirror drained, or all candidates EOF) drops the
//!   queue readers and cancels the gates; blocked producers error out of
//!   their send, sleeping producers wake within one bounded clock chunk,
//!   and every thread is joined before `poll` returns the final `Eof` —
//!   no leaked threads, ever.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use tukwila_exec::op::IncOp;
use tukwila_exec::queue::{queue_pair, QueueWriter, TryRecv};
use tukwila_relation::{Error, Result, Schema, Tuple};
use tukwila_source::{Poll, Source, SourceDescriptor, SourceProgressView};
use tukwila_stats::{Clock, RateEstimator};

use crate::catalog::FederationConfig;
use crate::federated::{validate_candidates, KeyDedup};
use crate::federated::{CandidateReport, FederationReport};
use crate::scheduler::PermutationScheduler;

/// What a parked producer thread is waiting to hear.
#[derive(Debug, Clone, Copy, PartialEq)]
enum GateState {
    /// Spawned but not yet part of the race.
    Standby,
    /// Racing: poll the candidate, push batches.
    Active,
    /// Shut down: exit without touching the candidate again.
    Cancelled,
}

/// A park/activate/cancel latch for one producer thread.
#[derive(Debug)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
}

impl Gate {
    fn new(initial: GateState) -> Gate {
        Gate {
            state: Mutex::new(initial),
            cv: Condvar::new(),
        }
    }

    /// Block until activated; `false` means cancelled instead.
    fn wait_active(&self) -> bool {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            match *s {
                GateState::Active => return true,
                GateState::Cancelled => return false,
                GateState::Standby => {
                    s = self.cv.wait(s).unwrap_or_else(|p| p.into_inner());
                }
            }
        }
    }

    fn set(&self, to: GateState) {
        let mut s = self.state.lock().unwrap_or_else(|p| p.into_inner());
        // Cancellation is final; activation must not resurrect a lane.
        if *s != GateState::Cancelled {
            *s = to;
        }
        self.cv.notify_all();
    }

    fn cancelled(&self) -> bool {
        *self.state.lock().unwrap_or_else(|p| p.into_inner()) == GateState::Cancelled
    }
}

/// Consumer-side handle to one candidate's producer thread.
struct Lane {
    descriptor: SourceDescriptor,
    /// `None` once the lane closed (EOF drained) or the run completed.
    reader: Option<tukwila_exec::queue::QueueReader>,
    gate: Arc<Gate>,
    handle: Option<JoinHandle<()>>,
    /// Backpressure events recorded by this lane's writer.
    blocked: Arc<AtomicU64>,
}

impl Lane {
    /// Stop the producer: cancel the gate (wakes a parked standby) and
    /// drop the reader (errors a blocked send). Does not join.
    fn shutdown(&mut self) {
        self.gate.set(GateState::Cancelled);
        self.reader = None;
    }

    /// Join after a shutdown *we* initiated (completion, drop, spawn
    /// failure). A panic here is a loser lane dying after the union was
    /// already decided, so it cannot have corrupted the answer; swallow
    /// it rather than abort a successful query (or double-panic a drop).
    fn join(&mut self) {
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }

    /// Join after the lane closed its queue *on its own* ([`TryRecv::
    /// Closed`]). Here the distinction matters: a clean `finish()` means
    /// EOF, but a producer that panicked mid-stream also drops its writer
    /// — treating that as EOF would silently truncate the union. Re-raise
    /// the producer's panic on the consumer thread instead, exactly as
    /// the sequential adapter would have propagated it.
    fn join_closed(&mut self, candidate: &str) {
        if let Some(h) = self.handle.take() {
            if let Err(payload) = h.join() {
                eprintln!("federation candidate '{candidate}' producer thread panicked");
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// The producer loop: poll the candidate at the shared clock, push
/// batches into the bounded queue, finish on EOF.
fn run_lane(
    mut source: Box<dyn Source>,
    clock: Arc<dyn Clock>,
    gate: Arc<Gate>,
    mut writer: QueueWriter,
    batch_cap: usize,
) {
    if !gate.wait_active() {
        return;
    }
    loop {
        if gate.cancelled() {
            return;
        }
        match source.poll(clock.now_us(), batch_cap) {
            Poll::Ready(batch) => {
                if writer.send(batch).is_err() {
                    // Consumer hung up (run complete): stop producing.
                    return;
                }
            }
            Poll::Pending { next_ready_us } => {
                // Bounded nap; the loop re-checks cancellation each chunk,
                // so even a dead mirror (next arrival at u64::MAX) shuts
                // down promptly.
                clock.sleep_toward(next_ready_us);
            }
            Poll::Eof => break,
        }
    }
    let _ = writer.finish(&mut Vec::new());
}

/// One relation served by N candidate sources, each racing on its own
/// thread, consumed through the same online permutation scheduler as the
/// sequential adapter. Implements [`Source`], so the engine (driven by
/// the same shared wall clock) runs over it unchanged.
pub struct ConcurrentFederatedSource {
    rel_id: u32,
    name: String,
    schema: Schema,
    config: FederationConfig,
    clock: Arc<dyn Clock>,
    scheduler: PermutationScheduler,
    lanes: Vec<Lane>,
    dedup: KeyDedup,
    /// Deduped tail of an oversized arrival, handed out on later polls so
    /// `Ready` batches respect the engine's `max_tuples`.
    carry: Vec<Tuple>,
    fed_rate: RateEstimator,
    delivered: u64,
    done: bool,
    /// Per-lane blocked-send baselines captured when the consumer
    /// announced a quiesce ([`Source::quiesce_delivery`]); `None` while
    /// polling normally.
    pause_baseline: Option<Vec<u64>>,
    /// Per-lane blocked-send events forgiven because they accrued while
    /// the consumer was quiesced (a corrective plan switch): the lanes
    /// kept racing into their bounded queues with nobody draining, so
    /// that backpressure says nothing about consumer saturation and must
    /// not feed the hedge gate.
    blocked_forgiven: Vec<u64>,
}

impl ConcurrentFederatedSource {
    /// Build over the candidate set for one relation and start the race:
    /// candidate threads are spawned immediately, but only the first
    /// candidate's gate opens — standbys park until the scheduler hedges
    /// onto them. `clock` must be a wall clock shared with whatever
    /// drives the consumer; threaded execution under a virtual clock
    /// would let producer naps teleport the shared timeline.
    pub fn new(
        key_cols: Vec<usize>,
        candidates: Vec<Box<dyn Source>>,
        config: FederationConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<ConcurrentFederatedSource> {
        if !clock.is_wall() {
            return Err(Error::Plan(
                "threaded federation needs a wall clock; use FederatedSource for \
                 virtual-clock runs"
                    .into(),
            ));
        }
        let (rel_id, schema) = validate_candidates(&key_cols, &candidates)?;
        let name = format!("fed-mt({}×{})", candidates[0].name(), candidates.len());
        let mut scheduler = PermutationScheduler::new(candidates.len(), config.clone());
        scheduler.set_coverage(
            candidates
                .iter()
                .map(|c| c.descriptor().key_range)
                .collect(),
        );
        scheduler.set_declared_rates(
            candidates
                .iter()
                .map(|c| c.descriptor().declared_rate_tuples_per_sec)
                .collect(),
        );
        // Threaded mode: the hedge gate's busy-core waste term. A lone
        // query owns the host; under a serving front end the config
        // carries the query's fair share of the global core-arbiter
        // budget instead (fixed at admission, so decisions stay a pure
        // function of the timeline).
        scheduler.set_core_budget(
            config
                .core_budget
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get())),
        );
        scheduler.set_identity(
            name.clone(),
            candidates.iter().map(|c| c.name().to_string()).collect(),
        );
        // Serving mode: snapshot the cross-query learning store at
        // admission (see the sequential adapter; identical contract).
        if let Some(store) = config.learning.clone() {
            let names: Vec<String> = candidates.iter().map(|c| c.name().to_string()).collect();
            scheduler.seed_learned(store.snapshot(&names));
        }
        let mut lanes: Vec<Lane> = Vec::with_capacity(candidates.len());
        for (idx, source) in candidates.into_iter().enumerate() {
            let descriptor = source.descriptor();
            let (writer, reader) = queue_pair(schema.clone(), config.queue_capacity);
            let blocked = writer.blocked_handle();
            // Candidate 0 is active from the start (the scheduler
            // activated it in `new`); everyone else parks.
            let gate = Arc::new(Gate::new(if idx == 0 {
                GateState::Active
            } else {
                GateState::Standby
            }));
            let thread_clock = clock.clone();
            let thread_gate = gate.clone();
            let batch_cap = config.producer_batch.max(1);
            let spawned = std::thread::Builder::new()
                .name(format!("fed-{rel_id}-lane{idx}"))
                .spawn(move || run_lane(source, thread_clock, thread_gate, writer, batch_cap));
            match spawned {
                Ok(handle) => lanes.push(Lane {
                    descriptor,
                    reader: Some(reader),
                    gate,
                    handle: Some(handle),
                    blocked,
                }),
                Err(e) => {
                    // Thread-resource exhaustion mid-construction: the
                    // lanes already spawned are parked (or producing into
                    // queues nobody will read). Reap them before failing,
                    // or they'd block at their gates forever.
                    for lane in &mut lanes {
                        lane.shutdown();
                    }
                    for lane in &mut lanes {
                        lane.join();
                    }
                    return Err(Error::Exec(format!(
                        "relation {rel_id}: spawning federation lane {idx} failed: {e}"
                    )));
                }
            }
        }
        let nlanes = lanes.len();
        Ok(ConcurrentFederatedSource {
            rel_id,
            name,
            schema,
            config,
            clock,
            scheduler,
            lanes,
            dedup: KeyDedup::new(rel_id, key_cols),
            carry: Vec::new(),
            fed_rate: RateEstimator::default(),
            delivered: 0,
            done: false,
            pause_baseline: None,
            blocked_forgiven: vec![0; nlanes],
        })
    }

    /// The online permutation scheduler driving this adapter.
    pub fn scheduler(&self) -> &PermutationScheduler {
        &self.scheduler
    }

    /// Per-candidate statistics snapshot, same shape as the sequential
    /// adapter's (available mid-run or after).
    pub fn report(&self) -> FederationReport {
        FederationReport {
            rel_id: self.rel_id,
            name: self.name.clone(),
            delivered: self.delivered,
            failovers: self.scheduler.failovers(),
            declined_hedges: self.scheduler.declined_hedges(),
            skipped_covered: self.scheduler.skipped_covered(),
            candidates: self
                .lanes
                .iter()
                .zip(self.scheduler.profiles())
                .map(|(lane, p)| CandidateReport {
                    descriptor: lane.descriptor.clone(),
                    delivered: p.delivered,
                    duplicates: p.duplicates,
                    stalls: p.stalls,
                    activated: p.is_active(),
                    eof: p.eof,
                    rate_tuples_per_sec: p.rate.rate_tuples_per_sec(),
                    blocked_sends: lane.blocked.load(Ordering::Relaxed),
                })
                .collect(),
        }
    }

    /// Blocked-send events forgiven per lane (quiesce windows), for tests.
    #[cfg(test)]
    pub(crate) fn blocked_forgiven(&self) -> &[u64] {
        &self.blocked_forgiven
    }

    /// End the run: stop every producer and join it. Idempotent.
    fn complete(&mut self) {
        if !self.done {
            self.trace_completion();
            // Publication rides the same exactly-once edge (an abandoned
            // run publishes what it saw on drop — partial evidence beats
            // none, and the scheduler's flag keeps it single-shot).
            self.scheduler.publish_learning();
        }
        self.done = true;
        for lane in &mut self.lanes {
            lane.shutdown();
        }
        for lane in &mut self.lanes {
            lane.join();
        }
    }

    /// Journal the end-of-union tallies — distinct tuples, dedup hits,
    /// stalls, and per-lane blocked sends (the real backpressure the
    /// hedge gate priced). One bounded set of events per relation.
    fn trace_completion(&self) {
        let trace = &self.config.trace;
        if !trace.is_enabled() {
            return;
        }
        let dup: u64 = self.scheduler.profiles().iter().map(|p| p.duplicates).sum();
        let stalls: u64 = self.scheduler.profiles().iter().map(|p| p.stalls).sum();
        trace.counter("tuples", self.name.clone(), self.delivered);
        trace.counter("dedup_hits", self.name.clone(), dup);
        trace.counter("stalls", self.name.clone(), stalls);
        for lane in &self.lanes {
            trace.counter(
                "blocked_sends",
                lane.descriptor.name.clone(),
                lane.blocked.load(Ordering::Relaxed),
            );
        }
    }

    fn open_gate(&self, idx: usize) {
        self.lanes[idx].gate.set(GateState::Active);
    }

    /// Hand out up to `max_tuples` of an already-deduped batch, parking
    /// the tail in `carry`.
    fn emit(&mut self, mut fresh: Vec<Tuple>, max_tuples: usize) -> Poll {
        let cap = max_tuples.max(1);
        if fresh.len() > cap {
            self.carry = fresh.split_off(cap);
        }
        Poll::Ready(fresh)
    }
}

impl Source for ConcurrentFederatedSource {
    fn rel_id(&self) -> u32 {
        self.rel_id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, now_us: u64, max_tuples: usize) -> Poll {
        if self.done {
            return Poll::Eof;
        }
        if !self.carry.is_empty() {
            let cap = max_tuples.max(1).min(self.carry.len());
            let rest = self.carry.split_off(cap);
            let head = std::mem::replace(&mut self.carry, rest);
            return Poll::Ready(head);
        }
        // Real time is authoritative; the driver's argument only matters
        // under the (rejected) virtual clock.
        let now_us = self.clock.observe(now_us);
        // Restarts mirror the sequential sweep: each one either consumed
        // candidate data (all-duplicates batch), shrank the candidate set
        // (EOF), or grew it (activation) — all bounded, so it terminates.
        'sweep: loop {
            let order = self.scheduler.polling_order(now_us);
            if order.is_empty() {
                if let Some(idx) = self.scheduler.activate_standby(now_us) {
                    self.open_gate(idx);
                    continue 'sweep;
                }
                self.complete();
                return Poll::Eof;
            }
            for idx in order {
                let status = match &self.lanes[idx].reader {
                    Some(r) => r.try_recv_status(),
                    None => TryRecv::Closed,
                };
                match status {
                    TryRecv::Batch(batch) => {
                        let raw = batch.len() as u64;
                        let fresh = self
                            .dedup
                            .filter(idx, &self.lanes[idx].descriptor.name, batch);
                        self.scheduler
                            .note_arrival(idx, now_us, raw, fresh.len() as u64);
                        if fresh.is_empty() {
                            // Entire batch was already delivered by a
                            // faster replica; look again immediately.
                            continue 'sweep;
                        }
                        self.delivered += fresh.len() as u64;
                        self.fed_rate.observe_arrival(now_us, fresh.len() as u64);
                        return self.emit(fresh, max_tuples);
                    }
                    TryRecv::Empty => {
                        // Refresh the gate's backpressure evidence with
                        // this lane's real blocked-send count — minus the
                        // events forgiven because they accrued while the
                        // consumer was quiesced — before any hedge
                        // decision.
                        self.scheduler.note_backpressure(
                            idx,
                            self.lanes[idx]
                                .blocked
                                .load(Ordering::Relaxed)
                                .saturating_sub(self.blocked_forgiven[idx]),
                        );
                        if let Some(new_idx) = self.scheduler.on_pending(idx, now_us) {
                            if std::env::var_os("TUKWILA_DEBUG").is_some() {
                                eprintln!(
                                    "[fed-mt {}] lane {idx} silent {}µs -> hedging onto lane {new_idx}",
                                    self.rel_id,
                                    self.scheduler.profiles()[idx]
                                        .silence_us(now_us)
                                        .unwrap_or(0),
                                );
                            }
                            self.open_gate(new_idx);
                            continue 'sweep;
                        }
                    }
                    TryRecv::Closed => {
                        // The queue only closes when the producer thread
                        // is exiting; join it and re-raise a panic so a
                        // dying mirror reads as a failure, not as EOF.
                        let name = self.lanes[idx].descriptor.name.clone();
                        self.lanes[idx].join_closed(&name);
                        self.scheduler.note_eof(idx);
                        self.lanes[idx].reader = None;
                        if self.lanes[idx].descriptor.complete {
                            // A fully drained full mirror: the union is
                            // complete, stop the race.
                            self.complete();
                            return Poll::Eof;
                        }
                        continue 'sweep;
                    }
                }
            }
            // Every active lane is empty: wake at the nearest stall
            // deadline, or after one poll tick to look for new arrivals.
            let tick = now_us + self.config.poll_tick_us.max(1);
            let wake = self
                .scheduler
                .next_deadline_us(now_us)
                .map_or(tick, |d| d.min(tick));
            return Poll::Pending {
                next_ready_us: wake.max(now_us + 1),
            };
        }
    }

    fn progress(&self) -> SourceProgressView {
        SourceProgressView {
            tuples_read: self.delivered,
            // Cardinality of the deduped union is unknown until EOF.
            fraction_read: None,
            eof: self.done,
        }
    }

    fn descriptor(&self) -> SourceDescriptor {
        SourceDescriptor {
            rel_id: self.rel_id,
            name: self.name.clone(),
            complete: true,
            key_range: None,
            declared_rate_tuples_per_sec: None,
        }
    }

    fn observed_rate(&self) -> Option<f64> {
        self.fed_rate.rate_tuples_per_sec()
    }

    fn observed_schedule(&self) -> Option<tukwila_stats::ArrivalSchedule> {
        tukwila_stats::ArrivalSchedule::from_estimator(&self.fed_rate)
    }

    fn recalibrate_delivery_costs(&mut self, costs: &tukwila_stats::DeliveryCosts) {
        self.scheduler.set_hedge_costs(costs.clone());
    }

    /// The consumer is about to stop polling through no fault of the
    /// mirrors (a corrective quiesce). The race itself keeps running:
    /// active lanes fill their bounded queues and block, gate-parked
    /// standbys stay parked — nothing is cancelled. Only the accounting
    /// pauses: blocked sends from here to the matching
    /// [`Source::resume_delivery`] are forgiven so the hedge gate does
    /// not read quiesce-induced backpressure as consumer saturation.
    fn quiesce_delivery(&mut self) {
        if self.done || self.pause_baseline.is_some() {
            return;
        }
        self.pause_baseline = Some(
            self.lanes
                .iter()
                .map(|l| l.blocked.load(Ordering::Relaxed))
                .collect(),
        );
    }

    /// Polling resumes after a quiesce: forgive the backpressure events
    /// the pause produced and restart every active lane's stall window at
    /// the resume instant (the silence was the consumer's, not the
    /// mirrors'). Standbys parked at their gates before the quiesce are
    /// still parked — the race continues exactly where it left off.
    fn resume_delivery(&mut self, now_us: u64) {
        if let Some(baseline) = self.pause_baseline.take() {
            for (idx, before) in baseline.into_iter().enumerate() {
                let now_blocked = self.lanes[idx].blocked.load(Ordering::Relaxed);
                self.blocked_forgiven[idx] += now_blocked.saturating_sub(before);
            }
            self.scheduler.note_resume(self.clock.observe(now_us));
        }
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

impl Drop for ConcurrentFederatedSource {
    fn drop(&mut self) {
        // An abandoned run (error elsewhere, test teardown) must not leak
        // producer threads.
        self.complete();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{DataType, Field, Value};
    use tukwila_source::{DelayModel, DelayedSource};
    use tukwila_stats::WallClock;

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("t.k", DataType::Int),
            Field::new("t.v", DataType::Int),
        ])
    }

    fn rows(keys: std::ops::Range<i64>) -> Vec<Tuple> {
        keys.map(|k| Tuple::new(vec![Value::Int(k), Value::Int(k * 10)]))
            .collect()
    }

    fn steady(name: &str, keys: std::ops::Range<i64>, bps: f64) -> Box<dyn Source> {
        Box::new(DelayedSource::new(
            1,
            name,
            schema(),
            rows(keys),
            &DelayModel::Bandwidth {
                bytes_per_sec: bps,
                initial_latency_us: 1_000,
            },
        ))
    }

    fn wall() -> Arc<dyn Clock> {
        // Generous acceleration keeps these unit tests in the tens of
        // milliseconds.
        Arc::new(WallClock::accelerated(200.0))
    }

    /// Drive like the wall-clock SimDriver: poll, really wait on pending.
    fn drain(fed: &mut ConcurrentFederatedSource, clock: &Arc<dyn Clock>) -> Vec<i64> {
        let mut keys = Vec::new();
        loop {
            match fed.poll(clock.now_us(), 64) {
                Poll::Ready(batch) => {
                    keys.extend(batch.iter().map(|t| t.get(0).as_int().unwrap()));
                }
                Poll::Pending { next_ready_us } => {
                    clock.sleep_toward(next_ready_us);
                }
                Poll::Eof => return keys,
            }
        }
    }

    #[test]
    fn rejects_virtual_clocks() {
        let err = ConcurrentFederatedSource::new(
            vec![0],
            vec![steady("m", 0..10, 1e6)],
            FederationConfig::default(),
            Arc::new(tukwila_stats::VirtualClock::new()),
        );
        assert!(err.is_err());
    }

    #[test]
    fn single_candidate_streams_through() {
        let clock = wall();
        let mut fed = ConcurrentFederatedSource::new(
            vec![0],
            vec![steady("m0", 0..200, 2e6)],
            FederationConfig::default(),
            clock.clone(),
        )
        .unwrap();
        let mut keys = drain(&mut fed, &clock);
        keys.sort_unstable();
        assert_eq!(keys, (0..200).collect::<Vec<_>>());
        let report = fed.report();
        assert_eq!(report.delivered, 200);
        assert_eq!(report.failovers, 0);
        assert!(fed.progress().eof);
    }

    #[test]
    fn dead_primary_hedges_onto_backup_no_loss_no_dupes() {
        let clock = wall();
        // Primary never delivers anything; backup mirrors the relation.
        let dead: Box<dyn Source> = Box::new(DelayedSource::new(
            1,
            "dead",
            schema(),
            rows(0..50),
            &DelayModel::Bandwidth {
                bytes_per_sec: 1e-3, // first tuple ~years away
                initial_latency_us: u32::MAX as u64,
            },
        ));
        let mut fed = ConcurrentFederatedSource::new(
            vec![0],
            vec![dead, steady("backup", 0..50, 2e6)],
            FederationConfig::default(),
            clock.clone(),
        )
        .unwrap();
        let keys = drain(&mut fed, &clock);
        let delivered = keys.len();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), delivered, "no duplicates reached the engine");
        assert_eq!(sorted, (0..50).collect::<Vec<_>>(), "no lost tuples");
        let report = fed.report();
        assert_eq!(report.failovers, 1, "exactly one hedge onto the backup");
        assert!(report.candidates[1].activated);
    }

    #[test]
    fn drop_mid_run_joins_all_threads_promptly() {
        let clock = wall();
        let mut fed = ConcurrentFederatedSource::new(
            vec![0],
            vec![
                steady("a", 0..5_000, 1e5),
                steady("b", 0..5_000, 1e5),
                steady("c", 0..5_000, 1e5),
            ],
            FederationConfig::default(),
            clock.clone(),
        )
        .unwrap();
        // Consume a little, then abandon the run.
        let _ = fed.poll(clock.now_us(), 16);
        let start = std::time::Instant::now();
        drop(fed);
        assert!(
            start.elapsed() < std::time::Duration::from_secs(2),
            "drop must cancel and join every lane thread quickly"
        );
    }

    #[test]
    #[should_panic(expected = "mirror exploded")]
    fn producer_panic_propagates_instead_of_reading_as_eof() {
        use tukwila_source::SourceProgressView;
        /// Delivers a few tuples, then dies. A dying full mirror must
        /// abort the query (as it would sequentially), not silently
        /// truncate the union: its writer drop is indistinguishable from
        /// clean EOF at the queue level, so the consumer re-raises the
        /// panic from the joined thread.
        struct Exploding {
            schema: Schema,
            sent: i64,
        }
        impl Source for Exploding {
            fn rel_id(&self) -> u32 {
                1
            }
            fn name(&self) -> &str {
                "exploding"
            }
            fn schema(&self) -> &Schema {
                &self.schema
            }
            fn poll(&mut self, _now_us: u64, _max: usize) -> Poll {
                if self.sent >= 10 {
                    panic!("mirror exploded");
                }
                self.sent += 1;
                Poll::Ready(vec![rows(self.sent - 1..self.sent).remove(0)])
            }
            fn progress(&self) -> SourceProgressView {
                SourceProgressView {
                    tuples_read: self.sent as u64,
                    fraction_read: None,
                    eof: false,
                }
            }
        }
        let clock = wall();
        let mut fed = ConcurrentFederatedSource::new(
            vec![0],
            vec![Box::new(Exploding {
                schema: schema(),
                sent: 0,
            })],
            FederationConfig::default(),
            clock.clone(),
        )
        .unwrap();
        let _ = drain(&mut fed, &clock);
    }

    #[test]
    fn quiesce_forgives_pause_backpressure_and_loses_nothing() {
        let clock = wall();
        let cfg = FederationConfig {
            queue_capacity: 1,
            producer_batch: 8,
            ..Default::default()
        };
        let mut fed = ConcurrentFederatedSource::new(
            vec![0],
            vec![steady("m0", 0..400, 5e6)],
            cfg,
            clock.clone(),
        )
        .unwrap();
        // Pull one batch so the lane is producing, then quiesce: the lane
        // keeps racing into its bounded queue with nobody draining, so
        // its sends block.
        let mut keys: Vec<i64> = Vec::new();
        loop {
            match fed.poll(clock.now_us(), 64) {
                Poll::Ready(b) => {
                    keys.extend(b.iter().map(|t| t.get(0).as_int().unwrap()));
                    break;
                }
                Poll::Pending { next_ready_us } => {
                    clock.sleep_toward(next_ready_us);
                }
                Poll::Eof => panic!("400 tuples cannot be done after one batch"),
            }
        }
        fed.quiesce_delivery();
        let before = fed.report().candidates[0].blocked_sends;
        // Wait until the pause has demonstrably produced backpressure.
        while fed.report().candidates[0].blocked_sends == before {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        fed.resume_delivery(clock.now_us());
        let forgiven = fed.blocked_forgiven()[0];
        assert!(
            forgiven > 0,
            "backpressure accrued during the pause must be forgiven"
        );
        // The race resumes where it left off: the rest of the relation
        // arrives exactly once.
        keys.extend(drain(&mut fed, &clock));
        keys.sort_unstable();
        assert_eq!(keys, (0..400).collect::<Vec<_>>());
        assert_eq!(fed.report().failovers, 0, "a quiesce is not a stall");
    }

    #[test]
    fn oversized_arrivals_are_carried_not_truncated() {
        let clock = wall();
        let cfg = FederationConfig {
            producer_batch: 64,
            ..Default::default()
        };
        let mut fed = ConcurrentFederatedSource::new(
            vec![0],
            vec![steady("m", 0..64, 1e9)],
            cfg,
            clock.clone(),
        )
        .unwrap();
        let mut keys = Vec::new();
        loop {
            match fed.poll(clock.now_us(), 10) {
                Poll::Ready(b) => {
                    assert!(b.len() <= 10, "Ready respects max_tuples");
                    keys.extend(b.iter().map(|t| t.get(0).as_int().unwrap()));
                }
                Poll::Pending { next_ready_us } => {
                    clock.sleep_toward(next_ready_us);
                }
                Poll::Eof => break,
            }
        }
        keys.sort_unstable();
        assert_eq!(keys, (0..64).collect::<Vec<_>>());
    }
}
