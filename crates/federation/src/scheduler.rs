//! The online source-permutation scheduler.
//!
//! Given N candidate sources for one relation, the scheduler maintains a
//! *permutation* of them — the order in which candidates are polled — and
//! revises it online from the behavior profiles:
//!
//! * The query starts on the first registered candidate only (polling
//!   standbys costs virtual time at the sources and duplicate work after
//!   dedup).
//! * When the best active candidate is silent past its profile-derived
//!   stall threshold, the next standby in registration order is
//!   *activated*: under hedging (default) both race and the union is
//!   deduped; otherwise the stalled candidate is demoted.
//! * Active candidates are polled in score order (observed rate,
//!   discounted per stall), so once the profiles have evidence, the
//!   permutation re-ranks itself — e.g. a recovered fast mirror moves back
//!   ahead of the slow backup that covered its outage.
//!
//! Every decision is a pure function of the supplied timeline instants
//! and observed tuple counts — the scheduler never reads a clock itself.
//! Under the virtual clock that makes runs deterministic and replayable;
//! under the wall clock (`crate::concurrent`) the *decisions* follow real
//! arrival timestamps while the logic stays identical, which is the
//! contract the dual-clock equivalence tests pin down.

use crate::catalog::FederationConfig;
use crate::profile::BehaviorProfile;

/// Scheduler state for one federated relation.
///
/// ```
/// use tukwila_federation::{FederationConfig, PermutationScheduler};
///
/// // Three mirrors; only the first registered candidate starts active.
/// let mut sched = PermutationScheduler::new(3, FederationConfig::default());
/// assert_eq!(sched.polling_order(0), vec![0]);
///
/// // Candidate 0 delivers a batch of 10 (all fresh after dedup) at t=0,
/// // then goes silent. Its profile-derived stall deadline tells us when
/// // the silence stops looking normal...
/// sched.note_arrival(0, 0, 10, 10);
/// let deadline = sched.next_deadline_us(0).expect("an active candidate has one");
///
/// // ...and reporting it still pending at that instant hedges onto the
/// // next standby in registration order.
/// assert_eq!(sched.on_pending(0, deadline), Some(1));
/// assert_eq!(sched.failovers(), 1);
/// assert!(sched.polling_order(deadline).contains(&1));
/// ```
#[derive(Debug)]
pub struct PermutationScheduler {
    profiles: Vec<BehaviorProfile>,
    /// Activated candidates, in activation order.
    active: Vec<usize>,
    /// Next never-activated candidate (registration order).
    next_fresh: usize,
    failovers: u64,
    config: FederationConfig,
}

impl PermutationScheduler {
    /// A scheduler over `candidates` sources in registration order; the
    /// first candidate starts active, the rest park as standbys.
    pub fn new(candidates: usize, config: FederationConfig) -> PermutationScheduler {
        assert!(candidates > 0, "scheduler needs at least one candidate");
        let mut s = PermutationScheduler {
            profiles: (0..candidates).map(|_| BehaviorProfile::new()).collect(),
            active: Vec::new(),
            next_fresh: 0,
            failovers: 0,
            config,
        };
        s.activate_next(0);
        s
    }

    /// Per-candidate behavior profiles, in registration order.
    pub fn profiles(&self) -> &[BehaviorProfile] {
        &self.profiles
    }

    /// Mutable access to one candidate's profile.
    pub fn profile_mut(&mut self, idx: usize) -> &mut BehaviorProfile {
        &mut self.profiles[idx]
    }

    /// The configuration the scheduler was built with.
    pub fn config(&self) -> &FederationConfig {
        &self.config
    }

    /// Total candidate activations beyond the first (failovers/hedges).
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// The current permutation prefix: active, non-EOF candidates in the
    /// order they should be polled — best score first, candidate index as
    /// the deterministic tiebreak. Under `hedge = false`, candidates whose
    /// current silence is flagged go to the back regardless of score.
    pub fn polling_order(&self, now_us: u64) -> Vec<usize> {
        let mut order: Vec<usize> = self
            .active
            .iter()
            .copied()
            .filter(|&i| !self.profiles[i].eof)
            .collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (&self.profiles[a], &self.profiles[b]);
            if !self.config.hedge {
                // Demote currently-stalled candidates outright.
                let (sa, sb) = (
                    self.is_past_deadline(a, now_us),
                    self.is_past_deadline(b, now_us),
                );
                if sa != sb {
                    return sa.cmp(&sb);
                }
            }
            pb.score(&self.config)
                .partial_cmp(&pa.score(&self.config))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    }

    fn is_past_deadline(&self, idx: usize, now_us: u64) -> bool {
        matches!(self.profiles[idx].stall_deadline_us(&self.config), Some(d) if now_us >= d)
    }

    /// Record an arrival of `tuples` raw tuples (`fresh` after dedup).
    pub fn note_arrival(&mut self, idx: usize, now_us: u64, tuples: u64, fresh: u64) {
        self.profiles[idx].observe_batch(now_us, tuples, fresh);
    }

    /// Record that candidate `idx` reached end of stream.
    pub fn note_eof(&mut self, idx: usize) {
        self.profiles[idx].eof = true;
    }

    /// Latch a stall check for `idx` at `now_us`; on a fresh stall,
    /// activate the next standby (if any) and report it.
    pub fn on_pending(&mut self, idx: usize, now_us: u64) -> Option<usize> {
        if self.profiles[idx].check_stall(now_us, &self.config) {
            return self.activate_next(now_us);
        }
        None
    }

    /// Activate the next never-activated candidate (if any) without a
    /// stall trigger — used when every active candidate has reached EOF
    /// but standby replicas may still hold uncovered tuples.
    pub fn activate_standby(&mut self, now_us: u64) -> Option<usize> {
        self.activate_next(now_us)
    }

    fn activate_next(&mut self, now_us: u64) -> Option<usize> {
        while self.next_fresh < self.profiles.len() {
            let idx = self.next_fresh;
            self.next_fresh += 1;
            if self.profiles[idx].eof {
                continue;
            }
            self.profiles[idx].activate(now_us);
            self.active.push(idx);
            if !self.active.is_empty() && idx != self.active[0] {
                self.failovers += 1;
            }
            return Some(idx);
        }
        None
    }

    /// Earliest virtual instant at which a scheduling decision could
    /// change: the nearest stall deadline of an active, non-EOF candidate.
    pub fn next_deadline_us(&self, now_us: u64) -> Option<u64> {
        self.active
            .iter()
            .filter(|&&i| !self.profiles[i].eof)
            .filter_map(|&i| self.profiles[i].stall_deadline_us(&self.config))
            .filter(|&d| d > now_us)
            .min()
    }

    /// True when every candidate has reached EOF.
    pub fn all_eof(&self) -> bool {
        self.profiles.iter().all(|p| p.eof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(n: usize) -> PermutationScheduler {
        PermutationScheduler::new(n, FederationConfig::default())
    }

    #[test]
    fn starts_on_first_candidate_only() {
        let s = sched(3);
        assert_eq!(s.polling_order(0), vec![0]);
        assert_eq!(s.failovers(), 0);
    }

    #[test]
    fn stall_activates_next_in_registration_order() {
        let mut s = sched(3);
        s.note_arrival(0, 0, 10, 10);
        let deadline = s.profiles()[0]
            .stall_deadline_us(&FederationConfig::default())
            .unwrap();
        assert_eq!(s.on_pending(0, deadline - 1), None);
        assert_eq!(s.on_pending(0, deadline), Some(1));
        assert_eq!(s.failovers(), 1);
        // Latched: the same silence does not cascade through all standbys.
        assert_eq!(s.on_pending(0, deadline + 1), None);
        let order = s.polling_order(deadline);
        assert!(order.contains(&0) && order.contains(&1));
    }

    #[test]
    fn reranks_by_observed_rate() {
        let mut s = sched(2);
        s.on_pending(0, u64::MAX); // force-activate candidate 1
                                   // Candidate 1 delivers fast, candidate 0 slow.
        for i in 1..=20u64 {
            s.note_arrival(0, i * 10_000, 10, 10);
            s.note_arrival(1, i * 1_000, 10, 10);
        }
        assert_eq!(s.polling_order(0), vec![1, 0], "fast mirror polled first");
    }

    #[test]
    fn eof_candidates_leave_the_permutation() {
        let mut s = sched(2);
        s.on_pending(0, u64::MAX);
        s.note_eof(0);
        assert_eq!(s.polling_order(0), vec![1]);
        assert!(!s.all_eof());
        s.note_eof(1);
        assert!(s.all_eof());
        assert!(s.polling_order(0).is_empty());
    }

    #[test]
    fn next_deadline_tracks_active_candidates() {
        let mut s = sched(2);
        s.note_arrival(0, 1_000, 10, 10);
        let d = s.next_deadline_us(1_000).unwrap();
        assert!(d > 1_000);
        assert_eq!(
            s.next_deadline_us(u64::MAX),
            None,
            "no future deadline at end of time"
        );
    }

    #[test]
    fn no_hedge_demotes_stalled_primary() {
        let cfg = FederationConfig {
            hedge: false,
            ..Default::default()
        };
        let mut s = PermutationScheduler::new(2, cfg);
        s.note_arrival(0, 0, 10, 10);
        s.note_arrival(0, 100, 10, 10);
        let deadline = s.profiles()[0].stall_deadline_us(s.config()).unwrap();
        assert_eq!(s.on_pending(0, deadline), Some(1));
        let order = s.polling_order(deadline);
        assert_eq!(order[0], 1, "stalled primary demoted behind backup");
    }
}
