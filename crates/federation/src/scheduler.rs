//! The online source-permutation scheduler.
//!
//! Given N candidate sources for one relation, the scheduler maintains a
//! *permutation* of them — the order in which candidates are polled — and
//! revises it online from the behavior profiles:
//!
//! * The query starts on the first registered candidate only (polling
//!   standbys costs virtual time at the sources and duplicate work after
//!   dedup).
//! * When the best active candidate is silent past its profile-derived
//!   stall threshold, a hedge is *considered*: the shared
//!   [`DeliveryModel`] gate scores **every** parked standby — each priced
//!   with the delivery rate its [`tukwila_source::SourceDescriptor`]
//!   declares (falling back to the configured prior, then the mirror
//!   assumption) — weighing the expected latency win of activating it
//!   (who must re-deliver everything already delivered — sequential
//!   access, no rewind) against the modeled waste (duplicate-tuple dedup
//!   work, observed queue backpressure, one more busy core). The best
//!   payer is woken, so registration order is irrelevant to hedge
//!   quality; only a race that pays is started, and declined races are
//!   counted and reported. With no *healthy* active candidate left the
//!   win is unbounded and the hedge always fires — which preserves
//!   liveness and reproduces the legacy stall-only rule in the
//!   lone-primary case. Under hedging (default) the stalled candidate and
//!   the standby race and the union is deduped; otherwise the stalled
//!   candidate is demoted.
//! * Active candidates are polled in score order (observed rate,
//!   discounted per stall), so once the profiles have evidence, the
//!   permutation re-ranks itself — e.g. a recovered fast mirror moves back
//!   ahead of the slow backup that covered its outage.
//! * Standbys whose declared key range has already been fully delivered
//!   by drained (EOF) candidates are skipped outright: their every tuple
//!   would dedup away.
//!
//! Every decision is a pure function of the supplied timeline instants
//! and observed tuple counts — the scheduler never reads a clock itself.
//! Under the virtual clock that makes runs deterministic and replayable;
//! under the wall clock (`crate::concurrent`) the *decisions* follow real
//! arrival timestamps while the logic stays identical, which is the
//! contract the dual-clock equivalence tests pin down.

use tukwila_stats::trace::{CandidateScore, TraceEvent};
use tukwila_stats::{DeliveryModel, RaceContext, RaceDecision};

use crate::catalog::FederationConfig;
use crate::learning::LearnedProfile;
use crate::profile::BehaviorProfile;

/// Scheduler state for one federated relation.
///
/// ```
/// use tukwila_federation::{FederationConfig, PermutationScheduler};
///
/// // Three mirrors; only the first registered candidate starts active.
/// let mut sched = PermutationScheduler::new(3, FederationConfig::default());
/// assert_eq!(sched.polling_order(0), vec![0]);
///
/// // Candidate 0 delivers a batch of 10 (all fresh after dedup) at t=0,
/// // then goes silent. Its profile-derived stall deadline tells us when
/// // the silence stops looking normal...
/// sched.note_arrival(0, 0, 10, 10);
/// let deadline = sched.next_deadline_us(0).expect("an active candidate has one");
///
/// // ...and reporting it still pending at that instant runs the hedge
/// // gate over every parked standby and wakes the best payer (with no
/// // declared rates to tell them apart, registration order breaks the
/// // tie).
/// assert_eq!(sched.on_pending(0, deadline), Some(1));
/// assert_eq!(sched.failovers(), 1);
/// assert!(sched.polling_order(deadline).contains(&1));
/// ```
#[derive(Debug)]
pub struct PermutationScheduler {
    profiles: Vec<BehaviorProfile>,
    /// Activated candidates, in activation order.
    active: Vec<usize>,
    failovers: u64,
    /// Stalls whose hedge the cost gate declined.
    declined: u64,
    /// Standbys never activated because their declared key range was
    /// already fully delivered by drained candidates.
    skipped_covered: u64,
    /// Declared key-range coverage per candidate (registration order).
    coverage: Vec<Option<(i64, i64)>>,
    /// Declared delivery rates per candidate (registration order), from
    /// [`tukwila_source::SourceDescriptor::declared_rate_tuples_per_sec`].
    /// The hedge gate scores *every* parked standby with these, so the
    /// best payer is woken regardless of registration order.
    declared_rates: Vec<Option<f64>>,
    /// Rates past queries observed per candidate (registration order),
    /// snapshotted from the cross-query learning store at construction.
    /// Hedge pricing falls back `declared → learned → prior`: an
    /// operator's declaration is authoritative, but absent one, what a
    /// previous query measured beats a blanket prior.
    learned_rates: Vec<Option<f64>>,
    /// Whether this run's observations were already merged back into
    /// the learning store (publication is exactly-once).
    published: bool,
    /// Queue-backpressure totals per candidate (threaded mode; stays 0
    /// in sequential mode, which has no queues).
    blocked_sends: Vec<u64>,
    /// Host core budget for the busy-core waste term (threaded mode).
    cores: Option<usize>,
    /// Trace identity: the federated relation's display name and the
    /// candidates' names (registration order), used to label decision
    /// events. Empty until [`PermutationScheduler::set_identity`].
    relation_name: String,
    candidate_names: Vec<String>,
    config: FederationConfig,
}

impl PermutationScheduler {
    /// A scheduler over `candidates` sources in registration order; the
    /// first candidate starts active, the rest park as standbys.
    pub fn new(candidates: usize, config: FederationConfig) -> PermutationScheduler {
        assert!(candidates > 0, "scheduler needs at least one candidate");
        let mut s = PermutationScheduler {
            profiles: (0..candidates).map(|_| BehaviorProfile::new()).collect(),
            active: Vec::new(),
            failovers: 0,
            declined: 0,
            skipped_covered: 0,
            coverage: vec![None; candidates],
            declared_rates: vec![None; candidates],
            learned_rates: vec![None; candidates],
            published: false,
            blocked_sends: vec![0; candidates],
            cores: None,
            relation_name: String::new(),
            candidate_names: Vec::new(),
            config,
        };
        s.activate_idx(0, 0);
        s
    }

    /// Declare per-candidate key-range coverage (registration order).
    /// Standbys whose range is already fully delivered by drained
    /// candidates are skipped instead of activated.
    pub fn set_coverage(&mut self, coverage: Vec<Option<(i64, i64)>>) {
        assert_eq!(coverage.len(), self.profiles.len());
        self.coverage = coverage;
    }

    /// Declare per-candidate delivery rates (registration order), from
    /// the candidates' [`tukwila_source::SourceDescriptor`]s. The hedge
    /// gate prices each parked standby with its declared rate (falling
    /// back to `prior_rate_tuples_per_sec`, then to the mirror
    /// assumption) and wakes the best payer — which makes registration
    /// order irrelevant to hedge quality.
    pub fn set_declared_rates(&mut self, rates: Vec<Option<f64>>) {
        assert_eq!(rates.len(), self.profiles.len());
        self.declared_rates = rates;
    }

    /// Seed per-candidate cross-query learning (registration order): the
    /// admission-time snapshot of the shared store. Learned rates slot
    /// into hedge pricing between the declared rates and the prior, and
    /// the profiles use the seeds for the warm stall floor (see
    /// [`crate::profile::BehaviorProfile::stall_deadline_us`]). The seed
    /// is immutable for the run — decisions stay a pure function of
    /// (timeline, seed), which is what keeps serving runs dual-clock
    /// reproducible.
    pub fn seed_learned(&mut self, learned: Vec<Option<LearnedProfile>>) {
        assert_eq!(learned.len(), self.profiles.len());
        self.learned_rates = learned
            .iter()
            .map(|l| l.as_ref().and_then(|l| l.rate_tuples_per_sec))
            .collect();
        for (p, l) in self.profiles.iter_mut().zip(learned) {
            p.seed_learned(l);
        }
    }

    /// Merge this run's observations back into the configured learning
    /// store (no-op without one). Only activated candidates publish — a
    /// parked standby taught us nothing. Exactly-once: the adapters call
    /// this at union completion *and* from teardown paths, and only the
    /// first call publishes.
    pub fn publish_learning(&mut self) {
        if self.published {
            return;
        }
        self.published = true;
        let Some(store) = self.config.learning.clone() else {
            return;
        };
        for (idx, p) in self.profiles.iter().enumerate() {
            if p.is_active() {
                store.publish(&self.candidate_label(idx), p);
            }
        }
    }

    /// Name the relation and its candidates (registration order) for the
    /// trace journal; decision events are labeled with these instead of
    /// bare indices. Optional — unnamed schedulers fall back to
    /// `cand-<idx>` labels.
    pub fn set_identity(&mut self, relation: impl Into<String>, candidates: Vec<String>) {
        self.relation_name = relation.into();
        self.candidate_names = candidates;
    }

    /// The trace label for candidate `idx`.
    fn candidate_label(&self, idx: usize) -> String {
        self.candidate_names
            .get(idx)
            .cloned()
            .unwrap_or_else(|| format!("cand-{idx}"))
    }

    /// Polling resumed at `now_us` after a consumer-side quiesce window
    /// (a corrective plan switch parked the polling thread). Every active
    /// candidate's stall window restarts at the resume instant: the
    /// silence during the pause was the consumer's doing, so reading it
    /// as a stall would hedge onto standbys nobody needs.
    pub fn note_resume(&mut self, now_us: u64) {
        for p in &mut self.profiles {
            p.note_resume(now_us);
        }
    }

    /// Declare the host core budget (threaded mode), enabling the hedge
    /// gate's busy-core waste term. Sequential mode leaves it unset.
    pub fn set_core_budget(&mut self, cores: usize) {
        self.cores = Some(cores.max(1));
    }

    /// Record the latest queue-backpressure total for a candidate's
    /// producer (threaded mode feeds real `blocked_sends` here).
    pub fn note_backpressure(&mut self, idx: usize, blocked_sends_total: u64) {
        self.blocked_sends[idx] = blocked_sends_total;
    }

    /// Per-candidate behavior profiles, in registration order.
    pub fn profiles(&self) -> &[BehaviorProfile] {
        &self.profiles
    }

    /// Mutable access to one candidate's profile.
    pub fn profile_mut(&mut self, idx: usize) -> &mut BehaviorProfile {
        &mut self.profiles[idx]
    }

    /// The configuration the scheduler was built with.
    pub fn config(&self) -> &FederationConfig {
        &self.config
    }

    /// Total candidate activations beyond the first (failovers/hedges).
    pub fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Stalls whose hedge the cost gate declined (races the legacy
    /// stall-only rule would have started).
    pub fn declined_hedges(&self) -> u64 {
        self.declined
    }

    /// Standbys skipped because their declared key range was already
    /// fully delivered by drained candidates.
    pub fn skipped_covered(&self) -> u64 {
        self.skipped_covered
    }

    /// Replace the hedge gate's unit prices with engine-recalibrated ones
    /// (the corrective warmup measured this host's actual cost-unit→µs
    /// conversion and re-derived the delivery prices from it). Future
    /// gate evaluations use the new prices; decisions already made stand.
    /// A no-op in the deprecated stall-only mode (`hedge_costs: None`) —
    /// recalibration must not silently enable the gate.
    pub fn set_hedge_costs(&mut self, costs: tukwila_stats::DeliveryCosts) {
        if self.config.hedge_costs.is_some() {
            self.config.hedge_costs = Some(costs);
        }
    }

    /// The current permutation prefix: active, non-EOF candidates in the
    /// order they should be polled — best score first, candidate index as
    /// the deterministic tiebreak. Under `hedge = false`, candidates whose
    /// current silence is flagged go to the back regardless of score.
    pub fn polling_order(&self, now_us: u64) -> Vec<usize> {
        let mut order: Vec<usize> = self
            .active
            .iter()
            .copied()
            .filter(|&i| !self.profiles[i].eof)
            .collect();
        order.sort_by(|&a, &b| {
            let (pa, pb) = (&self.profiles[a], &self.profiles[b]);
            if !self.config.hedge {
                // Demote currently-stalled candidates outright.
                let (sa, sb) = (
                    self.is_past_deadline(a, now_us),
                    self.is_past_deadline(b, now_us),
                );
                if sa != sb {
                    return sa.cmp(&sb);
                }
            }
            pb.score(&self.config)
                .partial_cmp(&pa.score(&self.config))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order
    }

    fn is_past_deadline(&self, idx: usize, now_us: u64) -> bool {
        matches!(self.profiles[idx].stall_deadline_us(&self.config), Some(d) if now_us >= d)
    }

    /// Record an arrival of `tuples` raw tuples (`fresh` after dedup).
    pub fn note_arrival(&mut self, idx: usize, now_us: u64, tuples: u64, fresh: u64) {
        self.profiles[idx].observe_batch(now_us, tuples, fresh);
    }

    /// Record that candidate `idx` reached end of stream.
    pub fn note_eof(&mut self, idx: usize) {
        self.profiles[idx].eof = true;
        // The healthy set just shrank, so every previously *declined*
        // stall decision may now be wrong — e.g. the stalled primary was
        // left waiting because this candidate looked credible. Unlatch
        // currently-stalled candidates so their next `on_pending`
        // re-latches the stall and re-runs the gate against the new
        // topology (without this, a dead primary plus a drained partial
        // replica would wait forever instead of waking the standby that
        // holds the complement).
        for p in &mut self.profiles {
            if !p.eof && p.currently_stalled() {
                p.unlatch_stall();
            }
        }
    }

    /// Latch a stall check for `idx` at `now_us`; on a fresh stall, run
    /// the hedge gate over *every* parked standby and — when at least one
    /// race is worth it — activate the best payer and report it. Declined
    /// races are counted in [`PermutationScheduler::declined_hedges`].
    pub fn on_pending(&mut self, idx: usize, now_us: u64) -> Option<usize> {
        if self.profiles[idx].check_stall(now_us, &self.config) {
            let standbys = self.activatable_standbys();
            if standbys.is_empty() {
                // Nothing the legacy rule could have activated either:
                // neither a race nor a decline.
                return None;
            }
            let Some(costs) = self.config.hedge_costs.clone() else {
                // Deprecated stall-only mode: always race, next standby
                // in registration order (the legacy behavior, preserved
                // for A/B comparison).
                let woken = self.activate_idx(standbys[0], now_us);
                self.trace_hedge(now_us, idx, Vec::new(), woken, 0.0, 0.0);
                return woken;
            };
            let (scores, best) = self.score_standbys(costs, &standbys, now_us);
            match best {
                Some((best_idx, decision)) => {
                    let woken = self.activate_idx(best_idx, now_us);
                    self.trace_hedge(
                        now_us,
                        idx,
                        scores,
                        woken,
                        decision.win_us,
                        decision.waste_us,
                    );
                    return woken;
                }
                None => {
                    self.declined += 1;
                    self.trace_hedge(now_us, idx, scores, None, 0.0, 0.0);
                }
            }
        }
        None
    }

    /// Journal one hedge-gate evaluation: the stalled candidate, every
    /// standby's [`RaceDecision`]-derived score, and the outcome. Stamped
    /// with the caller-supplied `now_us` so the scheduler still never
    /// reads a clock itself.
    fn trace_hedge(
        &self,
        now_us: u64,
        stalled_idx: usize,
        scores: Vec<CandidateScore>,
        chosen_idx: Option<usize>,
        win_us: f64,
        waste_us: f64,
    ) {
        if !self.config.trace.is_enabled() {
            return;
        }
        self.config.trace.record_at(
            now_us,
            TraceEvent::HedgeDecision {
                relation: self.relation_name.clone(),
                stalled: self.candidate_label(stalled_idx),
                scores,
                chosen: chosen_idx.map(|i| self.candidate_label(i)),
                win_us,
                waste_us,
                fired: chosen_idx.is_some(),
            },
        );
    }

    /// Never-activated candidates that could actually be woken, in
    /// registration order. Standbys whose declared key range drained
    /// candidates already delivered are retired here (every tuple they
    /// hold would dedup away) and counted in
    /// [`PermutationScheduler::skipped_covered`].
    fn activatable_standbys(&mut self) -> Vec<usize> {
        for i in 0..self.profiles.len() {
            if !self.profiles[i].is_active()
                && !self.profiles[i].eof
                && self.range_already_delivered(i)
            {
                self.profiles[i].eof = true;
                self.skipped_covered += 1;
            }
        }
        (0..self.profiles.len())
            .filter(|&i| !self.profiles[i].is_active() && !self.profiles[i].eof)
            .collect()
    }

    /// The cost gate, run per parked standby: weigh the expected latency
    /// win of activating it (priced with its *declared* rate, falling
    /// back to the configured prior and then the mirror assumption)
    /// against the modeled waste, via the shared [`DeliveryModel`]; pick
    /// the standby with the best expected net win among those that pay.
    /// All inputs are the scheduler's own online observations plus
    /// registration-time declarations, so the decision is a pure function
    /// of the timeline — deterministic under the virtual clock, identical
    /// logic under the wall clock with real arrival rates and real
    /// `blocked_sends` — and independent of registration order whenever
    /// the declared rates distinguish the standbys.
    ///
    /// Returns every candidate's score (provenance for the trace
    /// journal; empty when tracing is disabled, so the gate stays
    /// allocation-free on the hot path) plus the winning `(index,
    /// RaceDecision)` when at least one race pays.
    fn score_standbys(
        &self,
        costs: tukwila_stats::DeliveryCosts,
        standbys: &[usize],
        now_us: u64,
    ) -> (Vec<CandidateScore>, Option<(usize, RaceDecision)>) {
        let model = DeliveryModel::with_costs(costs);
        // Union tuples delivered so far, and the "assume at least 25%
        // more is coming" remaining-data heuristic shared with the
        // catalog's cardinality extrapolation.
        let delivered: u64 = self
            .profiles
            .iter()
            .map(|p| p.delivered - p.duplicates)
            .sum();
        let remaining = (delivered as f64 * 0.25).max(1.0);
        // The best healthy active candidate: delivering within its own
        // profile, with a credible arrival forecast.
        let healthy = self
            .active
            .iter()
            .filter(|&&i| !self.profiles[i].eof && !self.profiles[i].currently_stalled())
            .filter(|&&i| !self.is_past_deadline(i, now_us))
            .filter_map(|&i| self.profiles[i].arrival_schedule())
            .map(|s| (s.arrival_us(remaining), s.steady_rate_tuples_per_sec()))
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        let racing = self
            .active
            .iter()
            .filter(|&&i| !self.profiles[i].eof)
            .count();
        let prior = Some(self.config.prior_rate_tuples_per_sec).filter(|r| *r > 0.0);
        let tracing = self.config.trace.is_enabled();
        let mut scores: Vec<CandidateScore> = Vec::new();
        let mut best: Option<(f64, f64, usize, RaceDecision)> = None;
        for &idx in standbys {
            let declared = self.declared_rates[idx].filter(|r| *r > 0.0);
            let learned = self.learned_rates[idx].filter(|r| *r > 0.0);
            let rate_key = declared.or(learned).or(prior).unwrap_or(0.0);
            let decision = model.race(&RaceContext {
                healthy,
                delivered: delivered as f64,
                remaining,
                standby_rate_tps: declared.or(learned).or(prior),
                blocked_sends: self.blocked_sends.iter().sum(),
                racing,
                cores: self.cores,
            });
            if tracing {
                scores.push(CandidateScore {
                    candidate: self.candidate_label(idx),
                    rate_tps: rate_key,
                    win_us: decision.win_us,
                    waste_us: decision.waste_us,
                    pays: decision.hedge,
                });
            }
            if !decision.hedge {
                continue;
            }
            // Rank by expected net win; break ∞−∞ ties (no healthy
            // candidate: every win is unbounded) on declared rate, then
            // registration order — deterministic either way.
            let net = decision.win_us - decision.waste_us;
            let better = match &best {
                None => true,
                Some((bnet, brate, bidx, _)) => {
                    let primary = net.partial_cmp(bnet).unwrap_or(std::cmp::Ordering::Equal);
                    primary == std::cmp::Ordering::Greater
                        || (primary == std::cmp::Ordering::Equal
                            && (rate_key > *brate || (rate_key == *brate && idx < *bidx)))
                }
            };
            if better {
                best = Some((net, rate_key, idx, decision));
            }
        }
        (scores, best.map(|(_, _, idx, decision)| (idx, decision)))
    }

    /// Activate a standby without a stall trigger — used when every
    /// active candidate has reached EOF but standby replicas may still
    /// hold uncovered tuples. No gate here (the data must be drained
    /// regardless); the fastest-declared standby goes first so the tail
    /// of the union arrives as early as the declarations allow.
    pub fn activate_standby(&mut self, now_us: u64) -> Option<usize> {
        let standbys = self.activatable_standbys();
        let best = standbys.into_iter().max_by(|&a, &b| {
            // Same `declared → learned` precedence as hedge pricing (the
            // prior is a constant here, so it cannot reorder anything).
            let (ra, rb) = (
                self.declared_rates[a]
                    .or(self.learned_rates[a])
                    .unwrap_or(0.0),
                self.declared_rates[b]
                    .or(self.learned_rates[b])
                    .unwrap_or(0.0),
            );
            ra.partial_cmp(&rb)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.cmp(&a)) // tie: lower registration index wins
        })?;
        let woken = self.activate_idx(best, now_us);
        if self.config.trace.is_enabled() {
            self.config.trace.record_at(
                now_us,
                TraceEvent::Activation {
                    relation: self.relation_name.clone(),
                    candidate: self.candidate_label(best),
                    sweep: true,
                },
            );
        }
        woken
    }

    fn activate_idx(&mut self, idx: usize, now_us: u64) -> Option<usize> {
        debug_assert!(!self.profiles[idx].is_active() && !self.profiles[idx].eof);
        self.profiles[idx].activate(now_us);
        self.active.push(idx);
        if self.active.len() > 1 {
            self.failovers += 1;
        }
        Some(idx)
    }

    /// Whether candidate `idx`'s declared key range is fully covered by
    /// the union of declared ranges of candidates that already reached
    /// EOF (their coverage is certainly delivered). Undeclared ranges are
    /// never considered covered.
    fn range_already_delivered(&self, idx: usize) -> bool {
        let Some((lo, hi)) = self.coverage[idx] else {
            return false;
        };
        let mut drained: Vec<(i64, i64)> = self
            .profiles
            .iter()
            .enumerate()
            .filter(|(i, p)| *i != idx && p.eof && p.is_active())
            .filter_map(|(i, _)| self.coverage[i])
            .collect();
        drained.sort_unstable();
        let mut frontier = lo;
        for (dlo, dhi) in drained {
            if dlo > frontier {
                return false;
            }
            frontier = frontier.max(dhi.saturating_add(1));
            if frontier > hi {
                return true;
            }
        }
        frontier > hi
    }

    /// Earliest virtual instant at which a scheduling decision could
    /// change: the nearest stall deadline of an active, non-EOF candidate.
    pub fn next_deadline_us(&self, now_us: u64) -> Option<u64> {
        self.active
            .iter()
            .filter(|&&i| !self.profiles[i].eof)
            .filter_map(|&i| self.profiles[i].stall_deadline_us(&self.config))
            .filter(|&d| d > now_us)
            .min()
    }

    /// True when every candidate has reached EOF.
    pub fn all_eof(&self) -> bool {
        self.profiles.iter().all(|p| p.eof)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(n: usize) -> PermutationScheduler {
        PermutationScheduler::new(n, FederationConfig::default())
    }

    #[test]
    fn starts_on_first_candidate_only() {
        let s = sched(3);
        assert_eq!(s.polling_order(0), vec![0]);
        assert_eq!(s.failovers(), 0);
    }

    #[test]
    fn stall_activates_next_in_registration_order() {
        let mut s = sched(3);
        s.note_arrival(0, 0, 10, 10);
        let deadline = s.profiles()[0]
            .stall_deadline_us(&FederationConfig::default())
            .unwrap();
        assert_eq!(s.on_pending(0, deadline - 1), None);
        assert_eq!(s.on_pending(0, deadline), Some(1));
        assert_eq!(s.failovers(), 1);
        // Latched: the same silence does not cascade through all standbys.
        assert_eq!(s.on_pending(0, deadline + 1), None);
        let order = s.polling_order(deadline);
        assert!(order.contains(&0) && order.contains(&1));
    }

    /// The liveness edge the cost gate must not introduce: a declined
    /// hedge is reconsidered when the healthy candidate that justified
    /// the decline reaches EOF — otherwise a dead primary next to a
    /// drained partial replica would wait forever instead of waking the
    /// remaining standby.
    #[test]
    fn declined_hedge_is_reconsidered_when_healthy_candidate_eofs() {
        let mut s = sched(3);
        // Activate candidate 1 via candidate 0's first stall (no healthy
        // candidate at that instant, so the gate always races).
        s.note_arrival(0, 0, 100, 100);
        let d0 = s.profiles()[0]
            .stall_deadline_us(&FederationConfig::default())
            .unwrap();
        assert_eq!(s.on_pending(0, d0), Some(1));
        // Candidate 1 races healthily; candidate 0 recovers briefly, then
        // dies. Its next stall is declined: 1 is healthy and a fresh
        // standby would have to re-deliver everything.
        let t = d0 + 50_000;
        for i in 1..=50u64 {
            s.note_arrival(1, d0 + i * 1_000, 100, 100);
        }
        s.note_arrival(0, t, 10, 10);
        let d1 = s.profiles()[0]
            .stall_deadline_us(&FederationConfig::default())
            .unwrap();
        // Keep candidate 1 delivering right up to candidate 0's stall
        // deadline, so it is genuinely healthy at the decision instant.
        let mut tt = t;
        while tt + 1_000 < d1 {
            tt += 1_000;
            s.note_arrival(1, tt, 100, 100);
        }
        assert_eq!(s.on_pending(0, d1), None, "gate declines while 1 races");
        assert_eq!(s.declined_hedges(), 1);
        assert_eq!(s.on_pending(0, d1 + 1), None, "stall latched");
        // Candidate 1 drains (e.g. a partial replica): the decline is no
        // longer justified, and the very next pending report must re-run
        // the gate and wake candidate 2.
        s.note_eof(1);
        assert_eq!(
            s.on_pending(0, d1 + 2),
            Some(2),
            "EOF of the healthy candidate must unlatch and re-gate"
        );
    }

    /// Declines are only counted when a standby actually existed for the
    /// legacy rule to race — EOF standbys do not inflate the counter.
    #[test]
    fn declines_not_counted_without_an_activatable_standby() {
        let mut s = sched(2);
        s.note_arrival(0, 0, 100, 100);
        s.profile_mut(1).eof = true; // the only standby is gone
        let d = s.profiles()[0]
            .stall_deadline_us(&FederationConfig::default())
            .unwrap();
        assert_eq!(s.on_pending(0, d), None);
        assert_eq!(s.declined_hedges(), 0, "nothing to decline");
    }

    #[test]
    fn gate_wakes_best_declared_payer_not_next_registered() {
        let deadline = |s: &PermutationScheduler| {
            s.profiles()[0]
                .stall_deadline_us(&FederationConfig::default())
                .unwrap()
        };
        // Standby 2 declares a much faster rate than standby 1: the gate
        // must skip over 1 and wake 2.
        let mut s = sched(3);
        s.set_declared_rates(vec![None, Some(10.0), Some(100_000.0)]);
        s.note_arrival(0, 0, 10, 10);
        let d = deadline(&s);
        assert_eq!(s.on_pending(0, d), Some(2), "best payer, not next in line");
        // Permuted registration, same declarations: the same (fast)
        // standby is chosen, so registration order is irrelevant.
        let mut s = sched(3);
        s.set_declared_rates(vec![None, Some(100_000.0), Some(10.0)]);
        s.note_arrival(0, 0, 10, 10);
        let d = deadline(&s);
        assert_eq!(s.on_pending(0, d), Some(1), "permutation-invariant wake");
        // Undeclared rates everywhere: ties break on registration order,
        // preserving the historical behavior.
        let mut s = sched(3);
        s.note_arrival(0, 0, 10, 10);
        let d = deadline(&s);
        assert_eq!(s.on_pending(0, d), Some(1));
    }

    #[test]
    fn end_of_stream_sweep_prefers_fast_declared_standby() {
        let mut s = sched(3);
        s.set_declared_rates(vec![None, Some(5.0), Some(500.0)]);
        s.note_eof(0);
        assert_eq!(s.activate_standby(0), Some(2), "drain fastest first");
        assert_eq!(s.activate_standby(0), Some(1));
        assert_eq!(s.activate_standby(0), None);
    }

    #[test]
    fn resume_after_quiesce_forgives_the_pause() {
        let mut s = sched(2);
        s.note_arrival(0, 0, 10, 10);
        let d = s.profiles()[0]
            .stall_deadline_us(&FederationConfig::default())
            .unwrap();
        // A quiesce window spans the stall deadline; the resume restarts
        // the window instead of hedging on consumer-made silence.
        s.note_resume(d + 100_000);
        assert_eq!(
            s.on_pending(0, d + 100_001),
            None,
            "no stall right after resume"
        );
        assert_eq!(s.failovers(), 0);
        let d2 = s.profiles()[0]
            .stall_deadline_us(&FederationConfig::default())
            .unwrap();
        assert!(d2 > d + 100_000);
        assert_eq!(s.on_pending(0, d2), Some(1), "real silence still hedges");
    }

    #[test]
    fn reranks_by_observed_rate() {
        let mut s = sched(2);
        s.on_pending(0, u64::MAX); // force-activate candidate 1
                                   // Candidate 1 delivers fast, candidate 0 slow.
        for i in 1..=20u64 {
            s.note_arrival(0, i * 10_000, 10, 10);
            s.note_arrival(1, i * 1_000, 10, 10);
        }
        assert_eq!(s.polling_order(0), vec![1, 0], "fast mirror polled first");
    }

    #[test]
    fn eof_candidates_leave_the_permutation() {
        let mut s = sched(2);
        s.on_pending(0, u64::MAX);
        s.note_eof(0);
        assert_eq!(s.polling_order(0), vec![1]);
        assert!(!s.all_eof());
        s.note_eof(1);
        assert!(s.all_eof());
        assert!(s.polling_order(0).is_empty());
    }

    #[test]
    fn next_deadline_tracks_active_candidates() {
        let mut s = sched(2);
        s.note_arrival(0, 1_000, 10, 10);
        let d = s.next_deadline_us(1_000).unwrap();
        assert!(d > 1_000);
        assert_eq!(
            s.next_deadline_us(u64::MAX),
            None,
            "no future deadline at end of time"
        );
    }

    #[test]
    fn no_hedge_demotes_stalled_primary() {
        let cfg = FederationConfig {
            hedge: false,
            ..Default::default()
        };
        let mut s = PermutationScheduler::new(2, cfg);
        s.note_arrival(0, 0, 10, 10);
        s.note_arrival(0, 100, 10, 10);
        let deadline = s.profiles()[0].stall_deadline_us(s.config()).unwrap();
        assert_eq!(s.on_pending(0, deadline), Some(1));
        let order = s.polling_order(deadline);
        assert_eq!(order[0], 1, "stalled primary demoted behind backup");
    }
}
