//! [`FederatedSource`] — the adapter that makes a set of mirrored /
//! partially-replicated candidates look like one ordinary [`Source`].
//!
//! The engine (SimDriver, CorrectiveExec, the baselines) polls it exactly
//! like any other source; internally every poll consults the
//! [`PermutationScheduler`], pulls from the best-ranked active candidate,
//! dedupes by the relation key so overlapping replicas union correctly,
//! and fails over / hedges when the active candidate stalls past its
//! profile-derived threshold.
//!
//! ## Completion rule
//!
//! The federated stream is exhausted when either
//! * a candidate whose [`SourceDescriptor::complete`] flag is set (a full
//!   mirror) reaches EOF — everything it held was delivered or deduped, or
//! * every candidate (including late-activated standbys) reaches EOF.
//!
//! Partial replicas must jointly cover the relation for the union to be
//! complete; the key-dedupe makes any *overlap* harmless.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use tukwila_relation::column::{hash_keys_into, key_elem_eq, tuple_key_hash, value_key_eq};
use tukwila_relation::value::{group_key, GroupKey};
use tukwila_relation::{ColumnarBatch, Error, Key, Result, Schema, Tuple};
use tukwila_source::{Poll, Source, SourceDescriptor, SourceProgressView};
use tukwila_stats::clock::{Clock, VirtualClock};
use tukwila_stats::{ArrivalSchedule, RateEstimator};

use crate::catalog::FederationConfig;
use crate::scheduler::PermutationScheduler;

/// Pass-through hasher for keys that are already well-mixed key hashes
/// ([`tuple_key_hash`] ends in a multiply), sparing the seen-set a second
/// SipHash pass per probe.
#[derive(Default)]
struct KeyHashId(u64);

impl Hasher for KeyHashId {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, _: &[u8]) {
        unreachable!("KeyHashId only hashes u64 key hashes");
    }
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// The key-based dedupe shared by the sequential [`FederatedSource`] and
/// the threaded [`crate::concurrent::ConcurrentFederatedSource`]: drop
/// keys another replica already delivered, and catch misdeclared keys by
/// provenance (a candidate re-delivering its *own* key proves the
/// declared key columns are not unique).
///
/// The seen-set is bucketed by a stable composite-key hash computed once
/// per tuple with no allocation ([`tuple_key_hash`]); the `GroupKey` is
/// only materialized when a key is inserted, and the columnar entry point
/// ([`KeyDedup::filter_columnar`]) hashes whole batches with one pass per
/// key column.
pub struct KeyDedup {
    rel_id: u32,
    key_cols: Vec<usize>,
    /// Key-hash → indices into `entries` (hash collisions resolved by the
    /// exact key comparison below).
    buckets: HashMap<u64, Vec<u32>, BuildHasherDefault<KeyHashId>>,
    /// Keys delivered to the engine, with the candidate that delivered
    /// each first.
    entries: Vec<(GroupKey, usize)>,
}

impl KeyDedup {
    /// A dedupe for `rel_id` keyed on `key_cols`.
    pub fn new(rel_id: u32, key_cols: Vec<usize>) -> KeyDedup {
        KeyDedup {
            rel_id,
            key_cols,
            buckets: HashMap::default(),
            entries: Vec::new(),
        }
    }

    /// Distinct keys delivered so far.
    pub fn seen_keys(&self) -> usize {
        self.entries.len()
    }

    /// Find the first-delivering candidate of the key in `bucket` equal
    /// to the key of `t` (by per-column comparison, no allocation).
    fn probe_row(&self, bucket: &[u32], t: &Tuple) -> Option<usize> {
        for &ei in bucket {
            let (k, who) = &self.entries[ei as usize];
            if k.iter()
                .zip(&self.key_cols)
                .all(|(ke, &c)| value_key_eq(t.get(c), ke))
            {
                return Some(*who);
            }
        }
        None
    }

    #[track_caller]
    fn assert_fresh_provenance(&self, first: usize, candidate: usize, name: &str) {
        assert_ne!(
            first, candidate,
            "relation {}: candidate '{name}' delivered key columns {:?} twice — \
             the declared key is not unique, so deduping would drop real tuples",
            self.rel_id, self.key_cols,
        );
    }

    /// Filter `batch` down to tuples whose key has not been delivered yet.
    ///
    /// Panics if `candidate` (identified by `name` in the diagnostic)
    /// re-delivers a key it delivered itself: each candidate reads its own
    /// data sequentially exactly once, so that can only mean the declared
    /// key columns are not a real key, and silently dropping the tuple
    /// would corrupt the union.
    pub fn filter(&mut self, candidate: usize, name: &str, batch: Vec<Tuple>) -> Vec<Tuple> {
        let mut fresh = Vec::with_capacity(batch.len());
        for t in batch {
            let h = tuple_key_hash(&t, &self.key_cols);
            match self
                .buckets
                .get(&h)
                .and_then(|bucket| self.probe_row(bucket, &t))
            {
                Some(first) => self.assert_fresh_provenance(first, candidate, name),
                None => {
                    let ei = self.entries.len() as u32;
                    self.entries
                        .push((group_key(t.values(), &self.key_cols), candidate));
                    self.buckets.entry(h).or_default().push(ei);
                    fresh.push(t);
                }
            }
        }
        fresh
    }

    /// [`KeyDedup::filter`] over a columnar batch: key hashes for the
    /// whole batch are computed with one pass per key column, and the
    /// seen-set is probed in *stages* — a tight read-only bucket-lookup
    /// sweep, then exact key verification, then an ordered insert pass
    /// over the rows that survived. The read-only sweeps have no
    /// mutation or branching in their bodies, so the out-of-order core
    /// overlaps the (cache-missing) hash-table reads of many rows at
    /// once; on duplicate-heavy feeds — the normal case for mirrored
    /// candidates — this is where the columnar path wins. Fresh rows
    /// still re-probe in row order, which is what catches an intra-batch
    /// key redelivery exactly like the row path does.
    pub fn filter_columnar(
        &mut self,
        candidate: usize,
        name: &str,
        batch: &ColumnarBatch,
        hash_buf: &mut Vec<u64>,
    ) -> Vec<Tuple> {
        /// Bucket-hit marker for "more than one entry, re-fetch the list".
        const MULTI: u32 = u32::MAX;
        if batch.num_rows() == 0 {
            // A rowless batch has no columns to hash (or deliver).
            return Vec::new();
        }
        hash_keys_into(batch, &self.key_cols, hash_buf);
        let rows = batch.selected_indices();

        // Stage 1: bucket lookups only. `hits` records (slot, sole entry
        // index) — or MULTI for the rare collision bucket.
        let mut hits: Vec<(u32, u32)> = Vec::new();
        for (s, &r) in rows.iter().enumerate() {
            if let Some(bucket) = self.buckets.get(&hash_buf[r]) {
                let ei = if bucket.len() == 1 { bucket[0] } else { MULTI };
                hits.push((s as u32, ei));
            }
        }

        // Stage 2: exact key verification for hash hits (still read-only;
        // a non-equal key is just a 64-bit hash collision and stays a
        // fresh candidate).
        let mut dup = vec![false; rows.len()];
        for &(s, ei) in &hits {
            let r = rows[s as usize];
            let verify = |ei: u32| {
                let (k, who) = &self.entries[ei as usize];
                k.iter()
                    .zip(&self.key_cols)
                    .all(|(ke, &c)| key_elem_eq(batch.column(c), r, ke))
                    .then_some(*who)
            };
            let seen_by = if ei != MULTI {
                verify(ei)
            } else {
                self.buckets[&hash_buf[r]].iter().copied().find_map(verify)
            };
            if let Some(first) = seen_by {
                self.assert_fresh_provenance(first, candidate, name);
                dup[s as usize] = true;
            }
        }

        // Stage 3 prelude: arena-build the fresh rows' `GroupKey`s
        // column-major (one column dispatch per key column instead of one
        // per row × column) and reserve the seen-set growth once for the
        // whole batch. Every non-duplicate row either inserts its key or
        // panics on provenance — stage-3 bucket hits can only be entries
        // this batch just inserted (`who == candidate`) or hash collisions
        // — so the arena is consumed exactly in row order.
        let fresh_rows: Vec<usize> = rows
            .iter()
            .enumerate()
            .filter(|&(s, _)| !dup[s])
            .map(|(_, &r)| r)
            .collect();
        let k = self.key_cols.len();
        let mut flat: Vec<Key> = vec![Key::Null; fresh_rows.len() * k];
        for (ci, &c) in self.key_cols.iter().enumerate() {
            let col = batch.column(c);
            for (j, &r) in fresh_rows.iter().enumerate() {
                flat[j * k + ci] = col.key(r);
            }
        }
        let mut arena = (0..fresh_rows.len()).map(|j| {
            let key: GroupKey = flat[j * k..(j + 1) * k].to_vec().into_boxed_slice();
            key
        });
        self.entries.reserve(fresh_rows.len());
        self.buckets.reserve(fresh_rows.len());

        // Stage 3: ordered probe-and-insert over the fresh candidates.
        // The re-probe is not redundant: an earlier row of *this* batch
        // may have inserted the key (same-candidate redelivery → panic),
        // and stage-1 misses may collide with stage-3 inserts.
        let mut fresh = Vec::with_capacity(fresh_rows.len());
        for (s, &r) in rows.iter().enumerate() {
            if dup[s] {
                continue;
            }
            let h = hash_buf[r];
            let seen_by = self.buckets.get(&h).and_then(|bucket| {
                bucket.iter().find_map(|&ei| {
                    let (k, who) = &self.entries[ei as usize];
                    k.iter()
                        .zip(&self.key_cols)
                        .all(|(ke, &c)| key_elem_eq(batch.column(c), r, ke))
                        .then_some(*who)
                })
            });
            let key = arena.next().expect("arena covers every non-dup row");
            match seen_by {
                Some(first) => self.assert_fresh_provenance(first, candidate, name),
                None => {
                    let ei = self.entries.len() as u32;
                    self.entries.push((key, candidate));
                    self.buckets.entry(h).or_default().push(ei);
                    fresh.push(batch.tuple_at(r));
                }
            }
        }
        fresh
    }
}

/// Validate a candidate set for one relation: at least one candidate, a
/// shared `rel_id` and schema, key columns within arity. Returns the
/// shared `(rel_id, schema)`.
pub(crate) fn validate_candidates(
    key_cols: &[usize],
    candidates: &[Box<dyn Source>],
) -> Result<(u32, Schema)> {
    let first = candidates
        .first()
        .ok_or_else(|| Error::Plan("federated source needs at least one candidate".into()))?;
    let rel_id = first.rel_id();
    let schema = first.schema().clone();
    if key_cols.is_empty() || key_cols.iter().any(|&c| c >= schema.arity()) {
        return Err(Error::Plan(format!(
            "relation {rel_id}: key columns {key_cols:?} invalid for arity {}",
            schema.arity()
        )));
    }
    for c in candidates {
        if c.rel_id() != rel_id {
            return Err(Error::Plan(format!(
                "candidate '{}' serves relation {}, expected {rel_id}",
                c.name(),
                c.rel_id()
            )));
        }
        if c.schema() != &schema {
            return Err(Error::Plan(format!(
                "candidate '{}' schema disagrees within relation {rel_id}",
                c.name()
            )));
        }
    }
    Ok((rel_id, schema))
}

/// Post-run statistics for one candidate.
#[derive(Debug, Clone)]
pub struct CandidateReport {
    /// The candidate's registration-time descriptor.
    pub descriptor: SourceDescriptor,
    /// Raw tuples pulled from this candidate.
    pub delivered: u64,
    /// Tuples dropped because another replica already delivered the key.
    pub duplicates: u64,
    /// Times the candidate was declared stalled.
    pub stalls: u64,
    /// Whether the candidate was ever activated (standbys that were never
    /// needed stay `false`).
    pub activated: bool,
    /// Whether the candidate reached end of stream.
    pub eof: bool,
    /// Observed delivery rate (tuples per timeline second), if profiled.
    pub rate_tuples_per_sec: Option<f64>,
    /// Threaded mode only: times this candidate's producer found its
    /// delivery queue full and had to block (backpressure). Always 0 in
    /// sequential mode, which has no queues.
    pub blocked_sends: u64,
}

/// Post-run statistics for a whole federated relation.
#[derive(Debug, Clone)]
pub struct FederationReport {
    /// The federated base relation.
    pub rel_id: u32,
    /// Display name of the federated adapter.
    pub name: String,
    /// Distinct tuples handed to the engine.
    pub delivered: u64,
    /// Candidate activations beyond the first (failovers/hedges).
    pub failovers: u64,
    /// Stalls whose hedge the delivery-model cost gate declined — races
    /// the legacy stall-only rule would have started.
    pub declined_hedges: u64,
    /// Standbys never activated because their declared key range was
    /// already fully delivered by drained candidates.
    pub skipped_covered: u64,
    /// Per-candidate statistics, in registration order.
    pub candidates: Vec<CandidateReport>,
}

/// One relation served by N candidate sources behind an online
/// permutation scheduler. Implements [`Source`], so the rest of the
/// engine runs over it unchanged.
pub struct FederatedSource {
    rel_id: u32,
    name: String,
    schema: Schema,
    candidates: Vec<Box<dyn Source>>,
    scheduler: PermutationScheduler,
    /// The dedupe set (with misdeclared-key provenance check), shared
    /// logic with the threaded adapter.
    dedup: KeyDedup,
    /// The timeline all scheduling decisions are stamped against. Under
    /// the default [`VirtualClock`] the driver's `poll(now_us, ..)`
    /// argument advances it, reproducing the seed behavior exactly; under
    /// a wall clock real time is authoritative and the poll argument is
    /// ignored.
    clock: Arc<dyn Clock>,
    /// What the engine observes: distinct tuples and their arrival rate.
    fed_rate: RateEstimator,
    delivered: u64,
    done: bool,
}

impl FederatedSource {
    /// Build over the candidate set for one relation. All candidates must
    /// serve the same `rel_id` with identical schemas; `key_cols` names
    /// the relation's (possibly composite) key, used to dedupe
    /// overlapping deliveries.
    ///
    /// `key_cols` must actually be unique within the relation — deduping
    /// on a non-key would silently drop legitimate tuples. This cannot be
    /// checked up front (sources are sequential and opaque), but a
    /// duplicate key arriving from the *same* candidate proves the
    /// declaration wrong, and `poll` panics with a diagnostic rather than
    /// corrupt the answer.
    pub fn new(
        key_cols: Vec<usize>,
        candidates: Vec<Box<dyn Source>>,
        config: FederationConfig,
    ) -> Result<FederatedSource> {
        FederatedSource::with_clock(key_cols, candidates, config, Arc::new(VirtualClock::new()))
    }

    /// [`FederatedSource::new`] with an explicit clock. The default is a
    /// private virtual clock driven by the `poll` argument (the seed
    /// behavior); pass the run's shared clock to stamp scheduling
    /// decisions against the same timeline the driver uses — including a
    /// wall clock for sequential real-time pacing.
    pub fn with_clock(
        key_cols: Vec<usize>,
        candidates: Vec<Box<dyn Source>>,
        config: FederationConfig,
        clock: Arc<dyn Clock>,
    ) -> Result<FederatedSource> {
        let (rel_id, schema) = validate_candidates(&key_cols, &candidates)?;
        let name = format!("fed({}×{})", candidates[0].name(), candidates.len());
        let mut scheduler = PermutationScheduler::new(candidates.len(), config);
        scheduler.set_coverage(
            candidates
                .iter()
                .map(|c| c.descriptor().key_range)
                .collect(),
        );
        scheduler.set_declared_rates(
            candidates
                .iter()
                .map(|c| c.descriptor().declared_rate_tuples_per_sec)
                .collect(),
        );
        scheduler.set_identity(
            name.clone(),
            candidates.iter().map(|c| c.name().to_string()).collect(),
        );
        // Serving mode: snapshot the cross-query learning store at
        // admission. The seed is immutable for the run; observations
        // flow back exactly once, at union completion.
        if let Some(store) = scheduler.config().learning.clone() {
            let names: Vec<String> = candidates.iter().map(|c| c.name().to_string()).collect();
            scheduler.seed_learned(store.snapshot(&names));
        }
        Ok(FederatedSource {
            rel_id,
            name,
            schema,
            candidates,
            scheduler,
            dedup: KeyDedup::new(rel_id, key_cols),
            clock,
            fed_rate: RateEstimator::default(),
            delivered: 0,
            done: false,
        })
    }

    /// The online permutation scheduler driving this adapter.
    pub fn scheduler(&self) -> &PermutationScheduler {
        &self.scheduler
    }

    /// Journal the end-of-union tallies (distinct tuples, dedup hits,
    /// stalls) — one bounded set of counter events per relation, emitted
    /// exactly once when the union completes.
    fn trace_completion(&self, now_us: u64) {
        let trace = &self.scheduler.config().trace;
        if !trace.is_enabled() {
            return;
        }
        let dup: u64 = self.scheduler.profiles().iter().map(|p| p.duplicates).sum();
        let stalls: u64 = self.scheduler.profiles().iter().map(|p| p.stalls).sum();
        for (name, value) in [
            ("tuples", self.delivered),
            ("dedup_hits", dup),
            ("stalls", stalls),
        ] {
            if value > 0 {
                trace.record_at(
                    now_us,
                    tukwila_stats::TraceEvent::Counter {
                        name: name.into(),
                        scope: self.name.clone(),
                        value,
                    },
                );
            }
        }
    }

    /// Per-candidate statistics snapshot (available mid-run or after).
    pub fn report(&self) -> FederationReport {
        FederationReport {
            rel_id: self.rel_id,
            name: self.name.clone(),
            delivered: self.delivered,
            failovers: self.scheduler.failovers(),
            declined_hedges: self.scheduler.declined_hedges(),
            skipped_covered: self.scheduler.skipped_covered(),
            candidates: self
                .candidates
                .iter()
                .zip(self.scheduler.profiles())
                .map(|(c, p)| CandidateReport {
                    descriptor: c.descriptor(),
                    delivered: p.delivered,
                    duplicates: p.duplicates,
                    stalls: p.stalls,
                    activated: p.is_active(),
                    eof: p.eof,
                    rate_tuples_per_sec: p.rate.rate_tuples_per_sec(),
                    blocked_sends: 0,
                })
                .collect(),
        }
    }
}

impl Source for FederatedSource {
    fn rel_id(&self) -> u32 {
        self.rel_id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, now_us: u64, max_tuples: usize) -> Poll {
        if self.done {
            return Poll::Eof;
        }
        let now_us = self.clock.observe(now_us);
        let mut wake: Option<u64> = None;
        let note = |wake: &mut Option<u64>, t: u64| {
            *wake = Some(wake.map_or(t, |w: u64| w.min(t)));
        };
        // A sweep restarts whenever the candidate set changes mid-poll
        // (failover activation, EOF, or an all-duplicates batch that
        // should be retried immediately). Each restart strictly consumes
        // candidate data or candidate count, so the loop terminates.
        'sweep: loop {
            let order = self.scheduler.polling_order(now_us);
            if order.is_empty() {
                // Every activated candidate is EOF. Uncovered standbys
                // may still hold tuples of a partially-replicated
                // relation; otherwise the union is complete.
                if self.scheduler.activate_standby(now_us).is_some() {
                    continue 'sweep;
                }
                self.done = true;
                self.trace_completion(now_us);
                self.scheduler.publish_learning();
                return Poll::Eof;
            }
            for idx in order {
                match self.candidates[idx].poll(now_us, max_tuples) {
                    Poll::Ready(batch) => {
                        let raw = batch.len() as u64;
                        let fresh = self.dedup.filter(idx, self.candidates[idx].name(), batch);
                        self.scheduler
                            .note_arrival(idx, now_us, raw, fresh.len() as u64);
                        if fresh.is_empty() {
                            // Entire batch was already delivered by a
                            // faster replica; pull more within this call.
                            continue 'sweep;
                        }
                        self.delivered += fresh.len() as u64;
                        self.fed_rate.observe_arrival(now_us, fresh.len() as u64);
                        return Poll::Ready(fresh);
                    }
                    Poll::Pending { next_ready_us } => {
                        if self.scheduler.on_pending(idx, now_us).is_some() {
                            // Fresh stall: a standby was activated; poll
                            // it in this same call.
                            continue 'sweep;
                        }
                        note(&mut wake, next_ready_us);
                    }
                    Poll::Eof => {
                        self.scheduler.note_eof(idx);
                        if self.candidates[idx].descriptor().complete {
                            // A fully drained full mirror: every tuple it
                            // held was delivered (or deduped), so the
                            // union is complete.
                            self.done = true;
                            self.trace_completion(now_us);
                            self.scheduler.publish_learning();
                            return Poll::Eof;
                        }
                        continue 'sweep;
                    }
                }
            }
            // All pollable candidates are pending: wake at the earliest
            // arrival or the earliest stall deadline, whichever lets the
            // scheduler act first.
            if let Some(d) = self.scheduler.next_deadline_us(now_us) {
                note(&mut wake, d);
            }
            let next_ready_us = wake.unwrap_or(now_us + 1).max(now_us + 1);
            return Poll::Pending { next_ready_us };
        }
    }

    fn progress(&self) -> SourceProgressView {
        SourceProgressView {
            tuples_read: self.delivered,
            // Cardinality of the deduped union is unknown until EOF, the
            // data-integration norm.
            fraction_read: None,
            eof: self.done,
        }
    }

    fn descriptor(&self) -> SourceDescriptor {
        SourceDescriptor {
            rel_id: self.rel_id,
            name: self.name.clone(),
            complete: true,
            key_range: None,
            declared_rate_tuples_per_sec: None,
        }
    }

    fn observed_rate(&self) -> Option<f64> {
        self.fed_rate.rate_tuples_per_sec()
    }

    fn observed_schedule(&self) -> Option<ArrivalSchedule> {
        ArrivalSchedule::from_estimator(&self.fed_rate)
    }

    fn recalibrate_delivery_costs(&mut self, costs: &tukwila_stats::DeliveryCosts) {
        self.scheduler.set_hedge_costs(costs.clone());
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{DataType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("t.k", DataType::Int),
            Field::new("t.v", DataType::Int),
        ])
    }

    fn tuple(k: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::Int(k * 10)])
    }

    #[test]
    fn dedup_row_and_columnar_paths_agree() {
        let mk = |k: Option<i64>, s: &str| {
            Tuple::new(vec![
                k.map_or(Value::Null, Value::Int),
                Value::str(s),
                Value::Int(7),
            ])
        };
        // Composite (nullable int, string) key; candidate 0 then an
        // overlapping candidate 1.
        let b0 = vec![mk(Some(1), "a"), mk(None, "n"), mk(Some(2), "b")];
        let b1 = vec![
            mk(Some(2), "b"),
            mk(Some(3), "c"),
            mk(None, "n"),
            mk(Some(1), "z"),
        ];

        let mut row = KeyDedup::new(9, vec![0, 1]);
        let r0 = row.filter(0, "c0", b0.clone());
        let r1 = row.filter(1, "c1", b1.clone());

        let mut col = KeyDedup::new(9, vec![0, 1]);
        let mut hashes = Vec::new();
        let c0 = col.filter_columnar(0, "c0", &ColumnarBatch::from_tuples(&b0), &mut hashes);
        let c1 = col.filter_columnar(1, "c1", &ColumnarBatch::from_tuples(&b1), &mut hashes);

        assert_eq!(r0, c0);
        assert_eq!(r1, c1);
        assert_eq!(r1.len(), 2, "overlap (2,b) and (NULL,n) deduped");
        assert_eq!(row.seen_keys(), col.seen_keys());

        // Mixed representations share one seen-set.
        let mut mixed = KeyDedup::new(9, vec![0, 1]);
        let m0 = mixed.filter(0, "c0", b0.clone());
        let m1 = mixed.filter_columnar(1, "c1", &ColumnarBatch::from_tuples(&b1), &mut hashes);
        assert_eq!(m0, r0);
        assert_eq!(m1, r1);
    }

    #[test]
    #[should_panic(expected = "delivered key columns")]
    fn dedup_same_candidate_redelivery_panics() {
        let mut d = KeyDedup::new(1, vec![0]);
        d.filter(0, "c0", vec![tuple(5)]);
        d.filter(0, "c0", vec![tuple(5)]);
    }

    #[test]
    #[should_panic(expected = "delivered key columns")]
    fn dedup_columnar_same_candidate_redelivery_panics() {
        let mut d = KeyDedup::new(1, vec![0]);
        let mut hashes = Vec::new();
        let b = ColumnarBatch::from_tuples(&[tuple(5)]);
        d.filter_columnar(0, "c0", &b, &mut hashes);
        d.filter_columnar(0, "c0", &b, &mut hashes);
    }

    /// Test source with an explicit per-tuple arrival schedule.
    struct Scripted {
        rel_id: u32,
        name: String,
        schema: Schema,
        arrivals: Vec<(u64, Tuple)>,
        pos: usize,
        complete: bool,
    }

    impl Scripted {
        fn new(name: &str, arrivals: Vec<(u64, Tuple)>) -> Scripted {
            Scripted {
                rel_id: 1,
                name: name.into(),
                schema: schema(),
                arrivals,
                pos: 0,
                complete: true,
            }
        }

        fn partial(mut self) -> Scripted {
            self.complete = false;
            self
        }
    }

    impl Source for Scripted {
        fn rel_id(&self) -> u32 {
            self.rel_id
        }

        fn name(&self) -> &str {
            &self.name
        }

        fn schema(&self) -> &Schema {
            &self.schema
        }

        fn poll(&mut self, now_us: u64, max_tuples: usize) -> Poll {
            if self.pos >= self.arrivals.len() {
                return Poll::Eof;
            }
            if self.arrivals[self.pos].0 > now_us {
                return Poll::Pending {
                    next_ready_us: self.arrivals[self.pos].0,
                };
            }
            let mut out = Vec::new();
            while self.pos < self.arrivals.len()
                && out.len() < max_tuples
                && self.arrivals[self.pos].0 <= now_us
            {
                out.push(self.arrivals[self.pos].1.clone());
                self.pos += 1;
            }
            Poll::Ready(out)
        }

        fn progress(&self) -> SourceProgressView {
            SourceProgressView {
                tuples_read: self.pos as u64,
                fraction_read: None,
                eof: self.pos >= self.arrivals.len(),
            }
        }

        fn descriptor(&self) -> SourceDescriptor {
            SourceDescriptor {
                rel_id: self.rel_id,
                name: self.name.clone(),
                complete: self.complete,
                key_range: None,
                declared_rate_tuples_per_sec: None,
            }
        }
    }

    /// Drive a federated source like the SimDriver: poll, idle to the
    /// pending instant, repeat. Returns (keys, completion time).
    fn drain(fed: &mut FederatedSource) -> (Vec<i64>, u64) {
        let mut clock = 0u64;
        let mut keys = Vec::new();
        loop {
            match fed.poll(clock, 64) {
                Poll::Ready(batch) => {
                    keys.extend(batch.iter().map(|t| t.get(0).as_int().unwrap()));
                }
                Poll::Pending { next_ready_us } => {
                    assert!(next_ready_us > clock, "pending must move the clock");
                    clock = next_ready_us;
                }
                Poll::Eof => return (keys, clock),
            }
        }
    }

    fn smooth(name: &str, keys: std::ops::Range<i64>, period_us: u64) -> Scripted {
        Scripted::new(
            name,
            keys.clone()
                .enumerate()
                .map(|(i, k)| ((i as u64 + 1) * period_us, tuple(k)))
                .collect(),
        )
    }

    #[test]
    fn single_candidate_passes_through() {
        let mut fed = FederatedSource::new(
            vec![0],
            vec![Box::new(smooth("m0", 0..50, 100))],
            FederationConfig::default(),
        )
        .unwrap();
        let (mut keys, t) = drain(&mut fed);
        keys.sort_unstable();
        assert_eq!(keys, (0..50).collect::<Vec<_>>());
        assert_eq!(t, 5_000);
        assert_eq!(fed.report().failovers, 0);
        assert!(fed.progress().eof);
    }

    #[test]
    fn stalled_primary_fails_over_no_loss_no_dupes() {
        // Primary delivers keys 0..20 at 1ms cadence, then goes silent
        // forever. Backup mirrors the whole relation at 5ms cadence.
        let mut arrivals: Vec<(u64, Tuple)> = (0..20)
            .map(|k| ((k as u64 + 1) * 1_000, tuple(k)))
            .collect();
        arrivals.push((u64::MAX, tuple(999))); // never arrives
        let primary = Scripted::new("fast-then-dead", arrivals);
        let backup = smooth("steady", 0..100, 5_000);
        let mut fed = FederatedSource::new(
            vec![0],
            vec![Box::new(primary), Box::new(backup)],
            FederationConfig::default(),
        )
        .unwrap();
        let (mut keys, _) = drain(&mut fed);
        let delivered = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), delivered, "no duplicates reached the engine");
        assert_eq!(keys, (0..100).collect::<Vec<_>>(), "no lost tuples");
        let report = fed.report();
        assert_eq!(report.failovers, 1);
        assert_eq!(report.candidates[0].stalls, 1);
        assert!(report.candidates[1].activated);
        assert!(report.candidates[1].duplicates >= 20, "overlap deduped");
    }

    #[test]
    fn failover_happens_at_profile_threshold_not_before() {
        let mut arrivals: Vec<(u64, Tuple)> = (0..10)
            .map(|k| ((k as u64 + 1) * 1_000, tuple(k)))
            .collect();
        arrivals.push((u64::MAX, tuple(999)));
        let mut fed = FederatedSource::new(
            vec![0],
            vec![
                Box::new(Scripted::new("p", arrivals)),
                Box::new(smooth("b", 0..11, 2_000)),
            ],
            FederationConfig::default(),
        )
        .unwrap();
        // Drain the primary's 10 live tuples.
        let mut clock = 0;
        let mut got = 0;
        while got < 10 {
            match fed.poll(clock, 64) {
                Poll::Ready(b) => got += b.len(),
                Poll::Pending { next_ready_us } => clock = next_ready_us,
                Poll::Eof => panic!("premature EOF"),
            }
        }
        assert_eq!(fed.report().failovers, 0);
        // Just under the stall threshold (min floor; smooth 1ms gaps keep
        // the profile term below it): still only the primary.
        let cfg = FederationConfig::default();
        let deadline = fed.scheduler().profiles()[0]
            .stall_deadline_us(&cfg)
            .unwrap();
        match fed.poll(deadline - 1, 64) {
            Poll::Pending { next_ready_us } => {
                assert_eq!(next_ready_us, deadline, "wake at the stall deadline");
            }
            other => panic!("expected pending, got {other:?}"),
        }
        assert_eq!(fed.report().failovers, 0);
        // At the deadline: failover to the backup.
        let _ = fed.poll(deadline, 64);
        assert_eq!(fed.report().failovers, 1);
    }

    #[test]
    fn partial_replicas_union_by_key() {
        // Replicas cover 0..60 and 40..100 (overlap 40..60).
        let r1 = smooth("r1", 0..60, 1_000).partial();
        let r2 = smooth("r2", 40..100, 1_000).partial();
        let mut fed = FederatedSource::new(
            vec![0],
            vec![Box::new(r1), Box::new(r2)],
            FederationConfig::default(),
        )
        .unwrap();
        let (mut keys, _) = drain(&mut fed);
        let delivered = keys.len();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), delivered, "overlap deduped");
        assert_eq!(keys, (0..100).collect::<Vec<_>>(), "union complete");
        // r1's EOF alone must not end the stream: r2 was activated (here
        // via standby activation after r1 drained, since r1 never stalls).
        assert!(fed.report().candidates[1].activated);
    }

    #[test]
    fn full_mirror_eof_completes_even_with_dead_sibling() {
        let dead = Scripted::new("dead", vec![(u64::MAX, tuple(0))]);
        let live = smooth("live", 0..30, 1_000);
        let mut fed = FederatedSource::new(
            vec![0],
            vec![Box::new(dead), Box::new(live)],
            FederationConfig::default(),
        )
        .unwrap();
        let (mut keys, _) = drain(&mut fed);
        keys.sort_unstable();
        assert_eq!(keys, (0..30).collect::<Vec<_>>());
        assert!(fed.progress().eof, "live full mirror EOF ends the union");
    }

    #[test]
    fn deterministic_under_identical_schedules() {
        let mk = || {
            let mut arrivals: Vec<(u64, Tuple)> =
                (0..25).map(|k| ((k as u64 + 1) * 700, tuple(k))).collect();
            arrivals.push((u64::MAX, tuple(999)));
            FederatedSource::new(
                vec![0],
                vec![
                    Box::new(Scripted::new("p", arrivals)) as Box<dyn Source>,
                    Box::new(smooth("b", 0..80, 3_000)),
                ],
                FederationConfig::default(),
            )
            .unwrap()
        };
        let (k1, t1) = drain(&mut mk());
        let (k2, t2) = drain(&mut mk());
        assert_eq!(k1, k2, "same schedule, same delivery order");
        assert_eq!(t1, t2, "same schedule, same completion time");
    }

    #[test]
    fn rejects_mismatched_candidates() {
        let a = smooth("a", 0..5, 100);
        let mut b = smooth("b", 0..5, 100);
        b.rel_id = 2;
        assert!(FederatedSource::new(
            vec![0],
            vec![Box::new(a), Box::new(b)],
            FederationConfig::default()
        )
        .is_err());
        assert!(
            FederatedSource::new(
                vec![9],
                vec![Box::new(smooth("c", 0..5, 100)) as Box<dyn Source>],
                FederationConfig::default()
            )
            .is_err(),
            "key column out of range"
        );
        assert!(FederatedSource::new(vec![0], vec![], FederationConfig::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "the declared key is not unique")]
    fn misdeclared_key_is_caught_not_silently_dropped() {
        // Two tuples share key 5: column 0 is not a real key, so deduping
        // on it would drop the second tuple. The provenance check panics
        // instead.
        let arrivals = vec![(100, tuple(5)), (200, tuple(5))];
        let mut fed = FederatedSource::new(
            vec![0],
            vec![Box::new(Scripted::new("bad-key", arrivals)) as Box<dyn Source>],
            FederationConfig::default(),
        )
        .unwrap();
        let _ = drain(&mut fed);
    }

    #[test]
    fn observed_rate_reflects_engine_visible_stream() {
        let mut fed = FederatedSource::new(
            vec![0],
            vec![Box::new(smooth("m", 0..100, 1_000))],
            FederationConfig::default(),
        )
        .unwrap();
        assert_eq!(fed.observed_rate(), None);
        let _ = drain(&mut fed);
        let rate = fed.observed_rate().unwrap();
        // 100 tuples, one per ms => ~1000 tuples/s.
        assert!((rate - 1_010.0).abs() < 25.0, "rate={rate}");
    }
}
