//! The federated source catalog: registration of candidate sources
//! (mirrors and partial replicas) per base relation, and construction of
//! the [`FederatedSource`] adapters the engine runs over.

use std::collections::BTreeMap;
use std::sync::Arc;

use tukwila_relation::{Error, Result};
use tukwila_source::{Poll, Source, SourceDescriptor, SourceProgressView};
use tukwila_stats::{Clock, DeliveryCosts, TraceSink};

use crate::federated::FederatedSource;

/// Tunables of the federation layer. Defaults are deliberately
/// conservative: a source must be silent for `stall_sigma` standard
/// deviations beyond its own smoothed inter-arrival gap (and at least
/// `min_stall_us`) before a hedge is even *considered*; the
/// [`DeliveryCosts`]-driven gate then activates the race only when its
/// expected latency win exceeds its modeled waste.
#[derive(Debug, Clone)]
pub struct FederationConfig {
    /// Stall threshold = `ewma_gap + stall_sigma · σ(gap)`.
    pub stall_sigma: f64,
    /// Floor of the stall threshold (µs); also the threshold before any
    /// gap has been observed.
    pub min_stall_us: u64,
    /// Ranking score assumed for candidates with no observed rate window
    /// yet (tuples per virtual second). Also the standby's assumed
    /// delivery rate in the hedge gate's break-even inequality; `0.0`
    /// falls back to the best healthy candidate's observed rate (the
    /// mirror assumption).
    pub prior_rate_tuples_per_sec: f64,
    /// Unit prices of the hedge gate's waste side (duplicate dedup work,
    /// queue backpressure, core contention). A stall only activates a
    /// standby when the `DeliveryModel`'s expected latency win exceeds
    /// the waste priced here. `None` restores the legacy unconditional
    /// stall-only hedging (deprecated; kept for A/B comparison only).
    pub hedge_costs: Option<DeliveryCosts>,
    /// When true (default), a stalled candidate stays active after the
    /// scheduler activates its backup — the two are raced and deduped
    /// (hedged read). When false, a stalled candidate is demoted to the
    /// back of the permutation, so its backup is preferred while the
    /// stall lasts; the demoted candidate is still drained when everything
    /// ranked ahead of it is pending (demotion, not abandonment).
    pub hedge: bool,
    /// Threaded mode only: bounded depth (in batches) of each candidate's
    /// delivery queue. A full queue blocks that candidate's producer
    /// thread (backpressure) until the consumer catches up.
    pub queue_capacity: usize,
    /// Threaded mode only: how many tuples a producer thread pulls from
    /// its candidate per poll.
    pub producer_batch: usize,
    /// Threaded mode only: how far ahead (timeline µs) the consumer
    /// schedules its next look when every queue is empty and no stall
    /// deadline is nearer. Smaller reacts faster, wakes more.
    pub poll_tick_us: u64,
    /// Adaptivity trace journal. Every hedge-gate evaluation (fired or
    /// declined, with per-candidate win/waste scores), EOF-sweep
    /// activation, and backpressure tally is recorded here. The default
    /// [`TraceSink::disabled`] records nothing at the cost of a branch.
    pub trace: TraceSink,
    /// Cross-query learning store (serving mode). When set, every
    /// adapter built from the catalog snapshots the store's
    /// [`crate::learning::LearnedProfile`]s at construction — learned
    /// rates replace the prior in hedge pricing, and candidates past
    /// queries saw stall without delivering get the
    /// [`FederationConfig::warm_stall_us`] floor — and publishes its own
    /// observations back exactly once, at union completion. `None`
    /// (default) is the single-query behavior: learn from scratch,
    /// publish nowhere.
    pub learning: Option<crate::learning::SharedLearning>,
    /// Warm stall floor (timeline µs) for candidates the learning store
    /// knows as dead (stalled in past queries, never delivered). `None`
    /// (default) keeps the conservative [`FederationConfig::min_stall_us`]
    /// even for known-dead candidates. Only ever applied *before* a
    /// candidate's own gap evidence exists — and never to candidates
    /// with learned healthy rates, so real-time jitter on a live mirror
    /// cannot read as a stall.
    pub warm_stall_us: Option<u64>,
    /// Threaded mode: core budget for the hedge gate's busy-core waste
    /// term. `None` (default) reads the host's
    /// `available_parallelism` — correct when the query is alone.
    /// A serving front end sets this to the admitted query's fair share
    /// of the global [`tukwila_stats::CoreArbiter`] budget, fixed at
    /// admission so hedge decisions stay a pure function of the
    /// timeline.
    pub core_budget: Option<usize>,
}

impl Default for FederationConfig {
    fn default() -> Self {
        FederationConfig {
            stall_sigma: 4.0,
            min_stall_us: 20_000,
            prior_rate_tuples_per_sec: 0.0,
            hedge_costs: Some(DeliveryCosts::default()),
            hedge: true,
            queue_capacity: 8,
            producer_batch: 256,
            poll_tick_us: 500,
            trace: TraceSink::disabled(),
            learning: None,
            warm_stall_us: None,
            core_budget: None,
        }
    }
}

struct RelationEntry {
    key_cols: Vec<usize>,
    candidates: Vec<Box<dyn Source>>,
}

/// Registry of candidate sources per base relation. Relations iterate in
/// `rel_id` order, so building the federated source set is deterministic.
#[derive(Default)]
pub struct FederatedCatalog {
    relations: BTreeMap<u32, RelationEntry>,
    config: FederationConfig,
}

impl FederatedCatalog {
    /// An empty catalog whose adapters will use `config`.
    pub fn new(config: FederationConfig) -> FederatedCatalog {
        FederatedCatalog {
            relations: BTreeMap::new(),
            config,
        }
    }

    /// Register a candidate source for its relation. `key_cols` is the
    /// relation's (possibly composite) key, used to dedupe overlapping
    /// replicas; every candidate of one relation must agree on it.
    pub fn register(&mut self, key_cols: Vec<usize>, source: Box<dyn Source>) -> Result<()> {
        let rel = source.rel_id();
        let entry = self.relations.entry(rel).or_insert_with(|| RelationEntry {
            key_cols: key_cols.clone(),
            candidates: Vec::new(),
        });
        if entry.key_cols != key_cols {
            return Err(Error::Plan(format!(
                "relation {rel}: conflicting key columns {:?} vs {key_cols:?}",
                entry.key_cols
            )));
        }
        if let Some(first) = entry.candidates.first() {
            if first.schema() != source.schema() {
                return Err(Error::Plan(format!(
                    "relation {rel}: mirror '{}' schema disagrees with '{}'",
                    source.name(),
                    first.name()
                )));
            }
        }
        entry.candidates.push(source);
        self.verify_coverage(rel)?;
        Ok(())
    }

    /// Coverage check (run at every registration): when a relation has no
    /// full mirror and its partial replicas declare key ranges, the
    /// declared ranges must jointly cover the relation — contiguous from
    /// the lowest declared bound to the highest, no gaps. Replicas that
    /// declare nothing are legacy-tolerated (coverage is then
    /// unverifiable and completion falls back to all-EOF), but mixing
    /// declared and undeclared partial replicas is an error: the declared
    /// ranges would promise a verification the undeclared one silently
    /// voids.
    fn verify_coverage(&self, rel: u32) -> Result<()> {
        let entry = &self.relations[&rel];
        let descriptors: Vec<SourceDescriptor> =
            entry.candidates.iter().map(|c| c.descriptor()).collect();
        if descriptors.iter().any(|d| d.complete) {
            return Ok(()); // a full mirror covers everything
        }
        let declared: Vec<(i64, i64)> = descriptors.iter().filter_map(|d| d.key_range).collect();
        if declared.is_empty() {
            return Ok(()); // legacy: nothing declared, nothing to verify
        }
        if declared.len() != descriptors.len() {
            return Err(Error::Plan(format!(
                "relation {rel}: {} of {} partial replicas declare key ranges — declare all \
                 of them (or none) so coverage can be verified",
                declared.len(),
                descriptors.len()
            )));
        }
        let mut ranges = declared;
        ranges.sort_unstable();
        let mut frontier = ranges[0].1;
        for &(lo, hi) in &ranges[1..] {
            if lo > frontier.saturating_add(1) {
                return Err(Error::Plan(format!(
                    "relation {rel}: declared replica ranges leave keys ({frontier}, {lo}) \
                     uncovered — the union would silently miss tuples"
                )));
            }
            frontier = frontier.max(hi);
        }
        Ok(())
    }

    /// Number of registered candidates for a relation.
    pub fn candidate_count(&self, rel: u32) -> usize {
        self.relations.get(&rel).map_or(0, |e| e.candidates.len())
    }

    /// Consume the catalog, producing one [`FederatedSource`] per
    /// registered relation (in `rel_id` order) — a drop-in `Vec<Box<dyn
    /// Source>>` for `SimDriver`, `CorrectiveExec`, and the baselines.
    pub fn into_sources(self) -> Result<Vec<Box<dyn Source>>> {
        let config = self.config;
        self.relations
            .into_values()
            .map(|entry| {
                FederatedSource::new(entry.key_cols, entry.candidates, config.clone())
                    .map(|f| Box::new(f) as Box<dyn Source>)
            })
            .collect()
    }

    /// Consume the catalog, producing one
    /// [`ConcurrentFederatedSource`](crate::concurrent::ConcurrentFederatedSource)
    /// per registered relation: every candidate runs on its own producer
    /// thread, racing for real against `clock` (normally an accelerated
    /// [`tukwila_stats::WallClock`] shared with the driver).
    pub fn into_concurrent_sources(self, clock: Arc<dyn Clock>) -> Result<Vec<Box<dyn Source>>> {
        let config = self.config;
        self.relations
            .into_values()
            .map(|entry| {
                crate::concurrent::ConcurrentFederatedSource::new(
                    entry.key_cols,
                    entry.candidates,
                    config.clone(),
                    clock.clone(),
                )
                .map(|f| Box::new(f) as Box<dyn Source>)
            })
            .collect()
    }
}

/// Marks a source as holding only part of its relation. The federated
/// scheduler then knows the relation is complete only when *all* its
/// replicas reach EOF (a full mirror's EOF alone is enough otherwise).
pub struct PartialReplica {
    inner: Box<dyn Source>,
    key_range: Option<(i64, i64)>,
}

impl PartialReplica {
    /// Wrap a source, marking it as covering only part of its relation
    /// with undeclared (legacy, unverifiable) coverage.
    pub fn new(inner: Box<dyn Source>) -> PartialReplica {
        PartialReplica {
            inner,
            key_range: None,
        }
    }

    /// Wrap a source declaring the inclusive key range it covers (over
    /// the first key column). Declared ranges let the catalog verify at
    /// registration time that a relation's replicas jointly cover it, and
    /// let the scheduler skip standbys whose range has already been fully
    /// delivered by drained candidates.
    pub fn with_range(inner: Box<dyn Source>, lo: i64, hi: i64) -> PartialReplica {
        PartialReplica {
            inner,
            key_range: Some((lo.min(hi), lo.max(hi))),
        }
    }
}

/// Attaches a declared delivery rate (catalog metadata, tuples per
/// timeline second) to a source. The hedge gate prices this candidate as
/// a standby with the declared rate instead of the configured prior, so
/// the scheduler can wake the best payer among several parked standbys
/// regardless of registration order.
pub struct DeclaredRate {
    inner: Box<dyn Source>,
    rate_tuples_per_sec: f64,
}

impl DeclaredRate {
    /// Wrap a source, declaring the delivery rate its operator promises.
    pub fn new(inner: Box<dyn Source>, rate_tuples_per_sec: f64) -> DeclaredRate {
        DeclaredRate {
            inner,
            rate_tuples_per_sec: rate_tuples_per_sec.max(0.0),
        }
    }
}

impl Source for DeclaredRate {
    fn rel_id(&self) -> u32 {
        self.inner.rel_id()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schema(&self) -> &tukwila_relation::Schema {
        self.inner.schema()
    }

    fn poll(&mut self, now_us: u64, max_tuples: usize) -> Poll {
        self.inner.poll(now_us, max_tuples)
    }

    fn progress(&self) -> SourceProgressView {
        self.inner.progress()
    }

    fn descriptor(&self) -> SourceDescriptor {
        SourceDescriptor {
            declared_rate_tuples_per_sec: Some(self.rate_tuples_per_sec),
            ..self.inner.descriptor()
        }
    }

    fn observed_rate(&self) -> Option<f64> {
        self.inner.observed_rate()
    }

    fn observed_schedule(&self) -> Option<tukwila_stats::ArrivalSchedule> {
        self.inner.observed_schedule()
    }

    fn quiesce_delivery(&mut self) {
        self.inner.quiesce_delivery();
    }

    fn resume_delivery(&mut self, now_us: u64) {
        self.inner.resume_delivery(now_us);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        self.inner.as_any()
    }
}

impl Source for PartialReplica {
    fn rel_id(&self) -> u32 {
        self.inner.rel_id()
    }

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn schema(&self) -> &tukwila_relation::Schema {
        self.inner.schema()
    }

    fn poll(&mut self, now_us: u64, max_tuples: usize) -> Poll {
        self.inner.poll(now_us, max_tuples)
    }

    fn progress(&self) -> SourceProgressView {
        self.inner.progress()
    }

    fn descriptor(&self) -> SourceDescriptor {
        SourceDescriptor {
            complete: false,
            key_range: self.key_range,
            ..self.inner.descriptor()
        }
    }

    fn observed_rate(&self) -> Option<f64> {
        self.inner.observed_rate()
    }

    fn observed_schedule(&self) -> Option<tukwila_stats::ArrivalSchedule> {
        self.inner.observed_schedule()
    }

    fn quiesce_delivery(&mut self) {
        self.inner.quiesce_delivery();
    }

    fn resume_delivery(&mut self, now_us: u64) {
        self.inner.resume_delivery(now_us);
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        self.inner.as_any()
    }
}
