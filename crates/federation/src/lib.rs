#![warn(missing_docs)]

//! Federated source catalog and online source-permutation scheduling.
//!
//! The paper's engine adapts to the *properties* of each source — delivery
//! rate, burstiness, order, cardinality — but the seed system wires exactly
//! one [`Source`](tukwila_source::Source) per base relation, so there is
//! nothing to choose between when a source misbehaves. Real mediators face
//! the opposite situation: relations are served by several overlapping or
//! mirrored sources, and *which* source to read, in *what order*, is an
//! online decision (cf. "Online Query Scheduling on Source Permutation for
//! Big Data Integration", arXiv:1503.08400, and "Data Source Selection for
//! Information Integration in Big Data Era", arXiv:1610.09506).
//!
//! This crate adds that layer:
//!
//! * [`catalog::FederatedCatalog`] — registers N candidate sources per
//!   base relation: full mirrors (identical content, different delivery
//!   behavior) and [`catalog::PartialReplica`]s that jointly cover the
//!   relation.
//! * [`profile::BehaviorProfile`] — per-candidate statistics learned
//!   online under the virtual clock, built on
//!   [`tukwila_stats::RateEstimator`]: delivery rate, EWMA inter-arrival
//!   gap, burst variance, stall and duplicate counts.
//! * [`scheduler::PermutationScheduler`] — maintains the source
//!   permutation: poll the best-ranked candidate, consider a hedge when
//!   the active one is silent past its profile-derived threshold
//!   (`ewma_gap + k·σ`), and start the race only when the shared
//!   [`tukwila_stats::DeliveryModel`]'s expected latency win exceeds the
//!   modeled waste (duplicate dedup work, queue backpressure, core
//!   contention); re-rank as evidence accumulates, and skip standbys
//!   whose declared key range drained replicas already delivered.
//! * [`federated::FederatedSource`] — wraps it all behind the ordinary
//!   [`Source`](tukwila_source::Source) trait with key-based dedup, so
//!   `SimDriver`, `CorrectiveExec`, and every baseline run over mirrored
//!   sources unchanged. Its observed arrival schedule is published
//!   through `Source::observed_schedule`, which corrective
//!   re-optimization forwards into the optimizer's schedule-aware
//!   overlap costing.
//! * [`concurrent::ConcurrentFederatedSource`] — the same scheduling
//!   logic racing the candidates for real: one producer thread per
//!   candidate behind a bounded `tukwila_exec::queue_pair` queue,
//!   consumed and re-ranked from real arrival timestamps.
//!
//! Time comes from a [`tukwila_stats::Clock`] — the dual-clock design.
//! Under the default [`tukwila_stats::VirtualClock`] federated executions
//! are deterministic and replayable (the acceptance property: any source
//! permutation yields the same final answer, and the adaptive permutation
//! completes no later than the worst static choice). Under a
//! [`tukwila_stats::WallClock`] the mirrors race on real threads, and the
//! invariant becomes: the *deduped answer set* is identical to the
//! virtual run's, whatever the interleaving.

pub mod catalog;
pub mod concurrent;
pub mod federated;
pub mod learning;
pub mod profile;
pub mod scheduler;

pub use catalog::{DeclaredRate, FederatedCatalog, FederationConfig, PartialReplica};
pub use concurrent::ConcurrentFederatedSource;
pub use federated::{CandidateReport, FederatedSource, FederationReport, KeyDedup};
pub use learning::{LearnedProfile, SharedLearning};
pub use profile::BehaviorProfile;
pub use scheduler::PermutationScheduler;
