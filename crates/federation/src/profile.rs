//! Per-candidate behavior profiles learned online.
//!
//! Each candidate source of a federated relation carries a
//! [`BehaviorProfile`]: the delivery-rate/burstiness estimator from
//! `tukwila-stats` plus federation-level counters (stalls, duplicates,
//! activation time). The scheduler ranks candidates by
//! [`BehaviorProfile::score`] and derives per-candidate stall thresholds
//! from the observed gap distribution, so a source that is *normally*
//! bursty is not declared dead by its ordinary silences while a smooth
//! source is failed over quickly.

use tukwila_stats::{ArrivalSchedule, RateEstimator};

use crate::catalog::FederationConfig;
use crate::learning::LearnedProfile;

/// Online profile of one candidate source. All timestamps are timeline
/// µs from whichever [`tukwila_stats::Clock`] drives the run — the
/// profile itself is clock-agnostic, which is what lets the same
/// scheduling logic serve the deterministic virtual mode and the
/// threaded wall mode.
#[derive(Debug, Clone)]
pub struct BehaviorProfile {
    /// Arrival-rate / gap-variance estimator (see `tukwila_stats::rate`).
    pub rate: RateEstimator,
    /// Times this candidate was declared stalled.
    pub stalls: u64,
    /// Raw tuples pulled from this candidate (before dedup).
    pub delivered: u64,
    /// Tuples dropped because another replica already delivered the key.
    pub duplicates: u64,
    /// Candidate reached end of stream.
    pub eof: bool,
    /// Timeline instant this candidate was activated (started being
    /// polled); `None` while it is still a standby.
    activated_at_us: Option<u64>,
    /// Timeline instant polling last *resumed* after a consumer-side
    /// quiesce (a corrective plan switch parked the polling thread).
    /// Counts as a sign of life for stall detection: the silence accrued
    /// while nobody was polling was the consumer's doing, not the
    /// source's, so the stall window restarts at the resume instant.
    resumed_at_us: Option<u64>,
    /// Whether the current silence has already been counted as a stall
    /// (reset on every arrival, so one silence = one stall).
    stall_flagged: bool,
    /// What past queries learned about this candidate (serving mode),
    /// snapshotted at adapter construction. Immutable for the run: the
    /// profile's own observations always take precedence, the seed only
    /// fills the cold-start gaps (see
    /// [`BehaviorProfile::stall_deadline_us`]).
    learned: Option<LearnedProfile>,
}

impl BehaviorProfile {
    /// A fresh profile for a not-yet-activated candidate.
    pub fn new() -> BehaviorProfile {
        BehaviorProfile {
            rate: RateEstimator::default(),
            stalls: 0,
            delivered: 0,
            duplicates: 0,
            eof: false,
            activated_at_us: None,
            resumed_at_us: None,
            stall_flagged: false,
            learned: None,
        }
    }

    /// Seed this profile with what past queries learned about its
    /// candidate (cross-query serving). Call before the run starts; the
    /// seed never changes mid-run, so every decision derived from it is
    /// still a pure function of the timeline.
    pub fn seed_learned(&mut self, learned: Option<LearnedProfile>) {
        self.learned = learned;
    }

    /// The cross-query seed, if any.
    pub fn learned(&self) -> Option<&LearnedProfile> {
        self.learned.as_ref()
    }

    /// Mark the candidate activated at `now_us` (idempotent).
    pub fn activate(&mut self, now_us: u64) {
        if self.activated_at_us.is_none() {
            self.activated_at_us = Some(now_us);
        }
    }

    /// Whether the candidate has ever been activated.
    pub fn is_active(&self) -> bool {
        self.activated_at_us.is_some()
    }

    /// Record an arrival of `tuples` raw tuples, `fresh` of which survived
    /// dedup.
    pub fn observe_batch(&mut self, now_us: u64, tuples: u64, fresh: u64) {
        self.rate.observe_arrival(now_us, tuples);
        self.delivered += tuples;
        self.duplicates += tuples - fresh;
        self.stall_flagged = false;
    }

    /// Record that polling resumed at `now_us` after a consumer-side
    /// quiesce window. Restarts the stall window (see
    /// [`BehaviorProfile::last_activity_us`]) without touching the rate
    /// estimator — the source's observed delivery behavior is unchanged,
    /// only the silence bookkeeping is forgiven.
    pub fn note_resume(&mut self, now_us: u64) {
        if self.is_active() && !self.eof {
            self.resumed_at_us = Some(self.resumed_at_us.map_or(now_us, |r| r.max(now_us)));
        }
    }

    /// Most recent sign of life: last arrival, resume-from-quiesce, or
    /// activation time before anything has arrived.
    pub fn last_activity_us(&self) -> Option<u64> {
        [
            self.rate.last_arrival_us(),
            self.activated_at_us,
            self.resumed_at_us,
        ]
        .into_iter()
        .flatten()
        .max()
    }

    /// How long this candidate has been silent at `now_us`; `None` while
    /// it is an unactivated standby (a standby is not "silent", it was
    /// never asked). Diagnostic companion to the stall machinery below.
    pub fn silence_us(&self, now_us: u64) -> Option<u64> {
        self.last_activity_us()
            .map(|last| now_us.saturating_sub(last))
    }

    /// Timeline instant after which the current silence counts as a
    /// stall.
    ///
    /// The floor is normally [`FederationConfig::min_stall_us`]. In
    /// serving mode a tighter [`FederationConfig::warm_stall_us`] floor
    /// applies when the learning seed knows the candidate as dead
    /// (stalled in past queries, never delivered) *and* this run has no
    /// gap evidence of its own yet — the cross-query cure for the
    /// cold-start stall wait. Own evidence always wins: once the
    /// candidate delivers, its observed gap distribution sets the
    /// threshold exactly as in single-query mode, and learned *healthy*
    /// candidates keep the conservative floor throughout (tight patience
    /// on a live mirror would let real-time jitter read as a stall and
    /// split the dual-clock decision sequences).
    pub fn stall_deadline_us(&self, config: &FederationConfig) -> Option<u64> {
        let last = self.last_activity_us()?;
        let floor = match (config.warm_stall_us, &self.learned) {
            (Some(warm), Some(l)) if l.known_dead() && self.rate.ewma_gap_us().is_none() => warm,
            _ => config.min_stall_us,
        };
        Some(last + self.rate.stall_threshold_us(config.stall_sigma, floor))
    }

    /// Whether the current silence has been latched as a stall (cleared
    /// on the next arrival). A candidate in this state has violated its
    /// own profile, so the hedge gate stops treating its schedule as a
    /// credible forecast.
    pub fn currently_stalled(&self) -> bool {
        self.stall_flagged
    }

    /// Clear the stall latch without an arrival, so the next stall check
    /// re-latches (and re-counts) the ongoing silence. The scheduler uses
    /// this when the candidate topology changes (a sibling reached EOF)
    /// and previously declined hedge decisions must be reconsidered.
    pub fn unlatch_stall(&mut self) {
        self.stall_flagged = false;
    }

    /// The burst-aware arrival forecast this candidate's observations
    /// justify, for the shared `DeliveryModel`. `None` until a rate
    /// window exists.
    pub fn arrival_schedule(&self) -> Option<ArrivalSchedule> {
        ArrivalSchedule::from_estimator(&self.rate)
    }

    /// Check (and latch) whether this candidate is stalled at `now_us`.
    /// Returns true at most once per silence period.
    pub fn check_stall(&mut self, now_us: u64, config: &FederationConfig) -> bool {
        if self.eof || self.stall_flagged {
            return false;
        }
        match self.stall_deadline_us(config) {
            Some(deadline) if now_us >= deadline => {
                self.stalls += 1;
                self.stall_flagged = true;
                true
            }
            _ => false,
        }
    }

    /// Ranking score: observed delivery rate, discounted per stall.
    /// Candidates with no rate window yet score at the configured prior,
    /// so a freshly activated backup does not outrank a producing mirror
    /// on zero evidence. Higher is better; ties break on candidate index
    /// (registration order), which keeps the permutation deterministic.
    pub fn score(&self, config: &FederationConfig) -> f64 {
        let rate = self
            .rate
            .rate_tuples_per_sec()
            .unwrap_or(config.prior_rate_tuples_per_sec);
        rate / (1.0 + self.stalls as f64)
    }
}

impl Default for BehaviorProfile {
    fn default() -> Self {
        BehaviorProfile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learning::LearnedProfile;

    fn cfg() -> FederationConfig {
        FederationConfig::default()
    }

    #[test]
    fn stall_latches_once_per_silence() {
        let mut p = BehaviorProfile::new();
        p.activate(0);
        p.observe_batch(100, 10, 10);
        p.observe_batch(200, 10, 10);
        let deadline = p.stall_deadline_us(&cfg()).unwrap();
        assert!(!p.check_stall(deadline - 1, &cfg()));
        assert!(p.check_stall(deadline, &cfg()));
        assert!(!p.check_stall(deadline + 1000, &cfg()), "latched");
        p.observe_batch(deadline + 2000, 10, 10);
        assert_eq!(p.stalls, 1);
        let later = p.stall_deadline_us(&cfg()).unwrap();
        assert!(p.check_stall(later + 1, &cfg()), "new silence, new stall");
        assert_eq!(p.stalls, 2);
    }

    #[test]
    fn standby_has_no_deadline_until_activated() {
        let mut p = BehaviorProfile::new();
        assert_eq!(p.stall_deadline_us(&cfg()), None);
        assert!(!p.check_stall(u64::MAX, &cfg()));
        p.activate(500);
        let d = p.stall_deadline_us(&cfg()).unwrap();
        assert_eq!(
            d,
            500 + cfg().min_stall_us,
            "floor threshold before evidence"
        );
    }

    #[test]
    fn score_prefers_fast_then_penalizes_stalls() {
        let c = cfg();
        let mut fast = BehaviorProfile::new();
        let mut slow = BehaviorProfile::new();
        fast.activate(0);
        slow.activate(0);
        for i in 1..=10u64 {
            fast.observe_batch(i * 1_000, 100, 100); // 100k tuples/s
            slow.observe_batch(i * 10_000, 100, 100); // 10k tuples/s
        }
        assert!(fast.score(&c) > slow.score(&c));
        fast.stalls = 20;
        assert!(fast.score(&c) < slow.score(&c), "stalls discount the rate");
    }

    #[test]
    fn resume_restarts_the_stall_window() {
        let mut p = BehaviorProfile::new();
        p.activate(0);
        p.observe_batch(100, 10, 10);
        p.observe_batch(200, 10, 10);
        let deadline = p.stall_deadline_us(&cfg()).unwrap();
        // A long consumer-side quiesce ends well past the deadline; the
        // resume forgives the silence instead of latching a stall.
        let resume_at = deadline + 500_000;
        p.note_resume(resume_at);
        assert!(!p.check_stall(resume_at, &cfg()), "quiesce is not a stall");
        let new_deadline = p.stall_deadline_us(&cfg()).unwrap();
        assert!(new_deadline > deadline, "stall window restarts at resume");
        assert!(
            p.check_stall(new_deadline, &cfg()),
            "real silence still counts"
        );
        // Standbys and EOF candidates ignore resumes.
        let mut standby = BehaviorProfile::new();
        standby.note_resume(1_000);
        assert_eq!(standby.stall_deadline_us(&cfg()), None);
    }

    #[test]
    fn warm_floor_applies_only_to_known_dead_without_own_evidence() {
        let warm_cfg = FederationConfig {
            warm_stall_us: Some(1_000),
            ..FederationConfig::default()
        };
        let dead_seed = Some(LearnedProfile {
            rate_tuples_per_sec: None,
            stalls: 2,
            delivered: 0,
            queries: 2,
        });
        // Known-dead, no own evidence: the warm floor replaces the cold
        // min_stall_us.
        let mut p = BehaviorProfile::new();
        p.seed_learned(dead_seed.clone());
        p.activate(0);
        assert_eq!(p.stall_deadline_us(&warm_cfg), Some(1_000));
        // Without warm_stall_us configured the seed changes nothing.
        assert_eq!(
            p.stall_deadline_us(&FederationConfig::default()),
            Some(FederationConfig::default().min_stall_us)
        );
        // A learned *healthy* candidate keeps the conservative floor.
        let mut healthy = BehaviorProfile::new();
        healthy.seed_learned(Some(LearnedProfile {
            rate_tuples_per_sec: Some(50_000.0),
            stalls: 0,
            delivered: 1_000,
            queries: 1,
        }));
        healthy.activate(0);
        assert_eq!(
            healthy.stall_deadline_us(&warm_cfg),
            Some(warm_cfg.min_stall_us)
        );
        // Own gap evidence overrides the seed entirely.
        let mut recovered = BehaviorProfile::new();
        recovered.seed_learned(dead_seed);
        recovered.activate(0);
        recovered.observe_batch(100, 10, 10);
        recovered.observe_batch(200, 10, 10);
        let own = recovered.stall_deadline_us(&warm_cfg).unwrap();
        assert!(
            own >= 200 + warm_cfg.min_stall_us.min(own),
            "own evidence sets the threshold"
        );
        assert_eq!(
            own,
            200 + recovered
                .rate
                .stall_threshold_us(warm_cfg.stall_sigma, warm_cfg.min_stall_us),
            "with gap evidence the cold floor is back"
        );
    }

    #[test]
    fn duplicates_tracked_separately_from_delivery() {
        let mut p = BehaviorProfile::new();
        p.activate(0);
        p.observe_batch(10, 8, 3);
        assert_eq!(p.delivered, 8);
        assert_eq!(p.duplicates, 5);
    }
}
