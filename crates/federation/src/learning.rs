//! Cross-query source learning: the shared profile store behind a
//! serving catalog.
//!
//! A single query learns each candidate's behavior from scratch — the
//! first stall of a dead mirror costs the full conservative
//! `min_stall_us` wait, and a standby's worth is guessed from declared
//! rates or the configured prior. A serving front end admitting many
//! queries over the same catalog can do better: what query *k* observed
//! about a candidate (its delivery rate, its stalls) immediately
//! reprices hedging for query *k+1*. [`SharedLearning`] is that store:
//! a cheap-clone handle over per-candidate [`LearnedProfile`]s, keyed by
//! candidate name.
//!
//! ## The determinism contract
//!
//! Learning must never change answers, and serving runs must stay
//! dual-clock reproducible. Both hold because the store is only touched
//! at two well-defined instants:
//!
//! * **Snapshot at admission** — a federated adapter reads the store
//!   once, at construction, into the scheduler's immutable seeded state
//!   ([`crate::PermutationScheduler::seed_learned`]). Decisions remain a
//!   pure function of (timeline, seeded state): two runs admitted
//!   against the same snapshot decide identically under any clock.
//! * **Publish at completion** — the adapter merges its observed
//!   profiles back exactly once, when its union completes (or the
//!   adapter is dropped). Queries admitted *concurrently* therefore
//!   never see each other's in-flight observations; learning flows only
//!   across admission waves, which is an ordering the serving front end
//!   controls deterministically.
//!
//! What the seeded state changes is *pricing and patience*, never
//! content: a learned rate replaces the prior in the hedge gate's
//! break-even inequality, and a candidate that previous queries saw
//! stall without ever delivering ("learned dead") may be given a shorter
//! warm stall floor ([`crate::FederationConfig::warm_stall_us`]) so the
//! next query stops waiting out the full cold-start threshold. The
//! key-dedup union delivers the same tuples regardless of which mirror
//! serves them — the property the cross-query proptest pins.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::profile::BehaviorProfile;

/// What past queries learned about one candidate source, aggregated
/// across publications. All values are in timeline units of the runs
/// that published them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LearnedProfile {
    /// Last observed delivery rate (tuples per timeline second); `None`
    /// when no publishing query ever saw a rate window (e.g. the
    /// candidate never delivered two batches).
    pub rate_tuples_per_sec: Option<f64>,
    /// Stalls charged to this candidate across all publications.
    pub stalls: u64,
    /// Raw tuples delivered across all publications.
    pub delivered: u64,
    /// Queries that published observations of this candidate (only
    /// activated candidates publish — a parked standby learned nothing).
    pub queries: u64,
}

impl LearnedProfile {
    /// Whether past queries know this candidate as dead weight: it
    /// stalled and never established a delivery rate. The warm stall
    /// floor applies only to such candidates — a learned *healthy* rate
    /// keeps the conservative cold floor, because tightening the
    /// patience of a live source would read ordinary jitter as a stall
    /// (and wall-clock runs would diverge from virtual ones).
    pub fn known_dead(&self) -> bool {
        self.stalls > 0 && self.rate_tuples_per_sec.is_none()
    }

    /// Merge one completed query's observations of this candidate.
    fn absorb(&mut self, p: &BehaviorProfile) {
        if let Some(rate) = p.rate.rate_tuples_per_sec() {
            // Latest observation wins: source behavior drifts, and the
            // most recent query saw the current reality.
            self.rate_tuples_per_sec = Some(rate);
        }
        self.stalls += p.stalls;
        self.delivered += p.delivered;
        self.queries += 1;
    }
}

/// The shared cross-query profile store. Clones are cheap handles on
/// one underlying map; a [`crate::FederatedCatalog`] carrying one in its
/// [`crate::FederationConfig::learning`] seeds every adapter it builds
/// from the store and publishes their observations back at completion.
#[derive(Debug, Clone, Default)]
pub struct SharedLearning {
    profiles: Arc<Mutex<HashMap<String, LearnedProfile>>>,
}

impl SharedLearning {
    /// An empty store.
    pub fn new() -> SharedLearning {
        SharedLearning::default()
    }

    /// Snapshot the learned profile of one candidate by name, or `None`
    /// if no query has published observations of it.
    pub fn lookup(&self, candidate: &str) -> Option<LearnedProfile> {
        self.lock().get(candidate).cloned()
    }

    /// Snapshot the learned profiles for a whole candidate set, in the
    /// caller's (registration) order — the admission-time read.
    pub fn snapshot(&self, candidates: &[String]) -> Vec<Option<LearnedProfile>> {
        let map = self.lock();
        candidates.iter().map(|c| map.get(c).cloned()).collect()
    }

    /// Merge one completed query's observation of `candidate` into the
    /// store. Unactivated candidates (standbys that never raced) carry
    /// no evidence and are skipped by the adapters.
    pub fn publish(&self, candidate: &str, profile: &BehaviorProfile) {
        self.lock()
            .entry(candidate.to_string())
            .or_default()
            .absorb(profile);
    }

    /// Candidates with published observations (diagnostics / fleet
    /// reporting).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether no query has published anything yet.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, LearnedProfile>> {
        self.profiles.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_with(rate_events: &[(u64, u64)], stalls: u64) -> BehaviorProfile {
        let mut p = BehaviorProfile::new();
        p.activate(0);
        for &(t, n) in rate_events {
            p.observe_batch(t, n, n);
        }
        p.stalls = stalls;
        p
    }

    #[test]
    fn publish_then_lookup_roundtrips() {
        let store = SharedLearning::new();
        assert!(store.is_empty());
        assert_eq!(store.lookup("m0"), None);
        // 100 tuples per 1000 µs => ~100k tuples/s.
        let p = profile_with(&[(1_000, 100), (2_000, 100), (3_000, 100)], 0);
        store.publish("m0", &p);
        let learned = store.lookup("m0").unwrap();
        assert_eq!(learned.queries, 1);
        assert_eq!(learned.delivered, 300);
        assert!(learned.rate_tuples_per_sec.unwrap() > 50_000.0);
        assert!(!learned.known_dead());
    }

    #[test]
    fn stalled_never_delivering_candidate_is_known_dead() {
        let store = SharedLearning::new();
        let mut dead = BehaviorProfile::new();
        dead.activate(0);
        dead.stalls = 1;
        store.publish("dead-mirror", &dead);
        assert!(store.lookup("dead-mirror").unwrap().known_dead());
        // A later query that saw it deliver clears the verdict.
        store.publish("dead-mirror", &profile_with(&[(1_000, 10), (2_000, 10)], 0));
        let l = store.lookup("dead-mirror").unwrap();
        assert!(!l.known_dead());
        assert_eq!(l.stalls, 1, "stall history is kept");
        assert_eq!(l.queries, 2);
    }

    #[test]
    fn latest_rate_wins_and_snapshot_preserves_order() {
        let store = SharedLearning::new();
        store.publish("m", &profile_with(&[(1_000, 10), (2_000, 10)], 0));
        let first = store.lookup("m").unwrap().rate_tuples_per_sec.unwrap();
        store.publish("m", &profile_with(&[(10_000, 10), (110_000, 10)], 0));
        let second = store.lookup("m").unwrap().rate_tuples_per_sec.unwrap();
        assert!(second < first, "latest (slower) observation replaces");
        let snap = store.snapshot(&["zzz".into(), "m".into()]);
        assert_eq!(snap[0], None);
        assert_eq!(
            snap[1].as_ref().unwrap().rate_tuples_per_sec,
            Some(second),
            "snapshot order follows the caller's candidate order"
        );
    }

    #[test]
    fn clones_share_the_store() {
        let a = SharedLearning::new();
        let b = a.clone();
        a.publish("m", &profile_with(&[(1_000, 5), (2_000, 5)], 0));
        assert_eq!(b.len(), 1, "clone sees the publication");
    }
}
