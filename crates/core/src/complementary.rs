//! The complementary join pair (paper §5, Figure 4): a merge join and a
//! pipelined hash join sharing memory, with a per-input router that sends
//! order-conforming tuples to the merge join and violators to the hash
//! join. At end of input, a mini-stitch-up joins the hash join's R table
//! with the merge join's S table and vice versa (merge×merge and hash×hash
//! are already complete, so they are excluded).

use std::sync::Arc;

use tukwila_exec::join::{MergeJoin, PipelinedHashJoin};
use tukwila_exec::op::{Batch, ExtractedState, IncOp};
use tukwila_exec::split::{OrderRouter, PriorityQueueRouter, Router};
use tukwila_relation::{Error, Result, Schema, Tuple};
use tukwila_stats::OpCounters;

/// Router flavor for each input (Figure 5's "complementary joins" vs
/// "comp. joins with priority queue").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouterKind {
    /// Route on order conformance alone.
    Naive,
    /// Re-sort recently arrived tuples in a bounded priority queue before
    /// routing (the paper holds up to 1024 tuples).
    PriorityQueue(usize),
}

impl RouterKind {
    fn build(self, key_col: usize) -> Box<dyn Router> {
        match self {
            RouterKind::Naive => Box::new(OrderRouter::new(key_col)),
            RouterKind::PriorityQueue(cap) => Box::new(PriorityQueueRouter::new(key_col, cap)),
        }
    }
}

/// Processing distribution counters (Table 3).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ComplementaryStats {
    /// Input tuples routed to the pipelined hash join.
    pub hash_tuples: u64,
    /// Input tuples routed to the merge join.
    pub merge_tuples: u64,
    /// Output tuples produced by the mini-stitch-up.
    pub stitch_tuples: u64,
}

/// The complementary join pair operator.
pub struct ComplementaryJoinPair {
    merge: MergeJoin,
    hash: PipelinedHashJoin,
    routers: [Box<dyn Router>; 2],
    out_schema: Schema,
    stats: ComplementaryStats,
    counters: Arc<OpCounters>,
    finished: bool,
}

impl ComplementaryJoinPair {
    pub fn new(
        left_schema: Schema,
        right_schema: Schema,
        left_key: usize,
        right_key: usize,
        router: RouterKind,
    ) -> ComplementaryJoinPair {
        let out_schema = left_schema.concat(&right_schema);
        ComplementaryJoinPair {
            merge: MergeJoin::new(
                left_schema.clone(),
                right_schema.clone(),
                left_key,
                right_key,
            ),
            hash: PipelinedHashJoin::new(left_schema, right_schema, left_key, right_key),
            routers: [router.build(left_key), router.build(right_key)],
            out_schema,
            stats: ComplementaryStats::default(),
            counters: OpCounters::new(),
            finished: false,
        }
    }

    pub fn stats(&self) -> ComplementaryStats {
        self.stats
    }

    /// Route a batch, preserving arrival order within each destination,
    /// and push each destination's run as one slice (per-tuple pushes are
    /// measurably slower than the joins themselves).
    fn route_batch(&mut self, port: usize, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        let mut to_merge: Batch = Vec::new();
        let mut to_hash: Batch = Vec::new();
        for t in batch {
            match self.routers[port].offer(t.clone()) {
                None => {} // buffered in the router's priority queue
                Some((0, released)) => to_merge.push(released),
                Some((_, released)) => to_hash.push(released),
            }
        }
        self.dispatch(port, to_merge, to_hash, out)
    }

    fn dispatch(
        &mut self,
        port: usize,
        to_merge: Batch,
        to_hash: Batch,
        out: &mut Batch,
    ) -> Result<()> {
        self.stats.merge_tuples += to_merge.len() as u64;
        self.stats.hash_tuples += to_hash.len() as u64;
        if !to_merge.is_empty() {
            self.merge.push(port, &to_merge, out)?;
        }
        if !to_hash.is_empty() {
            self.hash.push(port, &to_hash, out)?;
        }
        Ok(())
    }

    /// Drain a router's buffered tuples (priority queue) into the joins.
    fn drain_router(&mut self, port: usize, out: &mut Batch) -> Result<()> {
        let drained = self.routers[port].drain();
        let mut to_merge: Batch = Vec::new();
        let mut to_hash: Batch = Vec::new();
        for (dest, t) in drained {
            if dest == 0 {
                to_merge.push(t);
            } else {
                to_hash.push(t);
            }
        }
        self.dispatch(port, to_merge, to_hash, out)
    }
}

impl IncOp for ComplementaryJoinPair {
    fn name(&self) -> &str {
        "complementary-join-pair"
    }

    fn inputs(&self) -> usize {
        2
    }

    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn push(&mut self, port: usize, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        if port > 1 {
            return Err(Error::Exec(format!(
                "complementary join pair has no port {port}"
            )));
        }
        self.counters.add_in(batch.len() as u64);
        let before = out.len();
        self.route_batch(port, batch, out)?;
        self.counters.add_out((out.len() - before) as u64);
        Ok(())
    }

    fn finish_input(&mut self, port: usize, out: &mut Batch) -> Result<()> {
        let before = out.len();
        self.drain_router(port, out)?;
        self.merge.finish_input(port, out)?;
        self.counters.add_out((out.len() - before) as u64);
        Ok(())
    }

    /// Mini-stitch-up: hash-side R ⋈ merge-side S and merge-side R ⋈
    /// hash-side S. (merge×merge was emitted by the merge join, hash×hash
    /// by the pipelined hash join.)
    fn finish(&mut self, out: &mut Batch) -> Result<()> {
        if self.finished {
            return Ok(());
        }
        self.finished = true;
        let before = out.len();
        let hash_states = self.hash.extract_states();
        let merge_states = self.merge.extract_states();
        let (h_r, h_s) = (&hash_states[0].structure, &hash_states[1].structure);
        let (m_r, m_s) = (&merge_states[0].structure, &merge_states[1].structure);
        let h_r_key = h_r.props().keyed_on.unwrap_or(0);
        let m_s_key = m_s.props().keyed_on.unwrap_or(0);
        let m_r_key = m_r.props().keyed_on.unwrap_or(0);
        let h_s_key = h_s.props().keyed_on.unwrap_or(0);

        let mut matches = Vec::new();
        // hash R ⋈ merge S.
        for t in h_r.scan() {
            matches.clear();
            m_s.probe_into(&t.key(h_r_key), &mut matches);
            for m in &matches {
                out.push(t.concat(m));
            }
        }
        // merge R ⋈ hash S.
        for t in m_r.scan() {
            matches.clear();
            h_s.probe_into(&t.key(m_r_key), &mut matches);
            for m in &matches {
                out.push(t.concat(m));
            }
        }
        let _ = (m_s_key, h_s_key);
        self.stats.stitch_tuples += (out.len() - before) as u64;
        self.counters.add_out((out.len() - before) as u64);
        Ok(())
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }

    fn extract_states(&mut self) -> Vec<ExtractedState> {
        // Expose all four tables (two per side); callers see two entries
        // per port.
        let mut v = self.hash.extract_states();
        v.extend(self.merge.extract_states());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_exec::reference::canonicalize;
    use tukwila_relation::{DataType, Field, Value};

    fn schemas() -> (Schema, Schema) {
        (
            Schema::new(vec![
                Field::new("l.k", DataType::Int),
                Field::new("l.v", DataType::Int),
            ]),
            Schema::new(vec![
                Field::new("r.k", DataType::Int),
                Field::new("r.v", DataType::Int),
            ]),
        )
    }

    fn t(k: i64, v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::Int(v)])
    }

    fn run_pair(
        left: &[Tuple],
        right: &[Tuple],
        router: RouterKind,
    ) -> (Batch, ComplementaryStats) {
        let (ls, rs) = schemas();
        let mut j = ComplementaryJoinPair::new(ls, rs, 0, 0, router);
        let mut out = Vec::new();
        for chunk in left.chunks(16) {
            j.push(0, chunk, &mut out).unwrap();
        }
        for chunk in right.chunks(16) {
            j.push(1, chunk, &mut out).unwrap();
        }
        j.finish_input(0, &mut out).unwrap();
        j.finish_input(1, &mut out).unwrap();
        j.finish(&mut out).unwrap();
        (out, j.stats())
    }

    fn reference(left: &[Tuple], right: &[Tuple]) -> Batch {
        let (ls, rs) = schemas();
        let mut j = PipelinedHashJoin::new(ls, rs, 0, 0);
        let mut out = Vec::new();
        j.push(0, left, &mut out).unwrap();
        j.push(1, right, &mut out).unwrap();
        out
    }

    #[test]
    fn sorted_inputs_go_entirely_to_merge() {
        let left: Vec<Tuple> = (0..200).map(|i| t(i / 2, i)).collect();
        let right: Vec<Tuple> = (0..100).map(|i| t(i, 1000 + i)).collect();
        let (out, stats) = run_pair(&left, &right, RouterKind::Naive);
        assert_eq!(stats.hash_tuples, 0);
        assert_eq!(stats.merge_tuples, 300);
        assert_eq!(stats.stitch_tuples, 0);
        assert_eq!(canonicalize(&out), canonicalize(&reference(&left, &right)));
    }

    #[test]
    fn mostly_sorted_inputs_still_complete() {
        let mut left: Vec<Tuple> = (0..400).map(|i| t(i / 2, i)).collect();
        let mut right: Vec<Tuple> = (0..200).map(|i| t(i, 1000 + i)).collect();
        tukwila_datagen::perturb::reorder_fraction(&mut left, 0.05, 7);
        tukwila_datagen::perturb::reorder_fraction(&mut right, 0.05, 8);
        for router in [RouterKind::Naive, RouterKind::PriorityQueue(64)] {
            let (out, stats) = run_pair(&left, &right, router);
            assert_eq!(
                canonicalize(&out),
                canonicalize(&reference(&left, &right)),
                "router {router:?}"
            );
            assert!(stats.hash_tuples + stats.merge_tuples == 600);
        }
    }

    #[test]
    fn priority_queue_routes_more_to_merge_than_naive() {
        let mut left: Vec<Tuple> = (0..2000).map(|i| t(i, i)).collect();
        let mut right: Vec<Tuple> = (0..2000).map(|i| t(i, 1000 + i)).collect();
        tukwila_datagen::perturb::reorder_fraction(&mut left, 0.01, 3);
        tukwila_datagen::perturb::reorder_fraction(&mut right, 0.01, 4);
        let (_, naive) = run_pair(&left, &right, RouterKind::Naive);
        let (_, pq) = run_pair(&left, &right, RouterKind::PriorityQueue(1024));
        assert!(
            pq.merge_tuples > naive.merge_tuples,
            "pq merge {} vs naive merge {}",
            pq.merge_tuples,
            naive.merge_tuples
        );
    }

    #[test]
    fn fully_random_inputs_still_complete() {
        let mut left: Vec<Tuple> = (0..500).map(|i| t(i % 50, i)).collect();
        let mut right: Vec<Tuple> = (0..300).map(|i| t(i % 50, 9000 + i)).collect();
        tukwila_datagen::perturb::reorder_fraction(&mut left, 0.5, 11);
        tukwila_datagen::perturb::reorder_fraction(&mut right, 0.5, 12);
        let (out, _) = run_pair(&left, &right, RouterKind::PriorityQueue(128));
        assert_eq!(canonicalize(&out), canonicalize(&reference(&left, &right)));
    }

    #[test]
    fn finish_is_idempotent() {
        let left = vec![t(1, 0), t(0, 0)];
        let right = vec![t(0, 9), t(1, 9)];
        let (ls, rs) = schemas();
        let mut j = ComplementaryJoinPair::new(ls, rs, 0, 0, RouterKind::Naive);
        let mut out = Vec::new();
        j.push(0, &left, &mut out).unwrap();
        j.push(1, &right, &mut out).unwrap();
        j.finish_input(0, &mut out).unwrap();
        j.finish_input(1, &mut out).unwrap();
        j.finish(&mut out).unwrap();
        let n = out.len();
        j.finish(&mut out).unwrap();
        assert_eq!(out.len(), n);
        assert_eq!(n, 2, "both pairs found across merge/hash split");
    }
}
