//! The stitch-up executor (paper §3.4).
//!
//! After the phases finish, the answers still missing are exactly the
//! cross-phase join combinations (`n^m − n` of them for `m` relations and
//! `n` phases). We compute them with *partition-labelled sets* over the
//! final plan's join tree: at each node, results are split into `pure[i]`
//! (every constituent tuple from phase `i`) and `mixed` (everything else).
//!
//! * `pure[i]` is **reused** from the state-structure registry whenever
//!   phase `i` materialized that logical subexpression (the §3.4.2
//!   exclusion list, with §3.2's tuple adapters fixing attribute-order
//!   differences between plans); it is recomputed from the children's pure
//!   sets otherwise.
//! * `mixed` at a join node is the union of all cross-phase combinations —
//!   computed once per node, with the smaller side hashed (the §3.4.3
//!   stitch-up join, including rehash-on-key-mismatch).
//! * Only the root's `mixed` tuples are new answers: the diagonal `pure`
//!   results were already emitted by the phases themselves.

use tukwila_exec::join::batch::{probe_table_columnar, BatchJoinStats};
use tukwila_exec::Batch;
use tukwila_optimizer::{LogicalQuery, PhysKind, PhysNode};
use tukwila_relation::{ColumnarBatch, Expr, Result, Tuple};
use tukwila_storage::{ExprSig, StateRegistry, TupleHashTable};

/// Statistics from one stitch-up execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StitchUpStats {
    /// New (cross-phase) answer tuples produced at the root.
    pub mixed_tuples: usize,
    /// `pure[i]` tuples that had to be recomputed because no phase
    /// registered the subexpression.
    pub recomputed_pure: usize,
    /// Registry entries reused (marked for the Table 1/2 accounting).
    pub entries_reused: usize,
    pub join: BatchJoinStats,
}

/// Partition-labelled result set at one plan node.
struct Labeled {
    pure: Vec<Batch>,
    mixed: Batch,
}

/// The stitch-up executor.
pub struct StitchUp<'a> {
    pub q: &'a LogicalQuery,
    pub registry: &'a StateRegistry,
    pub nphases: usize,
    /// Reuse registered intermediate results (the §3.4.2 exclusion-list
    /// behaviour). Disabled only by the reuse ablation, which recomputes
    /// every intermediate from the leaf partitions.
    pub reuse_intermediates: bool,
}

impl<'a> StitchUp<'a> {
    pub fn new(q: &'a LogicalQuery, registry: &'a StateRegistry, nphases: usize) -> Self {
        StitchUp {
            q,
            registry,
            nphases,
            reuse_intermediates: true,
        }
    }

    /// Ablation switch: when `false`, only leaf partitions are read from
    /// the registry and every intermediate `pure[i]` is recomputed.
    pub fn with_reuse(mut self, reuse: bool) -> Self {
        self.reuse_intermediates = reuse;
        self
    }

    /// Evaluate the cross-phase results over `tree` (the final phase's plan
    /// tree), feeding new answer tuples to `sink`.
    pub fn run(
        &self,
        tree: &PhysNode,
        sink: &mut dyn FnMut(&[Tuple]) -> Result<()>,
    ) -> Result<StitchUpStats> {
        if self.nphases <= 1 {
            return Ok(StitchUpStats::default());
        }
        let mut stats = StitchUpStats::default();
        let labeled = self.eval(tree, true, &mut stats)?;
        stats.mixed_tuples = labeled.mixed.len();
        if !labeled.mixed.is_empty() {
            sink(&labeled.mixed)?;
        }
        Ok(stats)
    }

    /// Load a registered structure's tuples in the layout of `node`.
    fn load_adapted(
        &self,
        sig: &ExprSig,
        phase: usize,
        node: &PhysNode,
        stats: &mut StitchUpStats,
    ) -> Result<Option<Batch>> {
        let entry = match self.registry.lookup(sig, phase) {
            Some(e) => e,
            None => return Ok(None),
        };
        let adapter = match entry.schema.adapter_to(&node.schema) {
            Ok(a) => a,
            // Incompatible layout (e.g. a phase pre-aggregated differently):
            // treat as unavailable and let the caller recompute.
            Err(_) => return Ok(None),
        };
        entry.mark_reused();
        stats.entries_reused += 1;
        let tuples = entry.structure.scan();
        if adapter.is_identity() {
            return Ok(Some(tuples));
        }
        Ok(Some(tuples.iter().map(|t| adapter.adapt(t)).collect()))
    }

    fn eval(&self, node: &PhysNode, is_root: bool, stats: &mut StitchUpStats) -> Result<Labeled> {
        match &node.kind {
            // Leaf units: a scan, or pre-aggregation directly over a scan
            // (the registered partition data *is* the pre-aggregated form).
            PhysKind::Scan { .. } | PhysKind::PreAgg { .. } => {
                let sig = node.sig.clone();
                let mut pure = Vec::with_capacity(self.nphases);
                // `i` is the phase id, indexing `l.pure`, `r_pure_tables`,
                // and the registry lookups in parallel.
                #[allow(clippy::needless_range_loop)]
                for i in 0..self.nphases {
                    match self.load_adapted(&sig, i, node, stats)? {
                        Some(batch) => pure.push(batch),
                        // Phase read nothing from this source.
                        None => pure.push(Vec::new()),
                    }
                }
                Ok(Labeled {
                    pure,
                    mixed: Vec::new(),
                })
            }
            PhysKind::Join {
                left,
                right,
                left_col,
                right_col,
                residual,
                ..
            } => {
                let l = self.eval(left, false, stats)?;
                let r = self.eval(right, false, stats)?;

                // Build hash tables over each right-side partition once.
                let build = |tuples: &Batch| -> Result<TupleHashTable> {
                    let mut t = TupleHashTable::new(*right_col);
                    for tu in tuples {
                        t.insert(tu.clone())?;
                    }
                    Ok(t)
                };
                let r_pure_tables: Vec<TupleHashTable> = l_to_r(&r.pure, &build)?;
                let r_mixed_table = build(&r.mixed)?;

                // Each left partition converts to columns once; every probe
                // against the right-side tables then reads keys and residual
                // values straight from those columns (the staged columnar
                // probe), materializing only the surviving joined tuples.
                let l_pure_cols: Vec<ColumnarBatch> = l
                    .pure
                    .iter()
                    .map(|b| ColumnarBatch::from_tuples(b))
                    .collect();
                let l_mixed_cols = ColumnarBatch::from_tuples(&l.mixed);

                // pure[i]: reuse from the registry or recompute from the
                // children's pure partitions.
                let mut pure = Vec::with_capacity(self.nphases);
                // `i` is the phase id, indexing `l.pure`, `r_pure_tables`,
                // and the registry lookups in parallel.
                #[allow(clippy::needless_range_loop)]
                for i in 0..self.nphases {
                    if !is_root && self.reuse_intermediates {
                        if let Some(batch) = self.load_adapted(&node.sig, i, node, stats)? {
                            pure.push(batch);
                            continue;
                        }
                    }
                    if is_root {
                        // Root diagonals were already answered by the
                        // phases; never recompute them.
                        pure.push(Vec::new());
                        continue;
                    }
                    let mut out = Vec::new();
                    probe_table_columnar(
                        &l_pure_cols[i],
                        *left_col,
                        &r_pure_tables[i],
                        residual,
                        &mut stats.join,
                        &mut out,
                    )?;
                    stats.recomputed_pure += out.len();
                    pure.push(out);
                }

                // mixed: all cross-phase combinations.
                let mut mixed = Vec::new();
                for (a, l_cols) in l_pure_cols.iter().enumerate().take(self.nphases) {
                    for (b, table) in r_pure_tables.iter().enumerate() {
                        if a != b {
                            probe_table_columnar(
                                l_cols,
                                *left_col,
                                table,
                                residual,
                                &mut stats.join,
                                &mut mixed,
                            )?;
                        }
                    }
                    probe_table_columnar(
                        l_cols,
                        *left_col,
                        &r_mixed_table,
                        residual,
                        &mut stats.join,
                        &mut mixed,
                    )?;
                }
                for table in &r_pure_tables {
                    probe_table_columnar(
                        &l_mixed_cols,
                        *left_col,
                        table,
                        residual,
                        &mut stats.join,
                        &mut mixed,
                    )?;
                }
                probe_table_columnar(
                    &l_mixed_cols,
                    *left_col,
                    &r_mixed_table,
                    residual,
                    &mut stats.join,
                    &mut mixed,
                )?;

                Ok(Labeled { pure, mixed })
            }
        }
    }
}

fn l_to_r<T>(items: &[Batch], f: &dyn Fn(&Batch) -> Result<T>) -> Result<Vec<T>> {
    let mut out = Vec::with_capacity(items.len());
    for i in items {
        out.push(f(i)?);
    }
    Ok(out)
}

/// Convenience for residual-aware equality predicates (used by tests).
pub fn residual_expr(pairs: &[(usize, usize)]) -> Expr {
    Expr::And(
        pairs
            .iter()
            .map(|&(a, b)| Expr::eq(Expr::Col(a), Expr::Col(b)))
            .collect(),
    )
}

/// Assert-style helper: ensure a signature exists in the registry for a
/// phase (used by integration tests to validate registration coverage).
pub fn registered(registry: &StateRegistry, rels: &[u32], phase: usize) -> bool {
    registry
        .lookup(&ExprSig::new(rels.to_vec()), phase)
        .is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use tukwila_optimizer::{Optimizer, OptimizerContext};
    use tukwila_relation::{DataType, Field, Schema, Value};
    use tukwila_storage::TupleList;

    /// Two relations, two phases, everything registered at the leaves:
    /// stitch-up must produce exactly A0⋈B1 ∪ A1⋈B0.
    #[test]
    fn two_rel_two_phase_cross_terms() {
        let mk_rel = |id: u32, name: &str| {
            tukwila_optimizer::QueryRel::new(
                id,
                name,
                Schema::new(vec![Field::new(format!("{name}.k"), DataType::Int)]),
            )
        };
        let q = LogicalQuery::new(
            vec![mk_rel(1, "a"), mk_rel(2, "b")],
            vec![tukwila_optimizer::JoinPred {
                id: 1,
                left_rel: 1,
                left_col: 0,
                right_rel: 2,
                right_col: 0,
            }],
        );
        let opt = Optimizer::new(OptimizerContext::no_statistics());
        let plan = opt.optimize(&q).unwrap();

        let registry = StateRegistry::new();
        let schema = Schema::new(vec![Field::new("a.k", DataType::Int)]);
        let schema_b = Schema::new(vec![Field::new("b.k", DataType::Int)]);
        let list_of = |vals: &[i64]| -> Arc<dyn tukwila_storage::StateStructure> {
            let mut l = TupleList::new();
            for &v in vals {
                l.insert(Tuple::new(vec![Value::Int(v)]));
            }
            Arc::new(l)
        };
        // Phase 0: a={1,2}, b={2}; phase 1: a={3}, b={1,3}.
        registry.register(ExprSig::single(1), 0, schema.clone(), list_of(&[1, 2]));
        registry.register(ExprSig::single(2), 0, schema_b.clone(), list_of(&[2]));
        registry.register(ExprSig::single(1), 1, schema.clone(), list_of(&[3]));
        registry.register(ExprSig::single(2), 1, schema_b.clone(), list_of(&[1, 3]));

        let stitch = StitchUp::new(&q, &registry, 2);
        let mut got = Vec::new();
        let stats = stitch
            .run(&plan.root, &mut |batch| {
                got.extend_from_slice(batch);
                Ok(())
            })
            .unwrap();
        // Cross terms: a0 ⋈ b1 = {1}, a1 ⋈ b0 = {} — diagonal (2,2), (3,3)
        // excluded.
        assert_eq!(stats.mixed_tuples, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].get(0).as_int().unwrap(), 1);
    }

    #[test]
    fn single_phase_is_a_noop() {
        let mk_rel = |id: u32, name: &str| {
            tukwila_optimizer::QueryRel::new(
                id,
                name,
                Schema::new(vec![Field::new(format!("{name}.k"), DataType::Int)]),
            )
        };
        let q = LogicalQuery::new(
            vec![mk_rel(1, "a"), mk_rel(2, "b")],
            vec![tukwila_optimizer::JoinPred {
                id: 1,
                left_rel: 1,
                left_col: 0,
                right_rel: 2,
                right_col: 0,
            }],
        );
        let opt = Optimizer::new(OptimizerContext::no_statistics());
        let plan = opt.optimize(&q).unwrap();
        let registry = StateRegistry::new();
        let stitch = StitchUp::new(&q, &registry, 1);
        let mut calls = 0;
        let stats = stitch
            .run(&plan.root, &mut |_| {
                calls += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(stats.mixed_tuples, 0);
        assert_eq!(calls, 0);
    }
}
