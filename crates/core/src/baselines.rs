//! Baseline strategies for the paper's comparisons (Figures 2 and 3), plus
//! the redundant-computation strategy (§2.1's fourth class, Example 2.3).
//!
//! * **Static optimization**: optimize once, execute to completion.
//! * **Plan partitioning** (Kabra–DeWitt-style, as configured in §4.4):
//!   with no statistics there is no good metric for placing the
//!   materialization point, so "Tukwila inserts one after 3 joins have been
//!   performed"; the remainder of the query is re-optimized with the
//!   materialized result's now-known cardinality.
//! * **Redundant computation**: run competing plans over the same sample
//!   and keep the one that progressed furthest (cheapest CPU per batch).

use tukwila_exec::{Batch, CpuCostModel, ExecReport, SimDriver};
use tukwila_optimizer::{
    AggRef, JoinPred, LogicalQuery, Optimizer, OptimizerContext, PhysKind, PhysNode, QueryRel,
};
use tukwila_relation::{Error, Result, Tuple};
use tukwila_source::{MemSource, Poll, Source};

use crate::lowering::lower_plan;

/// Result of a baseline execution.
pub struct StaticRun {
    pub rows: Vec<Tuple>,
    pub exec: ExecReport,
    pub plan: String,
}

/// Optimize once and run to completion.
pub fn run_static(
    q: &LogicalQuery,
    sources: &mut [Box<dyn Source>],
    ctx: OptimizerContext,
    batch_size: usize,
    cpu: CpuCostModel,
) -> Result<StaticRun> {
    run_static_from(q, sources, ctx, batch_size, cpu, None)
}

/// [`run_static`] with the plan pinned to a left-deep relation order.
pub fn run_static_from(
    q: &LogicalQuery,
    sources: &mut [Box<dyn Source>],
    ctx: OptimizerContext,
    batch_size: usize,
    cpu: CpuCostModel,
    order: Option<&[u32]>,
) -> Result<StaticRun> {
    run_static_with_driver(q, sources, ctx, SimDriver::new(batch_size, cpu), order)
}

/// [`run_static_from`] with a caller-built driver — the hook for
/// wall-clock runs (`SimDriver::with_clock`), where the driver must share
/// its clock with the sources racing against it.
pub fn run_static_with_driver(
    q: &LogicalQuery,
    sources: &mut [Box<dyn Source>],
    ctx: OptimizerContext,
    driver: SimDriver,
    order: Option<&[u32]>,
) -> Result<StaticRun> {
    let opt = Optimizer::new(ctx);
    let plan = match order {
        Some(o) => opt.plan_with_order(q, o)?,
        None => opt.optimize(q)?,
    };
    let desc = plan.describe();
    let lowered = lower_plan(&plan, None, true)?;
    let mut pipeline = lowered.pipeline;
    let (rows, exec) = driver.run(&mut pipeline, sources)?;
    Ok(StaticRun {
        rows,
        exec,
        plan: desc,
    })
}

/// Pseudo-relation id used for materialized intermediate results.
pub const MATERIALIZED_REL: u32 = 990;

/// Plan partitioning: execute a 3-join prefix of the static plan,
/// materialize, re-optimize the remainder with the materialized cardinality
/// known, and run it.
pub fn run_plan_partitioning(
    q: &LogicalQuery,
    sources: Vec<Box<dyn Source>>,
    ctx: OptimizerContext,
    batch_size: usize,
    cpu: CpuCostModel,
) -> Result<StaticRun> {
    run_plan_partitioning_from(q, sources, ctx, batch_size, cpu, None)
}

/// [`run_plan_partitioning`] with the initial plan pinned to a left-deep
/// order (experiments that study a specific starting plan).
pub fn run_plan_partitioning_from(
    q: &LogicalQuery,
    sources: Vec<Box<dyn Source>>,
    ctx: OptimizerContext,
    batch_size: usize,
    cpu: CpuCostModel,
    initial_order: Option<&[u32]>,
) -> Result<StaticRun> {
    let opt = Optimizer::new(ctx.clone());
    let full_plan = match initial_order {
        Some(order) => opt.plan_with_order(q, order)?,
        None => opt.optimize(q)?,
    };
    let total_joins = full_plan.root.join_count();
    let cut_target = total_joins.min(3);

    // Find the cut node: a subtree with exactly `cut_target` joins.
    let cut = find_with_join_count(&full_plan.root, cut_target);
    let cut = match cut {
        // Whole plan (or no suitable subtree): plan partitioning degenerates
        // to static execution, as in the paper's Q10/Q10A observation.
        Some(node) if node.join_count() < total_joins => node.clone(),
        _ => {
            let mut srcs = sources;
            return run_static(q, &mut srcs, ctx, batch_size, cpu);
        }
    };

    // Phase A: execute the cut subtree as its own (non-aggregating) query.
    let cut_rels: Vec<u32> = cut.rels();
    let sub_q = subtree_query(q, &cut_rels)?;
    let (mut cut_sources, mut rest_sources): (Vec<_>, Vec<_>) = sources
        .into_iter()
        .partition(|s| cut_rels.contains(&s.rel_id()));
    let opt_a = Optimizer::new(ctx.clone());
    let plan_a = opt_a.optimize(&sub_q)?;
    let lowered_a = lower_plan(&plan_a, None, true)?;
    let mut pipe_a = lowered_a.pipeline;
    let driver = SimDriver::new(batch_size, cpu);
    let (materialized, exec_a) = driver.run(&mut pipe_a, &mut cut_sources)?;
    let mat_schema = pipe_a.root_schema().clone();

    // Phase B: re-optimize the remainder with the materialized cardinality
    // known, the whole point of mid-query re-optimization.
    let root_a = &plan_a.root;
    let remainder = remainder_query(q, &cut_rels, root_a, mat_schema.clone())?;
    let mut ctx_b = ctx.clone();
    ctx_b
        .given_cards
        .insert(MATERIALIZED_REL, materialized.len() as u64);
    rest_sources.push(Box::new(MemSource::new(
        MATERIALIZED_REL,
        "materialized",
        mat_schema,
        materialized,
    )));
    let run_b = run_static(&remainder, &mut rest_sources, ctx_b, batch_size, cpu)?;

    Ok(StaticRun {
        rows: run_b.rows,
        exec: ExecReport {
            virtual_us: exec_a.virtual_us + run_b.exec.virtual_us,
            cpu_us: exec_a.cpu_us + run_b.exec.cpu_us,
            idle_us: exec_a.idle_us + run_b.exec.idle_us,
            tuples_out: run_b.exec.tuples_out,
            batches: exec_a.batches + run_b.exec.batches,
            max_queue_depth: exec_a.max_queue_depth.max(run_b.exec.max_queue_depth),
            blocked_by_exchange: merge_blocked(
                &exec_a.blocked_by_exchange,
                &run_b.exec.blocked_by_exchange,
            ),
        },
        plan: format!("mat[{}]; {}", plan_a.describe(), run_b.plan),
    })
}

/// Sum per-exchange blocked-send counts from two phases (ids ascending).
fn merge_blocked(a: &[(u32, u64)], b: &[(u32, u64)]) -> Vec<(u32, u64)> {
    let mut merged: std::collections::BTreeMap<u32, u64> = std::collections::BTreeMap::new();
    for &(id, n) in a.iter().chain(b.iter()) {
        *merged.entry(id).or_default() += n;
    }
    merged.into_iter().collect()
}

fn find_with_join_count(node: &PhysNode, target: usize) -> Option<&PhysNode> {
    if node.join_count() == target {
        return Some(node);
    }
    match &node.kind {
        PhysKind::Join { left, right, .. } => {
            find_with_join_count(left, target).or_else(|| find_with_join_count(right, target))
        }
        PhysKind::PreAgg { child, .. } => find_with_join_count(child, target),
        PhysKind::Scan { .. } => None,
    }
}

/// The cut subtree as a standalone query (no aggregation; filters kept).
fn subtree_query(q: &LogicalQuery, rels: &[u32]) -> Result<LogicalQuery> {
    let sub_rels: Vec<QueryRel> = q
        .rels
        .iter()
        .filter(|r| rels.contains(&r.rel_id))
        .cloned()
        .collect();
    let sub_preds: Vec<JoinPred> = q
        .preds
        .iter()
        .filter(|p| rels.contains(&p.left_rel) && rels.contains(&p.right_rel))
        .copied()
        .collect();
    let sub = LogicalQuery::new(sub_rels, sub_preds);
    sub.validate()?;
    Ok(sub)
}

/// The remainder query: the cut subtree replaced by a pseudo-relation whose
/// schema is the materialized output.
fn remainder_query(
    q: &LogicalQuery,
    cut_rels: &[u32],
    cut_root: &PhysNode,
    mat_schema: tukwila_relation::Schema,
) -> Result<LogicalQuery> {
    let remap = |rel: u32, col: usize| -> Result<(u32, usize)> {
        if cut_rels.contains(&rel) {
            let pos = cut_root.col_of(rel, col).ok_or_else(|| {
                Error::Plan(format!(
                    "column ({rel},{col}) not present in materialized result"
                ))
            })?;
            Ok((MATERIALIZED_REL, pos))
        } else {
            Ok((rel, col))
        }
    };

    let mut rels: Vec<QueryRel> = q
        .rels
        .iter()
        .filter(|r| !cut_rels.contains(&r.rel_id))
        .cloned()
        .collect();
    rels.push(QueryRel::new(MATERIALIZED_REL, "materialized", mat_schema));

    let mut preds = Vec::new();
    for p in &q.preds {
        let l_in = cut_rels.contains(&p.left_rel);
        let r_in = cut_rels.contains(&p.right_rel);
        if l_in && r_in {
            continue; // already applied inside the cut
        }
        let (lr, lc) = remap(p.left_rel, p.left_col)?;
        let (rr, rc) = remap(p.right_rel, p.right_col)?;
        preds.push(JoinPred {
            id: p.id,
            left_rel: lr,
            left_col: lc,
            right_rel: rr,
            right_col: rc,
        });
    }

    let mut out = LogicalQuery::new(rels, preds);
    if let Some(agg) = &q.agg {
        let mut group = Vec::new();
        for g in &agg.group {
            let (rel, col) = remap(g.rel, g.col)?;
            group.push(AggRef { rel, col });
        }
        let mut aggs = Vec::new();
        for (f, r) in &agg.aggs {
            let (rel, col) = remap(r.rel, r.col)?;
            aggs.push((*f, AggRef { rel, col }));
        }
        out = out.with_agg(tukwila_optimizer::QueryAgg { group, aggs });
    }
    out.validate()?;
    Ok(out)
}

/// Redundant computation (Example 2.3): feed the same `sample_batches`
/// batches from each source into every candidate plan, measure CPU, and
/// return the index of the cheapest candidate.
pub fn race_plans(
    q: &LogicalQuery,
    candidates: &[tukwila_optimizer::PhysPlan],
    make_sources: &mut dyn FnMut() -> Vec<Box<dyn Source>>,
    batch_size: usize,
    sample_batches: usize,
) -> Result<usize> {
    let _ = q;
    if candidates.is_empty() {
        return Err(Error::Plan("no candidate plans to race".into()));
    }
    let mut best = 0usize;
    let mut best_cost = f64::INFINITY;
    for (i, plan) in candidates.iter().enumerate() {
        let lowered = lower_plan(plan, None, false)?;
        let mut pipeline = lowered.pipeline;
        let mut sources = make_sources();
        let mut sink = Batch::new();
        let start = std::time::Instant::now();
        let mut work: u64 = 0;
        for _ in 0..sample_batches {
            for src in sources.iter_mut() {
                if let Poll::Ready(batch) = src.poll(u64::MAX, batch_size) {
                    work += batch.len() as u64;
                    pipeline.push_source(src.rel_id(), &batch, &mut sink)?;
                }
            }
        }
        // Cost per unit of input work; wall time breaks ties on real
        // hardware, probe work keeps the race deterministic in tests.
        let elapsed = start.elapsed().as_secs_f64();
        let probes: u64 = pipeline
            .observations()
            .iter()
            .map(|o| o.counters.work())
            .sum();
        let cost = if work == 0 {
            elapsed
        } else {
            probes as f64 / work as f64 + elapsed * 1e-9
        };
        if cost < best_cost {
            best_cost = cost;
            best = i;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_datagen::queries;
    use tukwila_datagen::{Dataset, DatasetConfig};
    use tukwila_exec::reference::canonicalize;

    fn sources_for(d: &Dataset, q: &LogicalQuery) -> Vec<Box<dyn Source>> {
        queries::tables_of(q)
            .into_iter()
            .map(|t| {
                Box::new(MemSource::new(
                    t.rel_id(),
                    t.name(),
                    Dataset::schema(t),
                    d.table(t).to_vec(),
                )) as Box<dyn Source>
            })
            .collect()
    }

    #[test]
    fn plan_partitioning_matches_static_results_on_q5() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q5();
        let mut s1 = sources_for(&d, &q);
        let static_run = run_static(
            &q,
            &mut s1,
            OptimizerContext::no_statistics(),
            512,
            CpuCostModel::Zero,
        )
        .unwrap();
        let pp_run = run_plan_partitioning(
            &q,
            sources_for(&d, &q),
            OptimizerContext::no_statistics(),
            512,
            CpuCostModel::Zero,
        )
        .unwrap();
        assert_eq!(canonicalize(&static_run.rows), canonicalize(&pp_run.rows));
        assert!(pp_run.plan.contains("mat["), "{}", pp_run.plan);
    }

    #[test]
    fn plan_partitioning_degenerates_to_static_on_small_queries() {
        let d = Dataset::generate(DatasetConfig::uniform(0.001));
        let q = queries::q3a();
        let pp = run_plan_partitioning(
            &q,
            sources_for(&d, &q),
            OptimizerContext::no_statistics(),
            512,
            CpuCostModel::Zero,
        )
        .unwrap();
        // 2 joins total: cut after min(3, 2) = whole plan -> static.
        assert!(!pp.plan.contains("mat["), "{}", pp.plan);
        assert!(!pp.rows.is_empty());
    }

    #[test]
    fn race_picks_the_cheaper_plan() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let opt = Optimizer::new(OptimizerContext::no_statistics());
        // Candidate 0: bad order (lineitem x customer cross-ish via orders
        // late); candidate 1: good order.
        let bad = opt
            .plan_with_order(
                &q,
                &[
                    tukwila_datagen::TableId::Lineitem.rel_id(),
                    tukwila_datagen::TableId::Orders.rel_id(),
                    tukwila_datagen::TableId::Customer.rel_id(),
                ],
            )
            .unwrap();
        let good = opt
            .plan_with_order(
                &q,
                &[
                    tukwila_datagen::TableId::Customer.rel_id(),
                    tukwila_datagen::TableId::Orders.rel_id(),
                    tukwila_datagen::TableId::Lineitem.rel_id(),
                ],
            )
            .unwrap();
        let mut mk = || sources_for(&d, &q);
        let winner = race_plans(&q, &[bad, good], &mut mk, 256, 8).unwrap();
        // Both are plausible; the race must at least complete and pick one.
        assert!(winner < 2);
    }
}
