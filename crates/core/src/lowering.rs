//! Lowers optimizer output ([`PhysPlan`]) onto the pipelined execution
//! engine, wiring in the cross-phase machinery: every phase plan ends with
//! a *canonical answer projection* (fixed column order derived from the
//! query, not the plan shape — the §3.2 schema-compatibility discipline)
//! feeding the shared group-by table of Figure 1.

use std::sync::Arc;

use tukwila_exec::agg::{
    AggSpec, GroupSpec, PreAggOp, SharedGroupOp, SharedGroupTable, WindowPolicy,
};
use tukwila_exec::filter::FilterOp;
use tukwila_exec::join::{HybridHashJoin, MergeJoin, NestedLoopsJoin, PipelinedHashJoin};
use tukwila_exec::project::ProjectOp;
use tukwila_exec::{IncOp, PipelinePlan, PlanBuilder};
use tukwila_optimizer::{PhysAgg, PhysJoinAlgo, PhysKind, PhysNode, PhysPlan, PreAggMode};
use tukwila_relation::{Error, Expr, Result, Schema};

/// A lowered, executable plan plus the metadata the corrective executor
/// needs.
pub struct LoweredPlan {
    pub pipeline: PipelinePlan,
    /// `(pipeline node index, join predicate id)` for multiplicative-flag
    /// detection.
    pub join_nodes: Vec<(usize, u64)>,
    /// The shared group table (when the query aggregates).
    pub table: Option<Arc<SharedGroupTable>>,
    /// Post-aggregation projection (`avg` reassembly), applied by whoever
    /// finalizes the table.
    pub post_project: Option<(Vec<Expr>, Schema)>,
}

/// The canonical answer projection and group spec for a plan: answer
/// tuples are `[group columns in query order, then aggregate inputs in
/// query order]`, regardless of the plan's join order. Every phase of a
/// corrective execution must produce this same layout.
pub fn canonical_agg(plan: &PhysPlan) -> Option<(Vec<Expr>, Schema, GroupSpec)> {
    let agg: &PhysAgg = plan.agg.as_ref()?;
    let root = &plan.root;
    let mut exprs = Vec::new();
    let mut fields = Vec::new();
    for &c in &agg.group_cols {
        exprs.push(Expr::Col(c));
        fields.push(root.schema.field(c).clone());
    }
    let g = agg.group_cols.len();
    let mut specs = Vec::new();
    for (i, (func, col)) in agg.aggs.iter().enumerate() {
        exprs.push(Expr::Col(*col));
        fields.push(root.schema.field(*col).clone());
        specs.push(AggSpec {
            func: *func,
            col: g + i,
        });
    }
    let schema = Schema::new(fields);
    let spec = GroupSpec::new((0..g).collect(), specs);
    Some((exprs, schema, spec))
}

enum Lowered {
    /// A node in the builder.
    Node(usize),
    /// A bare unfiltered scan: the source binds directly to the consumer,
    /// carrying the scan node's logical signature (a single relation for
    /// real scans; the producer subtree's signature for exchange leaves
    /// of a fragmented plan).
    Source(u32, tukwila_storage::ExprSig),
}

struct LowerCtx<'a> {
    b: &'a mut PlanBuilder,
    join_nodes: Vec<(usize, u64)>,
}

impl<'a> LowerCtx<'a> {
    fn attach(
        &mut self,
        op: Box<dyn IncOp>,
        children: &[Lowered],
        sig: &PhysNode,
    ) -> Result<usize> {
        let slots: Vec<Option<usize>> = children
            .iter()
            .map(|c| match c {
                Lowered::Node(n) => Some(*n),
                Lowered::Source(..) => None,
            })
            .collect();
        let id = self.b.add_op(op, &slots, Some(sig.sig.clone()))?;
        for (port, c) in children.iter().enumerate() {
            if let Lowered::Source(rel, leaf_sig) = c {
                self.b
                    .bind_source_with_sig(*rel, id, port, leaf_sig.clone())?;
            }
        }
        Ok(id)
    }

    fn lower_node(&mut self, node: &PhysNode) -> Result<Lowered> {
        match &node.kind {
            PhysKind::Scan { rel, filter, .. } => match filter {
                None => Ok(Lowered::Source(*rel, node.sig.clone())),
                Some(pred) => {
                    let op = Box::new(FilterOp::new(pred.clone(), node.schema.clone()));
                    let slots: Vec<Option<usize>> = vec![None];
                    let id = self.b.add_op(op, &slots, Some(node.sig.clone()))?;
                    self.b.bind_source(*rel, id, 0)?;
                    Ok(Lowered::Node(id))
                }
            },
            PhysKind::Join {
                algo,
                left,
                right,
                left_col,
                right_col,
                pred_id,
                residual,
            } => {
                let l = self.lower_node(left)?;
                let r = self.lower_node(right)?;
                let op: Box<dyn IncOp> = match algo {
                    PhysJoinAlgo::PipelinedHash => Box::new(PipelinedHashJoin::new(
                        left.schema.clone(),
                        right.schema.clone(),
                        *left_col,
                        *right_col,
                    )),
                    PhysJoinAlgo::Merge => Box::new(MergeJoin::new(
                        left.schema.clone(),
                        right.schema.clone(),
                        *left_col,
                        *right_col,
                    )),
                    PhysJoinAlgo::HybridHash => Box::new(HybridHashJoin::new(
                        left.schema.clone(),
                        right.schema.clone(),
                        *left_col,
                        *right_col,
                    )),
                    PhysJoinAlgo::NestedLoops => {
                        let pred = Expr::eq(
                            Expr::Col(*left_col),
                            Expr::Col(left.schema.arity() + *right_col),
                        );
                        Box::new(NestedLoopsJoin::new(
                            left.schema.clone(),
                            right.schema.clone(),
                            pred,
                        ))
                    }
                };
                let id = self.attach(op, &[l, r], node)?;
                self.join_nodes.push((id, *pred_id));
                if residual.is_empty() {
                    Ok(Lowered::Node(id))
                } else {
                    let pred = Expr::And(
                        residual
                            .iter()
                            .map(|&(a, b)| Expr::eq(Expr::Col(a), Expr::Col(b)))
                            .collect(),
                    );
                    let f = Box::new(FilterOp::new(pred, node.schema.clone()));
                    let fid = self.b.add_op(f, &[Some(id)], Some(node.sig.clone()))?;
                    Ok(Lowered::Node(fid))
                }
            }
            PhysKind::PreAgg {
                child,
                mode,
                group_cols,
                aggs,
            } => {
                let c = self.lower_node(child)?;
                let spec = GroupSpec::new(
                    group_cols.clone(),
                    aggs.iter()
                        .map(|&(func, col)| AggSpec { func, col })
                        .collect(),
                );
                let policy = match mode {
                    PreAggMode::AdaptiveWindow => WindowPolicy::default_adaptive(),
                    // Traditional pre-aggregation groups its entire input
                    // before emitting: a window that never fills.
                    PreAggMode::Traditional => WindowPolicy::Fixed(usize::MAX),
                    PreAggMode::Pseudogroup => WindowPolicy::Fixed(1),
                };
                let op = Box::new(PreAggOp::new(spec, &child.schema, policy));
                // Field names differ by convention (the planner prefixes
                // partials); arity must agree.
                if op.schema().arity() != node.schema.arity() {
                    return Err(Error::Plan(format!(
                        "pre-agg schema mismatch: op {} vs plan {}",
                        op.schema(),
                        node.schema
                    )));
                }
                let id = self.attach(op, &[c], node)?;
                Ok(Lowered::Node(id))
            }
        }
    }
}

/// Lower a physical plan to an executable pipeline.
///
/// When the plan aggregates, the pipeline ends with the canonical
/// projection feeding a [`SharedGroupTable`]: pass `shared` to reuse a
/// table across phases (corrective execution), or `None` to create a fresh
/// one. With `emit_on_finish`, the table finalizes (and post-projects) into
/// the root output when the last source closes — single-plan use.
pub fn lower_plan(
    plan: &PhysPlan,
    shared: Option<Arc<SharedGroupTable>>,
    emit_on_finish: bool,
) -> Result<LoweredPlan> {
    let mut b = PipelinePlan::builder();
    let mut ctx = LowerCtx {
        b: &mut b,
        join_nodes: Vec::new(),
    };
    let rooted = ctx.lower_node(&plan.root)?;
    let join_nodes = std::mem::take(&mut ctx.join_nodes);

    let mut table = None;
    let mut post_project = None;
    match canonical_agg(plan) {
        Some((exprs, canon_schema, spec)) => {
            let proj = Box::new(ProjectOp::new(exprs, canon_schema.clone()));
            let proj_slots = match rooted {
                Lowered::Node(n) => vec![Some(n)],
                Lowered::Source(..) => vec![None],
            };
            let proj_id = b.add_op(proj, &proj_slots, Some(plan.root.sig.clone()))?;
            if let Lowered::Source(rel, sig) = rooted {
                b.bind_source_with_sig(rel, proj_id, 0, sig)?;
            }
            let t = match shared {
                Some(t) => {
                    if t.output_schema().arity() != spec.output_schema(&canon_schema).arity() {
                        return Err(Error::Plan(
                            "phase plan is not schema-compatible with the shared group table"
                                .into(),
                        ));
                    }
                    t
                }
                None => SharedGroupTable::new(spec, &canon_schema),
            };
            let group_op = Box::new(SharedGroupOp::new(t.clone(), emit_on_finish));
            let gid = b.add_op(group_op, &[Some(proj_id)], None)?;
            post_project = plan.agg.as_ref().and_then(|a| a.post_project.clone());
            if emit_on_finish {
                if let Some((exprs, schema)) = &post_project {
                    let p = Box::new(ProjectOp::new(exprs.clone(), schema.clone()));
                    b.add_op(p, &[Some(gid)], None)?;
                }
            }
            table = Some(t);
        }
        None => {
            if let Lowered::Source(rel, sig) = rooted {
                // Single unfiltered scan as a whole query: wrap in a
                // pass-through projection so the plan has a root operator.
                let schema = plan.root.schema.clone();
                let cols: Vec<usize> = (0..schema.arity()).collect();
                let p = Box::new(ProjectOp::columns(&cols, &schema));
                let id = b.add_op(p, &[None], Some(plan.root.sig.clone()))?;
                b.bind_source_with_sig(rel, id, 0, sig)?;
            }
        }
    }

    Ok(LoweredPlan {
        pipeline: b.build()?,
        join_nodes,
        table,
        post_project,
    })
}

/// A physical plan lowered into exchange-connected pipeline fragments,
/// plus the metadata the corrective executor needs (the fragmented
/// counterpart of [`LoweredPlan`]).
pub struct FragmentedLower {
    /// The validated fragment plan (producers first, root last). One
    /// fragment when no cuts were requested.
    pub plan: tukwila_exec::FragmentPlan,
    /// `(plan-wide node index, join predicate id)` across every fragment,
    /// matching [`tukwila_exec::FragmentRun::observations`] numbering.
    pub join_nodes: Vec<(usize, u64)>,
    /// The shared group table (when the query aggregates) — lives in the
    /// root fragment.
    pub table: Option<Arc<SharedGroupTable>>,
    /// Post-aggregation projection, applied by whoever finalizes the
    /// table.
    pub post_project: Option<(Vec<Expr>, Schema)>,
}

/// Rewrite the plan tree for fragmentation: each subtree whose signature
/// is in `cuts` (and is not the root or a bare scan) is replaced by a
/// synthetic exchange scan carrying the subtree's schema and signature,
/// and the subtree itself is appended to `producers` (nested cuts first,
/// so producers always precede their consumers).
fn split_at_cuts(
    node: &PhysNode,
    is_root: bool,
    cuts: &[tukwila_storage::ExprSig],
    next_exchange: &mut u32,
    producers: &mut Vec<(u32, PhysNode)>,
) -> PhysNode {
    // The *outermost* node bearing a cut signature wins: a PreAgg shares
    // its child's signature (the pre-aggregation doesn't change which
    // relations are joined), so the same signature must not cut both the
    // PreAgg and the join directly beneath it — one chosen cut yields
    // exactly one producer fragment.
    let cut_here =
        !is_root && !matches!(node.kind, PhysKind::Scan { .. }) && cuts.contains(&node.sig);
    let inner_cuts: Vec<tukwila_storage::ExprSig>;
    let cuts_below: &[tukwila_storage::ExprSig] = if cut_here {
        inner_cuts = cuts.iter().filter(|s| **s != node.sig).cloned().collect();
        &inner_cuts
    } else {
        cuts
    };
    let rewritten_kind = match &node.kind {
        PhysKind::Scan { .. } => node.kind.clone(),
        PhysKind::Join {
            algo,
            left,
            right,
            left_col,
            right_col,
            pred_id,
            residual,
        } => PhysKind::Join {
            algo: *algo,
            left: Box::new(split_at_cuts(
                left,
                false,
                cuts_below,
                next_exchange,
                producers,
            )),
            right: Box::new(split_at_cuts(
                right,
                false,
                cuts_below,
                next_exchange,
                producers,
            )),
            left_col: *left_col,
            right_col: *right_col,
            pred_id: *pred_id,
            residual: residual.clone(),
        },
        PhysKind::PreAgg {
            child,
            mode,
            group_cols,
            aggs,
        } => PhysKind::PreAgg {
            child: Box::new(split_at_cuts(
                child,
                false,
                cuts_below,
                next_exchange,
                producers,
            )),
            mode: *mode,
            group_cols: group_cols.clone(),
            aggs: aggs.clone(),
        },
    };
    let rewritten = PhysNode {
        kind: rewritten_kind,
        schema: node.schema.clone(),
        col_map: node.col_map.clone(),
        partials: node.partials.clone(),
        sig: node.sig.clone(),
        est_card: node.est_card,
        est_cost: node.est_cost,
        est_cpu: node.est_cpu,
        est_wait_us: node.est_wait_us,
    };
    if cut_here {
        let ex = *next_exchange;
        *next_exchange += 1;
        producers.push((ex, rewritten));
        PhysNode {
            kind: PhysKind::Scan {
                rel: ex,
                name: format!("exchange-{}", ex - tukwila_exec::EXCHANGE_REL_BASE),
                filter: None,
            },
            schema: node.schema.clone(),
            col_map: node.col_map.clone(),
            partials: node.partials.clone(),
            sig: node.sig.clone(),
            est_card: node.est_card,
            // The producer fragment does the work; the exchange scan
            // reading it back is free in both cost dimensions.
            est_cost: 0.0,
            est_cpu: 0.0,
            est_wait_us: 0.0,
        }
    } else {
        rewritten
    }
}

/// Lower a physical plan into exchange-connected pipeline fragments.
///
/// `cuts` names the subtrees (by logical signature, as chosen by the
/// optimizer's fragmentation pass) that become producer fragments; an
/// empty list degenerates to one fragment with exactly [`lower_plan`]'s
/// semantics. The root fragment carries the canonical answer projection
/// and the (optionally `shared`) group table, so fragmented phase plans
/// compose with corrective execution unchanged. Exchange leaves are bound
/// with the producer subtree's logical signature, so sealing a fragmented
/// phase registers buffered exchange-side state under the signature
/// stitch-up reuse expects.
pub fn lower_fragmented(
    plan: &PhysPlan,
    cuts: &[tukwila_storage::ExprSig],
    shared: Option<Arc<SharedGroupTable>>,
    emit_on_finish: bool,
) -> Result<FragmentedLower> {
    let mut next_exchange = tukwila_exec::EXCHANGE_REL_BASE;
    let mut producers: Vec<(u32, PhysNode)> = Vec::new();
    let rewritten_root = split_at_cuts(&plan.root, true, cuts, &mut next_exchange, &mut producers);

    let mut fragments = Vec::with_capacity(producers.len() + 1);
    let mut join_nodes: Vec<(usize, u64)> = Vec::new();
    let mut node_offset = 0usize;
    for (ex, subtree) in &producers {
        let mut b = PipelinePlan::builder();
        let mut ctx = LowerCtx {
            b: &mut b,
            join_nodes: Vec::new(),
        };
        let rooted = ctx.lower_node(subtree)?;
        let frag_joins = std::mem::take(&mut ctx.join_nodes);
        if let Lowered::Source(rel, sig) = rooted {
            // A producer fragment that is a bare scan only forwards
            // batches; wrap in a pass-through projection so it still has
            // a root operator (the fragmentation pass avoids these cuts,
            // but hand-built cut lists may not).
            let schema = subtree.schema.clone();
            let cols: Vec<usize> = (0..schema.arity()).collect();
            let p = Box::new(ProjectOp::columns(&cols, &schema));
            let id = b.add_op(p, &[None], Some(subtree.sig.clone()))?;
            b.bind_source_with_sig(rel, id, 0, sig)?;
        }
        let pipeline = b.build()?;
        join_nodes.extend(frag_joins.iter().map(|&(n, p)| (n + node_offset, p)));
        node_offset += pipeline.node_count();
        fragments.push(tukwila_exec::Fragment {
            pipeline,
            output: Some(*ex),
        });
    }

    let root_plan = PhysPlan {
        root: rewritten_root,
        agg: plan.agg.clone(),
        est_cost: plan.est_cost,
    };
    let root_lowered = lower_plan(&root_plan, shared, emit_on_finish)?;
    join_nodes.extend(
        root_lowered
            .join_nodes
            .iter()
            .map(|&(n, p)| (n + node_offset, p)),
    );
    fragments.push(tukwila_exec::Fragment {
        pipeline: root_lowered.pipeline,
        output: None,
    });

    Ok(FragmentedLower {
        plan: tukwila_exec::FragmentPlan::new(fragments)?,
        join_nodes,
        table: root_lowered.table,
        post_project: root_lowered.post_project,
    })
}

/// Apply a post-projection to finalized rows.
pub fn apply_post_project(
    rows: Vec<tukwila_relation::Tuple>,
    post: &Option<(Vec<Expr>, Schema)>,
) -> Result<Vec<tukwila_relation::Tuple>> {
    match post {
        None => Ok(rows),
        Some((exprs, _)) => {
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                let mut vals = Vec::with_capacity(exprs.len());
                for e in exprs {
                    vals.push(e.eval(&r)?);
                }
                out.push(tukwila_relation::Tuple::new(vals));
            }
            Ok(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_datagen::queries;
    use tukwila_datagen::{Dataset, DatasetConfig, TableId};
    use tukwila_exec::{CpuCostModel, SimDriver};
    use tukwila_optimizer::{Optimizer, OptimizerContext, PreAggConfig};
    use tukwila_source::{MemSource, Source};

    fn sources_for(d: &Dataset, q: &tukwila_optimizer::LogicalQuery) -> Vec<Box<dyn Source>> {
        queries::tables_of(q)
            .into_iter()
            .map(|t| {
                Box::new(MemSource::new(
                    t.rel_id(),
                    t.name(),
                    Dataset::schema(t),
                    d.table(t).to_vec(),
                )) as Box<dyn Source>
            })
            .collect()
    }

    #[test]
    fn lowered_q3a_executes_and_aggregates() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let opt = Optimizer::new(OptimizerContext::no_statistics());
        let plan = opt.optimize(&q).unwrap();
        let lowered = lower_plan(&plan, None, true).unwrap();
        let mut pipeline = lowered.pipeline;
        let mut sources = sources_for(&d, &q);
        let driver = SimDriver::new(512, CpuCostModel::Zero);
        let (rows, _) = driver.run(&mut pipeline, &mut sources).unwrap();
        assert!(!rows.is_empty());
        // Group key arity: l_orderkey, o_orderdate, o_shippriority + sum.
        assert_eq!(rows[0].arity(), 4);
        assert!(!lowered.join_nodes.is_empty());
    }

    #[test]
    fn preagg_plan_matches_plain_plan_results() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q10a();
        let run = |preagg: PreAggConfig| {
            let mut ctx = OptimizerContext::no_statistics();
            ctx.preagg = preagg;
            let opt = Optimizer::new(ctx);
            let plan = opt.optimize(&q).unwrap();
            let lowered = lower_plan(&plan, None, true).unwrap();
            let mut pipeline = lowered.pipeline;
            let mut sources = sources_for(&d, &q);
            let driver = SimDriver::new(512, CpuCostModel::Zero);
            let (rows, _) = driver.run(&mut pipeline, &mut sources).unwrap();
            tukwila_exec::reference::canonicalize_approx(&rows)
        };
        let plain = run(PreAggConfig::Off);
        let window = run(PreAggConfig::Insert(
            tukwila_optimizer::PreAggMode::AdaptiveWindow,
        ));
        let trad = run(PreAggConfig::Insert(
            tukwila_optimizer::PreAggMode::Traditional,
        ));
        let pseudo = run(PreAggConfig::Insert(
            tukwila_optimizer::PreAggMode::Pseudogroup,
        ));
        assert_eq!(plain, window);
        assert_eq!(plain, trad);
        assert_eq!(plain, pseudo);
        assert!(!plain.is_empty());
    }

    #[test]
    fn fragmented_lowering_matches_single_plan_both_modes() {
        use tukwila_exec::FragmentOptions;
        use tukwila_optimizer::fragment::FragmentationConfig;
        use tukwila_stats::WallClock;

        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let ctx = OptimizerContext::no_statistics();
        let opt = Optimizer::new(ctx.clone());
        let plan = opt
            .plan_with_order(
                &q,
                &[
                    TableId::Orders.rel_id(),
                    TableId::Lineitem.rel_id(),
                    TableId::Customer.rel_id(),
                ],
            )
            .unwrap();

        // Reference: the unfragmented plan.
        let lowered = lower_plan(&plan, None, true).unwrap();
        let mut pipeline = lowered.pipeline;
        let (rows, _) = SimDriver::new(512, CpuCostModel::Zero)
            .run(&mut pipeline, &mut sources_for(&d, &q))
            .unwrap();
        let expected = tukwila_exec::reference::canonicalize_approx(&rows);

        // Fragmented, every eligible subtree cut.
        let cuts = tukwila_optimizer::choose_cuts(&plan, &ctx, &FragmentationConfig::aggressive());
        assert!(!cuts.is_empty(), "aggressive config must cut Q3A");
        let frag = lower_fragmented(&plan, &cuts, None, true).unwrap();
        assert!(frag.plan.fragment_count() >= 2, "an exchange must exist");
        assert!(!frag.join_nodes.is_empty());
        let (rows_seq, _) = SimDriver::new(512, CpuCostModel::Zero)
            .run_fragments_sequential(frag.plan, sources_for(&d, &q))
            .unwrap();
        assert_eq!(
            tukwila_exec::reference::canonicalize_approx(&rows_seq),
            expected,
            "sequential fragmented run diverged"
        );

        // Threaded, same cuts.
        let frag = lower_fragmented(&plan, &cuts, None, true).unwrap();
        let clock = std::sync::Arc::new(WallClock::accelerated(100.0));
        let (rows_thr, _) = SimDriver::new(512, CpuCostModel::Measured)
            .with_clock(clock)
            .run_fragments(frag.plan, sources_for(&d, &q), &FragmentOptions::default())
            .unwrap();
        assert_eq!(
            tukwila_exec::reference::canonicalize_approx(&rows_thr),
            expected,
            "threaded fragmented run diverged"
        );
    }

    #[test]
    fn preagg_sharing_child_sig_cuts_once() {
        use tukwila_optimizer::fragment::FragmentationConfig;

        // PreAgg nodes carry their child's signature; one chosen cut
        // signature must produce exactly one producer fragment, not a
        // PreAgg fragment stacked on a join fragment.
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q10a();
        let mut ctx = OptimizerContext::no_statistics();
        ctx.preagg = PreAggConfig::Insert(tukwila_optimizer::PreAggMode::AdaptiveWindow);
        let plan = Optimizer::new(ctx.clone()).optimize(&q).unwrap();
        let cuts = tukwila_optimizer::choose_cuts(&plan, &ctx, &FragmentationConfig::aggressive());
        assert!(!cuts.is_empty());
        let frag = lower_fragmented(&plan, &cuts, None, true).unwrap();
        assert!(
            frag.plan.fragment_count() <= cuts.len() + 1,
            "{} fragments for {} cut signatures — a shared PreAgg/child sig was cut twice",
            frag.plan.fragment_count(),
            cuts.len()
        );

        let lowered = lower_plan(&plan, None, true).unwrap();
        let mut pipeline = lowered.pipeline;
        let (rows, _) = SimDriver::new(512, CpuCostModel::Zero)
            .run(&mut pipeline, &mut sources_for(&d, &q))
            .unwrap();
        let (rows_frag, _) = SimDriver::new(512, CpuCostModel::Zero)
            .run_fragments_sequential(frag.plan, sources_for(&d, &q))
            .unwrap();
        assert_eq!(
            tukwila_exec::reference::canonicalize_approx(&rows_frag),
            tukwila_exec::reference::canonicalize_approx(&rows),
        );
    }

    #[test]
    fn q5_with_cycle_executes() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q5();
        let opt = Optimizer::new(OptimizerContext::no_statistics());
        let plan = opt.optimize(&q).unwrap();
        let lowered = lower_plan(&plan, None, true).unwrap();
        let mut pipeline = lowered.pipeline;
        let mut sources = sources_for(&d, &q);
        let driver = SimDriver::new(512, CpuCostModel::Zero);
        let (rows, _) = driver.run(&mut pipeline, &mut sources).unwrap();
        // Grouped by nation name within ASIA: at most 5 groups.
        assert!(rows.len() <= 5);
        assert!(!rows.is_empty());
    }

    #[test]
    fn matches_reference_oracle_on_q3a() {
        use tukwila_exec::reference::{canonicalize, RefCol, RefJoin, RefQuery, RefRelation};
        use tukwila_relation::agg::AggFunc;

        let d = Dataset::generate(DatasetConfig::uniform(0.001));
        let q = queries::q3a();
        let opt = Optimizer::new(OptimizerContext::no_statistics());
        let plan = opt.optimize(&q).unwrap();
        let lowered = lower_plan(&plan, None, true).unwrap();
        let mut pipeline = lowered.pipeline;
        let mut sources = sources_for(&d, &q);
        let driver = SimDriver::new(256, CpuCostModel::Zero);
        let (rows, _) = driver.run(&mut pipeline, &mut sources).unwrap();

        // Reference: customer(0) orders(1) lineitem(2).
        let mut r = RefQuery::new(vec![
            RefRelation {
                schema: Dataset::schema(TableId::Customer),
                tuples: d.customer.clone(),
            },
            RefRelation {
                schema: Dataset::schema(TableId::Orders),
                tuples: d.orders.clone(),
            },
            RefRelation {
                schema: Dataset::schema(TableId::Lineitem),
                tuples: d.lineitem.clone(),
            },
        ]);
        r.filters.push((0, q.rels[0].filter.clone().unwrap()));
        r.joins.push(RefJoin {
            left_rel: 0,
            left_col: 0,
            right_rel: 1,
            right_col: 1,
        });
        r.joins.push(RefJoin {
            left_rel: 1,
            left_col: 0,
            right_rel: 2,
            right_col: 0,
        });
        r.group_cols = vec![
            RefCol { rel: 2, col: 0 },
            RefCol { rel: 1, col: 2 },
            RefCol { rel: 1, col: 3 },
        ];
        r.aggs = vec![(AggFunc::Sum, RefCol { rel: 2, col: 9 })];
        let expected = r.run().unwrap();
        assert_eq!(canonicalize(&rows), canonicalize(&expected));
    }
}
