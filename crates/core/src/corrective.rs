//! Corrective query processing (paper §4): execute, monitor, re-optimize,
//! switch plans in mid-pipeline, stitch up at the end.
//!
//! Phase plans execute in one of two modes:
//!
//! * **Sequential** (the seed behavior, and every virtual-clock run): the
//!   corrective loop drives all fragments on its own thread through the
//!   sequential [`FragmentRun`] — exchange handoff is immediate, so a
//!   switch can seal at any batch boundary.
//! * **Threaded** (wall clock + fragmentation configured): each phase
//!   plan's producer fragments run on their own threads behind bounded
//!   exchange queues ([`tukwila_exec::ThreadedFragmentRun`]), so a
//!   CPU-heavy subtree genuinely overlaps delivery-bound scans *while the
//!   monitor keeps re-optimizing*. A switch then uses the loss-free
//!   **quiesce protocol**: producers park at a batch boundary and report
//!   their high-water marks, the controller drains every exchange's
//!   in-flight tuples into the old plan, seals all fragments, recovers
//!   the sources, and spawns the next phase's fragments — no tuple is
//!   ever dropped or duplicated, and no thread outlives the run.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use tukwila_exec::agg::SharedGroupTable;
use tukwila_exec::driver::charged_cost;
use tukwila_exec::plan::NodeObservation;
use tukwila_exec::{
    Batch, CpuCostModel, DataBatch, ExchangePoll, ExecReport, FragmentOptions, FragmentRun,
    PushTarget, ThreadedFragmentRun, Timeline,
};
use tukwila_optimizer::{
    FragmentationConfig, LogicalQuery, Optimizer, OptimizerContext, PhysPlan, PreAggConfig,
};
use tukwila_relation::{Error, Expr, Result, Schema, Tuple};
use tukwila_source::{Poll, Source, SourceProgressView};
use tukwila_stats::selectivity::SourceProgress;
use tukwila_stats::trace::SpanKind;
use tukwila_stats::{Clock, DeliveryCosts, SelectivityCatalog, TraceEvent, TraceSink};
use tukwila_storage::registry::ReuseStats;
use tukwila_storage::StateRegistry;

use crate::lowering::{apply_post_project, lower_fragmented};
use crate::stitchup::{StitchUp, StitchUpStats};

/// Configuration of the corrective executor.
#[derive(Debug, Clone)]
pub struct CorrectiveConfig {
    pub batch_size: usize,
    pub cpu: CpuCostModel,
    /// Re-optimizer polling interval in source batches. The paper polls
    /// every second at SF 0.1; per DESIGN.md S5 we scale by data volume.
    pub poll_every_batches: u64,
    /// Switch when `candidate cost < threshold × current remaining cost`.
    pub switch_threshold: f64,
    /// Upper bound on phases (the paper's executions settle at 2–4).
    pub max_phases: usize,
    /// Don't consider switching before this many batches (warm-up: early
    /// selectivities are noise).
    pub warmup_batches: u64,
    /// Pre-aggregation policy passed through to the optimizer.
    pub preagg: PreAggConfig,
    /// Source cardinalities given to the optimizer up front ("Given
    /// cardinalities" mode); `None` reproduces the paper's "No statistics"
    /// mode (every relation defaults to 20 000 tuples).
    pub given_cards: Option<HashMap<u32, u64>>,
    /// Force the phase-0 plan to a left-deep join in this relation order
    /// (experiments that study recovery from a specific bad plan).
    pub initial_order: Option<Vec<u32>>,
    /// Only switch while the current plan's estimated *remaining* work
    /// exceeds this fraction of its estimated total — switching near the
    /// end buys little and inflates stitch-up (the paper's executions
    /// "switch only a few times").
    pub min_remaining_fraction: f64,
    /// Stitch-up reuses registered intermediates (§3.4.2). `false` only in
    /// the reuse ablation.
    pub stitch_reuse: bool,
    /// `Some` drives the execution off this shared clock instead of the
    /// virtual accumulator — the wall-clock mode of the dual-clock
    /// design. Every source of the run (notably threaded federated
    /// sources) must share the same instance; idling really waits on it.
    pub clock: Option<Arc<dyn Clock>>,
    /// `Some` fragments every phase plan at exchange boundaries chosen by
    /// the optimizer's fragmentation pass (re-evaluated at each switch
    /// with the live catalog, so cuts follow observed delivery rates).
    /// Under the virtual clock fragments execute sequentially in the
    /// corrective loop; under a wall clock the producer fragments run on
    /// real threads (see [`CorrectiveConfig::threaded_fragments`]), and a
    /// mid-stream switch quiesces them loss-free. `None` (default)
    /// preserves the unfragmented behavior.
    pub fragments: Option<FragmentationConfig>,
    /// Whether fragmented phase plans run their producer fragments on
    /// real threads. `None` (default) decides automatically: threaded
    /// when [`CorrectiveConfig::clock`] is a wall clock and
    /// [`CorrectiveConfig::fragments`] is configured, sequential
    /// otherwise. `Some(false)` forces sequential fragment execution even
    /// on a wall clock (baseline comparisons); `Some(true)` requires the
    /// wall clock + fragments and errors without them.
    pub threaded_fragments: Option<bool>,
    /// Exchange-queue and quiesce knobs for threaded fragment execution.
    pub fragment_options: FragmentOptions,
    /// Adaptivity trace journal: phase spans, monitor decisions with
    /// recost provenance, calibrations, and (threaded mode) the quiesce
    /// protocol's sub-spans. Also handed to the fragment layer unless
    /// [`CorrectiveConfig::fragment_options`] carries its own sink.
    /// Disabled (free) by default.
    pub trace: TraceSink,
}

impl Default for CorrectiveConfig {
    fn default() -> Self {
        CorrectiveConfig {
            batch_size: 1024,
            cpu: CpuCostModel::Measured,
            poll_every_batches: 8,
            switch_threshold: 0.6,
            max_phases: 8,
            warmup_batches: 4,
            preagg: PreAggConfig::Off,
            given_cards: None,
            initial_order: None,
            min_remaining_fraction: 0.3,
            stitch_reuse: true,
            clock: None,
            fragments: None,
            threaded_fragments: None,
            fragment_options: FragmentOptions::default(),
            trace: TraceSink::disabled(),
        }
    }
}

impl CorrectiveConfig {
    /// Run this query under a granted slice of a shared core budget: pins
    /// the fragmentation pass to plan at most `cores` pipeline fragments
    /// (instead of sizing to `available_parallelism`, which a multi-query
    /// server would over-subscribe N times) and charges the producer
    /// threads against `lease` so the arbiter's fleet accounting sees
    /// them. Enables fragmentation with [`FragmentationConfig::default`]
    /// when the config had none; an existing fragmentation config keeps
    /// its other knobs and only has `cores` overridden.
    pub fn with_core_grant(mut self, lease: tukwila_stats::QueryLease, cores: usize) -> Self {
        let mut frag = self.fragments.take().unwrap_or_default();
        frag.cores = Some(cores.max(1));
        self.fragments = Some(frag);
        self.fragment_options.lease = Some(lease);
        self
    }
}

/// Per-phase record for reporting (Table 1/2).
#[derive(Debug, Clone)]
pub struct PhaseInfo {
    pub plan: String,
    pub batches: u64,
    /// Tuples of each source consumed during this phase.
    pub consumed: HashMap<u32, u64>,
    /// Pipeline fragments the phase plan was split into (1 =
    /// unfragmented).
    pub fragments: usize,
}

/// Outcome of a corrective execution.
pub struct CorrectiveReport {
    pub phases: Vec<PhaseInfo>,
    pub exec: ExecReport,
    /// Virtual time spent in the stitch-up phase.
    pub stitch_us: u64,
    pub stitch: StitchUpStats,
    pub reuse: ReuseStats,
    pub rows: Vec<Tuple>,
    /// The `CostModel::unit_us` calibration measured from the warmup
    /// phase's driver CPU (`None` when the run never calibrated — e.g.
    /// non-`Measured` cost models, or no monitor poll before completion).
    pub calibrated_unit_us: Option<f64>,
}

impl CorrectiveReport {
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }
}

/// Calibrate the cost-unit→µs conversion: measured driver CPU so far over
/// the estimated CPU units the running plan has consumed (total minus
/// remaining, both in cost units). Returns `None` while either side is
/// too small to trust; the result is clamped to a sane band so a wild
/// early estimate cannot poison overlap credit and cut pricing.
fn calibrate_unit_us(measured_cpu_us: f64, total_units: f64, remaining_units: f64) -> Option<f64> {
    let consumed_units = total_units - remaining_units;
    if measured_cpu_us <= 0.0 || consumed_units < 1.0 {
        return None;
    }
    Some((measured_cpu_us / consumed_units).clamp(1e-3, 10.0))
}

/// A phase plan lowered for corrective execution: the (possibly
/// single-fragment) fragment run plus the lowering metadata the monitor
/// needs.
struct PhaseLowered {
    run: FragmentRun,
    join_nodes: Vec<(usize, u64)>,
    table: Option<Arc<SharedGroupTable>>,
    post_project: Option<(Vec<Expr>, Schema)>,
    fragments: usize,
}

/// Placeholder occupying a caller's source slot while the real source is
/// owned by a threaded phase (producer fragment thread or the
/// controller's root list). Never polled — the threaded runner takes
/// every slot up front and restores the recovered sources before
/// returning; polling one is a bug.
struct TakenSource {
    rel_id: u32,
    name: String,
    schema: Schema,
}

impl Source for TakenSource {
    fn rel_id(&self) -> u32 {
        self.rel_id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, _now_us: u64, _max_tuples: usize) -> Poll {
        panic!(
            "source '{}' (relation {}) is owned by a threaded corrective phase",
            self.name, self.rel_id
        );
    }

    fn progress(&self) -> SourceProgressView {
        SourceProgressView {
            tuples_read: 0,
            fraction_read: None,
            eof: false,
        }
    }
}

/// How a threaded phase ended.
enum PhaseEnd {
    /// Every input ran dry; the query is done.
    Completed,
    /// The monitor decided to switch to this candidate and every producer
    /// quiesced in time.
    Switched(Box<PhysPlan>),
}

/// Exchange-queue statistics aggregated across a run's phases (threaded
/// mode; the sequential fragment run has no queues and reports zeros).
#[derive(Debug, Default)]
struct ExchangeTotals {
    /// High-water mark of queue depth (batches) in any one exchange.
    max_queue_depth: u64,
    /// Blocked sends summed per exchange id across phases.
    blocked: HashMap<u32, u64>,
}

impl ExchangeTotals {
    fn absorb(&mut self, max_queue_depth: u64, blocked_by_exchange: &[(u32, u64)]) {
        self.max_queue_depth = self.max_queue_depth.max(max_queue_depth);
        for (id, n) in blocked_by_exchange {
            *self.blocked.entry(*id).or_insert(0) += n;
        }
    }

    fn blocked_by_exchange(&self) -> Vec<(u32, u64)> {
        let mut v: Vec<(u32, u64)> = self.blocked.iter().map(|(id, n)| (*id, *n)).collect();
        v.sort_by_key(|(id, _)| *id);
        v
    }
}

/// The mutable run-wide state the sequential and threaded drivers share,
/// handed to the common stitch-up/finalize tail.
struct RunTotals {
    timeline: Timeline,
    answers: Batch,
    phases: Vec<PhaseInfo>,
    total_batches: u64,
    /// CPU charged by producer fragment threads (threaded mode only) —
    /// added to the report's `cpu_us` next to the controller timeline's.
    extra_cpu_us: u64,
    calibrated_unit_us: Option<f64>,
    /// Exchange backpressure/depth totals (threaded mode only).
    exchange_stats: ExchangeTotals,
}

/// The corrective query processing executor.
pub struct CorrectiveExec {
    pub q: LogicalQuery,
    pub config: CorrectiveConfig,
}

impl CorrectiveExec {
    pub fn new(q: LogicalQuery, config: CorrectiveConfig) -> CorrectiveExec {
        CorrectiveExec { q, config }
    }

    /// Lower a phase plan, fragmenting it at the cuts the optimizer's
    /// fragmentation pass chooses from the *current* context (observed
    /// delivery rates included) when fragments are enabled. `fragments`
    /// is the run's live fragmentation config — the drivers thread a
    /// mutable copy so the warmup calibration can reprice exchanges
    /// before later phases lower.
    fn lower_phase(
        &self,
        phys: &PhysPlan,
        ctx: &OptimizerContext,
        shared: Option<Arc<SharedGroupTable>>,
        fragments: Option<&FragmentationConfig>,
    ) -> Result<PhaseLowered> {
        let cuts = match fragments {
            Some(fcfg) => {
                tukwila_optimizer::choose_cuts_traced(phys, ctx, fcfg, &self.config.trace)
            }
            None => Vec::new(),
        };
        let fl = lower_fragmented(phys, &cuts, shared, false)?;
        let fragments = fl.plan.fragment_count();
        Ok(PhaseLowered {
            run: fl.plan.into_run(),
            join_nodes: fl.join_nodes,
            table: fl.table,
            post_project: fl.post_project,
            fragments,
        })
    }

    fn make_ctx(
        &self,
        catalog: &Arc<SelectivityCatalog>,
        consumed: &HashMap<u32, u64>,
        calibrated_unit_us: Option<f64>,
    ) -> OptimizerContext {
        let mut ctx = match &self.config.given_cards {
            Some(cards) => OptimizerContext::with_cards(cards.clone()),
            None => OptimizerContext::no_statistics(),
        };
        ctx.catalog = Some(catalog.clone());
        ctx.consumed = consumed.clone();
        ctx.preagg = self.config.preagg;
        if let Some(unit_us) = calibrated_unit_us {
            // Warmup-calibrated cost-unit→µs conversion: overlap credit
            // and fragment cut pricing now speak this host's actual
            // per-unit driver time instead of the documented 0.1 default.
            ctx.cost_model.unit_us = unit_us;
        }
        ctx
    }

    /// Signatures materialized so far: every node of the running plan plus
    /// everything registered by earlier phases — the §4.3 sunk-cost set.
    fn sunk_sigs(current: &PhysPlan, registry: &StateRegistry) -> Vec<tukwila_storage::ExprSig> {
        fn walk(node: &tukwila_optimizer::PhysNode, out: &mut Vec<tukwila_storage::ExprSig>) {
            out.push(node.sig.clone());
            if let tukwila_optimizer::PhysKind::Join { left, right, .. } = &node.kind {
                walk(left, out);
                walk(right, out);
            }
            if let tukwila_optimizer::PhysKind::PreAgg { child, .. } = &node.kind {
                walk(child, out);
            }
        }
        let mut sigs = Vec::new();
        walk(&current.root, &mut sigs);
        for e in registry.entries() {
            sigs.push(e.sig.clone());
        }
        sigs.sort_unstable();
        sigs.dedup();
        sigs
    }

    /// Whether this configuration runs phase plans with threaded producer
    /// fragments.
    fn wants_threaded(&self) -> bool {
        match self.config.threaded_fragments {
            Some(t) => t,
            None => {
                self.config.fragments.is_some()
                    && self.config.clock.as_ref().is_some_and(|c| c.is_wall())
            }
        }
    }

    /// Run to completion over the given sources.
    pub fn run(&self, sources: &mut [Box<dyn Source>]) -> Result<CorrectiveReport> {
        if self.wants_threaded() {
            self.run_threaded(sources)
        } else {
            self.run_sequential(sources)
        }
    }

    /// The monitor's poll: re-optimize over the live catalog, recost the
    /// running plan, calibrate `unit_us` during the warmup phase, and
    /// decide whether the candidate is worth a switch.
    #[allow(clippy::too_many_arguments)]
    fn consider_switch(
        &self,
        catalog: &Arc<SelectivityCatalog>,
        consumed_total: &HashMap<u32, u64>,
        calibrated: &mut Option<f64>,
        current_phys: &PhysPlan,
        registry: &StateRegistry,
        timeline: &mut Timeline,
        phase: usize,
        total_batches: u64,
        measured_cpu_us: f64,
    ) -> Result<Option<PhysPlan>> {
        let cfg = &self.config;
        let mut ctx = self.make_ctx(catalog, consumed_total, *calibrated);
        ctx.sunk_sigs = Self::sunk_sigs(current_phys, registry);
        let prior_unit_us = ctx.cost_model.unit_us;
        let reopt = Optimizer::new(ctx);
        let start = Instant::now();
        let candidate = reopt.reoptimize_remaining(&self.q)?;
        let current_cost = reopt.recost(&self.q, current_phys, true)?;
        let current_total = reopt.recost(&self.q, current_phys, false)?;
        if phase == 0 && matches!(cfg.cpu, CpuCostModel::Measured) {
            // Warmup calibration: `measured_cpu_us` is the run's whole
            // measured driver CPU so far (controller timeline *plus* the
            // producer threads' live counters in threaded mode — the
            // cost-unit denominator below spans every fragment, so the
            // measured numerator must too); the CPU-only recost pair says
            // how many cost units the running plan has consumed.
            let cpu_total = reopt.recost_cpu(&self.q, current_phys, false)?;
            let cpu_remaining = reopt.recost_cpu(&self.q, current_phys, true)?;
            if let Some(unit) = calibrate_unit_us(measured_cpu_us, cpu_total, cpu_remaining) {
                *calibrated = Some(unit);
                cfg.trace.record_at(
                    timeline.now_us(),
                    TraceEvent::Calibration {
                        phase: phase as u64,
                        measured_cpu_us,
                        estimated_cpu_us: (cpu_total - cpu_remaining) * prior_unit_us,
                        unit_us: unit,
                    },
                );
            }
        }
        // Re-optimization runs in a background thread in Tukwila; we
        // charge its cost to the clock but not to query CPU.
        let reopt_us = start.elapsed().as_secs_f64() * 1e6;
        if matches!(cfg.cpu, CpuCostModel::Measured) {
            timeline.charge_background(reopt_us);
        }
        if std::env::var_os("TUKWILA_DEBUG").is_some() {
            eprintln!(
                "[monitor] batch {total_batches}: current {} cost {current_cost:.0}                          (total {current_total:.0}); candidate {} cost {:.0}",
                current_phys.describe(),
                candidate.describe(),
                candidate.est_cost
            );
        }
        let switching = candidate.est_cost < cfg.switch_threshold * current_cost
            && current_cost > cfg.min_remaining_fraction * current_total
            && candidate.describe() != current_phys.describe();
        cfg.trace.record_at(
            timeline.now_us(),
            TraceEvent::CorrectiveDecision {
                phase: phase as u64,
                current_plan: current_phys.describe(),
                candidate_plan: candidate.describe(),
                current_cost,
                candidate_cost: candidate.est_cost,
                threshold: cfg.switch_threshold,
                switched: switching,
            },
        );
        if switching {
            Ok(Some(candidate))
        } else {
            Ok(None)
        }
    }

    /// The sequential corrective driver (the seed behavior): all
    /// fragments on this thread, immediate exchange handoff.
    fn run_sequential(&self, sources: &mut [Box<dyn Source>]) -> Result<CorrectiveReport> {
        let catalog = Arc::new(SelectivityCatalog::new());
        let registry = StateRegistry::new();
        let cfg = &self.config;

        let mut consumed_total: HashMap<u32, u64> = HashMap::new();
        let mut consumed_phase: HashMap<u32, u64> = HashMap::new();
        let mut calibrated: Option<f64> = None;
        // Live copy of the fragmentation config: the warmup calibration
        // repriced exchanges here affect every later phase's cuts.
        let mut frag_cfg = cfg.fragments.clone();

        // Phase 0 plan.
        let optimizer = Optimizer::new(self.make_ctx(&catalog, &consumed_total, calibrated));
        let mut current_phys: PhysPlan = match &cfg.initial_order {
            Some(order) => optimizer.plan_with_order(&self.q, order)?,
            None => optimizer.optimize(&self.q)?,
        };
        let mut lowered: PhaseLowered = self.lower_phase(
            &current_phys,
            &self.make_ctx(&catalog, &consumed_total, calibrated),
            None,
            frag_cfg.as_ref(),
        )?;
        let shared = lowered.table.clone();
        let post_project = lowered.post_project.clone();

        let mut phases: Vec<PhaseInfo> = Vec::new();
        let mut phase_batches: u64 = 0;
        let mut total_batches: u64 = 0;
        let mut next_poll_at: u64 = cfg.warmup_batches.max(cfg.poll_every_batches);
        let mut phase = 0usize;

        let mut answers: Batch = Vec::new();
        // The shared clock-mode accounting (virtual accumulator or wall
        // clock) lives in exec::Timeline so this driver and SimDriver
        // cannot drift apart on clock semantics.
        let mut timeline = Timeline::new(cfg.clock.clone());
        let mut eof: Vec<bool> = vec![false; sources.len()];
        let trace = cfg.trace.clone();
        timeline.resync();
        trace.record_at(timeline.now_us(), SpanKind::Query.begin("corrective"));
        trace.record_at(timeline.now_us(), SpanKind::Phase.begin("phase-0"));

        loop {
            timeline.resync();
            let mut any_ready = false;
            let mut next_ready: Option<u64> = None;
            let mut all_done = true;
            for (i, src) in sources.iter_mut().enumerate() {
                if eof[i] {
                    continue;
                }
                all_done = false;
                match src.poll(timeline.now_us(), cfg.batch_size) {
                    Poll::Ready(batch) => {
                        any_ready = true;
                        total_batches += 1;
                        phase_batches += 1;
                        let rel = src.rel_id();
                        *consumed_total.entry(rel).or_insert(0) += batch.len() as u64;
                        *consumed_phase.entry(rel).or_insert(0) += batch.len() as u64;
                        let cost = charged_cost(cfg.cpu, &timeline, batch.len(), || {
                            lowered.run.push_source(rel, &batch, &mut answers)
                        })?;
                        timeline.charge(cost);
                    }
                    Poll::Pending { next_ready_us } => {
                        next_ready = Some(match next_ready {
                            Some(n) => n.min(next_ready_us),
                            None => next_ready_us,
                        });
                    }
                    Poll::Eof => {
                        eof[i] = true;
                        let rel = src.rel_id();
                        catalog.observe_source(
                            rel,
                            SourceProgress {
                                tuples_read: consumed_total.get(&rel).copied().unwrap_or(0),
                                fraction_read: Some(1.0),
                                eof: true,
                            },
                        );
                        let cost = charged_cost(cfg.cpu, &timeline, 0, || {
                            lowered.run.finish_source(rel, &mut answers)
                        })?;
                        timeline.charge(cost);
                    }
                }
            }
            if all_done {
                break;
            }
            if !any_ready {
                if let Some(n) = next_ready {
                    timeline.idle_toward(n);
                }
                continue;
            }

            // Monitor: poll the re-optimizer on schedule. (The batch
            // counter advances by up-to-#sources per sweep, so the
            // schedule is a moving threshold, not a divisibility test.)
            if total_batches >= next_poll_at && phase + 1 < cfg.max_phases {
                next_poll_at = total_batches + cfg.poll_every_batches;
                self.update_catalog(
                    &catalog,
                    &lowered,
                    sources,
                    &consumed_total,
                    &consumed_phase,
                );
                let measured_cpu_us = timeline.cpu_us();
                let was_uncalibrated = calibrated.is_none();
                let candidate = self.consider_switch(
                    &catalog,
                    &consumed_total,
                    &mut calibrated,
                    &current_phys,
                    &registry,
                    &mut timeline,
                    phase,
                    total_batches,
                    measured_cpu_us,
                )?;
                if was_uncalibrated {
                    if let Some(unit) = calibrated {
                        // Warmup calibration just landed: re-derive the
                        // delivery unit prices from the measured kernels
                        // and push them into every pricing surface —
                        // source-side hedge gates and the fragment
                        // optimizer's exchange tax.
                        let costs = DeliveryCosts::from_unit_us(unit);
                        for src in sources.iter_mut() {
                            src.recalibrate_delivery_costs(&costs);
                        }
                        if let Some(fc) = frag_cfg.as_mut() {
                            fc.recalibrate(unit);
                        }
                    }
                }
                if let Some(candidate) = candidate {
                    // Switch: seal the current phase, register its state,
                    // resume into the new plan. Sealing covers *every*
                    // fragment of the old plan — exchange handoff is
                    // immediate in the sequential fragment run, so there
                    // are no buffered in-flight exchange tuples to lose,
                    // and state buffered on exchange leaves registers
                    // under the producer subtree's signature.
                    let fresh = self.lower_phase(
                        &candidate,
                        &self.make_ctx(&catalog, &consumed_total, calibrated),
                        shared.clone(),
                        frag_cfg.as_ref(),
                    )?;
                    let old = std::mem::replace(&mut lowered, fresh);
                    let old_fragments = old.fragments;
                    for state in old.run.seal() {
                        if let Some(sig) = state.sig {
                            registry.register(sig, phase, state.schema, state.structure);
                        }
                    }
                    phases.push(PhaseInfo {
                        plan: current_phys.describe(),
                        batches: phase_batches,
                        consumed: consumed_phase.clone(),
                        fragments: old_fragments,
                    });
                    trace.record_at(
                        timeline.now_us(),
                        SpanKind::Phase.end(format!("phase-{phase}")),
                    );
                    current_phys = candidate;
                    phase += 1;
                    phase_batches = 0;
                    consumed_phase.clear();
                    trace.record_at(
                        timeline.now_us(),
                        SpanKind::Phase.begin(format!("phase-{phase}")),
                    );
                    // Sources already at EOF must close their ports in the
                    // new plan too.
                    let mut sink = Batch::new();
                    for (i, src) in sources.iter().enumerate() {
                        if eof[i] {
                            lowered.run.finish_source(src.rel_id(), &mut sink)?;
                        }
                    }
                    answers.extend(sink);
                }
            }
        }

        // Seal the final phase.
        let nphases = phase + 1;
        let final_lowered = lowered;
        let final_fragments = final_lowered.fragments;
        for state in final_lowered.run.seal() {
            if let Some(sig) = state.sig {
                registry.register(sig, phase, state.schema, state.structure);
            }
        }
        phases.push(PhaseInfo {
            plan: current_phys.describe(),
            batches: phase_batches,
            consumed: consumed_phase.clone(),
            fragments: final_fragments,
        });
        trace.record_at(
            timeline.now_us(),
            SpanKind::Phase.end(format!("phase-{phase}")),
        );
        trace.record_at(timeline.now_us(), SpanKind::Query.end("corrective"));

        self.stitch_and_finalize(
            &current_phys,
            &shared,
            &post_project,
            &registry,
            nphases,
            RunTotals {
                timeline,
                answers,
                phases,
                total_batches,
                extra_cpu_us: 0,
                calibrated_unit_us: calibrated,
                exchange_stats: ExchangeTotals::default(),
            },
        )
    }

    /// The threaded corrective driver: producer fragments of every phase
    /// plan race on their own threads while this loop polls the root
    /// fragment's inputs (its base relations plus the exchange streams)
    /// and the monitor re-optimizes; switches go through the quiesce
    /// protocol.
    fn run_threaded(&self, sources: &mut [Box<dyn Source>]) -> Result<CorrectiveReport> {
        let cfg = &self.config;
        let clock: Arc<dyn Clock> =
            match &cfg.clock {
                Some(c) if c.is_wall() => c.clone(),
                _ => return Err(Error::Plan(
                    "threaded corrective execution needs a wall clock (CorrectiveConfig::clock)"
                        .into(),
                )),
            };
        if cfg.fragments.is_none() {
            return Err(Error::Plan(
                "threaded corrective execution needs a fragmentation config \
                 (CorrectiveConfig::fragments)"
                    .into(),
            ));
        }

        let catalog = Arc::new(SelectivityCatalog::new());
        let registry = StateRegistry::new();
        let mut consumed_total: HashMap<u32, u64> = HashMap::new();
        let mut consumed_phase: HashMap<u32, u64> = HashMap::new();
        let mut calibrated: Option<f64> = None;
        // Live fragmentation config (exchange prices recalibrate when the
        // warmup calibration lands), plus the deferred source repricing:
        // producer-bound sources can only adopt new delivery costs at the
        // next phase spawn, when this controller briefly owns them.
        let mut frag_cfg = cfg.fragments.clone();
        let mut pending_recal: Option<DeliveryCosts> = None;

        // Phase 0 plan.
        let optimizer = Optimizer::new(self.make_ctx(&catalog, &consumed_total, calibrated));
        let mut current_phys: PhysPlan = match &cfg.initial_order {
            Some(order) => optimizer.plan_with_order(&self.q, order)?,
            None => optimizer.optimize(&self.q)?,
        };

        // Take every source out of the caller's slice; recovered sources
        // go back into their slots before this returns (on success; an
        // error path leaves placeholders, but also no answer).
        let mut avail: Vec<Option<Box<dyn Source>>> = sources
            .iter_mut()
            .map(|s| {
                let placeholder: Box<dyn Source> = Box::new(TakenSource {
                    rel_id: s.rel_id(),
                    name: s.name().to_string(),
                    schema: s.schema().clone(),
                });
                Some(std::mem::replace(s, placeholder))
            })
            .collect();

        let mut shared_table: Option<Arc<SharedGroupTable>> = None;
        let mut post_project: Option<(Vec<Expr>, Schema)> = None;
        let mut phases: Vec<PhaseInfo> = Vec::new();
        let mut phase_batches: u64 = 0;
        // `total_batches` counts only the controller's own polls (it is
        // the monitor's cadence counter); producer batches accumulate
        // separately and join it for the final report.
        let mut total_batches: u64 = 0;
        let mut producer_batches_total: u64 = 0;
        let mut next_poll_at: u64 = cfg.warmup_batches.max(cfg.poll_every_batches);
        let mut phase = 0usize;
        let mut answers: Batch = Vec::new();
        let mut timeline = Timeline::new(Some(clock.clone()));
        let mut extra_cpu_us: u64 = 0;
        let mut exchange_stats = ExchangeTotals::default();
        let trace = cfg.trace.clone();
        // The fragment layer (producer spans, exchange counters, the park
        // sub-span) journals into the corrective sink unless the caller
        // configured a dedicated one on the fragment options.
        let mut fopts = cfg.fragment_options.clone();
        if !fopts.trace.is_enabled() {
            fopts.trace = trace.clone();
        }
        trace.record_at(clock.now_us(), SpanKind::Query.begin("corrective"));
        // Whether a quiesce span is open across the seal/respawn of a plan
        // switch (it closes once the next phase's producers are running).
        let mut quiesce_open = false;

        'phases: loop {
            // Sources recovered from the previous phase adopt the
            // recalibrated delivery prices before the new phase binds
            // them to producer threads.
            if let Some(costs) = pending_recal.take() {
                for src in avail.iter_mut().flatten() {
                    src.recalibrate_delivery_costs(&costs);
                }
            }
            // Lower this phase with cuts chosen from the live catalog.
            let ctx = self.make_ctx(&catalog, &consumed_total, calibrated);
            let cuts = tukwila_optimizer::choose_cuts_traced(
                &current_phys,
                &ctx,
                frag_cfg.as_ref().expect("checked above"),
                &cfg.trace,
            );
            let fl = lower_fragmented(&current_phys, &cuts, shared_table.clone(), false)?;
            if shared_table.is_none() {
                shared_table = fl.table.clone();
                post_project = fl.post_project.clone();
            }
            let phase_fragments = fl.plan.fragment_count();
            let join_nodes = fl.join_nodes;

            // Gather whatever sources are available and spawn the phase.
            let mut slot_map: Vec<usize> = Vec::new();
            let mut phase_sources: Vec<Box<dyn Source>> = Vec::new();
            for (i, s) in avail.iter_mut().enumerate() {
                if let Some(src) = s.take() {
                    slot_map.push(i);
                    phase_sources.push(src);
                }
            }
            if quiesce_open {
                trace.record_at(clock.now_us(), SpanKind::Respawn.begin("respawn"));
            }
            let (mut run, mut root_sources) = ThreadedFragmentRun::spawn(
                fl.plan,
                phase_sources,
                clock.clone(),
                cfg.batch_size,
                cfg.cpu,
                &fopts,
            )?;
            if quiesce_open {
                trace.record_at(clock.now_us(), SpanKind::Respawn.end("respawn"));
                trace.record_at(clock.now_us(), SpanKind::Quiesce.end("switch"));
                quiesce_open = false;
            }
            trace.record_at(
                clock.now_us(),
                SpanKind::Phase.begin(format!("phase-{phase}")),
            );
            // Sources recovered from a sealed previous phase arrive with
            // their delivery accounting still paused (their old producer
            // quiesced them and sealing keeps the pause). Producer-bound
            // sources are resumed by their new producer thread; the ones
            // landing in the root fragment are polled by this controller,
            // so resume them here (a no-op for fresh sources).
            {
                let now = clock.now_us();
                for (_, src) in root_sources.iter_mut() {
                    src.resume_delivery(now);
                }
            }
            // Baselines for folding producer high-water marks into the
            // cross-phase consumed totals.
            let producer_base: HashMap<u32, u64> = run
                .quiesce_handles()
                .flat_map(|h| h.high_water_marks().iter())
                .map(|p| {
                    (
                        p.rel_id(),
                        consumed_total.get(&p.rel_id()).copied().unwrap_or(0),
                    )
                })
                .collect();
            let phase_base: HashMap<u32, u64> = producer_base
                .keys()
                .map(|rel| (*rel, consumed_phase.get(rel).copied().unwrap_or(0)))
                .collect();
            let mut eof_root = vec![false; root_sources.len()];
            let mut eof_ex: Vec<bool> = Vec::new();

            let end: PhaseEnd = loop {
                timeline.resync();
                let (any_ready, next_ready, all_done) = {
                    let (pipeline, exchanges) = run.root_split();
                    if eof_ex.is_empty() {
                        eof_ex = vec![false; exchanges.len()];
                    }
                    let mut any_ready = false;
                    let mut next_ready: Option<u64> = None;
                    let mut all_done = true;
                    for (i, (_, src)) in root_sources.iter_mut().enumerate() {
                        if eof_root[i] {
                            continue;
                        }
                        all_done = false;
                        match src.poll(timeline.now_us(), cfg.batch_size) {
                            Poll::Ready(batch) => {
                                any_ready = true;
                                total_batches += 1;
                                phase_batches += 1;
                                let rel = src.rel_id();
                                *consumed_total.entry(rel).or_insert(0) += batch.len() as u64;
                                *consumed_phase.entry(rel).or_insert(0) += batch.len() as u64;
                                let cost = charged_cost(cfg.cpu, &timeline, batch.len(), || {
                                    pipeline.push_source(rel, &batch, &mut answers)
                                })?;
                                timeline.charge(cost);
                            }
                            Poll::Pending { next_ready_us } => {
                                next_ready = Some(match next_ready {
                                    Some(n) => n.min(next_ready_us),
                                    None => next_ready_us,
                                });
                            }
                            Poll::Eof => {
                                eof_root[i] = true;
                                let rel = src.rel_id();
                                catalog.observe_source(
                                    rel,
                                    SourceProgress {
                                        tuples_read: consumed_total.get(&rel).copied().unwrap_or(0),
                                        fraction_read: Some(1.0),
                                        eof: true,
                                    },
                                );
                                let cost = charged_cost(cfg.cpu, &timeline, 0, || {
                                    pipeline.finish_source(rel, &mut answers)
                                })?;
                                timeline.charge(cost);
                            }
                        }
                    }
                    for (j, ex) in exchanges.iter_mut().enumerate() {
                        if eof_ex[j] {
                            continue;
                        }
                        all_done = false;
                        // Columnar producer batches arrive as columns and
                        // feed the vectorized operator entry directly; rows
                        // (carry-buffer leftovers, row-mode producers) take
                        // the row entry. No transpose on this path.
                        match ex.poll_data(timeline.now_us(), cfg.batch_size) {
                            ExchangePoll::Ready(batch) => {
                                any_ready = true;
                                total_batches += 1;
                                phase_batches += 1;
                                let rel = ex.rel_id();
                                let cost =
                                    charged_cost(
                                        cfg.cpu,
                                        &timeline,
                                        batch.len(),
                                        || match &batch {
                                            DataBatch::Rows(b) => {
                                                pipeline.push_source(rel, b, &mut answers)
                                            }
                                            DataBatch::Columns(c) => {
                                                pipeline.push_source_columns(rel, c, &mut answers)
                                            }
                                        },
                                    )?;
                                timeline.charge(cost);
                            }
                            ExchangePoll::Pending { next_ready_us } => {
                                next_ready = Some(match next_ready {
                                    Some(n) => n.min(next_ready_us),
                                    None => next_ready_us,
                                });
                            }
                            ExchangePoll::Eof => {
                                eof_ex[j] = true;
                                let rel = ex.rel_id();
                                let cost = charged_cost(cfg.cpu, &timeline, 0, || {
                                    pipeline.finish_source(rel, &mut answers)
                                })?;
                                timeline.charge(cost);
                            }
                        }
                    }
                    (any_ready, next_ready, all_done)
                };
                if all_done {
                    break PhaseEnd::Completed;
                }
                if !any_ready {
                    if let Some(n) = next_ready {
                        timeline.idle_toward(n);
                    }
                    continue;
                }

                // Monitor: same cadence as the sequential driver, fed by
                // the controller's own polls plus the producers' shared
                // high-water marks and live fragment observations.
                if total_batches >= next_poll_at && phase + 1 < cfg.max_phases {
                    next_poll_at = total_batches + cfg.poll_every_batches;
                    Self::refresh_producer_counts(
                        &run,
                        &producer_base,
                        &phase_base,
                        &mut consumed_total,
                        &mut consumed_phase,
                    );
                    for (_, src) in root_sources.iter() {
                        let p = src.progress();
                        catalog.observe_source(
                            src.rel_id(),
                            SourceProgress {
                                tuples_read: consumed_total
                                    .get(&src.rel_id())
                                    .copied()
                                    .unwrap_or(0),
                                fraction_read: p.fraction_read,
                                eof: p.eof,
                            },
                        );
                        if let Some(schedule) = src.observed_schedule() {
                            catalog.observe_source_schedule(src.rel_id(), schedule);
                        }
                    }
                    for progress in run.quiesce_handles().flat_map(|h| h.high_water_marks()) {
                        catalog.observe_source(
                            progress.rel_id(),
                            SourceProgress {
                                tuples_read: consumed_total
                                    .get(&progress.rel_id())
                                    .copied()
                                    .unwrap_or(0),
                                fraction_read: progress.fraction_read(),
                                eof: progress.eof(),
                            },
                        );
                        if let Some(schedule) = progress.schedule() {
                            catalog.observe_source_schedule(progress.rel_id(), schedule);
                        }
                    }
                    Self::publish_plan_observations(
                        &catalog,
                        &run.observations(),
                        &join_nodes,
                        &consumed_phase,
                    );
                    // Whole-run measured CPU: the controller's timeline
                    // plus the live producer-thread counters (plus prior
                    // phases' producer CPU already folded into
                    // extra_cpu_us) — same coverage as the cost-unit
                    // denominator of the warmup calibration.
                    let measured_cpu_us =
                        timeline.cpu_us() + (extra_cpu_us + run.producer_cpu_us()) as f64;
                    let was_uncalibrated = calibrated.is_none();
                    let candidate = self.consider_switch(
                        &catalog,
                        &consumed_total,
                        &mut calibrated,
                        &current_phys,
                        &registry,
                        &mut timeline,
                        phase,
                        total_batches,
                        measured_cpu_us,
                    )?;
                    if was_uncalibrated {
                        if let Some(unit) = calibrated {
                            // Calibration landed: reprice exchanges for
                            // every later phase's cuts, reprice the root
                            // fragment's own sources now, and queue the
                            // repricing for producer-bound sources (they
                            // adopt it when recovered at the next spawn).
                            let costs = DeliveryCosts::from_unit_us(unit);
                            for (_, src) in root_sources.iter_mut() {
                                src.recalibrate_delivery_costs(&costs);
                            }
                            if let Some(fc) = frag_cfg.as_mut() {
                                fc.recalibrate(unit);
                            }
                            pending_recal = Some(costs);
                        }
                    }
                    if let Some(candidate) = candidate {
                        // Pause delivery accounting on the controller's
                        // own sources too: the quiesce-wait + seal +
                        // respawn window stops polling them exactly like
                        // the producers' sources, and a root-owned
                        // federated mirror must not read that silence as
                        // a stall or its queue backpressure as consumer
                        // saturation. (The next phase resumes them right
                        // after spawn; producer-bound ones are resumed by
                        // their new producer thread.)
                        for (_, src) in root_sources.iter_mut() {
                            src.quiesce_delivery();
                        }
                        // Quiesce: every producer parks at a batch
                        // boundary. If one cannot (wedged source), resume
                        // and abandon this switch — correctness over
                        // adaptivity.
                        trace.record_at(clock.now_us(), SpanKind::Quiesce.begin("switch"));
                        if run.quiesce() {
                            quiesce_open = true;
                            break PhaseEnd::Switched(Box::new(candidate));
                        }
                        trace.record_at(clock.now_us(), SpanKind::Quiesce.end("switch"));
                        run.resume();
                        let now = clock.now_us();
                        for (_, src) in root_sources.iter_mut() {
                            src.resume_delivery(now);
                        }
                    }
                }
            };

            // Seal the phase (switch or completion): join the producers,
            // drain every exchange's in-flight tuples into the old plan,
            // register the sealed state, recover the sources.
            Self::refresh_producer_counts(
                &run,
                &producer_base,
                &phase_base,
                &mut consumed_total,
                &mut consumed_phase,
            );
            let mut sink = Batch::new();
            let outcome = run.seal(&mut sink)?;
            answers.extend(sink);
            extra_cpu_us += outcome.producer_cpu_us;
            exchange_stats.absorb(outcome.max_queue_depth, &outcome.blocked_by_exchange);
            // Producer batches count toward reporting only — folding them
            // into `total_batches` (the monitor's cadence counter) would
            // blow past `next_poll_at` and fire the next phase's first
            // monitor poll on one batch of evidence.
            phase_batches += outcome.producer_batches;
            producer_batches_total += outcome.producer_batches;
            for state in outcome.states {
                if let Some(sig) = state.sig {
                    registry.register(sig, phase, state.schema, state.structure);
                }
            }
            for (pslot, src) in outcome.sources {
                avail[slot_map[pslot]] = Some(src);
            }
            for (pslot, src) in root_sources {
                avail[slot_map[pslot]] = Some(src);
            }
            phases.push(PhaseInfo {
                plan: current_phys.describe(),
                batches: phase_batches,
                consumed: consumed_phase.clone(),
                fragments: phase_fragments,
            });
            trace.record_at(
                clock.now_us(),
                SpanKind::Phase.end(format!("phase-{phase}")),
            );
            match end {
                PhaseEnd::Completed => break 'phases,
                PhaseEnd::Switched(candidate) => {
                    current_phys = *candidate;
                    phase += 1;
                    phase_batches = 0;
                    consumed_phase.clear();
                }
            }
        }

        // Restore the caller's sources (every phase returned its loans).
        for (i, s) in avail.into_iter().enumerate() {
            if let Some(src) = s {
                sources[i] = src;
            }
        }

        trace.record_at(clock.now_us(), SpanKind::Query.end("corrective"));
        let nphases = phase + 1;
        self.stitch_and_finalize(
            &current_phys,
            &shared_table,
            &post_project,
            &registry,
            nphases,
            RunTotals {
                timeline,
                answers,
                phases,
                total_batches: total_batches + producer_batches_total,
                extra_cpu_us,
                calibrated_unit_us: calibrated,
                exchange_stats,
            },
        )
    }

    /// Fold the producers' shared high-water marks into the cross-phase
    /// consumed counters (the controller never polls producer-owned
    /// relations itself).
    fn refresh_producer_counts(
        run: &ThreadedFragmentRun,
        producer_base: &HashMap<u32, u64>,
        phase_base: &HashMap<u32, u64>,
        consumed_total: &mut HashMap<u32, u64>,
        consumed_phase: &mut HashMap<u32, u64>,
    ) {
        for progress in run.quiesce_handles().flat_map(|h| h.high_water_marks()) {
            let rel = progress.rel_id();
            let consumed = progress.consumed();
            consumed_total.insert(
                rel,
                producer_base.get(&rel).copied().unwrap_or(0) + consumed,
            );
            consumed_phase.insert(rel, phase_base.get(&rel).copied().unwrap_or(0) + consumed);
        }
    }

    /// The stitch-up phase and report assembly shared by both drivers.
    fn stitch_and_finalize(
        &self,
        current_phys: &PhysPlan,
        shared: &Option<Arc<SharedGroupTable>>,
        post_project: &Option<(Vec<Expr>, Schema)>,
        registry: &StateRegistry,
        nphases: usize,
        totals: RunTotals,
    ) -> Result<CorrectiveReport> {
        let cfg = &self.config;
        let RunTotals {
            mut timeline,
            mut answers,
            phases,
            total_batches,
            extra_cpu_us,
            calibrated_unit_us,
            exchange_stats,
        } = totals;

        let stitch_start_clock = timeline.clock_us();
        let mut stitch = StitchUpStats::default();
        if nphases > 1 {
            let stitcher = StitchUp::new(&self.q, registry, nphases).with_reuse(cfg.stitch_reuse);
            let canonical = crate::lowering::canonical_agg(current_phys);
            let wall = Instant::now();
            let table = shared.clone();
            let mut sink = |batch: &[Tuple]| -> Result<()> {
                match (&table, &canonical) {
                    (Some(t), Some((exprs, _, _))) => {
                        let mut projected = Vec::with_capacity(batch.len());
                        for tu in batch {
                            let mut vals = Vec::with_capacity(exprs.len());
                            for e in exprs {
                                vals.push(e.eval(tu)?);
                            }
                            projected.push(Tuple::new(vals));
                        }
                        t.update(&projected)
                    }
                    _ => {
                        answers.extend_from_slice(batch);
                        Ok(())
                    }
                }
            };
            stitch = stitcher.run(&current_phys.root, &mut sink)?;
            // A rehash during stitch-up means a state structure's
            // advertised key didn't match the join key it was reused
            // under — worth a journal line (zero is elided, so quiet
            // runs don't grow).
            cfg.trace
                .counter("rehashes", "stitchup", stitch.join.rehashes as u64);
            let cost = match cfg.cpu {
                CpuCostModel::Measured => {
                    timeline.measured_to_timeline(wall.elapsed().as_secs_f64() * 1e6)
                }
                CpuCostModel::PerTupleNs(ns) => stitch.join.probes as f64 * ns as f64 / 1000.0,
                CpuCostModel::Zero => 0.0,
            };
            timeline.charge(cost);
            // A shared clock advanced on its own while stitch-up blocked.
            timeline.resync();
        }
        let stitch_us = (timeline.clock_us() - stitch_start_clock) as u64;

        // Finalize.
        let rows = match shared {
            Some(t) => apply_post_project(t.finalize(), post_project)?,
            None => std::mem::take(&mut answers),
        };

        let reuse = if nphases > 1 {
            registry.reuse_stats()
        } else {
            ReuseStats::default()
        };
        Ok(CorrectiveReport {
            phases,
            exec: ExecReport {
                virtual_us: timeline.clock_us() as u64,
                cpu_us: timeline.cpu_us() as u64 + extra_cpu_us,
                idle_us: timeline.idle_us() as u64,
                tuples_out: rows.len() as u64,
                batches: total_batches,
                max_queue_depth: exchange_stats.max_queue_depth,
                blocked_by_exchange: exchange_stats.blocked_by_exchange(),
            },
            stitch_us,
            stitch,
            reuse,
            rows,
            calibrated_unit_us,
        })
    }

    /// Push the current plan's observations into the shared catalog
    /// (paper §3.3 / §4.2). Observations span every fragment of the phase
    /// plan — node ids are plan-wide, so the multiplicative-join flags
    /// keep working across exchange boundaries.
    fn update_catalog(
        &self,
        catalog: &Arc<SelectivityCatalog>,
        lowered: &PhaseLowered,
        sources: &[Box<dyn Source>],
        consumed_total: &HashMap<u32, u64>,
        consumed_phase: &HashMap<u32, u64>,
    ) {
        for src in sources.iter() {
            let p = src.progress();
            catalog.observe_source(
                src.rel_id(),
                SourceProgress {
                    tuples_read: consumed_total.get(&src.rel_id()).copied().unwrap_or(0),
                    fraction_read: p.fraction_read,
                    eof: p.eof,
                },
            );
            // Self-profiling sources (the federation adapter) also publish
            // their observed arrival schedule, so re-optimization prices
            // plans with the shared DeliveryModel over observed — not
            // assumed — source behavior (burst allowance included).
            // Plain sources fall back to the uniform schedule derived
            // from their observed rate.
            if let Some(schedule) = src.observed_schedule() {
                catalog.observe_source_schedule(src.rel_id(), schedule);
            }
        }
        Self::publish_plan_observations(
            catalog,
            &lowered.run.observations(),
            &lowered.join_nodes,
            consumed_phase,
        );
    }

    /// The plan-shaped half of a catalog update: observed selectivities
    /// per logical signature and multiplicative-join flags, computed from
    /// operator counter snapshots. Shared by the sequential driver (whose
    /// `FragmentRun` it owns) and the threaded driver (whose fragments
    /// live on producer threads — the observations' counters are shared
    /// atomics, so the monitor reads them live).
    fn publish_plan_observations(
        catalog: &Arc<SelectivityCatalog>,
        observations: &[NodeObservation],
        join_nodes: &[(usize, u64)],
        consumed_phase: &HashMap<u32, u64>,
    ) {
        // Observed selectivity per logical signature: output cardinality
        // over the product of raw inputs consumed *this phase* (phase
        // counters reset at each switch). Later nodes override earlier ones
        // with the same signature (the node nearest the join is the
        // effective producer).
        let mut per_sig: HashMap<tukwila_storage::ExprSig, (u64, f64)> = HashMap::new();
        for obs in observations {
            let Some(sig) = obs.output_sig.clone() else {
                continue;
            };
            let mut product = 1.0;
            let mut any = false;
            for rel in sig.rels() {
                let c = consumed_phase.get(rel).copied().unwrap_or(0);
                if c == 0 {
                    any = false;
                    break;
                }
                any = true;
                product *= c as f64;
            }
            if !any {
                continue;
            }
            per_sig.insert(sig, (obs.counters.tuples_out(), product));
        }
        for (sig, (out, product)) in per_sig {
            catalog.observe_subexpr(sig, out, product);
        }
        // Multiplicative-join flags.
        for obs in observations {
            if let Some((_, pred_id)) = join_nodes.iter().find(|(node, _)| *node == obs.node) {
                let tin = obs.counters.tuples_in();
                let tout = obs.counters.tuples_out();
                if tin > 0 && tout > tin {
                    catalog.flag_multiplicative(*pred_id, tout as f64 / tin as f64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_datagen::{queries, Dataset, DatasetConfig, TableId};
    use tukwila_exec::reference::canonicalize_approx;
    use tukwila_source::MemSource;

    fn sources_for(d: &Dataset, q: &LogicalQuery) -> Vec<Box<dyn Source>> {
        queries::tables_of(q)
            .into_iter()
            .map(|t| {
                Box::new(MemSource::new(
                    t.rel_id(),
                    t.name(),
                    Dataset::schema(t),
                    d.table(t).to_vec(),
                )) as Box<dyn Source>
            })
            .collect()
    }

    fn static_answer(d: &Dataset, q: &LogicalQuery) -> Vec<String> {
        let mut s = sources_for(d, q);
        let run = crate::baselines::run_static(
            q,
            &mut s,
            OptimizerContext::no_statistics(),
            256,
            CpuCostModel::Zero,
        )
        .unwrap();
        canonicalize_approx(&run.rows)
    }

    fn corrective_config(force_switch: bool) -> CorrectiveConfig {
        CorrectiveConfig {
            batch_size: 256,
            cpu: CpuCostModel::Zero,
            poll_every_batches: 2,
            // A threshold above 1 forces a switch whenever the re-optimizer
            // proposes any structurally different plan — the adversarial
            // case for stitch-up correctness.
            switch_threshold: if force_switch { 100.0 } else { 0.0 },
            max_phases: 4,
            warmup_batches: 2,
            preagg: PreAggConfig::Off,
            given_cards: None,
            initial_order: None,
            min_remaining_fraction: 0.0,
            stitch_reuse: true,
            clock: None,
            fragments: None,
            ..Default::default()
        }
    }

    #[test]
    fn single_phase_matches_static() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let exec = CorrectiveExec::new(q.clone(), corrective_config(false));
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert_eq!(report.phase_count(), 1);
        assert_eq!(report.stitch.mixed_tuples, 0);
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }

    #[test]
    fn forced_multi_phase_q3a_matches_static() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let mut cfg = corrective_config(true);
        // Start from a deliberately poor ordering so the re-optimizer has
        // something to correct.
        cfg.initial_order = Some(vec![
            TableId::Orders.rel_id(),
            TableId::Lineitem.rel_id(),
            TableId::Customer.rel_id(),
        ]);
        let exec = CorrectiveExec::new(q.clone(), cfg);
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert!(
            report.phase_count() > 1,
            "expected a forced switch, got {} phase(s)",
            report.phase_count()
        );
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
        assert!(report.reuse.reused_tuples > 0 || report.stitch.recomputed_pure > 0);
    }

    #[test]
    fn forced_multi_phase_with_fragments_matches_static() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let mut cfg = corrective_config(true);
        cfg.initial_order = Some(vec![
            TableId::Orders.rel_id(),
            TableId::Lineitem.rel_id(),
            TableId::Customer.rel_id(),
        ]);
        // Aggressive fragmentation: every phase plan is split at an
        // exchange, so the forced switch seals across a fragment
        // boundary mid-stream.
        cfg.fragments = Some(tukwila_optimizer::FragmentationConfig::aggressive());
        let exec = CorrectiveExec::new(q.clone(), cfg);
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert!(
            report.phase_count() > 1,
            "expected a forced switch, got {} phase(s)",
            report.phase_count()
        );
        assert!(
            report.phases.iter().any(|p| p.fragments > 1),
            "at least one phase must actually have been fragmented: {:?}",
            report
                .phases
                .iter()
                .map(|p| p.fragments)
                .collect::<Vec<_>>()
        );
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }

    #[test]
    fn fragments_off_is_single_fragment() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let exec = CorrectiveExec::new(q.clone(), corrective_config(false));
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert!(report.phases.iter().all(|p| p.fragments == 1));
    }

    #[test]
    fn threaded_forced_switch_matches_static() {
        use tukwila_stats::WallClock;
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(200.0));
        let mut cfg = corrective_config(true);
        cfg.batch_size = 64;
        cfg.cpu = CpuCostModel::Measured;
        cfg.initial_order = Some(vec![
            TableId::Orders.rel_id(),
            TableId::Lineitem.rel_id(),
            TableId::Customer.rel_id(),
        ]);
        cfg.fragments = Some(tukwila_optimizer::FragmentationConfig::aggressive());
        cfg.clock = Some(clock);
        let exec = CorrectiveExec::new(q.clone(), cfg);
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert!(
            report.phase_count() > 1,
            "expected a forced switch through the quiesce protocol, got {} phase(s)",
            report.phase_count()
        );
        assert!(
            report.phases.iter().any(|p| p.fragments > 1),
            "at least one phase must have run threaded producer fragments"
        );
        assert_eq!(
            canonicalize_approx(&report.rows),
            static_answer(&d, &q),
            "threaded corrective answer diverged from static execution"
        );
        // The caller's sources came back: every slot is pollable again.
        for s in sources.iter_mut() {
            assert!(matches!(s.poll(u64::MAX / 2, 1), tukwila_source::Poll::Eof));
        }
    }

    #[test]
    fn measured_runs_calibrate_unit_us() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let mut cfg = corrective_config(false);
        cfg.cpu = CpuCostModel::Measured;
        let exec = CorrectiveExec::new(q.clone(), cfg);
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        let unit = report
            .calibrated_unit_us
            .expect("a Measured run with monitor polls must calibrate unit_us");
        assert!(
            (1e-3..=10.0).contains(&unit),
            "calibrated unit_us {unit} outside the sane band"
        );
        // Zero-cost runs have nothing to measure: no calibration.
        let exec = CorrectiveExec::new(q.clone(), corrective_config(false));
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert_eq!(report.calibrated_unit_us, None);
    }

    #[test]
    fn forced_multi_phase_q10a_matches_static() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q10a();
        let exec = CorrectiveExec::new(q.clone(), corrective_config(true));
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert!(report.phase_count() > 1);
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }

    #[test]
    fn forced_multi_phase_q5_with_cycle_matches_static() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q5();
        let exec = CorrectiveExec::new(q.clone(), corrective_config(true));
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert!(report.phase_count() > 1);
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }

    #[test]
    fn multi_phase_skewed_data_matches_static() {
        let d = Dataset::generate(DatasetConfig::skewed(0.002));
        let q = queries::q10a();
        let exec = CorrectiveExec::new(q.clone(), corrective_config(true));
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }

    #[test]
    fn corrective_with_preagg_matches_static() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let mut cfg = corrective_config(true);
        cfg.preagg = PreAggConfig::Insert(tukwila_optimizer::PreAggMode::AdaptiveWindow);
        let exec = CorrectiveExec::new(q.clone(), cfg);
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }

    #[test]
    fn given_cards_mode_runs() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q10();
        let mut cfg = corrective_config(false);
        let mut cards = HashMap::new();
        for t in queries::tables_of(&q) {
            cards.insert(t.rel_id(), d.table(t).len() as u64);
        }
        let _ = TableId::Orders;
        cfg.given_cards = Some(cards);
        let exec = CorrectiveExec::new(q.clone(), cfg);
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }
}
