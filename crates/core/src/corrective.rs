//! Corrective query processing (paper §4): execute, monitor, re-optimize,
//! switch plans in mid-pipeline, stitch up at the end.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use tukwila_exec::agg::SharedGroupTable;
use tukwila_exec::driver::charged_cost;
use tukwila_exec::{Batch, CpuCostModel, ExecReport, FragmentRun, PushTarget, Timeline};
use tukwila_optimizer::{
    FragmentationConfig, LogicalQuery, Optimizer, OptimizerContext, PhysPlan, PreAggConfig,
};
use tukwila_relation::{Expr, Result, Schema, Tuple};
use tukwila_source::{Poll, Source};
use tukwila_stats::selectivity::SourceProgress;
use tukwila_stats::{Clock, SelectivityCatalog};
use tukwila_storage::registry::ReuseStats;
use tukwila_storage::StateRegistry;

use crate::lowering::{apply_post_project, lower_fragmented};
use crate::stitchup::{StitchUp, StitchUpStats};

/// Configuration of the corrective executor.
#[derive(Debug, Clone)]
pub struct CorrectiveConfig {
    pub batch_size: usize,
    pub cpu: CpuCostModel,
    /// Re-optimizer polling interval in source batches. The paper polls
    /// every second at SF 0.1; per DESIGN.md S5 we scale by data volume.
    pub poll_every_batches: u64,
    /// Switch when `candidate cost < threshold × current remaining cost`.
    pub switch_threshold: f64,
    /// Upper bound on phases (the paper's executions settle at 2–4).
    pub max_phases: usize,
    /// Don't consider switching before this many batches (warm-up: early
    /// selectivities are noise).
    pub warmup_batches: u64,
    /// Pre-aggregation policy passed through to the optimizer.
    pub preagg: PreAggConfig,
    /// Source cardinalities given to the optimizer up front ("Given
    /// cardinalities" mode); `None` reproduces the paper's "No statistics"
    /// mode (every relation defaults to 20 000 tuples).
    pub given_cards: Option<HashMap<u32, u64>>,
    /// Force the phase-0 plan to a left-deep join in this relation order
    /// (experiments that study recovery from a specific bad plan).
    pub initial_order: Option<Vec<u32>>,
    /// Only switch while the current plan's estimated *remaining* work
    /// exceeds this fraction of its estimated total — switching near the
    /// end buys little and inflates stitch-up (the paper's executions
    /// "switch only a few times").
    pub min_remaining_fraction: f64,
    /// Stitch-up reuses registered intermediates (§3.4.2). `false` only in
    /// the reuse ablation.
    pub stitch_reuse: bool,
    /// `Some` drives the execution off this shared clock instead of the
    /// virtual accumulator — the wall-clock mode of the dual-clock
    /// design. Every source of the run (notably threaded federated
    /// sources) must share the same instance; idling really waits on it.
    pub clock: Option<Arc<dyn Clock>>,
    /// `Some` fragments every phase plan at exchange boundaries chosen by
    /// the optimizer's fragmentation pass (re-evaluated at each switch
    /// with the live catalog, so cuts follow observed delivery rates).
    /// Fragments execute sequentially in the corrective loop — exchange
    /// handoff is immediate, so a mid-stream switch seals across fragment
    /// boundaries without any buffered tuples to lose. `None` (default)
    /// preserves the unfragmented behavior.
    pub fragments: Option<FragmentationConfig>,
}

impl Default for CorrectiveConfig {
    fn default() -> Self {
        CorrectiveConfig {
            batch_size: 1024,
            cpu: CpuCostModel::Measured,
            poll_every_batches: 8,
            switch_threshold: 0.6,
            max_phases: 8,
            warmup_batches: 4,
            preagg: PreAggConfig::Off,
            given_cards: None,
            initial_order: None,
            min_remaining_fraction: 0.3,
            stitch_reuse: true,
            clock: None,
            fragments: None,
        }
    }
}

/// Per-phase record for reporting (Table 1/2).
#[derive(Debug, Clone)]
pub struct PhaseInfo {
    pub plan: String,
    pub batches: u64,
    /// Tuples of each source consumed during this phase.
    pub consumed: HashMap<u32, u64>,
    /// Pipeline fragments the phase plan was split into (1 =
    /// unfragmented).
    pub fragments: usize,
}

/// Outcome of a corrective execution.
pub struct CorrectiveReport {
    pub phases: Vec<PhaseInfo>,
    pub exec: ExecReport,
    /// Virtual time spent in the stitch-up phase.
    pub stitch_us: u64,
    pub stitch: StitchUpStats,
    pub reuse: ReuseStats,
    pub rows: Vec<Tuple>,
}

impl CorrectiveReport {
    pub fn phase_count(&self) -> usize {
        self.phases.len()
    }
}

/// A phase plan lowered for corrective execution: the (possibly
/// single-fragment) fragment run plus the lowering metadata the monitor
/// needs.
struct PhaseLowered {
    run: FragmentRun,
    join_nodes: Vec<(usize, u64)>,
    table: Option<Arc<SharedGroupTable>>,
    post_project: Option<(Vec<Expr>, Schema)>,
    fragments: usize,
}

/// The corrective query processing executor.
pub struct CorrectiveExec {
    pub q: LogicalQuery,
    pub config: CorrectiveConfig,
}

impl CorrectiveExec {
    pub fn new(q: LogicalQuery, config: CorrectiveConfig) -> CorrectiveExec {
        CorrectiveExec { q, config }
    }

    /// Lower a phase plan, fragmenting it at the cuts the optimizer's
    /// fragmentation pass chooses from the *current* context (observed
    /// delivery rates included) when fragments are enabled.
    fn lower_phase(
        &self,
        phys: &PhysPlan,
        ctx: &OptimizerContext,
        shared: Option<Arc<SharedGroupTable>>,
    ) -> Result<PhaseLowered> {
        let cuts = match &self.config.fragments {
            Some(fcfg) => tukwila_optimizer::choose_cuts(phys, ctx, fcfg),
            None => Vec::new(),
        };
        let fl = lower_fragmented(phys, &cuts, shared, false)?;
        let fragments = fl.plan.fragment_count();
        Ok(PhaseLowered {
            run: fl.plan.into_run(),
            join_nodes: fl.join_nodes,
            table: fl.table,
            post_project: fl.post_project,
            fragments,
        })
    }

    fn make_ctx(
        &self,
        catalog: &Arc<SelectivityCatalog>,
        consumed: &HashMap<u32, u64>,
    ) -> OptimizerContext {
        let mut ctx = match &self.config.given_cards {
            Some(cards) => OptimizerContext::with_cards(cards.clone()),
            None => OptimizerContext::no_statistics(),
        };
        ctx.catalog = Some(catalog.clone());
        ctx.consumed = consumed.clone();
        ctx.preagg = self.config.preagg;
        ctx
    }

    /// Signatures materialized so far: every node of the running plan plus
    /// everything registered by earlier phases — the §4.3 sunk-cost set.
    fn sunk_sigs(current: &PhysPlan, registry: &StateRegistry) -> Vec<tukwila_storage::ExprSig> {
        fn walk(node: &tukwila_optimizer::PhysNode, out: &mut Vec<tukwila_storage::ExprSig>) {
            out.push(node.sig.clone());
            if let tukwila_optimizer::PhysKind::Join { left, right, .. } = &node.kind {
                walk(left, out);
                walk(right, out);
            }
            if let tukwila_optimizer::PhysKind::PreAgg { child, .. } = &node.kind {
                walk(child, out);
            }
        }
        let mut sigs = Vec::new();
        walk(&current.root, &mut sigs);
        for e in registry.entries() {
            sigs.push(e.sig.clone());
        }
        sigs.sort_unstable();
        sigs.dedup();
        sigs
    }

    /// Run to completion over the given sources.
    pub fn run(&self, sources: &mut [Box<dyn Source>]) -> Result<CorrectiveReport> {
        let catalog = Arc::new(SelectivityCatalog::new());
        let registry = StateRegistry::new();
        let cfg = &self.config;

        let mut consumed_total: HashMap<u32, u64> = HashMap::new();
        let mut consumed_phase: HashMap<u32, u64> = HashMap::new();

        // Phase 0 plan.
        let optimizer = Optimizer::new(self.make_ctx(&catalog, &consumed_total));
        let mut current_phys: PhysPlan = match &cfg.initial_order {
            Some(order) => optimizer.plan_with_order(&self.q, order)?,
            None => optimizer.optimize(&self.q)?,
        };
        let mut lowered: PhaseLowered = self.lower_phase(
            &current_phys,
            &self.make_ctx(&catalog, &consumed_total),
            None,
        )?;
        let shared = lowered.table.clone();
        let post_project = lowered.post_project.clone();

        let mut phases: Vec<PhaseInfo> = Vec::new();
        let mut phase_batches: u64 = 0;
        let mut total_batches: u64 = 0;
        let mut next_poll_at: u64 = cfg.warmup_batches.max(cfg.poll_every_batches);
        let mut phase = 0usize;

        let mut answers: Batch = Vec::new();
        // The shared clock-mode accounting (virtual accumulator or wall
        // clock) lives in exec::Timeline so this driver and SimDriver
        // cannot drift apart on clock semantics.
        let mut timeline = Timeline::new(cfg.clock.clone());
        let mut eof: Vec<bool> = vec![false; sources.len()];

        loop {
            timeline.resync();
            let mut any_ready = false;
            let mut next_ready: Option<u64> = None;
            let mut all_done = true;
            for (i, src) in sources.iter_mut().enumerate() {
                if eof[i] {
                    continue;
                }
                all_done = false;
                match src.poll(timeline.now_us(), cfg.batch_size) {
                    Poll::Ready(batch) => {
                        any_ready = true;
                        total_batches += 1;
                        phase_batches += 1;
                        let rel = src.rel_id();
                        *consumed_total.entry(rel).or_insert(0) += batch.len() as u64;
                        *consumed_phase.entry(rel).or_insert(0) += batch.len() as u64;
                        let cost = charged_cost(cfg.cpu, &timeline, batch.len(), || {
                            lowered.run.push_source(rel, &batch, &mut answers)
                        })?;
                        timeline.charge(cost);
                    }
                    Poll::Pending { next_ready_us } => {
                        next_ready = Some(match next_ready {
                            Some(n) => n.min(next_ready_us),
                            None => next_ready_us,
                        });
                    }
                    Poll::Eof => {
                        eof[i] = true;
                        let rel = src.rel_id();
                        catalog.observe_source(
                            rel,
                            SourceProgress {
                                tuples_read: consumed_total.get(&rel).copied().unwrap_or(0),
                                fraction_read: Some(1.0),
                                eof: true,
                            },
                        );
                        let cost = charged_cost(cfg.cpu, &timeline, 0, || {
                            lowered.run.finish_source(rel, &mut answers)
                        })?;
                        timeline.charge(cost);
                    }
                }
            }
            if all_done {
                break;
            }
            if !any_ready {
                if let Some(n) = next_ready {
                    timeline.idle_toward(n);
                }
                continue;
            }

            // Monitor: poll the re-optimizer on schedule. (The batch
            // counter advances by up-to-#sources per sweep, so the
            // schedule is a moving threshold, not a divisibility test.)
            if total_batches >= next_poll_at && phase + 1 < cfg.max_phases {
                next_poll_at = total_batches + cfg.poll_every_batches;
                self.update_catalog(
                    &catalog,
                    &lowered,
                    sources,
                    &consumed_total,
                    &consumed_phase,
                );
                let mut ctx = self.make_ctx(&catalog, &consumed_total);
                ctx.sunk_sigs = Self::sunk_sigs(&current_phys, &registry);
                let reopt = Optimizer::new(ctx);
                let start = Instant::now();
                let candidate = reopt.reoptimize_remaining(&self.q)?;
                let current_cost = reopt.recost(&self.q, &current_phys, true)?;
                let current_total = reopt.recost(&self.q, &current_phys, false)?;
                // Re-optimization runs in a background thread in Tukwila; we
                // charge its cost to the clock but not to query CPU.
                let reopt_us = start.elapsed().as_secs_f64() * 1e6;
                if matches!(cfg.cpu, CpuCostModel::Measured) {
                    timeline.charge_background(reopt_us);
                }
                if std::env::var_os("TUKWILA_DEBUG").is_some() {
                    eprintln!(
                        "[monitor] batch {total_batches}: current {} cost {current_cost:.0}                          (total {current_total:.0}); candidate {} cost {:.0}",
                        current_phys.describe(),
                        candidate.describe(),
                        candidate.est_cost
                    );
                }
                if candidate.est_cost < cfg.switch_threshold * current_cost
                    && current_cost > cfg.min_remaining_fraction * current_total
                    && candidate.describe() != current_phys.describe()
                {
                    // Switch: seal the current phase, register its state,
                    // resume into the new plan. Sealing covers *every*
                    // fragment of the old plan — exchange handoff is
                    // immediate in the sequential fragment run, so there
                    // are no buffered in-flight exchange tuples to lose,
                    // and state buffered on exchange leaves registers
                    // under the producer subtree's signature.
                    let fresh = self.lower_phase(
                        &candidate,
                        &self.make_ctx(&catalog, &consumed_total),
                        shared.clone(),
                    )?;
                    let old = std::mem::replace(&mut lowered, fresh);
                    let old_fragments = old.fragments;
                    for state in old.run.seal() {
                        if let Some(sig) = state.sig {
                            registry.register(sig, phase, state.schema, state.structure);
                        }
                    }
                    phases.push(PhaseInfo {
                        plan: current_phys.describe(),
                        batches: phase_batches,
                        consumed: consumed_phase.clone(),
                        fragments: old_fragments,
                    });
                    current_phys = candidate;
                    phase += 1;
                    phase_batches = 0;
                    consumed_phase.clear();
                    // Sources already at EOF must close their ports in the
                    // new plan too.
                    let mut sink = Batch::new();
                    for (i, src) in sources.iter().enumerate() {
                        if eof[i] {
                            lowered.run.finish_source(src.rel_id(), &mut sink)?;
                        }
                    }
                    answers.extend(sink);
                }
            }
        }

        // Seal the final phase.
        let nphases = phase + 1;
        let final_lowered = lowered;
        let final_fragments = final_lowered.fragments;
        for state in final_lowered.run.seal() {
            if let Some(sig) = state.sig {
                registry.register(sig, phase, state.schema, state.structure);
            }
        }
        phases.push(PhaseInfo {
            plan: current_phys.describe(),
            batches: phase_batches,
            consumed: consumed_phase.clone(),
            fragments: final_fragments,
        });

        // Stitch-up phase.
        let stitch_start_clock = timeline.clock_us();
        let mut stitch = StitchUpStats::default();
        if nphases > 1 {
            let stitcher = StitchUp::new(&self.q, &registry, nphases).with_reuse(cfg.stitch_reuse);
            let canonical = crate::lowering::canonical_agg(&current_phys);
            let wall = Instant::now();
            let table = shared.clone();
            let mut sink = |batch: &[Tuple]| -> Result<()> {
                match (&table, &canonical) {
                    (Some(t), Some((exprs, _, _))) => {
                        let mut projected = Vec::with_capacity(batch.len());
                        for tu in batch {
                            let mut vals = Vec::with_capacity(exprs.len());
                            for e in exprs {
                                vals.push(e.eval(tu)?);
                            }
                            projected.push(Tuple::new(vals));
                        }
                        t.update(&projected)
                    }
                    _ => {
                        answers.extend_from_slice(batch);
                        Ok(())
                    }
                }
            };
            stitch = stitcher.run(&current_phys.root, &mut sink)?;
            let cost = match cfg.cpu {
                CpuCostModel::Measured => {
                    timeline.measured_to_timeline(wall.elapsed().as_secs_f64() * 1e6)
                }
                CpuCostModel::PerTupleNs(ns) => stitch.join.probes as f64 * ns as f64 / 1000.0,
                CpuCostModel::Zero => 0.0,
            };
            timeline.charge(cost);
            // A shared clock advanced on its own while stitch-up blocked.
            timeline.resync();
        }
        let stitch_us = (timeline.clock_us() - stitch_start_clock) as u64;

        // Finalize.
        let rows = match &shared {
            Some(t) => apply_post_project(t.finalize(), &post_project)?,
            None => std::mem::take(&mut answers),
        };

        let reuse = if nphases > 1 {
            registry.reuse_stats()
        } else {
            ReuseStats::default()
        };
        Ok(CorrectiveReport {
            phases,
            exec: ExecReport {
                virtual_us: timeline.clock_us() as u64,
                cpu_us: timeline.cpu_us() as u64,
                idle_us: timeline.idle_us() as u64,
                tuples_out: rows.len() as u64,
                batches: total_batches,
            },
            stitch_us,
            stitch,
            reuse,
            rows,
        })
    }

    /// Push the current plan's observations into the shared catalog
    /// (paper §3.3 / §4.2). Observations span every fragment of the phase
    /// plan — node ids are plan-wide, so the multiplicative-join flags
    /// keep working across exchange boundaries.
    fn update_catalog(
        &self,
        catalog: &Arc<SelectivityCatalog>,
        lowered: &PhaseLowered,
        sources: &[Box<dyn Source>],
        consumed_total: &HashMap<u32, u64>,
        consumed_phase: &HashMap<u32, u64>,
    ) {
        for src in sources.iter() {
            let p = src.progress();
            catalog.observe_source(
                src.rel_id(),
                SourceProgress {
                    tuples_read: consumed_total.get(&src.rel_id()).copied().unwrap_or(0),
                    fraction_read: p.fraction_read,
                    eof: p.eof,
                },
            );
            // Self-profiling sources (the federation adapter) also publish
            // their observed arrival schedule, so re-optimization prices
            // plans with the shared DeliveryModel over observed — not
            // assumed — source behavior (burst allowance included).
            // Plain sources fall back to the uniform schedule derived
            // from their observed rate.
            if let Some(schedule) = src.observed_schedule() {
                catalog.observe_source_schedule(src.rel_id(), schedule);
            }
        }
        // Observed selectivity per logical signature: output cardinality
        // over the product of raw inputs consumed *this phase* (phase
        // counters reset at each switch). Later nodes override earlier ones
        // with the same signature (the node nearest the join is the
        // effective producer).
        let mut per_sig: HashMap<tukwila_storage::ExprSig, (u64, f64)> = HashMap::new();
        for obs in lowered.run.observations() {
            let Some(sig) = obs.output_sig.clone() else {
                continue;
            };
            let mut product = 1.0;
            let mut any = false;
            for rel in sig.rels() {
                let c = consumed_phase.get(rel).copied().unwrap_or(0);
                if c == 0 {
                    any = false;
                    break;
                }
                any = true;
                product *= c as f64;
            }
            if !any {
                continue;
            }
            per_sig.insert(sig, (obs.counters.tuples_out(), product));
        }
        for (sig, (out, product)) in per_sig {
            catalog.observe_subexpr(sig, out, product);
        }
        // Multiplicative-join flags.
        for obs in lowered.run.observations() {
            if let Some((_, pred_id)) = lowered
                .join_nodes
                .iter()
                .find(|(node, _)| *node == obs.node)
            {
                let tin = obs.counters.tuples_in();
                let tout = obs.counters.tuples_out();
                if tin > 0 && tout > tin {
                    catalog.flag_multiplicative(*pred_id, tout as f64 / tin as f64);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_datagen::{queries, Dataset, DatasetConfig, TableId};
    use tukwila_exec::reference::canonicalize_approx;
    use tukwila_source::MemSource;

    fn sources_for(d: &Dataset, q: &LogicalQuery) -> Vec<Box<dyn Source>> {
        queries::tables_of(q)
            .into_iter()
            .map(|t| {
                Box::new(MemSource::new(
                    t.rel_id(),
                    t.name(),
                    Dataset::schema(t),
                    d.table(t).to_vec(),
                )) as Box<dyn Source>
            })
            .collect()
    }

    fn static_answer(d: &Dataset, q: &LogicalQuery) -> Vec<String> {
        let mut s = sources_for(d, q);
        let run = crate::baselines::run_static(
            q,
            &mut s,
            OptimizerContext::no_statistics(),
            256,
            CpuCostModel::Zero,
        )
        .unwrap();
        canonicalize_approx(&run.rows)
    }

    fn corrective_config(force_switch: bool) -> CorrectiveConfig {
        CorrectiveConfig {
            batch_size: 256,
            cpu: CpuCostModel::Zero,
            poll_every_batches: 2,
            // A threshold above 1 forces a switch whenever the re-optimizer
            // proposes any structurally different plan — the adversarial
            // case for stitch-up correctness.
            switch_threshold: if force_switch { 100.0 } else { 0.0 },
            max_phases: 4,
            warmup_batches: 2,
            preagg: PreAggConfig::Off,
            given_cards: None,
            initial_order: None,
            min_remaining_fraction: 0.0,
            stitch_reuse: true,
            clock: None,
            fragments: None,
        }
    }

    #[test]
    fn single_phase_matches_static() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let exec = CorrectiveExec::new(q.clone(), corrective_config(false));
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert_eq!(report.phase_count(), 1);
        assert_eq!(report.stitch.mixed_tuples, 0);
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }

    #[test]
    fn forced_multi_phase_q3a_matches_static() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let mut cfg = corrective_config(true);
        // Start from a deliberately poor ordering so the re-optimizer has
        // something to correct.
        cfg.initial_order = Some(vec![
            TableId::Orders.rel_id(),
            TableId::Lineitem.rel_id(),
            TableId::Customer.rel_id(),
        ]);
        let exec = CorrectiveExec::new(q.clone(), cfg);
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert!(
            report.phase_count() > 1,
            "expected a forced switch, got {} phase(s)",
            report.phase_count()
        );
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
        assert!(report.reuse.reused_tuples > 0 || report.stitch.recomputed_pure > 0);
    }

    #[test]
    fn forced_multi_phase_with_fragments_matches_static() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let mut cfg = corrective_config(true);
        cfg.initial_order = Some(vec![
            TableId::Orders.rel_id(),
            TableId::Lineitem.rel_id(),
            TableId::Customer.rel_id(),
        ]);
        // Aggressive fragmentation: every phase plan is split at an
        // exchange, so the forced switch seals across a fragment
        // boundary mid-stream.
        cfg.fragments = Some(tukwila_optimizer::FragmentationConfig::aggressive());
        let exec = CorrectiveExec::new(q.clone(), cfg);
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert!(
            report.phase_count() > 1,
            "expected a forced switch, got {} phase(s)",
            report.phase_count()
        );
        assert!(
            report.phases.iter().any(|p| p.fragments > 1),
            "at least one phase must actually have been fragmented: {:?}",
            report
                .phases
                .iter()
                .map(|p| p.fragments)
                .collect::<Vec<_>>()
        );
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }

    #[test]
    fn fragments_off_is_single_fragment() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let exec = CorrectiveExec::new(q.clone(), corrective_config(false));
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert!(report.phases.iter().all(|p| p.fragments == 1));
    }

    #[test]
    fn forced_multi_phase_q10a_matches_static() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q10a();
        let exec = CorrectiveExec::new(q.clone(), corrective_config(true));
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert!(report.phase_count() > 1);
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }

    #[test]
    fn forced_multi_phase_q5_with_cycle_matches_static() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q5();
        let exec = CorrectiveExec::new(q.clone(), corrective_config(true));
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert!(report.phase_count() > 1);
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }

    #[test]
    fn multi_phase_skewed_data_matches_static() {
        let d = Dataset::generate(DatasetConfig::skewed(0.002));
        let q = queries::q10a();
        let exec = CorrectiveExec::new(q.clone(), corrective_config(true));
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }

    #[test]
    fn corrective_with_preagg_matches_static() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q3a();
        let mut cfg = corrective_config(true);
        cfg.preagg = PreAggConfig::Insert(tukwila_optimizer::PreAggMode::AdaptiveWindow);
        let exec = CorrectiveExec::new(q.clone(), cfg);
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }

    #[test]
    fn given_cards_mode_runs() {
        let d = Dataset::generate(DatasetConfig::uniform(0.002));
        let q = queries::q10();
        let mut cfg = corrective_config(false);
        let mut cards = HashMap::new();
        for t in queries::tables_of(&q) {
            cards.insert(t.rel_id(), d.table(t).len() as u64);
        }
        let _ = TableId::Orders;
        cfg.given_cards = Some(cards);
        let exec = CorrectiveExec::new(q.clone(), cfg);
        let mut sources = sources_for(&d, &q);
        let report = exec.run(&mut sources).unwrap();
        assert_eq!(canonicalize_approx(&report.rows), static_answer(&d, &q));
    }
}
