//! Adaptive data partitioning (ADP) — the paper's core contribution.
//!
//! ADP "dynamically divides query processing work across multiple different
//! plans", relying on the distributivity of union through
//! select/project/join and (decomposed) aggregation:
//!
//! ```text
//! R1 ⋈ … ⋈ Rm = ⋃ over (c1,…,cm) of (R1^c1 ⋈ … ⋈ Rm^cm)
//! ```
//!
//! The phase plans compute the "diagonal" terms (all superscripts equal);
//! the stitch-up phase computes the `n^m − n` cross terms, reusing
//! registered intermediate state wherever possible. This crate implements:
//!
//! * [`corrective`] — **corrective query processing** (§4): monitor the
//!   running plan, re-optimize in the background with observed statistics,
//!   switch plans mid-pipeline, stitch up at the end.
//! * [`stitchup`] — the stitch-up executor (§3.4): partition-labelled
//!   evaluation over the final plan tree with registry reuse and exclusion.
//! * [`complementary`] — the **complementary join pair** (§5): a merge join
//!   and a pipelined hash join sharing four hash tables behind an
//!   order-conformance router (optionally with a priority queue), plus its
//!   mini-stitch-up.
//! * [`lowering`] — physical plan → pipelined executable plan, including
//!   the canonical answer projection and the shared group-by table that
//!   persists across phases (Figure 1).
//! * [`baselines`] — static optimization and plan-partitioning
//!   (materialize-and-reoptimize) baselines for Figure 2/3, and the
//!   redundant-computation (competing plans) strategy of Example 2.3.

pub mod baselines;
pub mod complementary;
pub mod corrective;
pub mod lowering;
pub mod stitchup;

pub use baselines::{
    race_plans, run_plan_partitioning, run_plan_partitioning_from, run_static, run_static_from,
    run_static_with_driver, StaticRun,
};
pub use complementary::{ComplementaryJoinPair, ComplementaryStats, RouterKind};
pub use corrective::{CorrectiveConfig, CorrectiveExec, CorrectiveReport, PhaseInfo};
pub use lowering::{lower_fragmented, lower_plan, FragmentedLower, LoweredPlan};
pub use stitchup::{StitchUp, StitchUpStats};
