#![warn(missing_docs)]

//! Multi-query serving front end over a shared learning catalog.
//!
//! The seed system runs one query per process: every run starts with a
//! cold [`tukwila_federation::FederatedCatalog`] — no memory of which
//! mirror stalled last time, no notion of other queries competing for
//! the same cores. A mediator (the paper's deployment model) is a
//! *server*: queries arrive continuously over the same federated
//! sources, and what one query learns about a source's behavior should
//! reprice the next query's hedging immediately.
//!
//! [`Server`] is that front end:
//!
//! * **Shared learning** — one [`SharedLearning`] store spans all
//!   queries. Each admitted query seeds its candidate
//!   [`tukwila_federation::BehaviorProfile`]s from the store (snapshot
//!   at admission) and publishes what it observed when its relations
//!   complete. A source that stalled out under query 1 is hedged away
//!   from within query 2's *first* gate evaluation — no per-query
//!   cold-start rediscovery.
//! * **Global core budget** — one [`CoreArbiter`] replaces the
//!   per-query `available_parallelism` sizing. Every query of an
//!   admission wave prices hedges and fragment cuts against its *fair
//!   share* of the budget (fixed at admission, so decisions are
//!   deterministic), and its threads are charged against a
//!   [`QueryLease`] that returns the cores when the query finishes —
//!   fair reclamation without any query-to-query coupling.
//! * **Fleet metrics** — per-query journals
//!   ([`tukwila_stats::TraceSink`]) roll up into a [`FleetReport`]:
//!   makespan, throughput, p50/p99 latency, and wasted race work
//!   (duplicate tuples deduped across all hedge races).
//!
//! # Determinism contract
//!
//! Learning **snapshots at admission and publishes at completion**.
//! Queries admitted in the same wave are therefore mutually isolated:
//! whatever order they finish in, none of them sees a wave-mate's
//! publications, so a wave behaves identically whether its members run
//! sequentially under [`tukwila_stats::VirtualClock`]s or concurrently
//! on threads against a shared wall clock. Learning crosses *waves*:
//! wave k+1 admits after wave k published. Learning moves pricing and
//! patience (when to hedge, whom to wake) — never answer content;
//! key-based dedup keeps the union identical whatever the permutation.

use std::sync::Arc;

use tukwila_core::baselines::{run_static_with_driver, StaticRun};
use tukwila_exec::reference::canonicalize_approx;
use tukwila_exec::{CpuCostModel, SimDriver};
use tukwila_federation::{FederatedCatalog, FederationConfig, SharedLearning};
use tukwila_optimizer::{LogicalQuery, OptimizerContext};
use tukwila_relation::{Error, Result};
use tukwila_source::Source;
use tukwila_stats::trace::QuerySummary;
use tukwila_stats::{
    Clock, CoreArbiter, QueryLease, TraceRecord, TraceSink, VirtualClock, WallClock,
};

/// One query submitted to the server: a name (stable across modes, used
/// to pair outcomes), the logical query, and a builder that registers
/// the query's candidate sources into a catalog. The server owns the
/// [`FederationConfig`] handed to the builder — it injects the shared
/// learning store, the admission wave's fair core share, and the
/// per-query trace journal — so the builder only describes *sources*.
/// The builder is a `Fn` (not `FnOnce`) because comparing serving modes
/// re-admits the same spec once per mode.
pub struct QuerySpec {
    name: String,
    query: LogicalQuery,
    #[allow(clippy::type_complexity)]
    build: Box<dyn Fn(FederationConfig) -> Result<FederatedCatalog> + Send + Sync>,
}

impl QuerySpec {
    /// A query spec from its name, logical query, and source builder.
    pub fn new(
        name: impl Into<String>,
        query: LogicalQuery,
        build: impl Fn(FederationConfig) -> Result<FederatedCatalog> + Send + Sync + 'static,
    ) -> QuerySpec {
        QuerySpec {
            name: name.into(),
            query,
            build: Box::new(build),
        }
    }

    /// The query's display name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl std::fmt::Debug for QuerySpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuerySpec")
            .field("name", &self.name)
            .finish()
    }
}

/// How the server executes an admitted wave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// Each query runs to completion on its own [`VirtualClock`] —
    /// deterministic and replayable; waves compose sequentially. The
    /// anchor for golden answers and decision signatures.
    Virtual,
    /// Each query of a wave runs on its own OS thread over
    /// [`tukwila_federation::ConcurrentFederatedSource`]s racing against
    /// one shared accelerated [`WallClock`]. The invariant: per-query
    /// answers and per-relation hedge-decision sequences match the
    /// [`ServeMode::Virtual`] run exactly.
    Threaded,
}

impl ServeMode {
    /// Short label used in report tables.
    pub fn label(self) -> &'static str {
        match self {
            ServeMode::Virtual => "virtual",
            ServeMode::Threaded => "threaded",
        }
    }
}

/// Server tunables.
#[derive(Clone)]
pub struct ServerConfig {
    /// Base federation config cloned for every admitted query. The
    /// server overwrites `learning`, `core_budget`, and `trace`; all
    /// other knobs (stall floors, hedge costs, queue sizing,
    /// `warm_stall_us`) pass through as authored.
    pub federation: FederationConfig,
    /// Optimizer context for every query (the paper's "no statistics"
    /// mode by default, so plans are a pure function of the query).
    pub ctx: OptimizerContext,
    /// Driver batch size.
    pub batch_size: usize,
    /// Global core budget. `None` sizes to the host's
    /// `available_parallelism` — the serving replacement for each query
    /// reading it independently.
    pub cores: Option<usize>,
    /// Wall-clock acceleration for [`ServeMode::Threaded`] waves.
    pub accel: f64,
    /// Whether each query gets an unbounded trace journal (required for
    /// fleet metrics and decision goldens; disable only for raw-speed
    /// soaks).
    pub trace: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            federation: FederationConfig::default(),
            ctx: OptimizerContext::no_statistics(),
            batch_size: 256,
            cores: None,
            accel: 20.0,
            trace: true,
        }
    }
}

impl std::fmt::Debug for ServerConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerConfig")
            .field("batch_size", &self.batch_size)
            .field("cores", &self.cores)
            .field("accel", &self.accel)
            .field("trace", &self.trace)
            .finish()
    }
}

/// Outcome of one served query.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The spec's name.
    pub name: String,
    /// Index of the admission wave the query ran in.
    pub wave: usize,
    /// Canonicalized answer rows (sorted debug strings, floats rounded
    /// to 6 significant digits so cross-clock aggregation order cannot
    /// flip a ULP) — the unit of cross-mode and golden comparison.
    pub rows: Vec<String>,
    /// The optimizer's plan description.
    pub plan: String,
    /// Query latency in timeline µs (virtual time under
    /// [`ServeMode::Virtual`], accelerated wall time under
    /// [`ServeMode::Threaded`]).
    pub latency_us: u64,
    /// The query's full trace journal (empty when tracing is off).
    pub records: Vec<TraceRecord>,
    /// Rollup of the journal.
    pub summary: QuerySummary,
}

/// Fleet-level rollup of one serve run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// The mode the run executed under.
    pub mode: ServeMode,
    /// Per-query outcomes in admission order (wave-major).
    pub outcomes: Vec<QueryOutcome>,
    /// End-to-end timeline µs: the sum of query latencies under
    /// [`ServeMode::Virtual`] (waves compose sequentially), the shared
    /// wall clock's elapsed time under [`ServeMode::Threaded`].
    pub makespan_us: u64,
}

impl FleetReport {
    /// Queries served.
    pub fn queries(&self) -> usize {
        self.outcomes.len()
    }

    /// Queries per timeline second.
    pub fn throughput_qps(&self) -> f64 {
        if self.makespan_us == 0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / (self.makespan_us as f64 / 1e6)
    }

    /// Nearest-rank percentile of per-query latency, `q` in (0, 1].
    pub fn latency_percentile_us(&self, q: f64) -> u64 {
        let mut lats: Vec<u64> = self.outcomes.iter().map(|o| o.latency_us).collect();
        if lats.is_empty() {
            return 0;
        }
        lats.sort_unstable();
        let rank = ((lats.len() as f64) * q).ceil().max(1.0) as usize;
        lats[rank.min(lats.len()) - 1]
    }

    /// Median per-query latency (timeline µs).
    pub fn p50_latency_us(&self) -> u64 {
        self.latency_percentile_us(0.50)
    }

    /// 99th-percentile per-query latency (timeline µs).
    pub fn p99_latency_us(&self) -> u64 {
        self.latency_percentile_us(0.99)
    }

    /// Fleet-wide journal rollup: every query's records aggregated into
    /// one [`QuerySummary`] (decision counts sum; the window spans the
    /// whole run). This is the serve golden's trace summary.
    pub fn fleet_summary(&self) -> QuerySummary {
        let all: Vec<TraceRecord> = self
            .outcomes
            .iter()
            .flat_map(|o| o.records.iter().cloned())
            .collect();
        QuerySummary::from_records(&all)
    }

    /// Wasted race work fleet-wide: duplicate tuples delivered by
    /// racing candidates and discarded by key dedup, summed over every
    /// query (the `dedup_hits` completion counters).
    pub fn wasted_race_tuples(&self) -> u64 {
        self.outcomes
            .iter()
            .map(|o| o.summary.counters.get("dedup_hits").copied().unwrap_or(0))
            .sum()
    }

    /// Human-facing fleet table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "serve[{}]: {} queries, makespan {} us, {:.2} q/s, p50 {} us, p99 {} us, wasted-race tuples {}\n",
            self.mode.label(),
            self.queries(),
            self.makespan_us,
            self.throughput_qps(),
            self.p50_latency_us(),
            self.p99_latency_us(),
            self.wasted_race_tuples(),
        ));
        for o in &self.outcomes {
            out.push_str(&format!(
                "  wave {} {:<12} {:>10} us  {:>6} rows  hedges {}+{}\n",
                o.wave,
                o.name,
                o.latency_us,
                o.rows.len(),
                o.summary.hedges_fired,
                o.summary.hedges_declined,
            ));
        }
        out
    }
}

/// One admitted query, its sources already materialized (and therefore
/// its learning snapshot already taken).
struct Admitted {
    name: String,
    query: LogicalQuery,
    sources: Vec<Box<dyn Source>>,
    trace: TraceSink,
    lease: QueryLease,
    clock: Arc<dyn Clock>,
    wave: usize,
}

/// The long-lived engine front end: admits query waves over one shared
/// learning store and one global core budget. See the crate docs for
/// the determinism contract.
pub struct Server {
    config: ServerConfig,
    learning: SharedLearning,
    arbiter: CoreArbiter,
}

impl Server {
    /// A server over a fresh learning store and a core budget of
    /// `config.cores` (host parallelism when `None`).
    pub fn new(config: ServerConfig) -> Server {
        let arbiter = match config.cores {
            Some(n) => CoreArbiter::new(n),
            None => CoreArbiter::host(),
        };
        Server {
            config,
            learning: SharedLearning::new(),
            arbiter,
        }
    }

    /// The shared learning store (inspectable mid-run; profiles appear
    /// as queries complete).
    pub fn learning(&self) -> &SharedLearning {
        &self.learning
    }

    /// The global core arbiter.
    pub fn arbiter(&self) -> &CoreArbiter {
        &self.arbiter
    }

    /// Serve `waves` of queries under `mode` and roll up the fleet.
    ///
    /// Waves run in order; within a wave, queries run sequentially
    /// under [`ServeMode::Virtual`] and concurrently (one OS thread
    /// each) under [`ServeMode::Threaded`]. Every query of a wave is
    /// *admitted* — its catalog built and its sources materialized,
    /// which snapshots the learning store and fixes its fair core
    /// share — before any query of the wave starts executing.
    pub fn serve(&self, waves: &[Vec<QuerySpec>], mode: ServeMode) -> Result<FleetReport> {
        let mut outcomes: Vec<QueryOutcome> = Vec::new();
        let mut makespan_us: u64 = 0;
        let wall: Arc<WallClock> = Arc::new(WallClock::accelerated(self.config.accel));
        let serve_start_us = wall.now_us();
        for (wave_idx, wave) in waves.iter().enumerate() {
            if wave.is_empty() {
                continue;
            }
            let admitted = self.admit(wave, wave_idx, mode, &wall)?;
            let wave_outcomes = match mode {
                ServeMode::Virtual => self.run_wave_sequential(admitted)?,
                ServeMode::Threaded => self.run_wave_threaded(admitted, &wall)?,
            };
            if mode == ServeMode::Virtual {
                makespan_us += wave_outcomes.iter().map(|o| o.latency_us).sum::<u64>();
            }
            outcomes.extend(wave_outcomes);
        }
        if mode == ServeMode::Threaded {
            makespan_us = wall.now_us().saturating_sub(serve_start_us);
        }
        Ok(FleetReport {
            mode,
            outcomes,
            makespan_us,
        })
    }

    /// Admit a wave: snapshot learning, fix the fair core share, build
    /// every member's sources. Nothing executes yet.
    fn admit(
        &self,
        wave: &[QuerySpec],
        wave_idx: usize,
        mode: ServeMode,
        wall: &Arc<WallClock>,
    ) -> Result<Vec<Admitted>> {
        let fair = self.arbiter.fair_share(wave.len());
        let mut admitted = Vec::with_capacity(wave.len());
        for spec in wave {
            let clock: Arc<dyn Clock> = match mode {
                ServeMode::Virtual => Arc::new(VirtualClock::new()),
                ServeMode::Threaded => wall.clone() as Arc<dyn Clock>,
            };
            let trace = if self.config.trace {
                TraceSink::unbounded(clock.clone())
            } else {
                TraceSink::disabled()
            };
            let mut fed = self.config.federation.clone();
            fed.learning = Some(self.learning.clone());
            fed.core_budget = Some(fair);
            fed.trace = trace.clone();
            let catalog = (spec.build)(fed)?;
            // Materializing the sources seeds every candidate profile
            // from the learning store — the admission snapshot.
            let sources = match mode {
                ServeMode::Virtual => catalog.into_sources()?,
                ServeMode::Threaded => catalog.into_concurrent_sources(clock.clone())?,
            };
            admitted.push(Admitted {
                name: spec.name.clone(),
                query: spec.query.clone(),
                sources,
                trace,
                lease: self.arbiter.lease(),
                clock,
                wave: wave_idx,
            });
        }
        Ok(admitted)
    }

    fn run_wave_sequential(&self, admitted: Vec<Admitted>) -> Result<Vec<QueryOutcome>> {
        admitted
            .into_iter()
            .map(|a| {
                let driver = SimDriver::new(self.config.batch_size, CpuCostModel::Zero);
                self.finish(a, ServeMode::Virtual, |a| {
                    run_static_with_driver(
                        &a.query,
                        &mut a.sources,
                        self.config.ctx.clone(),
                        driver,
                        None,
                    )
                })
            })
            .collect()
    }

    fn run_wave_threaded(
        &self,
        admitted: Vec<Admitted>,
        wall: &Arc<WallClock>,
    ) -> Result<Vec<QueryOutcome>> {
        let results: Vec<Result<QueryOutcome>> = std::thread::scope(|scope| {
            let handles: Vec<_> = admitted
                .into_iter()
                .map(|a| {
                    let clock: Arc<dyn Clock> = wall.clone();
                    let batch = self.config.batch_size;
                    let ctx = self.config.ctx.clone();
                    let server = &*self;
                    scope.spawn(move || {
                        let driver =
                            SimDriver::new(batch, CpuCostModel::Measured).with_clock(clock);
                        server.finish(a, ServeMode::Threaded, |a| {
                            run_static_with_driver(&a.query, &mut a.sources, ctx, driver, None)
                        })
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(Error::Exec("serving thread panicked".into())))
                })
                .collect()
        });
        results.into_iter().collect()
    }

    /// Run one admitted query and fold its journal into an outcome.
    /// The query's thread is charged against its lease while live (non
    /// blocking: a saturated arbiter time-shares rather than stalling
    /// admission) and the cores return when the lease drops — fair
    /// reclamation the moment the query finishes.
    fn finish(
        &self,
        mut a: Admitted,
        mode: ServeMode,
        run: impl FnOnce(&mut Admitted) -> Result<StaticRun>,
    ) -> Result<QueryOutcome> {
        let granted = a.lease.try_acquire(1);
        let started_us = a.clock.now_us();
        let result = run(&mut a);
        let elapsed_us = a.clock.now_us().saturating_sub(started_us);
        a.lease.release(granted);
        // Dropping the sources finalizes learning publication for any
        // relation that completed without the adapter observing EOF.
        drop(a.sources);
        let run = result?;
        let records = a.trace.snapshot();
        let summary = QuerySummary::from_records(&records);
        Ok(QueryOutcome {
            name: a.name,
            wave: a.wave,
            rows: canonicalize_approx(&run.rows),
            plan: run.plan,
            // Virtual queries run on a private per-query clock whose end
            // instant the driver reports; threaded queries share one
            // wall clock across waves, so latency is the delta around
            // this query's own run.
            latency_us: match mode {
                ServeMode::Virtual => run.exec.virtual_us,
                ServeMode::Threaded => elapsed_us,
            },
            records,
            summary,
        })
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("budget", &self.arbiter.budget())
            .field("learned", &self.learning.len())
            .finish()
    }
}
