//! Projection operator (column selection and computed expressions).

use std::sync::Arc;

use tukwila_relation::{ColumnarBatch, Expr, Result, Schema, Tuple};
use tukwila_stats::OpCounters;

use crate::op::{Batch, IncOp};

/// Pipelined projection: each output attribute is a scalar expression over
/// the input tuple.
pub struct ProjectOp {
    exprs: Vec<Expr>,
    /// When every expression is a bare column reference, their indices —
    /// the columnar path can gather without evaluating expressions.
    pure_cols: Option<Vec<usize>>,
    schema: Schema,
    counters: Arc<OpCounters>,
}

impl ProjectOp {
    /// A projection evaluating `exprs` into tuples of `schema`.
    pub fn new(exprs: Vec<Expr>, schema: Schema) -> ProjectOp {
        let pure_cols = exprs
            .iter()
            .map(|e| match e {
                Expr::Col(c) => Some(*c),
                _ => None,
            })
            .collect::<Option<Vec<usize>>>();
        ProjectOp {
            exprs,
            pure_cols,
            schema,
            counters: OpCounters::new(),
        }
    }

    /// Pure column projection.
    pub fn columns(cols: &[usize], input_schema: &Schema) -> ProjectOp {
        let exprs = cols.iter().map(|&c| Expr::Col(c)).collect();
        ProjectOp::new(exprs, input_schema.project(cols))
    }
}

impl IncOp for ProjectOp {
    fn name(&self) -> &str {
        "project"
    }

    fn inputs(&self) -> usize {
        1
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn push(&mut self, _port: usize, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.len() as u64);
        for t in batch {
            let mut vals = Vec::with_capacity(self.exprs.len());
            for e in &self.exprs {
                vals.push(e.eval(t)?);
            }
            out.push(Tuple::new(vals));
        }
        self.counters.add_out(batch.len() as u64);
        self.counters.add_work(batch.len() as u64);
        Ok(())
    }

    fn push_columns(&mut self, port: usize, batch: &ColumnarBatch, out: &mut Batch) -> Result<()> {
        let cols = match &self.pure_cols {
            Some(cols) if cols.iter().all(|&c| c < batch.arity()) => cols,
            // Computed expressions (or out-of-range columns, which must
            // surface the row path's error): materialize rows.
            _ => {
                let rows = batch.to_tuples();
                return self.push(port, &rows, out);
            }
        };
        let n = batch.selected_rows();
        self.counters.add_in(n as u64);
        for r in batch.selected_indices() {
            out.push(Tuple::new(
                cols.iter().map(|&c| batch.column(c).value(r)).collect(),
            ));
        }
        self.counters.add_out(n as u64);
        self.counters.add_work(n as u64);
        Ok(())
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{DataType, Field, Value};

    #[test]
    fn projects_columns() {
        let schema = Schema::new(vec![
            Field::new("a", DataType::Int),
            Field::new("b", DataType::Int),
        ]);
        let mut p = ProjectOp::columns(&[1], &schema);
        let mut out = Vec::new();
        p.push(
            0,
            &[Tuple::new(vec![Value::Int(1), Value::Int(2)])],
            &mut out,
        )
        .unwrap();
        assert_eq!(out[0].arity(), 1);
        assert_eq!(out[0].get(0).as_int().unwrap(), 2);
        assert_eq!(p.schema().field(0).name, "b");
    }

    #[test]
    fn computes_expressions() {
        use tukwila_relation::expr::ArithOp;
        let schema = Schema::new(vec![Field::new("sum", DataType::Int)]);
        let e = Expr::Arith(Box::new(Expr::Col(0)), ArithOp::Add, Box::new(Expr::Col(1)));
        let mut p = ProjectOp::new(vec![e], schema);
        let mut out = Vec::new();
        p.push(
            0,
            &[Tuple::new(vec![Value::Int(3), Value::Int(4)])],
            &mut out,
        )
        .unwrap();
        assert_eq!(out[0].get(0).as_int().unwrap(), 7);
    }
}
