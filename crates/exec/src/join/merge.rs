//! Streaming merge join over sorted inputs (paper §5).
//!
//! "Slightly more efficient than a pipelined hash join" on sorted data: no
//! hash maintenance, just an advancing frontier. Inputs *must* arrive in
//! ascending key order (the complementary-join router guarantees this);
//! consumed tuples are buffered in sorted lists so the structure remains
//! available for stitch-up and mini-stitch-up.

use std::cmp::Ordering;
use std::sync::Arc;

use tukwila_relation::column::sort_permutation;
use tukwila_relation::{ColumnarBatch, Error, Result, Schema, SortKey, Tuple};
use tukwila_stats::OpCounters;
use tukwila_storage::{SortedList, StateStructure};

use crate::op::{Batch, ExtractedState, IncOp};

/// Merge join on single ascending equi-join columns.
pub struct MergeJoin {
    left_key: usize,
    right_key: usize,
    left_schema: Schema,
    right_schema: Schema,
    out_schema: Schema,
    left: SortedList,
    right: SortedList,
    /// Next unjoined index per side.
    li: usize,
    ri: usize,
    left_eof: bool,
    right_eof: bool,
    counters: Arc<OpCounters>,
}

impl MergeJoin {
    /// A merge join over inputs sorted ascending on their key columns.
    pub fn new(
        left_schema: Schema,
        right_schema: Schema,
        left_key: usize,
        right_key: usize,
    ) -> MergeJoin {
        let out_schema = left_schema.concat(&right_schema);
        MergeJoin {
            left_key,
            right_key,
            left: SortedList::new(vec![SortKey::asc(left_key)]),
            right: SortedList::new(vec![SortKey::asc(right_key)]),
            left_schema,
            right_schema,
            out_schema,
            li: 0,
            ri: 0,
            left_eof: false,
            right_eof: false,
            counters: OpCounters::new(),
        }
    }

    /// Tuples buffered per side.
    pub fn buffered(&self) -> (usize, usize) {
        (self.left.len(), self.right.len())
    }

    /// Emit all joins whose key groups are complete on both sides.
    ///
    /// A key group on a sorted stream is complete once a strictly greater
    /// key has arrived (or the stream ended); only then can its cross
    /// product be emitted without missing later duplicates.
    fn try_emit(&mut self, out: &mut Batch) -> Result<()> {
        loop {
            let lt = self.left.tuples();
            let rt = self.right.tuples();
            if self.li >= lt.len() || self.ri >= rt.len() {
                return Ok(());
            }
            let lk = lt[self.li].key(self.left_key);
            let rk = rt[self.ri].key(self.right_key);
            match lk.cmp(&rk) {
                Ordering::Less => {
                    // Right side is already past lk; no future right tuple
                    // can equal lk (sorted). Skip.
                    self.li += 1;
                    self.counters.add_work(1);
                }
                Ordering::Greater => {
                    self.ri += 1;
                    self.counters.add_work(1);
                }
                Ordering::Equal => {
                    // Find group extents.
                    let l_end = lt[self.li..]
                        .iter()
                        .position(|t| t.key(self.left_key) != lk)
                        .map(|p| self.li + p);
                    let r_end = rt[self.ri..]
                        .iter()
                        .position(|t| t.key(self.right_key) != rk)
                        .map(|p| self.ri + p);
                    let l_closed = l_end.is_some() || self.left_eof;
                    let r_closed = r_end.is_some() || self.right_eof;
                    if !(l_closed && r_closed) {
                        // The group may still grow; wait for more input.
                        return Ok(());
                    }
                    let le = l_end.unwrap_or(lt.len());
                    let re = r_end.unwrap_or(rt.len());
                    let before = out.len();
                    for a in &lt[self.li..le] {
                        for b in &rt[self.ri..re] {
                            out.push(a.concat(b));
                        }
                    }
                    self.counters.add_out((out.len() - before) as u64);
                    self.counters
                        .add_work(((le - self.li) + (re - self.ri)) as u64);
                    self.li = le;
                    self.ri = re;
                }
            }
        }
    }
}

impl IncOp for MergeJoin {
    fn name(&self) -> &str {
        "merge-join"
    }

    fn inputs(&self) -> usize {
        2
    }

    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn push(&mut self, port: usize, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.len() as u64);
        match port {
            0 => {
                for t in batch {
                    self.left.insert(t.clone());
                }
            }
            1 => {
                for t in batch {
                    self.right.insert(t.clone());
                }
            }
            p => return Err(Error::Exec(format!("merge join has no port {p}"))),
        }
        self.try_emit(out)
    }

    /// Columnar push: a vectorized key-column sort orders the batch, a
    /// column gather permutes the payload, and the pre-sorted rows append
    /// to the side's [`SortedList`] on its O(1) in-order fast path. The
    /// stable sort keeps equal keys in arrival order and
    /// [`SortedList::insert`] places a tuple after its equals, so the
    /// buffered list — and therefore the join output — is identical to
    /// the row path's.
    fn push_columns(&mut self, port: usize, batch: &ColumnarBatch, out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.selected_rows() as u64);
        let (key, list) = match port {
            0 => (self.left_key, &mut self.left),
            1 => (self.right_key, &mut self.right),
            p => return Err(Error::Exec(format!("merge join has no port {p}"))),
        };
        let perm = sort_permutation(batch, &[SortKey::asc(key)]);
        for t in batch.gather(&perm).to_tuples() {
            list.insert(t);
        }
        self.try_emit(out)
    }

    fn finish_input(&mut self, port: usize, out: &mut Batch) -> Result<()> {
        match port {
            0 => self.left_eof = true,
            1 => self.right_eof = true,
            p => return Err(Error::Exec(format!("merge join has no port {p}"))),
        }
        self.try_emit(out)
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }

    fn extract_states(&mut self) -> Vec<ExtractedState> {
        let left = std::mem::replace(
            &mut self.left,
            SortedList::new(vec![SortKey::asc(self.left_key)]),
        );
        let right = std::mem::replace(
            &mut self.right,
            SortedList::new(vec![SortKey::asc(self.right_key)]),
        );
        self.li = 0;
        self.ri = 0;
        vec![
            ExtractedState {
                port: 0,
                schema: self.left_schema.clone(),
                structure: Arc::new(left) as Arc<dyn StateStructure>,
            },
            ExtractedState {
                port: 1,
                schema: self.right_schema.clone(),
                structure: Arc::new(right) as Arc<dyn StateStructure>,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{DataType, Field, Value};

    fn schemas() -> (Schema, Schema) {
        (
            Schema::new(vec![
                Field::new("l.k", DataType::Int),
                Field::new("l.v", DataType::Int),
            ]),
            Schema::new(vec![
                Field::new("r.k", DataType::Int),
                Field::new("r.v", DataType::Int),
            ]),
        )
    }

    fn t(k: i64, v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::Int(v)])
    }

    fn finish_both(j: &mut MergeJoin, out: &mut Batch) {
        j.finish_input(0, out).unwrap();
        j.finish_input(1, out).unwrap();
    }

    #[test]
    fn basic_sorted_join() {
        let (ls, rs) = schemas();
        let mut j = MergeJoin::new(ls, rs, 0, 0);
        let mut out = Vec::new();
        j.push(0, &[t(1, 0), t(2, 0), t(4, 0)], &mut out).unwrap();
        j.push(1, &[t(2, 9), t(3, 9), t(4, 9)], &mut out).unwrap();
        finish_both(&mut j, &mut out);
        let keys: Vec<i64> = out.iter().map(|x| x.get(0).as_int().unwrap()).collect();
        assert_eq!(keys, vec![2, 4]);
    }

    #[test]
    fn duplicate_groups_cross_product() {
        let (ls, rs) = schemas();
        let mut j = MergeJoin::new(ls, rs, 0, 0);
        let mut out = Vec::new();
        j.push(0, &[t(5, 1), t(5, 2)], &mut out).unwrap();
        j.push(1, &[t(5, 3), t(5, 4), t(5, 5)], &mut out).unwrap();
        // Group not closed yet: nothing emitted.
        assert!(out.is_empty());
        // A greater key closes the left group; right still open.
        j.push(0, &[t(6, 0)], &mut out).unwrap();
        assert!(out.is_empty());
        j.push(1, &[t(7, 0)], &mut out).unwrap();
        assert_eq!(out.len(), 6, "2 x 3 cross product");
        finish_both(&mut j, &mut out);
        assert_eq!(out.len(), 6, "6-7 don't match");
    }

    #[test]
    fn eof_closes_trailing_groups() {
        let (ls, rs) = schemas();
        let mut j = MergeJoin::new(ls, rs, 0, 0);
        let mut out = Vec::new();
        j.push(0, &[t(9, 1)], &mut out).unwrap();
        j.push(1, &[t(9, 2)], &mut out).unwrap();
        assert!(out.is_empty());
        finish_both(&mut j, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn interleaved_batches_match_hash_join() {
        use crate::join::pipelined_hash::PipelinedHashJoin;
        let (ls, rs) = schemas();
        let mut mj = MergeJoin::new(ls.clone(), rs.clone(), 0, 0);
        let mut hj = PipelinedHashJoin::new(ls, rs, 0, 0);
        let left: Vec<Tuple> = (0..100).map(|i| t(i / 2, i)).collect();
        let right: Vec<Tuple> = (0..60).map(|i| t(i / 3, 1000 + i)).collect();
        let mut mout = Vec::new();
        let mut hout = Vec::new();
        for chunk in left.chunks(7) {
            mj.push(0, chunk, &mut mout).unwrap();
            hj.push(0, chunk, &mut hout).unwrap();
        }
        for chunk in right.chunks(11) {
            mj.push(1, chunk, &mut mout).unwrap();
            hj.push(1, chunk, &mut hout).unwrap();
        }
        finish_both(&mut mj, &mut mout);
        let canon = |v: &Batch| {
            let mut s: Vec<String> = v.iter().map(|t| format!("{t:?}")).collect();
            s.sort();
            s
        };
        assert_eq!(canon(&mout), canon(&hout));
        assert!(!mout.is_empty());
    }

    #[test]
    fn columnar_push_matches_row_push() {
        use tukwila_relation::ColumnarBatch;
        let (ls, rs) = schemas();
        let mut row = MergeJoin::new(ls.clone(), rs.clone(), 0, 0);
        let mut col = MergeJoin::new(ls, rs, 0, 0);
        // Sorted arrival with duplicate keys (the router's guarantee).
        let left: Vec<Tuple> = (0..80).map(|i| t(i / 3, i)).collect();
        let right: Vec<Tuple> = (0..60).map(|i| t(i / 2, 1000 + i)).collect();
        let (mut rout, mut cout) = (Vec::new(), Vec::new());
        for chunk in left.chunks(13) {
            row.push(0, chunk, &mut rout).unwrap();
            col.push_columns(0, &ColumnarBatch::from_tuples(chunk), &mut cout)
                .unwrap();
        }
        for chunk in right.chunks(9) {
            row.push(1, chunk, &mut rout).unwrap();
            col.push_columns(1, &ColumnarBatch::from_tuples(chunk), &mut cout)
                .unwrap();
        }
        finish_both(&mut row, &mut rout);
        finish_both(&mut col, &mut cout);
        assert_eq!(rout, cout);
        assert!(!rout.is_empty());
    }

    #[test]
    fn extract_states_are_sorted_lists() {
        let (ls, rs) = schemas();
        let mut j = MergeJoin::new(ls, rs, 0, 0);
        let mut out = Vec::new();
        j.push(0, &[t(1, 0), t(2, 0)], &mut out).unwrap();
        let st = j.extract_states();
        assert_eq!(st.len(), 2);
        assert_eq!(st[0].structure.len(), 2);
        assert_eq!(st[0].structure.props().sorted_by.len(), 1);
    }
}
