//! The pipelined (symmetric) hash join — the default physical join in
//! data-integration engines (paper §3, citing [22, 15, 26]).
//!
//! Both inputs build hash tables; each arriving tuple inserts into its own
//! side's table and probes the other side's. Results stream out as soon as
//! both matching tuples have arrived, with no blocking phase, and the two
//! tables double as the buffered partitions ADP needs for stitch-up.

use std::sync::Arc;

use tukwila_relation::{Result, Schema, Tuple};
use tukwila_stats::OpCounters;
use tukwila_storage::{StateStructure, TupleHashTable};

use crate::op::{Batch, ExtractedState, IncOp};

/// Symmetric hash join on a single equi-join column per side.
pub struct PipelinedHashJoin {
    left_key: usize,
    right_key: usize,
    left_schema: Schema,
    right_schema: Schema,
    out_schema: Schema,
    left_table: TupleHashTable,
    right_table: TupleHashTable,
    counters: Arc<OpCounters>,
}

impl PipelinedHashJoin {
    /// A symmetric hash join on `left_key = right_key` (key positions in
    /// the respective input schemas).
    pub fn new(
        left_schema: Schema,
        right_schema: Schema,
        left_key: usize,
        right_key: usize,
    ) -> PipelinedHashJoin {
        let out_schema = left_schema.concat(&right_schema);
        PipelinedHashJoin {
            left_key,
            right_key,
            left_table: TupleHashTable::new(left_key),
            right_table: TupleHashTable::new(right_key),
            left_schema,
            right_schema,
            out_schema,
            counters: OpCounters::new(),
        }
    }

    /// Tuples buffered on each side so far.
    pub fn buffered(&self) -> (usize, usize) {
        (self.left_table.len(), self.right_table.len())
    }
}

impl IncOp for PipelinedHashJoin {
    fn name(&self) -> &str {
        "pipelined-hash-join"
    }

    fn inputs(&self) -> usize {
        2
    }

    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn push(&mut self, port: usize, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.len() as u64);
        let before = out.len();
        match port {
            0 => {
                for t in batch {
                    let key = t.key(self.left_key);
                    for m in self.right_table.probe(&key) {
                        out.push(t.concat(m));
                    }
                    self.counters.add_work(1);
                    self.left_table.insert(t.clone())?;
                }
            }
            1 => {
                for t in batch {
                    let key = t.key(self.right_key);
                    for m in self.left_table.probe(&key) {
                        out.push(m.concat(t));
                    }
                    self.counters.add_work(1);
                    self.right_table.insert(t.clone())?;
                }
            }
            p => {
                return Err(tukwila_relation::Error::Exec(format!(
                    "pipelined hash join has no port {p}"
                )))
            }
        }
        self.counters.add_out((out.len() - before) as u64);
        Ok(())
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }

    fn extract_states(&mut self) -> Vec<ExtractedState> {
        let left = std::mem::replace(&mut self.left_table, TupleHashTable::new(self.left_key));
        let right = std::mem::replace(&mut self.right_table, TupleHashTable::new(self.right_key));
        vec![
            ExtractedState {
                port: 0,
                schema: self.left_schema.clone(),
                structure: Arc::new(left) as Arc<dyn StateStructure>,
            },
            ExtractedState {
                port: 1,
                schema: self.right_schema.clone(),
                structure: Arc::new(right) as Arc<dyn StateStructure>,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{DataType, Field, Value};

    fn schemas() -> (Schema, Schema) {
        (
            Schema::new(vec![
                Field::new("l.k", DataType::Int),
                Field::new("l.v", DataType::Int),
            ]),
            Schema::new(vec![
                Field::new("r.k", DataType::Int),
                Field::new("r.v", DataType::Int),
            ]),
        )
    }

    fn t(k: i64, v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::Int(v)])
    }

    #[test]
    fn streams_matches_in_both_directions() {
        let (ls, rs) = schemas();
        let mut j = PipelinedHashJoin::new(ls, rs, 0, 0);
        let mut out = Vec::new();
        j.push(0, &[t(1, 10), t(2, 20)], &mut out).unwrap();
        assert!(out.is_empty(), "nothing on the right yet");
        j.push(1, &[t(1, 100)], &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].arity(), 4);
        assert_eq!(out[0].get(3).as_int().unwrap(), 100);
        // Late left arrival still matches buffered right.
        j.push(0, &[t(1, 11)], &mut out).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(j.buffered(), (3, 1));
    }

    #[test]
    fn many_to_many_cross_products() {
        let (ls, rs) = schemas();
        let mut j = PipelinedHashJoin::new(ls, rs, 0, 0);
        let mut out = Vec::new();
        j.push(0, &[t(7, 1), t(7, 2)], &mut out).unwrap();
        j.push(1, &[t(7, 3), t(7, 4)], &mut out).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(j.counters().tuples_out(), 4);
    }

    #[test]
    fn no_matches_for_disjoint_keys() {
        let (ls, rs) = schemas();
        let mut j = PipelinedHashJoin::new(ls, rs, 0, 0);
        let mut out = Vec::new();
        j.push(0, &[t(1, 0)], &mut out).unwrap();
        j.push(1, &[t(2, 0)], &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn extract_states_yields_both_tables() {
        let (ls, rs) = schemas();
        let mut j = PipelinedHashJoin::new(ls, rs, 0, 0);
        let mut out = Vec::new();
        j.push(0, &[t(1, 0), t(2, 0)], &mut out).unwrap();
        j.push(1, &[t(1, 9)], &mut out).unwrap();
        let states = j.extract_states();
        assert_eq!(states.len(), 2);
        assert_eq!(states[0].port, 0);
        assert_eq!(states[0].structure.len(), 2);
        assert_eq!(states[1].structure.len(), 1);
        // The join is drained afterwards.
        assert_eq!(j.buffered(), (0, 0));
    }
}
