//! Hybrid hash join: build-then-probe iterator over hash-table state
//! (paper §3.1's "build-then-probe" iterator module).
//!
//! Port 0 is the build input, port 1 the probe input. Probe tuples arriving
//! before the build side finishes are buffered (the paper requires all
//! joins to buffer their leaves for ADP); once the build input signals EOF,
//! buffered and subsequent probe tuples stream through.

use std::sync::Arc;

use tukwila_relation::{Error, Result, Schema, Tuple};
use tukwila_stats::OpCounters;
use tukwila_storage::{StateStructure, TupleHashTable, TupleList};

use crate::op::{Batch, ExtractedState, IncOp};

/// Build-then-probe hash join.
pub struct HybridHashJoin {
    build_key: usize,
    probe_key: usize,
    build_schema: Schema,
    probe_schema: Schema,
    out_schema: Schema,
    build: TupleHashTable,
    /// Probe tuples that arrived before the build completed.
    pending_probe: TupleList,
    /// Probe-side buffer kept for ADP stitch-up.
    probe_buffer: TupleHashTable,
    build_done: bool,
    counters: Arc<OpCounters>,
}

impl HybridHashJoin {
    /// A hybrid hash join building on port 0 and probing from port 1
    /// (probe tuples buffer until the build side closes).
    pub fn new(
        build_schema: Schema,
        probe_schema: Schema,
        build_key: usize,
        probe_key: usize,
    ) -> HybridHashJoin {
        let out_schema = build_schema.concat(&probe_schema);
        HybridHashJoin {
            build_key,
            probe_key,
            build: TupleHashTable::new(build_key),
            pending_probe: TupleList::new(),
            probe_buffer: TupleHashTable::new(probe_key),
            build_schema,
            probe_schema,
            out_schema,
            build_done: false,
            counters: OpCounters::new(),
        }
    }

    fn probe_one(&mut self, t: &Tuple, out: &mut Batch) -> Result<()> {
        let key = t.key(self.probe_key);
        for m in self.build.probe(&key) {
            out.push(m.concat(t));
        }
        self.counters.add_work(1);
        self.probe_buffer.insert(t.clone())?;
        Ok(())
    }
}

impl IncOp for HybridHashJoin {
    fn name(&self) -> &str {
        "hybrid-hash-join"
    }

    fn inputs(&self) -> usize {
        2
    }

    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn push(&mut self, port: usize, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.len() as u64);
        let before = out.len();
        match port {
            0 => {
                if self.build_done {
                    return Err(Error::Exec(
                        "hybrid hash join received build tuples after build EOF".into(),
                    ));
                }
                for t in batch {
                    self.build.insert(t.clone())?;
                    self.counters.add_work(1);
                }
            }
            1 => {
                if self.build_done {
                    for t in batch {
                        self.probe_one(t, out)?;
                    }
                } else {
                    for t in batch {
                        self.pending_probe.insert(t.clone());
                    }
                }
            }
            p => return Err(Error::Exec(format!("hybrid hash join has no port {p}"))),
        }
        self.counters.add_out((out.len() - before) as u64);
        Ok(())
    }

    fn finish_input(&mut self, port: usize, out: &mut Batch) -> Result<()> {
        if port == 0 && !self.build_done {
            self.build_done = true;
            let pending = std::mem::take(&mut self.pending_probe);
            let before = out.len();
            for t in pending.tuples() {
                self.probe_one(t, out)?;
            }
            self.counters.add_out((out.len() - before) as u64);
        }
        Ok(())
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }

    fn extract_states(&mut self) -> Vec<ExtractedState> {
        // Pending (unprobed) tuples belong in the probe buffer too.
        let pending = std::mem::take(&mut self.pending_probe);
        for t in pending.tuples() {
            let _ = self.probe_buffer.insert(t.clone());
        }
        let build = std::mem::replace(&mut self.build, TupleHashTable::new(self.build_key));
        let probe = std::mem::replace(&mut self.probe_buffer, TupleHashTable::new(self.probe_key));
        vec![
            ExtractedState {
                port: 0,
                schema: self.build_schema.clone(),
                structure: Arc::new(build) as Arc<dyn StateStructure>,
            },
            ExtractedState {
                port: 1,
                schema: self.probe_schema.clone(),
                structure: Arc::new(probe) as Arc<dyn StateStructure>,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{DataType, Field, Value};

    fn schemas() -> (Schema, Schema) {
        (
            Schema::new(vec![Field::new("b.k", DataType::Int)]),
            Schema::new(vec![Field::new("p.k", DataType::Int)]),
        )
    }

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn blocks_until_build_eof() {
        let (bs, ps) = schemas();
        let mut j = HybridHashJoin::new(bs, ps, 0, 0);
        let mut out = Vec::new();
        j.push(0, &[t(1), t(2)], &mut out).unwrap();
        j.push(1, &[t(1)], &mut out).unwrap();
        assert!(out.is_empty(), "probe buffered until build completes");
        j.finish_input(0, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        // Subsequent probes stream.
        j.push(1, &[t(2), t(3)], &mut out).unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn build_after_eof_is_error() {
        let (bs, ps) = schemas();
        let mut j = HybridHashJoin::new(bs, ps, 0, 0);
        let mut out = Vec::new();
        j.finish_input(0, &mut out).unwrap();
        assert!(j.push(0, &[t(1)], &mut out).is_err());
    }

    #[test]
    fn extract_includes_pending_probe_tuples() {
        let (bs, ps) = schemas();
        let mut j = HybridHashJoin::new(bs, ps, 0, 0);
        let mut out = Vec::new();
        j.push(0, &[t(1)], &mut out).unwrap();
        j.push(1, &[t(1), t(5)], &mut out).unwrap();
        // Build never finished; seal mid-phase.
        let st = j.extract_states();
        assert_eq!(st[0].structure.len(), 1, "build side");
        assert_eq!(st[1].structure.len(), 2, "probe side incl. pending");
    }

    #[test]
    fn matches_pipelined_hash_join_results() {
        use crate::join::pipelined_hash::PipelinedHashJoin;
        let (bs, ps) = schemas();
        let mut hh = HybridHashJoin::new(bs.clone(), ps.clone(), 0, 0);
        let mut ph = PipelinedHashJoin::new(bs, ps, 0, 0);
        let build: Vec<Tuple> = (0..40).map(|i| t(i % 10)).collect();
        let probe: Vec<Tuple> = (0..30).map(|i| t(i % 15)).collect();
        let mut hout = Vec::new();
        let mut pout = Vec::new();
        hh.push(0, &build, &mut hout).unwrap();
        hh.push(1, &probe, &mut hout).unwrap();
        hh.finish_input(0, &mut hout).unwrap();
        ph.push(0, &build, &mut pout).unwrap();
        ph.push(1, &probe, &mut pout).unwrap();
        assert_eq!(hout.len(), pout.len());
    }
}
