//! Memory-bounded symmetric hash join with XJoin-style overflow
//! resolution (paper §3.3: "hash tables provide an external interface by
//! which they can be swapped to and from disk (enabling coordination of
//! join overflow partitions)"; §5 applies the same scheme to the
//! complementary join pair).
//!
//! When resident memory exceeds the budget, the join lazily co-partitions
//! both hash tables and swaps partitions to disk, spilling the largest
//! regions first. Probes that would touch a spilled partition are
//! *deferred*: the arriving tuple itself lands on disk (its key lives in
//! the same partition on its own side), and the missing matches are
//! produced during the overflow-resolution pass at `finish`, which joins
//! each spilled partition's pre-spill × post-spill and post × post
//! segments — pre × pre was already emitted while the partition was
//! resident.

use std::sync::Arc;

use tukwila_relation::{Error, Result, Schema, Tuple};
use tukwila_stats::OpCounters;
use tukwila_storage::hash_table::partition_of;
use tukwila_storage::{StateStructure, TupleHashTable};

use crate::join::batch::{hash_join_slices, BatchJoinStats};
use crate::op::{Batch, ExtractedState, IncOp};

const NPARTS: usize = 8;

/// Symmetric hash join under a memory budget.
pub struct OverflowHashJoin {
    left_key: usize,
    right_key: usize,
    left_schema: Schema,
    right_schema: Schema,
    out_schema: Schema,
    left: TupleHashTable,
    right: TupleHashTable,
    /// Resident-memory budget across both tables.
    mem_limit: usize,
    /// Per spilled partition: tuples resident on each side at spill time
    /// (their cross product was already emitted).
    spilled: Vec<Option<(Vec<Tuple>, Vec<Tuple>)>>,
    resolved: bool,
    counters: Arc<OpCounters>,
    stats: BatchJoinStats,
}

impl OverflowHashJoin {
    /// A symmetric hash join that spills partitions once resident state
    /// exceeds `mem_limit_bytes`.
    pub fn new(
        left_schema: Schema,
        right_schema: Schema,
        left_key: usize,
        right_key: usize,
        mem_limit_bytes: usize,
    ) -> OverflowHashJoin {
        let out_schema = left_schema.concat(&right_schema);
        OverflowHashJoin {
            left_key,
            right_key,
            left: TupleHashTable::new(left_key),
            right: TupleHashTable::new(right_key),
            left_schema,
            right_schema,
            out_schema,
            mem_limit: mem_limit_bytes.max(1),
            spilled: (0..NPARTS).map(|_| None).collect(),
            resolved: false,
            counters: OpCounters::new(),
            stats: BatchJoinStats::default(),
        }
    }

    /// Number of partitions currently spilled.
    pub fn spilled_partitions(&self) -> usize {
        self.spilled.iter().filter(|s| s.is_some()).count()
    }

    /// Probe/output statistics accumulated so far.
    pub fn join_stats(&self) -> BatchJoinStats {
        self.stats
    }

    fn over_budget(&self) -> bool {
        self.left.approx_bytes() + self.right.approx_bytes() > self.mem_limit
    }

    /// Spill the largest resident partition from both tables (co-ordinated
    /// boundaries, as §5 requires for the four shared tables).
    fn spill_one(&mut self) -> Result<bool> {
        // Estimate per-partition residency by sampling keys.
        let mut sizes = [0usize; NPARTS];
        for t in self.left.iter() {
            sizes[partition_of(&t.key(self.left_key), NPARTS)] += t.approx_bytes();
        }
        for t in self.right.iter() {
            sizes[partition_of(&t.key(self.right_key), NPARTS)] += t.approx_bytes();
        }
        let victim = (0..NPARTS)
            .filter(|&p| self.spilled[p].is_none())
            .max_by_key(|&p| sizes[p]);
        let Some(p) = victim else {
            return Ok(false); // everything already spilled
        };
        // Remember the resident tuples whose pairings were already emitted.
        let pre_left: Vec<Tuple> = self
            .left
            .iter()
            .filter(|t| partition_of(&t.key(self.left_key), NPARTS) == p)
            .cloned()
            .collect();
        let pre_right: Vec<Tuple> = self
            .right
            .iter()
            .filter(|t| partition_of(&t.key(self.right_key), NPARTS) == p)
            .cloned()
            .collect();
        self.left.spill_partition(p, NPARTS)?;
        self.right.spill_partition(p, NPARTS)?;
        self.spilled[p] = Some((pre_left, pre_right));
        Ok(true)
    }
}

impl IncOp for OverflowHashJoin {
    fn name(&self) -> &str {
        "overflow-hash-join"
    }

    fn inputs(&self) -> usize {
        2
    }

    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn push(&mut self, port: usize, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.len() as u64);
        let before = out.len();
        for t in batch {
            let (key, other_spilled) = match port {
                0 => {
                    let k = t.key(self.left_key);
                    let sp = self.right.key_is_spilled(&k);
                    (k, sp)
                }
                1 => {
                    let k = t.key(self.right_key);
                    let sp = self.left.key_is_spilled(&k);
                    (k, sp)
                }
                p => return Err(Error::Exec(format!("overflow join has no port {p}"))),
            };
            if !other_spilled {
                // Normal symmetric probe.
                match port {
                    0 => {
                        for m in self.right.probe(&key) {
                            out.push(t.concat(m));
                        }
                    }
                    _ => {
                        for m in self.left.probe(&key) {
                            out.push(m.concat(t));
                        }
                    }
                }
            }
            self.counters.add_work(1);
            match port {
                0 => self.left.insert(t.clone())?,
                _ => self.right.insert(t.clone())?,
            }
            if self.over_budget() && !self.spill_one()? {
                // Budget unreachable even fully spilled; keep going — the
                // resident remainder is what it is.
            }
        }
        self.counters.add_out((out.len() - before) as u64);
        Ok(())
    }

    /// Overflow resolution: for each spilled partition, restore both sides
    /// and emit every pair except pre × pre (already emitted while
    /// resident).
    fn finish(&mut self, out: &mut Batch) -> Result<()> {
        if self.resolved {
            return Ok(());
        }
        self.resolved = true;
        let before = out.len();
        for p in 0..NPARTS {
            let Some((pre_left, pre_right)) = self.spilled[p].take() else {
                continue;
            };
            let all_left = self.left.restore_partition(p)?;
            let all_right = self.right.restore_partition(p)?;
            let is_pre = |set: &[Tuple], t: &Tuple| set.iter().any(|x| x == t);
            let post_left: Vec<Tuple> = all_left
                .iter()
                .filter(|t| !is_pre(&pre_left, t))
                .cloned()
                .collect();
            let post_right: Vec<Tuple> = all_right
                .iter()
                .filter(|t| !is_pre(&pre_right, t))
                .cloned()
                .collect();
            hash_join_slices(
                &post_left,
                &all_right,
                self.left_key,
                self.right_key,
                out,
                &mut self.stats,
            )?;
            hash_join_slices(
                &pre_left,
                &post_right,
                self.left_key,
                self.right_key,
                out,
                &mut self.stats,
            )?;
        }
        self.counters.add_out((out.len() - before) as u64);
        Ok(())
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }

    fn extract_states(&mut self) -> Vec<ExtractedState> {
        let left = std::mem::replace(&mut self.left, TupleHashTable::new(self.left_key));
        let right = std::mem::replace(&mut self.right, TupleHashTable::new(self.right_key));
        vec![
            ExtractedState {
                port: 0,
                schema: self.left_schema.clone(),
                structure: Arc::new(left) as Arc<dyn StateStructure>,
            },
            ExtractedState {
                port: 1,
                schema: self.right_schema.clone(),
                structure: Arc::new(right) as Arc<dyn StateStructure>,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::pipelined_hash::PipelinedHashJoin;
    use crate::reference::canonicalize;
    use tukwila_relation::{DataType, Field, Value};

    fn schemas() -> (Schema, Schema) {
        (
            Schema::new(vec![
                Field::new("l.k", DataType::Int),
                Field::new("l.v", DataType::Int),
            ]),
            Schema::new(vec![
                Field::new("r.k", DataType::Int),
                Field::new("r.v", DataType::Int),
            ]),
        )
    }

    fn t(k: i64, v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::Int(v)])
    }

    fn run_with_limit(left: &[Tuple], right: &[Tuple], limit: usize) -> (Batch, usize) {
        let (ls, rs) = schemas();
        let mut j = OverflowHashJoin::new(ls, rs, 0, 0, limit);
        let mut out = Vec::new();
        // Interleave sides to stress deferred probes.
        let mut li = 0;
        let mut ri = 0;
        while li < left.len() || ri < right.len() {
            if li < left.len() {
                let end = (li + 16).min(left.len());
                j.push(0, &left[li..end], &mut out).unwrap();
                li = end;
            }
            if ri < right.len() {
                let end = (ri + 16).min(right.len());
                j.push(1, &right[ri..end], &mut out).unwrap();
                ri = end;
            }
        }
        let spilled = j.spilled_partitions();
        j.finish(&mut out).unwrap();
        (out, spilled)
    }

    fn expected(left: &[Tuple], right: &[Tuple]) -> Batch {
        let (ls, rs) = schemas();
        let mut j = PipelinedHashJoin::new(ls, rs, 0, 0);
        let mut out = Vec::new();
        j.push(0, left, &mut out).unwrap();
        j.push(1, right, &mut out).unwrap();
        out
    }

    #[test]
    fn no_spill_under_generous_budget() {
        let left: Vec<Tuple> = (0..100).map(|i| t(i % 20, i)).collect();
        let right: Vec<Tuple> = (0..100).map(|i| t(i % 20, 1000 + i)).collect();
        let (out, spilled) = run_with_limit(&left, &right, usize::MAX);
        assert_eq!(spilled, 0);
        assert_eq!(canonicalize(&out), canonicalize(&expected(&left, &right)));
    }

    #[test]
    fn spills_and_resolves_exactly() {
        let left: Vec<Tuple> = (0..400).map(|i| t(i % 50, i)).collect();
        let right: Vec<Tuple> = (0..400).map(|i| t(i % 50, 9000 + i)).collect();
        // ~25KB of data; 4KB budget forces several spills.
        let (out, spilled) = run_with_limit(&left, &right, 4096);
        assert!(spilled > 0, "expected spilling under a 4KB budget");
        assert_eq!(
            canonicalize(&out),
            canonicalize(&expected(&left, &right)),
            "overflow resolution must reproduce the exact join"
        );
    }

    #[test]
    fn fully_spilled_still_correct() {
        let left: Vec<Tuple> = (0..200).map(|i| t(i % 10, i)).collect();
        let right: Vec<Tuple> = (0..200).map(|i| t(i % 10, 1000 + i)).collect();
        let (out, spilled) = run_with_limit(&left, &right, 1);
        assert_eq!(spilled, 8, "1-byte budget spills every partition");
        assert_eq!(canonicalize(&out), canonicalize(&expected(&left, &right)));
    }

    #[test]
    fn finish_is_idempotent() {
        let left = vec![t(1, 1)];
        let right = vec![t(1, 2)];
        let (ls, rs) = schemas();
        let mut j = OverflowHashJoin::new(ls, rs, 0, 0, 1);
        let mut out = Vec::new();
        j.push(0, &left, &mut out).unwrap();
        j.push(1, &right, &mut out).unwrap();
        j.finish(&mut out).unwrap();
        let n = out.len();
        j.finish(&mut out).unwrap();
        assert_eq!(out.len(), n);
        assert_eq!(n, 1);
    }
}
