//! Symmetric (buffering) nested-loops join — the fallback for arbitrary,
//! non-equi join predicates.

use std::sync::Arc;

use tukwila_relation::{Error, Expr, Result, Schema, Tuple};
use tukwila_stats::OpCounters;
use tukwila_storage::{StateStructure, TupleList};

use crate::op::{Batch, ExtractedState, IncOp};

/// Nested-loops join with an arbitrary predicate over the concatenated
/// tuple. Buffers both inputs (paper §3.4's buffering requirement), so it
/// is "symmetric": each arriving tuple is tested against everything
/// buffered on the other side.
pub struct NestedLoopsJoin {
    predicate: Expr,
    left_schema: Schema,
    right_schema: Schema,
    out_schema: Schema,
    left: TupleList,
    right: TupleList,
    counters: Arc<OpCounters>,
}

impl NestedLoopsJoin {
    /// `predicate` is evaluated over `left.concat(right)`.
    pub fn new(left_schema: Schema, right_schema: Schema, predicate: Expr) -> NestedLoopsJoin {
        let out_schema = left_schema.concat(&right_schema);
        NestedLoopsJoin {
            predicate,
            left_schema,
            right_schema,
            out_schema,
            left: TupleList::new(),
            right: TupleList::new(),
            counters: OpCounters::new(),
        }
    }
}

impl IncOp for NestedLoopsJoin {
    fn name(&self) -> &str {
        "nested-loops-join"
    }

    fn inputs(&self) -> usize {
        2
    }

    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn push(&mut self, port: usize, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.len() as u64);
        let before = out.len();
        match port {
            0 => {
                for t in batch {
                    for r in self.right.iter() {
                        let joined = t.concat(r);
                        if self.predicate.matches(&joined)? {
                            out.push(joined);
                        }
                    }
                    self.counters.add_work(self.right.tuples().len() as u64);
                    self.left.insert(t.clone());
                }
            }
            1 => {
                for t in batch {
                    for l in self.left.iter() {
                        let joined = l.concat(t);
                        if self.predicate.matches(&joined)? {
                            out.push(joined);
                        }
                    }
                    self.counters.add_work(self.left.tuples().len() as u64);
                    self.right.insert(t.clone());
                }
            }
            p => return Err(Error::Exec(format!("nested loops join has no port {p}"))),
        }
        self.counters.add_out((out.len() - before) as u64);
        Ok(())
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }

    fn extract_states(&mut self) -> Vec<ExtractedState> {
        let left = std::mem::take(&mut self.left);
        let right = std::mem::take(&mut self.right);
        vec![
            ExtractedState {
                port: 0,
                schema: self.left_schema.clone(),
                structure: Arc::new(left) as Arc<dyn StateStructure>,
            },
            ExtractedState {
                port: 1,
                schema: self.right_schema.clone(),
                structure: Arc::new(right) as Arc<dyn StateStructure>,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{CmpOp, DataType, Field, Value};

    fn schemas() -> (Schema, Schema) {
        (
            Schema::new(vec![Field::new("l.x", DataType::Int)]),
            Schema::new(vec![Field::new("r.y", DataType::Int)]),
        )
    }

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn band_join() {
        // |x - y| handled as x < y: a non-equi predicate hash joins can't do.
        let (ls, rs) = schemas();
        let pred = Expr::cmp(Expr::Col(0), CmpOp::Lt, Expr::Col(1));
        let mut j = NestedLoopsJoin::new(ls, rs, pred);
        let mut out = Vec::new();
        j.push(0, &[t(1), t(5)], &mut out).unwrap();
        j.push(1, &[t(3)], &mut out).unwrap();
        assert_eq!(out.len(), 1); // only 1 < 3
        j.push(0, &[t(2)], &mut out).unwrap();
        assert_eq!(out.len(), 2); // 2 < 3 arrives late and still matches
    }

    #[test]
    fn equi_predicate_matches_hash_join() {
        use crate::join::pipelined_hash::PipelinedHashJoin;
        let (ls, rs) = schemas();
        let pred = Expr::eq(Expr::Col(0), Expr::Col(1));
        let mut nl = NestedLoopsJoin::new(ls.clone(), rs.clone(), pred);
        let mut ph = PipelinedHashJoin::new(ls, rs, 0, 0);
        let mut nout = Vec::new();
        let mut pout = Vec::new();
        let left: Vec<Tuple> = (0..30).map(|i| t(i % 7)).collect();
        let right: Vec<Tuple> = (0..20).map(|i| t(i % 5)).collect();
        nl.push(0, &left, &mut nout).unwrap();
        nl.push(1, &right, &mut nout).unwrap();
        ph.push(0, &left, &mut pout).unwrap();
        ph.push(1, &right, &mut pout).unwrap();
        assert_eq!(nout.len(), pout.len());
    }

    #[test]
    fn extracts_lists() {
        let (ls, rs) = schemas();
        let pred = Expr::eq(Expr::Col(0), Expr::Col(1));
        let mut j = NestedLoopsJoin::new(ls, rs, pred);
        let mut out = Vec::new();
        j.push(0, &[t(1)], &mut out).unwrap();
        j.push(1, &[t(1), t(2)], &mut out).unwrap();
        let st = j.extract_states();
        assert_eq!(st[0].structure.len(), 1);
        assert_eq!(st[1].structure.len(), 2);
    }
}
