//! Join operators. All joins buffer their inputs (paper §3.4: "every plan
//! must buffer the source data fed into it at the leaves... we also extend
//! the other join forms to do buffering"), which is what makes their state
//! available to stitch-up plans.

pub mod batch;
pub mod hybrid_hash;
pub mod merge;
pub mod nested_loops;
pub mod overflow;
pub mod pipelined_hash;

pub use hybrid_hash::HybridHashJoin;
pub use merge::MergeJoin;
pub use nested_loops::NestedLoopsJoin;
pub use overflow::OverflowHashJoin;
pub use pipelined_hash::PipelinedHashJoin;
