//! Batch join primitives used by the stitch-up executor (paper §3.4.3).
//!
//! The stitch-up join works at the *structure* level: it picks which
//! existing state structure to scan and which to probe, rehashing when the
//! stored key does not match the needed join key.

use std::sync::Arc;

use tukwila_relation::{Result, Tuple};
use tukwila_storage::{StateStructure, TupleHashTable};

/// Statistics from batch/stitch-up join primitives.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchJoinStats {
    /// Hash-table probes performed.
    pub probes: usize,
    /// Output tuples produced.
    pub output: usize,
    /// Structures that had to be rehashed because their advertised key did
    /// not match the join key.
    pub rehashes: usize,
}

/// Hash join over two tuple slices.
pub fn hash_join_slices(
    left: &[Tuple],
    right: &[Tuple],
    left_key: usize,
    right_key: usize,
    out: &mut Vec<Tuple>,
    stats: &mut BatchJoinStats,
) -> Result<()> {
    // Build on the smaller side; emit in left.concat(right) orientation.
    if left.len() <= right.len() {
        let mut table = TupleHashTable::new(left_key);
        for t in left {
            table.insert(t.clone())?;
        }
        for t in right {
            stats.probes += 1;
            for m in table.probe(&t.key(right_key)) {
                out.push(m.concat(t));
                stats.output += 1;
            }
        }
    } else {
        let mut table = TupleHashTable::new(right_key);
        for t in right {
            table.insert(t.clone())?;
        }
        for t in left {
            stats.probes += 1;
            for m in table.probe(&t.key(left_key)) {
                out.push(t.concat(m));
                stats.output += 1;
            }
        }
    }
    Ok(())
}

/// Join a tuple slice against an existing state structure, reusing the
/// structure's keyed access when its key matches and rehashing otherwise.
/// Output orientation is `probe_side.concat(structure)` when
/// `structure_on_right`, else the reverse.
pub fn probe_structure(
    tuples: &[Tuple],
    tuples_key: usize,
    structure: &Arc<dyn StateStructure>,
    structure_key: usize,
    structure_on_right: bool,
    out: &mut Vec<Tuple>,
    stats: &mut BatchJoinStats,
) -> Result<()> {
    let keyed_ok = structure.props().keyed_on == Some(structure_key);
    if keyed_ok {
        let mut matches = Vec::new();
        for t in tuples {
            stats.probes += 1;
            matches.clear();
            structure.probe_into(&t.key(tuples_key), &mut matches);
            for m in &matches {
                out.push(if structure_on_right {
                    t.concat(m)
                } else {
                    m.concat(t)
                });
                stats.output += 1;
            }
        }
    } else {
        // Rehash the structure on the needed key (§3.4.3: "if necessary for
        // performance, it will rehash one of the structures according to
        // the join key").
        stats.rehashes += 1;
        let mut table = TupleHashTable::new(structure_key);
        for t in structure.scan() {
            table.insert(t)?;
        }
        for t in tuples {
            stats.probes += 1;
            for m in table.probe(&t.key(tuples_key)) {
                out.push(if structure_on_right {
                    t.concat(m)
                } else {
                    m.concat(t)
                });
                stats.output += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::Value;
    use tukwila_storage::TupleList;

    fn t(k: i64, v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::Int(v)])
    }

    #[test]
    fn slices_join_both_build_directions() {
        let small = vec![t(1, 0), t(2, 0)];
        let large = vec![t(1, 9), t(1, 8), t(3, 7)];
        let mut out = Vec::new();
        let mut stats = BatchJoinStats::default();
        hash_join_slices(&small, &large, 0, 0, &mut out, &mut stats).unwrap();
        assert_eq!(out.len(), 2);
        // Orientation: left attrs first.
        assert_eq!(out[0].get(1).as_int().unwrap(), 0);

        let mut out2 = Vec::new();
        hash_join_slices(&large, &small, 0, 0, &mut out2, &mut stats).unwrap();
        assert_eq!(out2.len(), 2);
        assert_eq!(out2[0].get(3).as_int().unwrap(), 0);
    }

    #[test]
    fn probe_keyed_structure_uses_index() {
        let mut table = TupleHashTable::new(0);
        for i in 0..10 {
            table.insert(t(i, i * 10)).unwrap();
        }
        let s: Arc<dyn StateStructure> = Arc::new(table);
        let probes = vec![t(3, 0), t(4, 0), t(99, 0)];
        let mut out = Vec::new();
        let mut stats = BatchJoinStats::default();
        probe_structure(&probes, 0, &s, 0, true, &mut out, &mut stats).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(stats.rehashes, 0);
    }

    #[test]
    fn probe_mismatched_key_rehashes() {
        // Structure keyed on col 0 but we need col 1.
        let mut table = TupleHashTable::new(0);
        table.insert(t(1, 100)).unwrap();
        table.insert(t(2, 100)).unwrap();
        let s: Arc<dyn StateStructure> = Arc::new(table);
        let probes = vec![t(0, 100)];
        let mut out = Vec::new();
        let mut stats = BatchJoinStats::default();
        probe_structure(&probes, 1, &s, 1, true, &mut out, &mut stats).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(stats.rehashes, 1);
    }

    #[test]
    fn probe_unkeyed_structure_rehashes() {
        let mut list = TupleList::new();
        list.insert(t(5, 1));
        let s: Arc<dyn StateStructure> = Arc::new(list);
        let probes = vec![t(5, 2)];
        let mut out = Vec::new();
        let mut stats = BatchJoinStats::default();
        probe_structure(&probes, 0, &s, 0, false, &mut out, &mut stats).unwrap();
        assert_eq!(out.len(), 1);
        // Orientation: structure attrs first.
        assert_eq!(out[0].get(1).as_int().unwrap(), 1);
        assert_eq!(stats.rehashes, 1);
    }
}
