//! Batch join primitives used by the stitch-up executor (paper §3.4.3).
//!
//! The stitch-up join works at the *structure* level: it picks which
//! existing state structure to scan and which to probe, rehashing when the
//! stored key does not match the needed join key.

use std::sync::Arc;

use tukwila_relation::column::{hash_keys_into, key_elem_eq};
use tukwila_relation::{ColumnarBatch, Key, Result, Tuple};
use tukwila_storage::fx::FxHashMap;
use tukwila_storage::{StateStructure, TupleHashTable};

/// Statistics from batch/stitch-up join primitives.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BatchJoinStats {
    /// Hash-table probes performed.
    pub probes: usize,
    /// Output tuples produced.
    pub output: usize,
    /// Structures that had to be rehashed because their advertised key did
    /// not match the join key.
    pub rehashes: usize,
}

/// Hash join over two tuple slices.
pub fn hash_join_slices(
    left: &[Tuple],
    right: &[Tuple],
    left_key: usize,
    right_key: usize,
    out: &mut Vec<Tuple>,
    stats: &mut BatchJoinStats,
) -> Result<()> {
    // Build on the smaller side; emit in left.concat(right) orientation.
    if left.len() <= right.len() {
        let mut table = TupleHashTable::new(left_key);
        for t in left {
            table.insert(t.clone())?;
        }
        for t in right {
            stats.probes += 1;
            for m in table.probe(&t.key(right_key)) {
                out.push(m.concat(t));
                stats.output += 1;
            }
        }
    } else {
        let mut table = TupleHashTable::new(right_key);
        for t in right {
            table.insert(t.clone())?;
        }
        for t in left {
            stats.probes += 1;
            for m in table.probe(&t.key(left_key)) {
                out.push(t.concat(m));
                stats.output += 1;
            }
        }
    }
    Ok(())
}

/// Hash join over two columnar batches: one vectorized hash pass per key
/// column on each side, bucketed by hash with exact key verification, and
/// output assembled by column gather instead of per-row `concat`.
///
/// Output rows (after [`ColumnarBatch::to_tuples`]) are identical to
/// [`hash_join_slices`] over the corresponding row batches, in the same
/// order: build on the smaller side, probe in row order, matches in build
/// insertion order, orientation `left ++ right`.
pub fn hash_join_columnar(
    left: &ColumnarBatch,
    right: &ColumnarBatch,
    left_key: usize,
    right_key: usize,
    stats: &mut BatchJoinStats,
) -> Result<ColumnarBatch> {
    // An empty side produces no pairs; bail out before touching key
    // columns (a rowless batch converted from tuples has no columns at
    // all, so the key index would be out of range).
    if left.selected_rows() == 0 || right.selected_rows() == 0 {
        return Ok(ColumnarBatch::empty(left.arity() + right.arity()));
    }
    // Physical row indices must equal logical order for the gather below.
    let left = if left.selection().is_some() {
        left.compact()
    } else {
        left.clone()
    };
    let right = if right.selection().is_some() {
        right.compact()
    } else {
        right.clone()
    };
    let left_builds = left.num_rows() <= right.num_rows();
    let (build, probe, build_key, probe_key) = if left_builds {
        (&left, &right, left_key, right_key)
    } else {
        (&right, &left, right_key, left_key)
    };

    let mut hashes = Vec::new();
    hash_keys_into(build, &[build_key], &mut hashes);
    let mut buckets: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    for (i, &h) in hashes.iter().enumerate() {
        buckets.entry(h).or_default().push(i as u32);
    }

    hash_keys_into(probe, &[probe_key], &mut hashes);
    let build_col = build.column(build_key);
    let mut pairs: Vec<(u32, u32)> = Vec::new();
    for (i, &h) in hashes.iter().enumerate() {
        stats.probes += 1;
        if let Some(bucket) = buckets.get(&h) {
            let k = probe.column(probe_key).key(i);
            for &j in bucket {
                if key_elem_eq(build_col, j as usize, &k) {
                    // Orientation is always left ++ right.
                    pairs.push(if left_builds {
                        (j, i as u32)
                    } else {
                        (i as u32, j)
                    });
                }
            }
        }
    }
    stats.output += pairs.len();
    Ok(ColumnarBatch::gather_concat(&left, &right, &pairs))
}

/// Probe a sealed hash table with a columnar batch of probe rows — the
/// stitch-up probe path (§3.4.3) in the staged columnar style of the
/// dedup filter: keys are gathered from the probe key column in one
/// column-dispatch pass, then each staged key probes the table, with
/// residual equality (`joined[a] == joined[b]` over the virtual
/// `probe ++ match` layout) checked against probe columns and match
/// tuples *before* any joined tuple is materialized, so misses and
/// residual rejects never allocate. Output content and order match the
/// row-at-a-time probe exactly: probe rows in selection order, matches
/// in table insertion order.
pub fn probe_table_columnar(
    probes: &ColumnarBatch,
    probe_key: usize,
    table: &TupleHashTable,
    residual: &[(usize, usize)],
    stats: &mut BatchJoinStats,
    out: &mut Vec<Tuple>,
) -> Result<()> {
    if probes.selected_rows() == 0 {
        // A rowless batch converted from tuples has no columns at all;
        // don't touch the key column.
        return Ok(());
    }
    let arity = probes.arity();
    let rows = probes.selected_indices();
    // Stage 1: gather the probe keys in one pass over the key column.
    let key_col = probes.column(probe_key);
    let keys: Vec<Key> = rows.iter().map(|&r| key_col.key(r)).collect();
    // Stage 2: probe with the staged keys; materialize survivors only.
    for (&r, k) in rows.iter().zip(&keys) {
        stats.probes += 1;
        for m in table.probe(k) {
            let keep = residual.iter().all(|&(a, b)| {
                let va = if a < arity {
                    probes.value(r, a)
                } else {
                    m.get(a - arity).clone()
                };
                let vb = if b < arity {
                    probes.value(r, b)
                } else {
                    m.get(b - arity).clone()
                };
                va.eq_total(&vb)
            });
            if keep {
                out.push(probes.tuple_at(r).concat(m));
                stats.output += 1;
            }
        }
    }
    Ok(())
}

/// Join a tuple slice against an existing state structure, reusing the
/// structure's keyed access when its key matches and rehashing otherwise.
/// Output orientation is `probe_side.concat(structure)` when
/// `structure_on_right`, else the reverse.
pub fn probe_structure(
    tuples: &[Tuple],
    tuples_key: usize,
    structure: &Arc<dyn StateStructure>,
    structure_key: usize,
    structure_on_right: bool,
    out: &mut Vec<Tuple>,
    stats: &mut BatchJoinStats,
) -> Result<()> {
    let keyed_ok = structure.props().keyed_on == Some(structure_key);
    if keyed_ok {
        let mut matches = Vec::new();
        for t in tuples {
            stats.probes += 1;
            matches.clear();
            structure.probe_into(&t.key(tuples_key), &mut matches);
            for m in &matches {
                out.push(if structure_on_right {
                    t.concat(m)
                } else {
                    m.concat(t)
                });
                stats.output += 1;
            }
        }
    } else {
        // Rehash the structure on the needed key (§3.4.3: "if necessary for
        // performance, it will rehash one of the structures according to
        // the join key").
        stats.rehashes += 1;
        let mut table = TupleHashTable::new(structure_key);
        for t in structure.scan() {
            table.insert(t)?;
        }
        for t in tuples {
            stats.probes += 1;
            for m in table.probe(&t.key(tuples_key)) {
                out.push(if structure_on_right {
                    t.concat(m)
                } else {
                    m.concat(t)
                });
                stats.output += 1;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::Value;
    use tukwila_storage::TupleList;

    fn t(k: i64, v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::Int(v)])
    }

    #[test]
    fn slices_join_both_build_directions() {
        let small = vec![t(1, 0), t(2, 0)];
        let large = vec![t(1, 9), t(1, 8), t(3, 7)];
        let mut out = Vec::new();
        let mut stats = BatchJoinStats::default();
        hash_join_slices(&small, &large, 0, 0, &mut out, &mut stats).unwrap();
        assert_eq!(out.len(), 2);
        // Orientation: left attrs first.
        assert_eq!(out[0].get(1).as_int().unwrap(), 0);

        let mut out2 = Vec::new();
        hash_join_slices(&large, &small, 0, 0, &mut out2, &mut stats).unwrap();
        assert_eq!(out2.len(), 2);
        assert_eq!(out2[0].get(3).as_int().unwrap(), 0);
    }

    #[test]
    fn columnar_join_matches_row_join_exactly() {
        // Duplicates, misses, nulls, strings — both build directions.
        let ts = |pairs: &[(Option<i64>, &str)]| -> Vec<Tuple> {
            pairs
                .iter()
                .map(|(k, v)| Tuple::new(vec![k.map_or(Value::Null, Value::Int), Value::str(v)]))
                .collect()
        };
        let small = ts(&[(Some(1), "a"), (None, "n"), (Some(2), "b"), (Some(1), "c")]);
        let large = ts(&[
            (Some(1), "x"),
            (Some(3), "y"),
            (None, "z"),
            (Some(1), "w"),
            (Some(2), "v"),
        ]);
        for (l, r) in [(&small, &large), (&large, &small)] {
            let mut row_out = Vec::new();
            let mut row_stats = BatchJoinStats::default();
            hash_join_slices(l, r, 0, 0, &mut row_out, &mut row_stats).unwrap();

            let (lc, rc) = (ColumnarBatch::from_tuples(l), ColumnarBatch::from_tuples(r));
            let mut col_stats = BatchJoinStats::default();
            let col_out = hash_join_columnar(&lc, &rc, 0, 0, &mut col_stats)
                .unwrap()
                .to_tuples();
            assert_eq!(col_out, row_out);
            assert_eq!(col_stats.probes, row_stats.probes);
            assert_eq!(col_stats.output, row_stats.output);
        }
    }

    #[test]
    fn columnar_join_honors_selection() {
        let l = vec![t(1, 10), t(2, 20), t(3, 30)];
        let r = vec![t(1, 1), t(2, 2)];
        let mut lc = ColumnarBatch::from_tuples(&l);
        let mut sel = tukwila_relation::Bitmap::zeros(3);
        sel.set(1, true); // keep only key=2
        lc.select(sel);
        let rc = ColumnarBatch::from_tuples(&r);
        let mut stats = BatchJoinStats::default();
        let out = hash_join_columnar(&lc, &rc, 0, 0, &mut stats)
            .unwrap()
            .to_tuples();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(1).as_int().unwrap(), 20);
        assert_eq!(out[0].get(3).as_int().unwrap(), 2);
    }

    #[test]
    fn columnar_table_probe_matches_row_probe() {
        // Table keyed on col 0; probes carry nulls, dups and a residual
        // predicate joining probe col 1 against table col 1.
        let mut table = TupleHashTable::new(0);
        for (k, v) in [(1, 10), (1, 20), (2, 10), (3, 30)] {
            table.insert(t(k, v)).unwrap();
        }
        let probes = vec![
            t(1, 10),
            Tuple::new(vec![Value::Null, Value::Int(10)]),
            t(2, 10),
            t(1, 20),
            t(9, 0),
        ];
        let residual = &[(1usize, 3usize)];

        // Row reference: probe in order, residual on the joined tuple.
        let mut row_out = Vec::new();
        let mut row_stats = BatchJoinStats::default();
        for p in &probes {
            row_stats.probes += 1;
            for m in table.probe(&p.key(0)) {
                let joined = p.concat(m);
                if residual
                    .iter()
                    .all(|&(a, b)| joined.get(a).eq_total(joined.get(b)))
                {
                    row_out.push(joined);
                    row_stats.output += 1;
                }
            }
        }

        let pc = ColumnarBatch::from_tuples(&probes);
        let mut col_out = Vec::new();
        let mut col_stats = BatchJoinStats::default();
        probe_table_columnar(&pc, 0, &table, residual, &mut col_stats, &mut col_out).unwrap();
        assert_eq!(col_out, row_out);
        assert_eq!(col_stats, row_stats);

        // Empty probe batch: no panic, no output.
        let empty = ColumnarBatch::from_tuples(&[]);
        let mut out = Vec::new();
        let mut stats = BatchJoinStats::default();
        probe_table_columnar(&empty, 0, &table, residual, &mut stats, &mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn probe_keyed_structure_uses_index() {
        let mut table = TupleHashTable::new(0);
        for i in 0..10 {
            table.insert(t(i, i * 10)).unwrap();
        }
        let s: Arc<dyn StateStructure> = Arc::new(table);
        let probes = vec![t(3, 0), t(4, 0), t(99, 0)];
        let mut out = Vec::new();
        let mut stats = BatchJoinStats::default();
        probe_structure(&probes, 0, &s, 0, true, &mut out, &mut stats).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(stats.rehashes, 0);
    }

    #[test]
    fn probe_mismatched_key_rehashes() {
        // Structure keyed on col 0 but we need col 1.
        let mut table = TupleHashTable::new(0);
        table.insert(t(1, 100)).unwrap();
        table.insert(t(2, 100)).unwrap();
        let s: Arc<dyn StateStructure> = Arc::new(table);
        let probes = vec![t(0, 100)];
        let mut out = Vec::new();
        let mut stats = BatchJoinStats::default();
        probe_structure(&probes, 1, &s, 1, true, &mut out, &mut stats).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(stats.rehashes, 1);
    }

    #[test]
    fn probe_unkeyed_structure_rehashes() {
        let mut list = TupleList::new();
        list.insert(t(5, 1));
        let s: Arc<dyn StateStructure> = Arc::new(list);
        let probes = vec![t(5, 2)];
        let mut out = Vec::new();
        let mut stats = BatchJoinStats::default();
        probe_structure(&probes, 0, &s, 0, false, &mut out, &mut stats).unwrap();
        assert_eq!(out.len(), 1);
        // Orientation: structure attrs first.
        assert_eq!(out[0].get(1).as_int().unwrap(), 1);
        assert_eq!(stats.rehashes, 1);
    }
}
