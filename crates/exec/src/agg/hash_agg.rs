//! Conventional blocking hash aggregation (paper §3.1's "blocking iterator
//! that reads the entire input relation and builds the aggregate relation
//! in a hash table").

use std::collections::hash_map::Entry;
use std::sync::Arc;

use tukwila_relation::agg::AggState;
use tukwila_relation::column::{accumulate_column, group_keys};
use tukwila_relation::value::GroupKey;
use tukwila_relation::{ColumnarBatch, Key, Result, Schema, Tuple, Value};
use tukwila_stats::OpCounters;
use tukwila_storage::fx::FxHashMap;

use crate::agg::GroupSpec;
use crate::op::{Batch, IncOp};

/// Blocking hash aggregation: consumes everything, emits groups on finish.
///
/// Group state is *dense*: a hash lookup maps each group key to a slot,
/// and accumulators live in one contiguous vector per aggregate
/// (column-major), so a columnar batch updates them with one
/// [`accumulate_column`] sweep per aggregate instead of a per-row,
/// per-aggregate `Vec<AggState>` walk — and a fresh group costs two vector
/// pushes, not a heap-allocated state box. Groups emit in first-seen
/// order, identical between the row and columnar push paths.
pub struct HashAggOp {
    spec: GroupSpec,
    out_schema: Schema,
    /// Group key -> slot.
    lookup: FxHashMap<GroupKey, u32>,
    /// Group keys in first-seen (slot) order.
    keys: Vec<GroupKey>,
    /// Accumulators, column-major: `states[agg][slot]`.
    states: Vec<Vec<AggState>>,
    /// Scratch slot buffer reused across columnar pushes.
    slots: Vec<u32>,
    counters: Arc<OpCounters>,
}

impl HashAggOp {
    /// A blocking hash aggregation for `spec` over `input_schema`.
    pub fn new(spec: GroupSpec, input_schema: &Schema) -> HashAggOp {
        let out_schema = spec.output_schema(input_schema);
        let states = vec![Vec::new(); spec.aggs.len()];
        HashAggOp {
            spec,
            out_schema,
            lookup: FxHashMap::default(),
            keys: Vec::new(),
            states,
            slots: Vec::new(),
            counters: OpCounters::new(),
        }
    }

    /// Distinct groups accumulated so far.
    pub fn group_count(&self) -> usize {
        self.keys.len()
    }

    /// Slot for `key`, allocating accumulators for a fresh group.
    fn slot_for(&mut self, key: GroupKey) -> u32 {
        match self.lookup.entry(key) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let slot = self.keys.len() as u32;
                self.keys.push(e.key().clone());
                for (st, a) in self.states.iter_mut().zip(&self.spec.aggs) {
                    st.push(AggState::new(a.func));
                }
                e.insert(slot);
                slot
            }
        }
    }
}

/// Fold one tuple into a grouping hash map (shared by the blocking and the
/// shared group operators).
pub fn update_groups(
    groups: &mut FxHashMap<GroupKey, Vec<AggState>>,
    spec: &GroupSpec,
    t: &Tuple,
) -> Result<()> {
    let key = t.group_key(&spec.group_cols);
    let states = groups
        .entry(key)
        .or_insert_with(|| spec.aggs.iter().map(|a| AggState::new(a.func)).collect());
    for (s, a) in states.iter_mut().zip(&spec.aggs) {
        s.update(t.get(a.col))?;
    }
    Ok(())
}

/// Convert a finished group into an output tuple.
pub fn group_to_tuple(key: &GroupKey, states: &[AggState]) -> Tuple {
    let mut vals: Vec<Value> = key.iter().map(key_to_value).collect();
    for s in states {
        vals.push(s.finish());
    }
    Tuple::new(vals)
}

pub(crate) fn key_to_value(k: &Key) -> Value {
    match k {
        Key::Null => Value::Null,
        Key::Bool(b) => Value::Bool(*b),
        Key::Int(i) => Value::Int(*i),
        Key::Float(bits) => {
            // Reverse the total-order encoding.
            let raw = if bits >> 63 == 1 {
                bits & !(1 << 63)
            } else {
                !bits
            };
            Value::Float(f64::from_bits(raw))
        }
        Key::Date(d) => Value::Date(*d),
        Key::Str(s) => Value::Str(s.clone()),
    }
}

impl IncOp for HashAggOp {
    fn name(&self) -> &str {
        "hash-agg"
    }

    fn inputs(&self) -> usize {
        1
    }

    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn push(&mut self, _port: usize, batch: &[Tuple], _out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.len() as u64);
        self.counters.add_work(batch.len() as u64);
        for t in batch {
            let slot = self.slot_for(t.group_key(&self.spec.group_cols)) as usize;
            for (st, a) in self.states.iter_mut().zip(&self.spec.aggs) {
                st[slot].update(t.get(a.col))?;
            }
        }
        Ok(())
    }

    fn push_columns(
        &mut self,
        _port: usize,
        batch: &ColumnarBatch,
        _out: &mut Batch,
    ) -> Result<()> {
        let n = batch.selected_rows() as u64;
        self.counters.add_in(n);
        self.counters.add_work(n);
        if n == 0 {
            // A rowless batch has no columns to accumulate from.
            return Ok(());
        }
        let rows = batch.selected_indices();
        // One vectorized key pass, then one accumulate sweep per
        // aggregate. Value-identical to the row path: rows hit each
        // aggregate in batch order, so even float sums agree bitwise.
        let keys = group_keys(batch, &self.spec.group_cols);
        let mut slots = std::mem::take(&mut self.slots);
        slots.clear();
        slots.reserve(keys.len());
        for key in keys {
            slots.push(self.slot_for(key));
        }
        let mut res = Ok(());
        for (st, a) in self.states.iter_mut().zip(&self.spec.aggs) {
            res = accumulate_column(batch.column(a.col), &rows, &slots, st);
            if res.is_err() {
                break;
            }
        }
        self.slots = slots;
        res
    }

    fn finish(&mut self, out: &mut Batch) -> Result<()> {
        let keys = std::mem::take(&mut self.keys);
        let states = std::mem::replace(&mut self.states, vec![Vec::new(); self.spec.aggs.len()]);
        self.lookup = FxHashMap::default();
        for (slot, key) in keys.iter().enumerate() {
            let mut vals: Vec<Value> = key.iter().map(key_to_value).collect();
            for st in &states {
                vals.push(st[slot].finish());
            }
            out.push(Tuple::new(vals));
        }
        self.counters.add_out(keys.len() as u64);
        Ok(())
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use tukwila_relation::agg::AggFunc;
    use tukwila_relation::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("x", DataType::Int),
        ])
    }

    fn t(g: i64, x: i64) -> Tuple {
        Tuple::new(vec![Value::Int(g), Value::Int(x)])
    }

    #[test]
    fn groups_and_aggregates() {
        let spec = GroupSpec::new(
            vec![0],
            vec![
                AggSpec {
                    func: AggFunc::Max,
                    col: 1,
                },
                AggSpec {
                    func: AggFunc::Count,
                    col: 1,
                },
            ],
        );
        let mut agg = HashAggOp::new(spec, &schema());
        let mut out = Vec::new();
        agg.push(0, &[t(1, 5), t(2, 7), t(1, 9)], &mut out).unwrap();
        assert!(out.is_empty(), "blocking: nothing before finish");
        assert_eq!(agg.group_count(), 2);
        agg.finish(&mut out).unwrap();
        assert_eq!(out.len(), 2);
        let g1 = out
            .iter()
            .find(|t| t.get(0).as_int().unwrap() == 1)
            .unwrap();
        assert_eq!(g1.get(1).as_int().unwrap(), 9);
        assert_eq!(g1.get(2).as_int().unwrap(), 2);
    }

    #[test]
    fn columnar_push_matches_row_push() {
        use tukwila_relation::ColumnarBatch;
        let spec = || {
            GroupSpec::new(
                vec![0],
                vec![
                    AggSpec {
                        func: AggFunc::Sum,
                        col: 1,
                    },
                    AggSpec {
                        func: AggFunc::Count,
                        col: 1,
                    },
                    AggSpec {
                        func: AggFunc::Min,
                        col: 1,
                    },
                ],
            )
        };
        let data: Vec<Tuple> = (0..200)
            .map(|i| {
                let v = if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int((i * 3) % 50)
                };
                Tuple::new(vec![Value::Int(i % 9), v])
            })
            .collect();
        let mut row = HashAggOp::new(spec(), &schema());
        let mut col = HashAggOp::new(spec(), &schema());
        let mut sink = Vec::new();
        for chunk in data.chunks(33) {
            row.push(0, chunk, &mut sink).unwrap();
            col.push_columns(0, &ColumnarBatch::from_tuples(chunk), &mut sink)
                .unwrap();
        }
        let (mut rout, mut cout) = (Vec::new(), Vec::new());
        row.finish(&mut rout).unwrap();
        col.finish(&mut cout).unwrap();
        // First-seen emission order is shared by both paths.
        assert_eq!(rout, cout);
        assert_eq!(rout.len(), 9);
    }

    #[test]
    fn empty_input_emits_nothing() {
        let spec = GroupSpec::new(vec![0], vec![]);
        let mut agg = HashAggOp::new(spec, &schema());
        let mut out = Vec::new();
        agg.finish(&mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn float_group_keys_roundtrip() {
        for f in [-7.5f64, 0.0, 3.25, f64::INFINITY] {
            let k = Value::Float(f).to_key();
            assert_eq!(key_to_value(&k), Value::Float(f));
        }
        assert_eq!(key_to_value(&Value::str("s").to_key()), Value::str("s"));
        assert_eq!(key_to_value(&Value::Null.to_key()), Value::Null);
        assert_eq!(key_to_value(&Value::Bool(true).to_key()), Value::Bool(true));
        assert_eq!(key_to_value(&Value::Date(3).to_key()), Value::Date(3));
    }
}
