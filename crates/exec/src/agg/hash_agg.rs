//! Conventional blocking hash aggregation (paper §3.1's "blocking iterator
//! that reads the entire input relation and builds the aggregate relation
//! in a hash table").

use std::sync::Arc;

use tukwila_relation::agg::AggState;
use tukwila_relation::value::GroupKey;
use tukwila_relation::{Key, Result, Schema, Tuple, Value};
use tukwila_stats::OpCounters;
use tukwila_storage::fx::FxHashMap;

use crate::agg::GroupSpec;
use crate::op::{Batch, IncOp};

/// Blocking hash aggregation: consumes everything, emits groups on finish.
pub struct HashAggOp {
    spec: GroupSpec,
    out_schema: Schema,
    groups: FxHashMap<GroupKey, Vec<AggState>>,
    counters: Arc<OpCounters>,
}

impl HashAggOp {
    /// A blocking hash aggregation for `spec` over `input_schema`.
    pub fn new(spec: GroupSpec, input_schema: &Schema) -> HashAggOp {
        let out_schema = spec.output_schema(input_schema);
        HashAggOp {
            spec,
            out_schema,
            groups: FxHashMap::default(),
            counters: OpCounters::new(),
        }
    }

    /// Distinct groups accumulated so far.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }
}

/// Fold one tuple into a grouping hash map (shared by the blocking and the
/// shared group operators).
pub fn update_groups(
    groups: &mut FxHashMap<GroupKey, Vec<AggState>>,
    spec: &GroupSpec,
    t: &Tuple,
) -> Result<()> {
    let key = t.group_key(&spec.group_cols);
    let states = groups
        .entry(key)
        .or_insert_with(|| spec.aggs.iter().map(|a| AggState::new(a.func)).collect());
    for (s, a) in states.iter_mut().zip(&spec.aggs) {
        s.update(t.get(a.col))?;
    }
    Ok(())
}

/// Convert a finished group into an output tuple.
pub fn group_to_tuple(key: &GroupKey, states: &[AggState]) -> Tuple {
    let mut vals: Vec<Value> = key.iter().map(key_to_value).collect();
    for s in states {
        vals.push(s.finish());
    }
    Tuple::new(vals)
}

pub(crate) fn key_to_value(k: &Key) -> Value {
    match k {
        Key::Null => Value::Null,
        Key::Bool(b) => Value::Bool(*b),
        Key::Int(i) => Value::Int(*i),
        Key::Float(bits) => {
            // Reverse the total-order encoding.
            let raw = if bits >> 63 == 1 {
                bits & !(1 << 63)
            } else {
                !bits
            };
            Value::Float(f64::from_bits(raw))
        }
        Key::Date(d) => Value::Date(*d),
        Key::Str(s) => Value::Str(s.clone()),
    }
}

impl IncOp for HashAggOp {
    fn name(&self) -> &str {
        "hash-agg"
    }

    fn inputs(&self) -> usize {
        1
    }

    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn push(&mut self, _port: usize, batch: &[Tuple], _out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.len() as u64);
        self.counters.add_work(batch.len() as u64);
        for t in batch {
            update_groups(&mut self.groups, &self.spec, t)?;
        }
        Ok(())
    }

    fn finish(&mut self, out: &mut Batch) -> Result<()> {
        let groups = std::mem::take(&mut self.groups);
        for (key, states) in &groups {
            out.push(group_to_tuple(key, states));
        }
        self.counters.add_out(groups.len() as u64);
        Ok(())
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use tukwila_relation::agg::AggFunc;
    use tukwila_relation::{DataType, Field};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("x", DataType::Int),
        ])
    }

    fn t(g: i64, x: i64) -> Tuple {
        Tuple::new(vec![Value::Int(g), Value::Int(x)])
    }

    #[test]
    fn groups_and_aggregates() {
        let spec = GroupSpec::new(
            vec![0],
            vec![
                AggSpec {
                    func: AggFunc::Max,
                    col: 1,
                },
                AggSpec {
                    func: AggFunc::Count,
                    col: 1,
                },
            ],
        );
        let mut agg = HashAggOp::new(spec, &schema());
        let mut out = Vec::new();
        agg.push(0, &[t(1, 5), t(2, 7), t(1, 9)], &mut out).unwrap();
        assert!(out.is_empty(), "blocking: nothing before finish");
        assert_eq!(agg.group_count(), 2);
        agg.finish(&mut out).unwrap();
        assert_eq!(out.len(), 2);
        let g1 = out
            .iter()
            .find(|t| t.get(0).as_int().unwrap() == 1)
            .unwrap();
        assert_eq!(g1.get(1).as_int().unwrap(), 9);
        assert_eq!(g1.get(2).as_int().unwrap(), 2);
    }

    #[test]
    fn empty_input_emits_nothing() {
        let spec = GroupSpec::new(vec![0], vec![]);
        let mut agg = HashAggOp::new(spec, &schema());
        let mut out = Vec::new();
        agg.finish(&mut out).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn float_group_keys_roundtrip() {
        for f in [-7.5f64, 0.0, 3.25, f64::INFINITY] {
            let k = Value::Float(f).to_key();
            assert_eq!(key_to_value(&k), Value::Float(f));
        }
        assert_eq!(key_to_value(&Value::str("s").to_key()), Value::str("s"));
        assert_eq!(key_to_value(&Value::Null.to_key()), Value::Null);
        assert_eq!(key_to_value(&Value::Bool(true).to_key()), Value::Bool(true));
        assert_eq!(key_to_value(&Value::Date(3).to_key()), Value::Date(3));
    }
}
