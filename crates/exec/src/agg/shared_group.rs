//! The shared group-by operator of Figure 1: one aggregate table that
//! every phase plan and the stitch-up plan feed, so results accumulate
//! exactly once across the whole adaptively partitioned execution.

use std::sync::Arc;

use parking_lot::Mutex;
use tukwila_relation::agg::AggState;
use tukwila_relation::value::GroupKey;
use tukwila_relation::{Result, Schema, Tuple};
use tukwila_stats::OpCounters;
use tukwila_storage::fx::FxHashMap;

use crate::agg::hash_agg::{group_to_tuple, update_groups};
use crate::agg::GroupSpec;
use crate::op::{Batch, IncOp};

/// The shared aggregate table. Lives outside any single plan; phases come
/// and go, the table persists. Aggregates distribute over union, so feeding
/// each answer tuple exactly once (phases = diagonal results, stitch-up =
/// cross results) yields exactly the single-plan answer.
pub struct SharedGroupTable {
    spec: GroupSpec,
    out_schema: Schema,
    groups: Mutex<FxHashMap<GroupKey, Vec<AggState>>>,
    tuples_in: OpCounters,
}

impl SharedGroupTable {
    /// A fresh table for `spec` over `input_schema`, shared-ready.
    pub fn new(spec: GroupSpec, input_schema: &Schema) -> Arc<SharedGroupTable> {
        let out_schema = spec.output_schema(input_schema);
        Arc::new(SharedGroupTable {
            spec,
            out_schema,
            groups: Mutex::new(FxHashMap::default()),
            tuples_in: OpCounters::default(),
        })
    }

    /// The grouping specification the table accumulates under.
    pub fn spec(&self) -> &GroupSpec {
        &self.spec
    }

    /// Schema of the finalized output tuples.
    pub fn output_schema(&self) -> &Schema {
        &self.out_schema
    }

    /// Fold a batch of answer tuples into the table.
    pub fn update(&self, batch: &[Tuple]) -> Result<()> {
        self.tuples_in.add_in(batch.len() as u64);
        let mut g = self.groups.lock();
        for t in batch {
            update_groups(&mut g, &self.spec, t)?;
        }
        Ok(())
    }

    /// Total answer tuples folded in so far.
    pub fn tuples_in(&self) -> u64 {
        self.tuples_in.tuples_in()
    }

    /// Distinct groups accumulated so far.
    pub fn group_count(&self) -> usize {
        self.groups.lock().len()
    }

    /// Finalize into output tuples (call once, at the very end).
    pub fn finalize(&self) -> Vec<Tuple> {
        let groups = std::mem::take(&mut *self.groups.lock());
        groups.iter().map(|(k, s)| group_to_tuple(k, s)).collect()
    }
}

/// Plan-resident handle feeding a [`SharedGroupTable`]. With
/// `emit_on_finish`, the operator emits the finalized groups when its
/// inputs close (single-plan use); without it, the table owner finalizes
/// explicitly after stitch-up (ADP use).
pub struct SharedGroupOp {
    table: Arc<SharedGroupTable>,
    emit_on_finish: bool,
    counters: Arc<OpCounters>,
}

impl SharedGroupOp {
    /// A plan-resident feeder for `table`.
    pub fn new(table: Arc<SharedGroupTable>, emit_on_finish: bool) -> SharedGroupOp {
        SharedGroupOp {
            table,
            emit_on_finish,
            counters: OpCounters::new(),
        }
    }
}

impl IncOp for SharedGroupOp {
    fn name(&self) -> &str {
        "shared-group"
    }

    fn inputs(&self) -> usize {
        1
    }

    fn schema(&self) -> &Schema {
        self.table.output_schema()
    }

    fn push(&mut self, _port: usize, batch: &[Tuple], _out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.len() as u64);
        self.counters.add_work(batch.len() as u64);
        self.table.update(batch)
    }

    fn finish(&mut self, out: &mut Batch) -> Result<()> {
        if self.emit_on_finish {
            let rows = self.table.finalize();
            self.counters.add_out(rows.len() as u64);
            out.extend(rows);
        }
        Ok(())
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use tukwila_relation::agg::AggFunc;
    use tukwila_relation::{DataType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("x", DataType::Int),
        ])
    }

    fn t(g: i64, x: i64) -> Tuple {
        Tuple::new(vec![Value::Int(g), Value::Int(x)])
    }

    fn spec() -> GroupSpec {
        GroupSpec::new(
            vec![0],
            vec![AggSpec {
                func: AggFunc::Sum,
                col: 1,
            }],
        )
    }

    #[test]
    fn accumulates_across_feeders() {
        let table = SharedGroupTable::new(spec(), &schema());
        // Two "plans" feed the same table.
        let mut op_a = SharedGroupOp::new(table.clone(), false);
        let mut op_b = SharedGroupOp::new(table.clone(), false);
        let mut sink = Vec::new();
        op_a.push(0, &[t(1, 10), t(2, 5)], &mut sink).unwrap();
        op_b.push(0, &[t(1, 20)], &mut sink).unwrap();
        op_a.finish(&mut sink).unwrap();
        assert!(sink.is_empty(), "non-emitting handle");
        assert_eq!(table.tuples_in(), 3);
        let rows = table.finalize();
        assert_eq!(rows.len(), 2);
        let g1 = rows
            .iter()
            .find(|r| r.get(0).as_int().unwrap() == 1)
            .unwrap();
        assert_eq!(g1.get(1).as_float().unwrap(), 30.0);
    }

    #[test]
    fn emit_on_finish_for_single_plan_use() {
        let table = SharedGroupTable::new(spec(), &schema());
        let mut op = SharedGroupOp::new(table, true);
        let mut out = Vec::new();
        op.push(0, &[t(1, 1)], &mut out).unwrap();
        op.finish(&mut out).unwrap();
        assert_eq!(out.len(), 1);
    }
}
