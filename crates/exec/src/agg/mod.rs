//! Aggregation operators: blocking hash aggregation, the shared group-by
//! table that persists across ADP phases (Figure 1), and adjustable-window
//! pre-aggregation with the pseudogroup operator (§3.2, §6).

pub mod hash_agg;
pub mod preagg;
pub mod shared_group;

pub use hash_agg::HashAggOp;
pub use preagg::{PreAggOp, WindowPolicy};
pub use shared_group::{SharedGroupOp, SharedGroupTable};

use tukwila_relation::agg::AggFunc;
use tukwila_relation::{DataType, Field, Schema};

/// One aggregate over an input column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggSpec {
    /// The aggregate function.
    pub func: AggFunc,
    /// Input column the aggregate consumes.
    pub col: usize,
}

/// A grouping specification: group columns plus aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupSpec {
    /// Input columns forming the group key.
    pub group_cols: Vec<usize>,
    /// Aggregates computed per group.
    pub aggs: Vec<AggSpec>,
}

impl GroupSpec {
    /// A specification grouping on `group_cols` and computing `aggs`.
    pub fn new(group_cols: Vec<usize>, aggs: Vec<AggSpec>) -> GroupSpec {
        GroupSpec { group_cols, aggs }
    }

    /// Output schema: group columns (input names preserved) followed by one
    /// field per aggregate, named `func(col_name)`.
    pub fn output_schema(&self, input: &Schema) -> Schema {
        let mut fields: Vec<Field> = self
            .group_cols
            .iter()
            .map(|&c| input.field(c).clone())
            .collect();
        for a in &self.aggs {
            let dtype = match a.func {
                AggFunc::Count => DataType::Int,
                AggFunc::Sum | AggFunc::Avg => DataType::Float,
                AggFunc::Min | AggFunc::Max => input.field(a.col).dtype,
            };
            fields.push(Field::new(
                format!("{}({})", a.func, input.field(a.col).name),
                dtype,
            ));
        }
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_schema_names_and_types() {
        let input = Schema::new(vec![
            Field::new("g", DataType::Str),
            Field::new("x", DataType::Int),
        ]);
        let spec = GroupSpec::new(
            vec![0],
            vec![
                AggSpec {
                    func: AggFunc::Max,
                    col: 1,
                },
                AggSpec {
                    func: AggFunc::Count,
                    col: 1,
                },
            ],
        );
        let out = spec.output_schema(&input);
        assert_eq!(out.arity(), 3);
        assert_eq!(out.field(0).name, "g");
        assert_eq!(out.field(1).name, "max(x)");
        assert_eq!(out.field(1).dtype, DataType::Int);
        assert_eq!(out.field(2).dtype, DataType::Int);
    }
}
