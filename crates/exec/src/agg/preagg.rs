//! Adjustable-window pre-aggregation and the pseudogroup operator
//! (paper §3.2, §6).
//!
//! The operator buffers a window of `w` tuples, hash-aggregates the window
//! on (grouping ∪ join) attributes, and emits the partial aggregates —
//! pipelined, unlike a traditional blocking pre-aggregation. Because
//! aggregates distribute over union, the window size can change freely:
//! when a window coalesces well the window grows; when it doesn't, it
//! shrinks, bottoming out at `w = 1`, where the operator degenerates into
//! the *pseudogroup* operator — a per-tuple conversion to the
//! pre-aggregated schema that keeps all plans schema-compatible whether or
//! not pre-aggregation is effective.

use std::collections::hash_map::Entry;
use std::sync::Arc;

use tukwila_relation::agg::AggState;
use tukwila_relation::column::{accumulate_column, group_keys_at, group_keys_rows};
use tukwila_relation::value::GroupKey;
use tukwila_relation::{ColumnarBatch, Result, Schema, Tuple, Value};
use tukwila_stats::OpCounters;
use tukwila_storage::fx::FxHashMap;

use crate::agg::hash_agg::key_to_value;
use crate::agg::{AggSpec, GroupSpec};
use crate::op::{Batch, IncOp};

/// Window sizing policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WindowPolicy {
    /// Fixed window. `Fixed(1)` is the pseudogroup operator.
    Fixed(usize),
    /// Adjustable: grow (×2) when `emitted/consumed <= grow_below`, shrink
    /// (÷2) when above `shrink_above`.
    Adaptive {
        /// Starting window size (tuples).
        initial: usize,
        /// Smallest window the policy will shrink to.
        min: usize,
        /// Largest window the policy will grow to.
        max: usize,
        /// Grow when the window's output/input ratio is at or below this.
        grow_below: f64,
        /// Shrink when the window's output/input ratio exceeds this.
        shrink_above: f64,
    },
}

impl WindowPolicy {
    /// The paper's defaults, scaled for our batch sizes.
    pub fn default_adaptive() -> WindowPolicy {
        WindowPolicy::Adaptive {
            initial: 256,
            min: 1,
            max: 65_536,
            grow_below: 0.75,
            shrink_above: 0.95,
        }
    }
}

/// Per-operator effectiveness statistics (drives Figure 6's analysis).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PreAggStats {
    /// Windows aggregated and emitted.
    pub windows: u64,
    /// Input tuples consumed.
    pub consumed: u64,
    /// Partial-aggregate tuples emitted.
    pub emitted: u64,
    /// Window size when the operator finished (or was observed).
    pub final_window: usize,
}

/// Adjustable-window pre-aggregation operator.
pub struct PreAggOp {
    spec: GroupSpec,
    out_schema: Schema,
    policy: WindowPolicy,
    w: usize,
    window: Vec<Tuple>,
    stats: PreAggStats,
    counters: Arc<OpCounters>,
}

impl PreAggOp {
    /// `spec.group_cols` must include any join attributes needed upstream
    /// (the paper's "partial groups include any join attributes, even if
    /// these are not part of the final groups").
    pub fn new(spec: GroupSpec, input_schema: &Schema, policy: WindowPolicy) -> PreAggOp {
        let out_schema = spec.output_schema(input_schema);
        let w = match policy {
            WindowPolicy::Fixed(w) => w.max(1),
            WindowPolicy::Adaptive { initial, .. } => initial.max(1),
        };
        PreAggOp {
            spec,
            out_schema,
            policy,
            w,
            window: Vec::new(),
            stats: PreAggStats::default(),
            counters: OpCounters::new(),
        }
    }

    /// The pseudogroup operator: per-tuple aggregate-schema conversion
    /// ("costs little more than a conventional projection", §3.2).
    pub fn pseudogroup(spec: GroupSpec, input_schema: &Schema) -> PreAggOp {
        PreAggOp::new(spec, input_schema, WindowPolicy::Fixed(1))
    }

    /// Effectiveness statistics, including the current window size.
    pub fn stats(&self) -> PreAggStats {
        let mut s = self.stats;
        s.final_window = self.w;
        s
    }

    /// The current window size (tuples).
    pub fn current_window(&self) -> usize {
        self.w
    }

    fn emit_window(&mut self, tuples: &[Tuple], out: &mut Batch) -> Result<()> {
        self.stats.windows += 1;
        self.stats.consumed += tuples.len() as u64;
        if tuples.len() == 1 || self.w == 1 {
            // Pseudogroup fast path: no hashing.
            for t in tuples {
                out.push(self.convert_singleton(t)?);
            }
            self.stats.emitted += tuples.len() as u64;
            self.adjust(tuples.len(), tuples.len());
            return Ok(());
        }
        // One pass per key column over the window (column-at-a-time type
        // dispatch) instead of a per-tuple group_key walk; group state is
        // dense (slot-indexed, one vector per aggregate), so a fresh
        // group never heap-allocates a state box.
        let keys = group_keys_rows(tuples, &self.spec.group_cols);
        let mut wg = WindowGroups::new(self.spec.aggs.len());
        let slots = wg.assign(keys, &self.spec.aggs);
        for (i, t) in tuples.iter().enumerate() {
            let slot = slots[i] as usize;
            for (st, a) in wg.states.iter_mut().zip(&self.spec.aggs) {
                st[slot].update(t.get(a.col))?;
            }
        }
        let emitted = wg.keys.len();
        wg.emit(out);
        self.stats.emitted += emitted as u64;
        self.adjust(tuples.len(), emitted);
        Ok(())
    }

    /// [`PreAggOp::emit_window`] straight from columnar storage: keys via
    /// [`group_keys_at`], accumulators via one [`accumulate_column`]
    /// sweep per aggregate. `rows` are physical indices into `batch`.
    fn emit_window_columnar(
        &mut self,
        batch: &ColumnarBatch,
        rows: &[usize],
        out: &mut Batch,
    ) -> Result<()> {
        self.stats.windows += 1;
        self.stats.consumed += rows.len() as u64;
        if rows.len() == 1 || self.w == 1 {
            for &r in rows {
                out.push(self.convert_singleton(&batch.tuple_at(r))?);
            }
            self.stats.emitted += rows.len() as u64;
            self.adjust(rows.len(), rows.len());
            return Ok(());
        }
        let keys = group_keys_at(batch, &self.spec.group_cols, rows);
        let mut wg = WindowGroups::new(self.spec.aggs.len());
        let slots = wg.assign(keys, &self.spec.aggs);
        for (st, a) in wg.states.iter_mut().zip(&self.spec.aggs) {
            accumulate_column(batch.column(a.col), rows, &slots, st)?;
        }
        let emitted = wg.keys.len();
        wg.emit(out);
        self.stats.emitted += emitted as u64;
        self.adjust(rows.len(), emitted);
        Ok(())
    }

    /// Convert one tuple to the pre-aggregated schema (pseudogroup).
    fn convert_singleton(&self, t: &Tuple) -> Result<Tuple> {
        let mut vals = Vec::with_capacity(self.spec.group_cols.len() + self.spec.aggs.len());
        for &c in &self.spec.group_cols {
            vals.push(t.get(c).clone());
        }
        for a in &self.spec.aggs {
            let mut s = AggState::new(a.func);
            s.update(t.get(a.col))?;
            vals.push(s.carried());
        }
        Ok(Tuple::new(vals))
    }

    fn stream_pseudogroup(&self) -> bool {
        self.w == 1 && self.window.is_empty() && matches!(self.policy, WindowPolicy::Fixed(_))
    }

    fn adjust(&mut self, consumed: usize, emitted: usize) {
        if let WindowPolicy::Adaptive {
            min,
            max,
            grow_below,
            shrink_above,
            ..
        } = self.policy
        {
            let ratio = emitted as f64 / consumed.max(1) as f64;
            if ratio <= grow_below {
                self.w = (self.w * 2).min(max);
            } else if ratio >= shrink_above {
                self.w = (self.w / 2).max(min);
            }
        }
    }
}

/// Dense per-window group state: a slot per first-seen key, accumulators
/// column-major (`states[agg][slot]`). Emission is in first-seen order —
/// the same for the row and columnar window paths.
struct WindowGroups {
    lookup: FxHashMap<GroupKey, u32>,
    keys: Vec<GroupKey>,
    states: Vec<Vec<AggState>>,
}

impl WindowGroups {
    fn new(naggs: usize) -> WindowGroups {
        WindowGroups {
            lookup: FxHashMap::default(),
            keys: Vec::new(),
            states: vec![Vec::new(); naggs],
        }
    }

    /// Map each key to its slot (allocating fresh groups in order).
    fn assign(&mut self, keys: Vec<GroupKey>, aggs: &[AggSpec]) -> Vec<u32> {
        let mut slots = Vec::with_capacity(keys.len());
        for key in keys {
            let slot = match self.lookup.entry(key) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    let s = self.keys.len() as u32;
                    self.keys.push(e.key().clone());
                    for (st, a) in self.states.iter_mut().zip(aggs) {
                        st.push(AggState::new(a.func));
                    }
                    e.insert(s);
                    s
                }
            };
            slots.push(slot);
        }
        slots
    }

    /// Emit the window's partial aggregates (carried form).
    fn emit(self, out: &mut Batch) {
        for (slot, key) in self.keys.iter().enumerate() {
            let mut vals: Vec<Value> = key.iter().map(key_to_value).collect();
            for st in &self.states {
                vals.push(st[slot].carried());
            }
            out.push(Tuple::new(vals));
        }
    }
}

impl IncOp for PreAggOp {
    fn name(&self) -> &str {
        if matches!(self.policy, WindowPolicy::Fixed(1)) {
            "pseudogroup"
        } else {
            "preagg"
        }
    }

    fn inputs(&self) -> usize {
        1
    }

    fn schema(&self) -> &Schema {
        &self.out_schema
    }

    fn push(&mut self, _port: usize, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.len() as u64);
        self.counters.add_work(batch.len() as u64);
        let before = out.len();
        if self.stream_pseudogroup() {
            // Pure pseudogroup: stream straight through.
            for t in batch {
                out.push(self.convert_singleton(t)?);
            }
            self.stats.windows += batch.len() as u64;
            self.stats.consumed += batch.len() as u64;
            self.stats.emitted += batch.len() as u64;
            self.counters.add_out((out.len() - before) as u64);
            return Ok(());
        }
        self.window.extend_from_slice(batch);
        while self.window.len() >= self.w {
            let take = self.w;
            let rest = self.window.split_off(take);
            let full = std::mem::replace(&mut self.window, rest);
            self.emit_window(&full, out)?;
        }
        self.counters.add_out((out.len() - before) as u64);
        Ok(())
    }

    /// Columnar push: complete windows aggregate straight from the
    /// columns (`emit_window_columnar`); only the rows that top up a
    /// carried partial window, or remain as one, materialize as tuples.
    /// Window boundaries, sizing decisions, and output are identical to
    /// pushing the same rows through [`PreAggOp::push`].
    fn push_columns(&mut self, _port: usize, batch: &ColumnarBatch, out: &mut Batch) -> Result<()> {
        let n = batch.selected_rows() as u64;
        self.counters.add_in(n);
        self.counters.add_work(n);
        let before = out.len();
        if self.stream_pseudogroup() {
            for r in batch.selected_indices() {
                out.push(self.convert_singleton(&batch.tuple_at(r))?);
            }
            self.stats.windows += n;
            self.stats.consumed += n;
            self.stats.emitted += n;
            self.counters.add_out((out.len() - before) as u64);
            return Ok(());
        }
        let idx = batch.selected_indices();
        let mut pos = 0;
        // Top up a carried partial window first.
        if !self.window.is_empty() {
            while pos < idx.len() && self.window.len() < self.w {
                self.window.push(batch.tuple_at(idx[pos]));
                pos += 1;
            }
            while self.window.len() >= self.w {
                let rest = self.window.split_off(self.w);
                let full = std::mem::replace(&mut self.window, rest);
                self.emit_window(&full, out)?;
            }
        }
        // Whole windows straight from the columns. Re-read `self.w` each
        // round: emitting a window may resize it (adaptive policy), just
        // like the row path's drain loop.
        while idx.len() - pos >= self.w {
            let w = self.w;
            self.emit_window_columnar(batch, &idx[pos..pos + w], out)?;
            pos += w;
        }
        // The remainder carries over as the next partial window.
        for &r in &idx[pos..] {
            self.window.push(batch.tuple_at(r));
        }
        self.counters.add_out((out.len() - before) as u64);
        Ok(())
    }

    fn finish(&mut self, out: &mut Batch) -> Result<()> {
        let before = out.len();
        if !self.window.is_empty() {
            let last = std::mem::take(&mut self.window);
            self.emit_window(&last, out)?;
        }
        self.counters.add_out((out.len() - before) as u64);
        Ok(())
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggSpec;
    use tukwila_relation::agg::AggFunc;
    use tukwila_relation::{DataType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Field::new("g", DataType::Int),
            Field::new("x", DataType::Int),
        ])
    }

    fn t(g: i64, x: i64) -> Tuple {
        Tuple::new(vec![Value::Int(g), Value::Int(x)])
    }

    fn spec() -> GroupSpec {
        GroupSpec::new(
            vec![0],
            vec![AggSpec {
                func: AggFunc::Max,
                col: 1,
            }],
        )
    }

    #[test]
    fn coalesces_repetitive_window() {
        let mut p = PreAggOp::new(spec(), &schema(), WindowPolicy::Fixed(4));
        let mut out = Vec::new();
        p.push(0, &[t(1, 1), t(1, 5), t(1, 3), t(2, 2)], &mut out)
            .unwrap();
        assert_eq!(out.len(), 2, "4 inputs -> 2 partial groups");
        let g1 = out
            .iter()
            .find(|r| r.get(0).as_int().unwrap() == 1)
            .unwrap();
        assert_eq!(g1.get(1).as_int().unwrap(), 5);
    }

    #[test]
    fn pseudogroup_passes_through_converted() {
        let mut p = PreAggOp::pseudogroup(spec(), &schema());
        assert_eq!(p.name(), "pseudogroup");
        let mut out = Vec::new();
        p.push(0, &[t(1, 1), t(1, 5)], &mut out).unwrap();
        assert_eq!(out.len(), 2, "no coalescing at w=1");
        assert_eq!(out[0].arity(), 2);
        assert_eq!(out[0].get(1).as_int().unwrap(), 1);
    }

    #[test]
    fn adaptive_window_grows_on_effective_data() {
        let policy = WindowPolicy::Adaptive {
            initial: 8,
            min: 1,
            max: 1024,
            grow_below: 0.75,
            shrink_above: 0.95,
        };
        let mut p = PreAggOp::new(spec(), &schema(), policy);
        let mut out = Vec::new();
        // All tuples in one group: maximal coalescing.
        let batch: Vec<Tuple> = (0..64).map(|i| t(7, i)).collect();
        p.push(0, &batch, &mut out).unwrap();
        assert!(
            p.current_window() > 8,
            "window grew: {}",
            p.current_window()
        );
    }

    #[test]
    fn adaptive_window_shrinks_on_unique_data() {
        let policy = WindowPolicy::Adaptive {
            initial: 64,
            min: 1,
            max: 1024,
            grow_below: 0.75,
            shrink_above: 0.95,
        };
        let mut p = PreAggOp::new(spec(), &schema(), policy);
        let mut out = Vec::new();
        let batch: Vec<Tuple> = (0..512).map(|i| t(i, i)).collect();
        p.push(0, &batch, &mut out).unwrap();
        assert!(
            p.current_window() < 64,
            "window shrank: {}",
            p.current_window()
        );
        assert_eq!(out.len(), 512, "unique data passes through entirely");
    }

    #[test]
    fn columnar_push_matches_row_push() {
        use tukwila_relation::ColumnarBatch;
        let data: Vec<Tuple> = (0..300).map(|i| t(i % 11, (i * 13) % 97)).collect();
        for policy in [
            WindowPolicy::Fixed(1),
            WindowPolicy::Fixed(7),
            WindowPolicy::Adaptive {
                initial: 8,
                min: 1,
                max: 256,
                grow_below: 0.75,
                shrink_above: 0.95,
            },
        ] {
            let mut row = PreAggOp::new(spec(), &schema(), policy);
            let mut col = PreAggOp::new(spec(), &schema(), policy);
            let (mut rout, mut cout) = (Vec::new(), Vec::new());
            for chunk in data.chunks(23) {
                row.push(0, chunk, &mut rout).unwrap();
                col.push_columns(0, &ColumnarBatch::from_tuples(chunk), &mut cout)
                    .unwrap();
            }
            row.finish(&mut rout).unwrap();
            col.finish(&mut cout).unwrap();
            assert_eq!(rout, cout, "policy {policy:?}");
            assert_eq!(row.current_window(), col.current_window());
            assert_eq!(row.stats(), col.stats());
        }
    }

    #[test]
    fn finish_flushes_partial_window() {
        let mut p = PreAggOp::new(spec(), &schema(), WindowPolicy::Fixed(100));
        let mut out = Vec::new();
        p.push(0, &[t(1, 1), t(1, 2)], &mut out).unwrap();
        assert!(out.is_empty());
        p.finish(&mut out).unwrap();
        assert_eq!(out.len(), 1);
    }

    /// Distributivity: final aggregation over pre-aggregated partials must
    /// equal direct aggregation, for any window size.
    #[test]
    fn preagg_then_final_equals_direct() {
        use crate::agg::hash_agg::HashAggOp;
        use tukwila_relation::agg::coalesce_func;

        let data: Vec<Tuple> = (0..200).map(|i| t(i % 13, (i * 7) % 101)).collect();

        // Direct.
        let mut direct = HashAggOp::new(spec(), &schema());
        let mut dout = Vec::new();
        direct.push(0, &data, &mut dout).unwrap();
        direct.finish(&mut dout).unwrap();

        for w in [1usize, 3, 16, 500] {
            let mut p = PreAggOp::new(spec(), &schema(), WindowPolicy::Fixed(w));
            let mut partials = Vec::new();
            for chunk in data.chunks(37) {
                p.push(0, chunk, &mut partials).unwrap();
            }
            p.finish(&mut partials).unwrap();
            // Final agg over partials: same group col, coalesced funcs.
            let final_spec = GroupSpec::new(
                vec![0],
                vec![AggSpec {
                    func: coalesce_func(AggFunc::Max),
                    col: 1,
                }],
            );
            let mut fin = HashAggOp::new(final_spec, p.schema());
            let mut fout = Vec::new();
            fin.push(0, &partials, &mut fout).unwrap();
            fin.finish(&mut fout).unwrap();
            let canon = |v: &Batch| {
                let mut s: Vec<String> = v.iter().map(|t| format!("{t:?}")).collect();
                s.sort();
                s
            };
            assert_eq!(canon(&fout), canon(&dout), "w={w}");
        }
    }
}
