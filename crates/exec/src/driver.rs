//! Single-plan execution against simulated sources under the virtual
//! clock. (The adaptive, multi-phase driver lives in `tukwila-core`; this
//! one runs the static baselines and the inner loop of tests.)

use std::time::Instant;

use tukwila_relation::Result;
use tukwila_source::{Poll, Source};

use crate::metrics::ExecReport;
use crate::op::Batch;
use crate::plan::PipelinePlan;

/// How CPU work advances the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CpuCostModel {
    /// Measure actual wall time of each push (realistic benchmarking).
    Measured,
    /// Charge a fixed cost per input tuple (deterministic tests).
    PerTupleNs(u64),
    /// CPU is free; only source delays advance the clock.
    Zero,
}

/// Round-robin batch driver.
pub struct SimDriver {
    pub batch_size: usize,
    pub cpu: CpuCostModel,
}

impl Default for SimDriver {
    fn default() -> Self {
        SimDriver {
            batch_size: 1024,
            cpu: CpuCostModel::Measured,
        }
    }
}

impl SimDriver {
    pub fn new(batch_size: usize, cpu: CpuCostModel) -> SimDriver {
        SimDriver { batch_size, cpu }
    }

    /// Run `plan` to completion over `sources`, returning root output and a
    /// timing report.
    ///
    /// The loop models adaptive scheduling's effect at the granularity we
    /// need: whenever *any* source has data, the CPU works on it; the clock
    /// only idles forward when every unfinished source is pending.
    pub fn run(
        &self,
        plan: &mut PipelinePlan,
        sources: &mut [Box<dyn Source>],
    ) -> Result<(Batch, ExecReport)> {
        let mut out = Batch::new();
        let mut report = ExecReport::default();
        let mut clock_us: f64 = 0.0;
        let mut cpu_us: f64 = 0.0;
        let mut idle_us: f64 = 0.0;
        let mut finished = vec![false; sources.len()];

        loop {
            let mut any_ready = false;
            let mut next_ready: Option<u64> = None;
            let mut all_done = true;
            for (i, src) in sources.iter_mut().enumerate() {
                if finished[i] {
                    continue;
                }
                all_done = false;
                match src.poll(clock_us as u64, self.batch_size) {
                    Poll::Ready(batch) => {
                        any_ready = true;
                        report.batches += 1;
                        let cost = self.charged_cost(batch.len(), || {
                            plan.push_source(src.rel_id(), &batch, &mut out)
                        })?;
                        clock_us += cost;
                        cpu_us += cost;
                    }
                    Poll::Pending { next_ready_us } => {
                        next_ready = Some(match next_ready {
                            Some(n) => n.min(next_ready_us),
                            None => next_ready_us,
                        });
                    }
                    Poll::Eof => {
                        finished[i] = true;
                        let cost =
                            self.charged_cost(0, || plan.finish_source(src.rel_id(), &mut out))?;
                        clock_us += cost;
                        cpu_us += cost;
                    }
                }
            }
            if all_done {
                break;
            }
            if !any_ready {
                if let Some(n) = next_ready {
                    let target = (n as f64).max(clock_us);
                    idle_us += target - clock_us;
                    clock_us = target;
                }
            }
        }

        report.virtual_us = clock_us as u64;
        report.cpu_us = cpu_us as u64;
        report.idle_us = idle_us as u64;
        report.tuples_out = out.len() as u64;
        Ok((out, report))
    }

    /// Run `f`, returning the virtual-time cost (µs) to charge for it.
    fn charged_cost(&self, tuples: usize, f: impl FnOnce() -> Result<()>) -> Result<f64> {
        match self.cpu {
            CpuCostModel::Measured => {
                let start = Instant::now();
                f()?;
                Ok(start.elapsed().as_secs_f64() * 1e6)
            }
            CpuCostModel::PerTupleNs(ns) => {
                f()?;
                Ok(tuples as f64 * ns as f64 / 1000.0)
            }
            CpuCostModel::Zero => {
                f()?;
                Ok(0.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::pipelined_hash::PipelinedHashJoin;
    use crate::plan::PipelinePlan;
    use tukwila_relation::{DataType, Field, Schema, Tuple, Value};
    use tukwila_source::{DelayModel, DelayedSource, MemSource};

    fn schema(prefix: &str) -> Schema {
        Schema::new(vec![Field::new(format!("{prefix}.k"), DataType::Int)])
    }

    fn tuples(n: i64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(vec![Value::Int(i)])).collect()
    }

    fn join_plan() -> PipelinePlan {
        let mut b = PipelinePlan::builder();
        let join = Box::new(PipelinedHashJoin::new(schema("l"), schema("r"), 0, 0));
        let j = b.add_op(join, &[], None).unwrap();
        b.bind_source(1, j, 0).unwrap();
        b.bind_source(2, j, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn joins_local_sources() {
        let mut plan = join_plan();
        let mut sources: Vec<Box<dyn Source>> = vec![
            Box::new(MemSource::new(1, "l", schema("l"), tuples(100))),
            Box::new(MemSource::new(2, "r", schema("r"), tuples(50))),
        ];
        let driver = SimDriver::new(16, CpuCostModel::Zero);
        let (out, report) = driver.run(&mut plan, &mut sources).unwrap();
        assert_eq!(out.len(), 50);
        assert_eq!(report.tuples_out, 50);
        assert_eq!(report.virtual_us, 0, "zero cpu, local sources");
    }

    #[test]
    fn delayed_sources_advance_clock() {
        let mut plan = join_plan();
        let model = DelayModel::Bandwidth {
            bytes_per_sec: 1e6,
            initial_latency_us: 1000,
        };
        let mut sources: Vec<Box<dyn Source>> = vec![
            Box::new(DelayedSource::new(1, "l", schema("l"), tuples(100), &model)),
            Box::new(DelayedSource::new(2, "r", schema("r"), tuples(100), &model)),
        ];
        let driver = SimDriver::new(16, CpuCostModel::Zero);
        let (out, report) = driver.run(&mut plan, &mut sources).unwrap();
        assert_eq!(out.len(), 100);
        assert!(report.virtual_us >= 1000);
        assert!(report.idle_us > 0);
    }

    #[test]
    fn per_tuple_cost_model_is_deterministic() {
        let mut plan_a = join_plan();
        let mut plan_b = join_plan();
        let mk = || -> Vec<Box<dyn Source>> {
            vec![
                Box::new(MemSource::new(1, "l", schema("l"), tuples(64))),
                Box::new(MemSource::new(2, "r", schema("r"), tuples(64))),
            ]
        };
        let driver = SimDriver::new(8, CpuCostModel::PerTupleNs(1000));
        let (_, ra) = driver.run(&mut plan_a, &mut mk()).unwrap();
        let (_, rb) = driver.run(&mut plan_b, &mut mk()).unwrap();
        assert_eq!(ra.virtual_us, rb.virtual_us);
        assert!(ra.cpu_us > 0);
    }
}
