//! Single-plan execution against sources. (The adaptive, multi-phase
//! driver lives in `tukwila-core`; this one runs the static baselines and
//! the inner loop of tests.)
//!
//! The driver runs in one of two clock modes:
//!
//! * **Virtual** (default): the clock is a local accumulator — CPU costs
//!   and source delays advance it, waiting is free, runs are
//!   deterministic. This is the seed behavior, unchanged.
//! * **Wall** ([`SimDriver::with_clock`] with a
//!   [`tukwila_stats::WallClock`]): the clock reads real elapsed time
//!   (optionally accelerated), so "idle until the next arrival" really
//!   sleeps, and sources backed by concurrent producer threads (the
//!   threaded federation layer) race in real time while this driver
//!   consumes.

use std::sync::Arc;
use std::time::Instant;

use tukwila_relation::{Result, Tuple};
use tukwila_source::{Poll, Source};
use tukwila_stats::trace::SpanKind;
use tukwila_stats::{Clock, TraceSink};

use crate::metrics::ExecReport;
use crate::op::Batch;
use crate::plan::PipelinePlan;

/// Anything the round-robin driver can feed source batches into: a single
/// [`PipelinePlan`], or a [`crate::fragments::FragmentRun`] that routes
/// each batch to the fragment owning its relation and pumps produced
/// batches across exchange boundaries.
pub trait PushTarget {
    /// Push a source batch for `rel_id`; root output lands in `out`.
    fn push_source(&mut self, rel_id: u32, batch: &[Tuple], out: &mut Batch) -> Result<()>;

    /// Signal EOF of source `rel_id`, flushing whatever that closes.
    fn finish_source(&mut self, rel_id: u32, out: &mut Batch) -> Result<()>;

    /// Ship output buffered by the preceding push/finish. The driver
    /// calls this *outside* the charged CPU section, so targets whose
    /// delivery can block (a producer fragment sending into a bounded
    /// exchange queue) park their batches during push and send them
    /// here — backpressure wait must not be billed as CPU.
    fn ship(&mut self) -> Result<()> {
        Ok(())
    }
}

impl PushTarget for PipelinePlan {
    fn push_source(&mut self, rel_id: u32, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        PipelinePlan::push_source(self, rel_id, batch, out)
    }

    fn finish_source(&mut self, rel_id: u32, out: &mut Batch) -> Result<()> {
        PipelinePlan::finish_source(self, rel_id, out)
    }
}

/// How CPU work advances the virtual clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CpuCostModel {
    /// Measure actual wall time of each push (realistic benchmarking).
    Measured,
    /// Charge a fixed cost per input tuple (deterministic tests).
    PerTupleNs(u64),
    /// CPU is free; only source delays advance the clock.
    Zero,
}

/// Clock-mode accounting shared by the batch drivers (`SimDriver` here,
/// `CorrectiveExec` in `tukwila-core`): one timeline, driven either by a
/// virtual accumulator (CPU costs and source delays advance it, waiting
/// is free) or by a shared [`Clock`] (real time is authoritative, idling
/// really waits). Keeping this logic in one place is what guarantees the
/// two drivers agree on wall-clock semantics — the dual-clock
/// equivalence tests depend on that.
pub struct Timeline {
    clock: Option<Arc<dyn Clock>>,
    clock_us: f64,
    cpu_us: f64,
    idle_us: f64,
}

impl Timeline {
    /// A zeroed timeline; `Some(clock)` selects shared-clock mode.
    pub fn new(clock: Option<Arc<dyn Clock>>) -> Timeline {
        Timeline {
            clock,
            clock_us: 0.0,
            cpu_us: 0.0,
            idle_us: 0.0,
        }
    }

    /// Re-read a shared clock (it advances on its own); no-op for the
    /// virtual accumulator. Call at the top of every poll sweep and after
    /// any untracked blocking section.
    pub fn resync(&mut self) {
        if let Some(clock) = &self.clock {
            self.clock_us = self
                .clock_us
                .max(clock.observe(self.clock_us as u64) as f64);
        }
    }

    /// The current timeline instant (µs).
    pub fn now_us(&self) -> u64 {
        self.clock_us as u64
    }

    /// Charge a CPU cost (timeline µs): advances the virtual clock; a
    /// shared clock already advanced on its own while the work ran, so
    /// adding it again would double-count.
    pub fn charge(&mut self, cost_us: f64) {
        if self.clock.is_none() {
            self.clock_us += cost_us;
        }
        self.cpu_us += cost_us;
    }

    /// Charge clock time without CPU time (work modeled as happening off
    /// the query thread, e.g. background re-optimization).
    pub fn charge_background(&mut self, cost_us: f64) {
        if self.clock.is_none() {
            self.clock_us += cost_us;
        }
    }

    /// Wait toward `target_us`, accounting the advance as idle: the
    /// virtual accumulator jumps; a shared clock really waits one bounded
    /// chunk (callers loop — re-poll until the deadline passes or data
    /// shows up earlier).
    pub fn idle_toward(&mut self, target_us: u64) {
        match &self.clock {
            Some(clock) => {
                let before = self.clock_us;
                self.clock_us = self.clock_us.max(clock.sleep_toward(target_us) as f64);
                self.idle_us += self.clock_us - before;
            }
            None => {
                let target = (target_us as f64).max(self.clock_us);
                self.idle_us += target - self.clock_us;
                self.clock_us = target;
            }
        }
    }

    /// Convert a *measured real* duration (µs) into timeline µs, so
    /// `CpuCostModel::Measured` costs land in the same unit as the
    /// timeline (accelerated wall clocks span `scale` timeline µs per
    /// real µs).
    pub fn measured_to_timeline(&self, real_us: f64) -> f64 {
        match &self.clock {
            Some(clock) => clock.scale_to_timeline(real_us),
            None => real_us,
        }
    }

    /// Timeline instant as a float (µs).
    pub fn clock_us(&self) -> f64 {
        self.clock_us
    }

    /// CPU time charged so far (timeline µs).
    pub fn cpu_us(&self) -> f64 {
        self.cpu_us
    }

    /// Idle (waiting) time accumulated so far (timeline µs).
    pub fn idle_us(&self) -> f64 {
        self.idle_us
    }
}

/// Round-robin batch driver.
pub struct SimDriver {
    /// Maximum tuples pulled from a source per poll.
    pub batch_size: usize,
    /// How CPU work is charged to the timeline.
    pub cpu: CpuCostModel,
    /// `Some` switches the driver from the virtual accumulator to this
    /// shared clock: `now` is read from it each sweep and idling really
    /// waits on it. All sources of the run must share the same instance.
    pub clock: Option<Arc<dyn Clock>>,
    /// Adaptivity trace journal: each run brackets itself in a
    /// [`SpanKind::Drive`] span and tallies batches/tuples at the end
    /// (bounded per-run events, never per-tuple). Disabled by default.
    pub trace: TraceSink,
}

impl Default for SimDriver {
    fn default() -> Self {
        SimDriver {
            batch_size: 1024,
            cpu: CpuCostModel::Measured,
            clock: None,
            trace: TraceSink::disabled(),
        }
    }
}

impl SimDriver {
    /// A driver with the given batch size and CPU cost model, on the
    /// virtual clock.
    pub fn new(batch_size: usize, cpu: CpuCostModel) -> SimDriver {
        SimDriver {
            batch_size,
            cpu,
            clock: None,
            trace: TraceSink::disabled(),
        }
    }

    /// Drive the run off `clock` (wall-clock mode when it is a
    /// [`tukwila_stats::WallClock`]) instead of the virtual accumulator.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> SimDriver {
        self.clock = Some(clock);
        self
    }

    /// Journal this driver's runs into `trace`.
    pub fn with_trace(mut self, trace: TraceSink) -> SimDriver {
        self.trace = trace;
        self
    }

    /// Run `plan` to completion over `sources`, returning root output and a
    /// timing report.
    ///
    /// The loop models adaptive scheduling's effect at the granularity we
    /// need: whenever *any* source has data, the CPU works on it; the clock
    /// only idles forward when every unfinished source is pending.
    pub fn run(
        &self,
        plan: &mut PipelinePlan,
        sources: &mut [Box<dyn Source>],
    ) -> Result<(Batch, ExecReport)> {
        self.run_target(plan, sources)
    }

    /// [`SimDriver::run`] generalized over [`PushTarget`]: the same
    /// poll/push/idle loop drives a single pipeline, one fragment of a
    /// threaded fragment plan, or a whole fragmented plan sequentially.
    pub fn run_target(
        &self,
        plan: &mut dyn PushTarget,
        sources: &mut [Box<dyn Source>],
    ) -> Result<(Batch, ExecReport)> {
        let mut refs: Vec<&mut dyn Source> = sources
            .iter_mut()
            .map(|b| &mut **b as &mut dyn Source)
            .collect();
        self.run_target_refs(plan, &mut refs)
    }

    /// [`SimDriver::run_target`] over borrowed sources, so callers can
    /// assemble one poll set from differently-owned collections (the
    /// threaded fragment runner mixes the caller's base-relation sources
    /// with the exchange sources it owns itself).
    pub fn run_target_refs(
        &self,
        plan: &mut dyn PushTarget,
        sources: &mut [&mut dyn Source],
    ) -> Result<(Batch, ExecReport)> {
        let mut out = Batch::new();
        let mut report = ExecReport::default();
        let mut timeline = Timeline::new(self.clock.clone());
        let mut finished = vec![false; sources.len()];
        timeline.resync();
        self.trace
            .record_at(timeline.now_us(), SpanKind::Drive.begin("drive"));

        loop {
            timeline.resync();
            let mut any_ready = false;
            let mut next_ready: Option<u64> = None;
            let mut all_done = true;
            for (i, src) in sources.iter_mut().enumerate() {
                if finished[i] {
                    continue;
                }
                all_done = false;
                match src.poll(timeline.now_us(), self.batch_size) {
                    Poll::Ready(batch) => {
                        any_ready = true;
                        report.batches += 1;
                        let cost = charged_cost(self.cpu, &timeline, batch.len(), || {
                            plan.push_source(src.rel_id(), &batch, &mut out)
                        })?;
                        timeline.charge(cost);
                        // Possibly-blocking delivery happens uncharged;
                        // the next resync reads whatever real time the
                        // backpressure wait consumed.
                        plan.ship()?;
                        timeline.resync();
                    }
                    Poll::Pending { next_ready_us } => {
                        next_ready = Some(match next_ready {
                            Some(n) => n.min(next_ready_us),
                            None => next_ready_us,
                        });
                    }
                    Poll::Eof => {
                        finished[i] = true;
                        let cost = charged_cost(self.cpu, &timeline, 0, || {
                            plan.finish_source(src.rel_id(), &mut out)
                        })?;
                        timeline.charge(cost);
                        plan.ship()?;
                        timeline.resync();
                    }
                }
            }
            if all_done {
                break;
            }
            if !any_ready {
                if let Some(n) = next_ready {
                    timeline.idle_toward(n);
                }
            }
        }

        report.virtual_us = timeline.clock_us() as u64;
        report.cpu_us = timeline.cpu_us() as u64;
        report.idle_us = timeline.idle_us() as u64;
        report.tuples_out = out.len() as u64;
        if self.trace.is_enabled() {
            let now = timeline.now_us();
            self.trace.record_at(
                now,
                tukwila_stats::TraceEvent::Counter {
                    name: "batches".into(),
                    scope: "drive".into(),
                    value: report.batches,
                },
            );
            self.trace.record_at(
                now,
                tukwila_stats::TraceEvent::Counter {
                    name: "tuples_out".into(),
                    scope: "drive".into(),
                    value: report.tuples_out,
                },
            );
            self.trace.record_at(now, SpanKind::Drive.end("drive"));
        }
        Ok((out, report))
    }
}

/// Run `f`, returning the timeline cost (µs) to charge for it.
pub fn charged_cost(
    cpu: CpuCostModel,
    timeline: &Timeline,
    tuples: usize,
    f: impl FnOnce() -> Result<()>,
) -> Result<f64> {
    match cpu {
        CpuCostModel::Measured => {
            let start = Instant::now();
            f()?;
            let real_us = start.elapsed().as_secs_f64() * 1e6;
            Ok(timeline.measured_to_timeline(real_us))
        }
        CpuCostModel::PerTupleNs(ns) => {
            f()?;
            Ok(tuples as f64 * ns as f64 / 1000.0)
        }
        CpuCostModel::Zero => {
            f()?;
            Ok(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::join::pipelined_hash::PipelinedHashJoin;
    use crate::plan::PipelinePlan;
    use tukwila_relation::{DataType, Field, Schema, Tuple, Value};
    use tukwila_source::{DelayModel, DelayedSource, MemSource};

    fn schema(prefix: &str) -> Schema {
        Schema::new(vec![Field::new(format!("{prefix}.k"), DataType::Int)])
    }

    fn tuples(n: i64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(vec![Value::Int(i)])).collect()
    }

    fn join_plan() -> PipelinePlan {
        let mut b = PipelinePlan::builder();
        let join = Box::new(PipelinedHashJoin::new(schema("l"), schema("r"), 0, 0));
        let j = b.add_op(join, &[], None).unwrap();
        b.bind_source(1, j, 0).unwrap();
        b.bind_source(2, j, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn joins_local_sources() {
        let mut plan = join_plan();
        let mut sources: Vec<Box<dyn Source>> = vec![
            Box::new(MemSource::new(1, "l", schema("l"), tuples(100))),
            Box::new(MemSource::new(2, "r", schema("r"), tuples(50))),
        ];
        let driver = SimDriver::new(16, CpuCostModel::Zero);
        let (out, report) = driver.run(&mut plan, &mut sources).unwrap();
        assert_eq!(out.len(), 50);
        assert_eq!(report.tuples_out, 50);
        assert_eq!(report.virtual_us, 0, "zero cpu, local sources");
    }

    #[test]
    fn delayed_sources_advance_clock() {
        let mut plan = join_plan();
        let model = DelayModel::Bandwidth {
            bytes_per_sec: 1e6,
            initial_latency_us: 1000,
        };
        let mut sources: Vec<Box<dyn Source>> = vec![
            Box::new(DelayedSource::new(1, "l", schema("l"), tuples(100), &model)),
            Box::new(DelayedSource::new(2, "r", schema("r"), tuples(100), &model)),
        ];
        let driver = SimDriver::new(16, CpuCostModel::Zero);
        let (out, report) = driver.run(&mut plan, &mut sources).unwrap();
        assert_eq!(out.len(), 100);
        assert!(report.virtual_us >= 1000);
        assert!(report.idle_us > 0);
    }

    #[test]
    fn wall_clock_driver_really_waits_and_matches_virtual_answer() {
        use tukwila_stats::WallClock;
        let model = DelayModel::Bandwidth {
            bytes_per_sec: 2e6,
            initial_latency_us: 20_000, // 20 timeline ms up front
        };
        let mk = || -> Vec<Box<dyn Source>> {
            vec![
                Box::new(DelayedSource::new(1, "l", schema("l"), tuples(100), &model)),
                Box::new(DelayedSource::new(2, "r", schema("r"), tuples(100), &model)),
            ]
        };
        let mut plan_v = join_plan();
        let (out_v, _) = SimDriver::new(16, CpuCostModel::Zero)
            .run(&mut plan_v, &mut mk())
            .unwrap();

        // 100× acceleration: the 20ms initial latency costs ~200µs real.
        let clock = std::sync::Arc::new(WallClock::accelerated(100.0));
        let start = Instant::now();
        let mut plan_w = join_plan();
        let (out_w, report) = SimDriver::new(16, CpuCostModel::Measured)
            .with_clock(clock)
            .run(&mut plan_w, &mut mk())
            .unwrap();
        assert!(
            start.elapsed().as_micros() >= 150,
            "the initial latency must cost real time"
        );
        assert_eq!(out_w.len(), out_v.len(), "same join result in both modes");
        assert!(report.virtual_us >= 20_000, "timeline covers the latency");
        assert!(report.idle_us > 0, "waiting was accounted as idle");
    }

    #[test]
    fn per_tuple_cost_model_is_deterministic() {
        let mut plan_a = join_plan();
        let mut plan_b = join_plan();
        let mk = || -> Vec<Box<dyn Source>> {
            vec![
                Box::new(MemSource::new(1, "l", schema("l"), tuples(64))),
                Box::new(MemSource::new(2, "r", schema("r"), tuples(64))),
            ]
        };
        let driver = SimDriver::new(8, CpuCostModel::PerTupleNs(1000));
        let (_, ra) = driver.run(&mut plan_a, &mut mk()).unwrap();
        let (_, rb) = driver.run(&mut plan_b, &mut mk()).unwrap();
        assert_eq!(ra.virtual_us, rb.virtual_us);
        assert!(ra.cpu_us > 0);
    }
}
