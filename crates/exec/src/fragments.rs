//! Threaded plan fragments: racing parallel subplans over
//! [`queue_pair`](crate::queue::queue_pair()) (the §5 parallel-subplan
//! configuration).
//!
//! A [`FragmentPlan`] is an operator tree split into *pipeline fragments*
//! at **exchange** boundaries. Each fragment is an ordinary
//! [`PipelinePlan`] whose leaves bind either real source relations or
//! exchange streams (identified by synthetic relation ids at
//! [`EXCHANGE_REL_BASE`]); a fragment's root output feeds the consumer
//! fragment's exchange leaf. The same fragment plan executes in both
//! modes of the dual-clock design:
//!
//! * **Sequential** ([`FragmentRun`], [`SimDriver::run_fragments_sequential`]):
//!   all fragments run on the driver thread; a batch produced by one
//!   fragment is pushed into its consumer immediately, so the execution
//!   is byte-for-byte the cascade of the unfragmented plan —
//!   deterministic under a [`tukwila_stats::VirtualClock`] and
//!   seed-compatible.
//! * **Threaded** ([`SimDriver::run_fragments_threaded`]): every producer
//!   fragment runs on its own thread, shipping root output through a
//!   bounded [`queue_pair`](crate::queue::queue_pair()) queue that the
//!   consumer reads as an ordinary [`Source`] ([`ExchangeSource`]). A
//!   CPU-heavy join subtree then genuinely overlaps a slow federated
//!   scan — the driver thread can block on a delivery-bound relation
//!   while another core burns through the build side.
//!
//! ## EOF, shutdown, and panic semantics
//!
//! The threaded mode reuses the lifecycle discipline of the threaded
//! federation layer (`federation::concurrent`):
//!
//! * A producer fragment `finish`es its queue only after all of its own
//!   inputs reached EOF and its pipeline flushed; the consumer sees
//!   [`TryRecv::Closed`] only after
//!   draining every buffered batch — a producer finishing early never
//!   loses in-flight tuples.
//! * If the consumer side fails, dropping its [`ExchangeSource`]s hangs
//!   up the queues; blocked producers error out of their send and exit,
//!   and every thread is joined before the driver returns.
//! * A panicking producer thread also drops its writer, which at the
//!   queue level is indistinguishable from clean EOF. The driver
//!   therefore joins every fragment thread before returning and
//!   re-raises the first panic on the calling thread, so a dying
//!   fragment reads as a failure — never as a silently truncated answer.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use tukwila_relation::{Error, Result, Schema, Tuple};
use tukwila_source::{Poll, Source, SourceDescriptor, SourceProgressView};
use tukwila_stats::trace::SpanKind;
use tukwila_stats::{Clock, TraceSink};

use crate::driver::{charged_cost, CpuCostModel, PushTarget, SimDriver, Timeline};
use crate::metrics::ExecReport;
use crate::op::{Batch, DataBatch, IncOp};
use crate::plan::{NodeObservation, PipelinePlan, SealedState};
use crate::queue::{queue_pair, QueueReader, QueueWriter, TryRecv, TryRecvData};

/// First synthetic relation id used for exchange streams. Real base
/// relations live far below this; the two id spaces never collide.
pub const EXCHANGE_REL_BASE: u32 = 0xF000_0000;

/// Whether a leaf relation id names an exchange stream rather than a real
/// base relation.
pub fn is_exchange(rel_id: u32) -> bool {
    rel_id >= EXCHANGE_REL_BASE
}

/// Tunables of threaded fragment execution.
#[derive(Debug, Clone)]
pub struct FragmentOptions {
    /// Bounded depth (in batches) of each exchange queue. A full queue
    /// blocks the producer fragment (backpressure) until the consumer
    /// catches up.
    pub queue_capacity: usize,
    /// How far ahead (timeline µs) an [`ExchangeSource`] schedules its
    /// next look when its queue is empty. Smaller reacts faster, wakes
    /// more. Also the retry tick of a producer whose exchange send found
    /// the queue full.
    pub poll_tick_us: u64,
    /// Timeline budget for a quiesce: how long
    /// [`ThreadedFragmentRun::quiesce`] waits for every producer to park
    /// at a batch boundary before giving up (the caller then resumes the
    /// producers and abandons the plan switch instead of blocking the
    /// query). Producers park within one poll sweep plus one bounded
    /// clock chunk, so this only ever bites on a wedged source.
    pub quiesce_timeout_us: u64,
    /// Adaptivity trace journal. Producer fragments bracket their
    /// lifetimes in [`SpanKind::Fragment`] spans and tally per-exchange
    /// backpressure; the quiesce protocol journals its park/drain/seal
    /// sub-steps. Disabled (free) by default.
    pub trace: TraceSink,
    /// Core lease this run charges its producer threads against, when the
    /// query runs under a [`tukwila_stats::CoreArbiter`] shared with other
    /// queries. Spawning never blocks on the arbiter — correctness needs
    /// the threads — so the run `try_acquire`s its producer count (taking
    /// whatever is free, possibly zero) and returns those cores when the
    /// threads are joined. The *planning* side of the budget lives in the
    /// optimizer's fragmentation config (`cores`), which callers should
    /// pin to their fair share so over-subscription stays bounded.
    pub lease: Option<tukwila_stats::QueryLease>,
    /// Ship exchange batches as typed columns instead of boxed rows —
    /// producers transpose once at the batch boundary (refused sends
    /// carry the *encoded* batch across retries), and columnar-aware
    /// consumers route the columns straight into vectorized operator
    /// kernels. Logically invisible (answers and decisions are
    /// byte-identical either way, and the quiesce drain always
    /// re-materializes rows losslessly); on by default now that every
    /// hot operator consumes columns natively.
    pub columnar_exchange: bool,
}

impl Default for FragmentOptions {
    fn default() -> Self {
        FragmentOptions {
            queue_capacity: 8,
            poll_tick_us: 200,
            quiesce_timeout_us: 5_000_000,
            trace: TraceSink::disabled(),
            lease: None,
            columnar_exchange: true,
        }
    }
}

/// One pipeline fragment of a [`FragmentPlan`].
pub struct Fragment {
    /// The fragment's operator tree. Leaves bind real source relations
    /// and/or exchange inputs (ids ≥ [`EXCHANGE_REL_BASE`]).
    pub pipeline: PipelinePlan,
    /// The exchange stream this fragment's root output feeds, or `None`
    /// for the root fragment (whose output is the query answer).
    pub output: Option<u32>,
}

impl Fragment {
    /// Real source relations bound by this fragment's leaves.
    pub fn source_rels(&self) -> Vec<u32> {
        self.pipeline
            .leaves()
            .iter()
            .map(|l| l.rel_id)
            .filter(|&r| !is_exchange(r))
            .collect()
    }

    /// Exchange streams this fragment consumes.
    pub fn exchange_inputs(&self) -> Vec<u32> {
        self.pipeline
            .leaves()
            .iter()
            .map(|l| l.rel_id)
            .filter(|&r| is_exchange(r))
            .collect()
    }
}

/// An operator tree split into exchange-connected pipeline fragments.
///
/// Fragments are stored in topological order: every producer precedes its
/// consumer, and the last fragment is the root (its output is the query
/// answer). Built by [`FragmentPlan::new`], validated on construction.
pub struct FragmentPlan {
    fragments: Vec<Fragment>,
}

impl FragmentPlan {
    /// Validate and assemble a fragment plan.
    ///
    /// Requirements: the last fragment (and only it) has `output: None`;
    /// every other fragment outputs a distinct exchange id ≥
    /// [`EXCHANGE_REL_BASE`]; each exchange is consumed by exactly one
    /// *later* fragment; every exchange input has a producer; and each
    /// real source relation is bound by exactly one fragment.
    pub fn new(fragments: Vec<Fragment>) -> Result<FragmentPlan> {
        if fragments.is_empty() {
            return Err(Error::Plan(
                "fragment plan needs at least one fragment".into(),
            ));
        }
        let last = fragments.len() - 1;
        let mut producers: HashMap<u32, usize> = HashMap::new();
        let mut owners: HashMap<u32, usize> = HashMap::new();
        for (i, f) in fragments.iter().enumerate() {
            match f.output {
                None if i != last => {
                    return Err(Error::Plan(format!(
                        "fragment {i} has no output exchange but is not the root"
                    )));
                }
                Some(_) if i == last => {
                    return Err(Error::Plan(
                        "the root fragment must not output an exchange".into(),
                    ));
                }
                Some(ex) => {
                    if !is_exchange(ex) {
                        return Err(Error::Plan(format!(
                            "fragment {i} output {ex} is below EXCHANGE_REL_BASE"
                        )));
                    }
                    if producers.insert(ex, i).is_some() {
                        return Err(Error::Plan(format!("exchange {ex} has two producers")));
                    }
                }
                None => {}
            }
            for rel in f.source_rels() {
                if owners.insert(rel, i).is_some() {
                    return Err(Error::Plan(format!(
                        "relation {rel} is bound by two fragments"
                    )));
                }
            }
        }
        let mut consumed: HashMap<u32, usize> = HashMap::new();
        for (i, f) in fragments.iter().enumerate() {
            for ex in f.exchange_inputs() {
                match producers.get(&ex) {
                    Some(&p) if p < i => {
                        if consumed.insert(ex, i).is_some() {
                            return Err(Error::Plan(format!("exchange {ex} has two consumers")));
                        }
                    }
                    Some(_) => {
                        return Err(Error::Plan(format!(
                            "exchange {ex} consumed before its producer (fragment order)"
                        )));
                    }
                    None => {
                        return Err(Error::Plan(format!("exchange {ex} has no producer")));
                    }
                }
            }
        }
        for (&ex, &p) in &producers {
            if !consumed.contains_key(&ex) {
                return Err(Error::Plan(format!(
                    "exchange {ex} (fragment {p}) has no consumer"
                )));
            }
        }
        Ok(FragmentPlan { fragments })
    }

    /// The fragments, topological order, root last.
    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    /// Number of fragments (1 = unfragmented).
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }

    /// Output schema of the root fragment.
    pub fn root_schema(&self) -> &Schema {
        self.fragments
            .last()
            .expect("validated non-empty")
            .pipeline
            .root_schema()
    }

    /// The fragment index owning real source relation `rel_id`.
    pub fn fragment_of(&self, rel_id: u32) -> Option<usize> {
        self.fragments
            .iter()
            .position(|f| f.source_rels().contains(&rel_id))
    }

    /// Convert into the incremental sequential executor.
    pub fn into_run(self) -> FragmentRun {
        let mut owner = HashMap::new();
        let mut consumer = HashMap::new();
        let mut open_inputs = Vec::with_capacity(self.fragments.len());
        for (i, f) in self.fragments.iter().enumerate() {
            for rel in f.source_rels() {
                owner.insert(rel, i);
            }
            for ex in f.exchange_inputs() {
                consumer.insert(ex, i);
            }
            open_inputs.push(f.pipeline.leaves().len());
        }
        FragmentRun {
            fragments: self.fragments,
            owner,
            consumer,
            open_inputs,
        }
    }
}

/// Sequential, incremental execution of a [`FragmentPlan`]: one thread,
/// direct handoff across exchanges.
///
/// Implements [`PushTarget`], so the ordinary drivers (`SimDriver`, the
/// corrective executor) feed it exactly like a single [`PipelinePlan`]:
/// a pushed batch cascades through its owning fragment, any produced
/// batches are pushed across exchange boundaries immediately, and root
/// output lands in `out`. Because the handoff is immediate, nothing is
/// ever buffered *between* pushes — a mid-stream plan switch (corrective
/// execution) can seal the run at any batch boundary without losing
/// in-flight exchange tuples.
pub struct FragmentRun {
    fragments: Vec<Fragment>,
    /// Real relation → owning fragment.
    owner: HashMap<u32, usize>,
    /// Exchange id → consuming fragment.
    consumer: HashMap<u32, usize>,
    /// Unclosed leaf bindings per fragment.
    open_inputs: Vec<usize>,
}

impl FragmentRun {
    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }

    /// Counter/signature snapshots across every fragment, with node ids
    /// offset so they are unique plan-wide (fragment 0's nodes first).
    pub fn observations(&self) -> Vec<NodeObservation> {
        let mut out = Vec::new();
        let mut offset = 0;
        for f in &self.fragments {
            for mut obs in f.pipeline.observations() {
                obs.node += offset;
                out.push(obs);
            }
            offset += f.pipeline.node_count();
        }
        out
    }

    /// Seal every fragment (end of a suspended phase), extracting each
    /// operator's state structures with plan-wide node ids. State buffered
    /// on an exchange leaf carries the producer subtree's signature, so
    /// cross-phase reuse works across fragment boundaries.
    pub fn seal(self) -> Vec<SealedState> {
        let mut out = Vec::new();
        let mut offset = 0;
        for f in self.fragments {
            let count = f.pipeline.node_count();
            for mut s in f.pipeline.seal() {
                s.node += offset;
                out.push(s);
            }
            offset += count;
        }
        out
    }

    fn fragment_for(&self, rel_id: u32) -> Result<usize> {
        self.owner
            .get(&rel_id)
            .or_else(|| self.consumer.get(&rel_id))
            .copied()
            .ok_or_else(|| Error::Plan(format!("no fragment binds relation {rel_id}")))
    }

    fn push_into(&mut self, f: usize, rel: u32, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        let mut produced = Batch::new();
        self.fragments[f]
            .pipeline
            .push_source(rel, batch, &mut produced)?;
        self.forward(f, produced, out)
    }

    /// Route a fragment's produced batch: root output to `out`, otherwise
    /// across its exchange into the consumer (recursion depth is bounded
    /// by the fragment count — fragments form a DAG toward the root).
    fn forward(&mut self, f: usize, produced: Batch, out: &mut Batch) -> Result<()> {
        if produced.is_empty() {
            return Ok(());
        }
        match self.fragments[f].output {
            None => {
                out.extend(produced);
                Ok(())
            }
            Some(ex) => {
                let c = self.consumer[&ex];
                self.push_into(c, ex, &produced, out)
            }
        }
    }

    fn finish_in(&mut self, f: usize, rel: u32, out: &mut Batch) -> Result<()> {
        let mut produced = Batch::new();
        self.fragments[f]
            .pipeline
            .finish_source(rel, &mut produced)?;
        self.open_inputs[f] -= 1;
        self.forward(f, produced, out)?;
        if self.open_inputs[f] == 0 {
            // Every input of this fragment closed: its pipeline has
            // flushed, so its output stream ends — close the exchange
            // leaf downstream (which may complete the consumer, and so
            // on up to the root).
            if let Some(ex) = self.fragments[f].output {
                let c = self.consumer[&ex];
                self.finish_in(c, ex, out)?;
            }
        }
        Ok(())
    }
}

impl PushTarget for FragmentRun {
    fn push_source(&mut self, rel_id: u32, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        let f = self.fragment_for(rel_id)?;
        self.push_into(f, rel_id, batch, out)
    }

    fn finish_source(&mut self, rel_id: u32, out: &mut Batch) -> Result<()> {
        let f = self.fragment_for(rel_id)?;
        self.finish_in(f, rel_id, out)
    }
}

/// Outcome of a representation-preserving exchange poll
/// ([`ExchangeSource::poll_data`]): like [`Poll`], but `Ready` carries
/// whichever representation the producer shipped, so a columnar-aware
/// consumer can route columns straight into vectorized kernels.
pub enum ExchangePoll {
    /// A batch was queued, in the representation it was shipped.
    Ready(DataBatch),
    /// Producer alive but quiet; look again at `next_ready_us`.
    Pending {
        /// Timeline µs of the next scheduled look.
        next_ready_us: u64,
    },
    /// Producer finished and the queue drained.
    Eof,
}

/// The consumer end of an exchange, adapted to the [`Source`] trait so a
/// consumer fragment's driver loop polls it exactly like a base relation:
/// `Ready` while batches are queued (respecting `max_tuples` via a carry
/// buffer), `Pending` one poll tick ahead while the producer is alive but
/// quiet, `Eof` once the producer finished and the queue drained.
pub struct ExchangeSource {
    ex_id: u32,
    name: String,
    schema: Schema,
    reader: Option<QueueReader>,
    carry: Vec<Tuple>,
    poll_tick_us: u64,
    delivered: u64,
    done: bool,
}

impl ExchangeSource {
    /// Wrap the reader half of an exchange queue.
    pub fn new(ex_id: u32, schema: Schema, reader: QueueReader, poll_tick_us: u64) -> Self {
        ExchangeSource {
            ex_id,
            name: format!("exchange-{}", ex_id - EXCHANGE_REL_BASE),
            schema,
            reader: Some(reader),
            carry: Vec::new(),
            poll_tick_us: poll_tick_us.max(1),
            delivered: 0,
            done: false,
        }
    }

    fn emit(&mut self, mut fresh: Vec<Tuple>, max_tuples: usize) -> Poll {
        let cap = max_tuples.max(1);
        if fresh.len() > cap {
            self.carry = fresh.split_off(cap);
        }
        self.delivered += fresh.len() as u64;
        Poll::Ready(fresh)
    }

    /// The exchange stream this source reads.
    pub fn exchange_id(&self) -> u32 {
        self.ex_id
    }

    /// Representation-preserving poll: columnar batches shipped by the
    /// producer come back intact (one queue batch at a time — the
    /// producer already bounded it to its batch size), row batches honor
    /// `max_tuples` through the carry buffer exactly like
    /// [`Source::poll`]. The row-level `poll` remains the fallback for
    /// drivers that treat this source like any other relation.
    pub fn poll_data(&mut self, now_us: u64, max_tuples: usize) -> ExchangePoll {
        if !self.carry.is_empty() {
            let cap = max_tuples.max(1).min(self.carry.len());
            let rest = self.carry.split_off(cap);
            let head = std::mem::replace(&mut self.carry, rest);
            self.delivered += head.len() as u64;
            return ExchangePoll::Ready(DataBatch::Rows(head));
        }
        if self.done {
            return ExchangePoll::Eof;
        }
        let status = match &self.reader {
            Some(r) => r.try_recv_data(),
            None => TryRecvData::Closed,
        };
        match status {
            TryRecvData::Batch(DataBatch::Columns(c)) => {
                self.delivered += c.selected_rows() as u64;
                ExchangePoll::Ready(DataBatch::Columns(c))
            }
            TryRecvData::Batch(DataBatch::Rows(b)) => match self.emit(b, max_tuples) {
                Poll::Ready(head) => ExchangePoll::Ready(DataBatch::Rows(head)),
                _ => unreachable!("emit always returns Ready"),
            },
            TryRecvData::Empty => ExchangePoll::Pending {
                next_ready_us: now_us + self.poll_tick_us,
            },
            TryRecvData::Closed => {
                self.done = true;
                self.reader = None;
                ExchangePoll::Eof
            }
        }
    }

    /// Take everything currently buffered on the consumer side of this
    /// exchange: the carry tail plus every batch still queued. Used by
    /// the quiesce protocol's drain step, after the producer stopped
    /// (parked or exited) — nothing races the reads, so `Empty`/`Closed`
    /// really mean the stream is drained.
    pub fn drain_buffered(&mut self) -> Vec<Tuple> {
        let mut out = std::mem::take(&mut self.carry);
        loop {
            let status = match &self.reader {
                Some(r) => r.try_recv_status(),
                None => TryRecv::Closed,
            };
            match status {
                TryRecv::Batch(b) => out.extend(b),
                TryRecv::Empty => break,
                TryRecv::Closed => {
                    self.done = true;
                    self.reader = None;
                    break;
                }
            }
        }
        out
    }
}

impl Source for ExchangeSource {
    fn rel_id(&self) -> u32 {
        self.ex_id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, now_us: u64, max_tuples: usize) -> Poll {
        if !self.carry.is_empty() {
            let cap = max_tuples.max(1).min(self.carry.len());
            let rest = self.carry.split_off(cap);
            let head = std::mem::replace(&mut self.carry, rest);
            self.delivered += head.len() as u64;
            return Poll::Ready(head);
        }
        if self.done {
            return Poll::Eof;
        }
        let status = match &self.reader {
            Some(r) => r.try_recv_status(),
            None => TryRecv::Closed,
        };
        match status {
            TryRecv::Batch(b) => self.emit(b, max_tuples),
            TryRecv::Empty => Poll::Pending {
                next_ready_us: now_us + self.poll_tick_us,
            },
            TryRecv::Closed => {
                self.done = true;
                self.reader = None;
                Poll::Eof
            }
        }
    }

    fn progress(&self) -> SourceProgressView {
        SourceProgressView {
            tuples_read: self.delivered,
            fraction_read: None,
            eof: self.done,
        }
    }

    fn descriptor(&self) -> SourceDescriptor {
        SourceDescriptor {
            rel_id: self.ex_id,
            name: self.name.clone(),
            complete: true,
            key_range: None,
            declared_rate_tuples_per_sec: None,
        }
    }
}

// ---------------------------------------------------------------------
// The quiesce protocol
// ---------------------------------------------------------------------
//
// State machine of one producer fragment thread (controller view):
//
// ```text
//            request_quiesce            seal
//   running ───────────────▶ quiescing ──────▶ drained/sealed
//      ▲                        │  producer parks at the next
//      │        resume          │  batch boundary and reports
//      └────────────────────────┘  its high-water marks
// ```
//
// A producer only ever stops *between* batches: the quiesce check sits at
// the top of its driver loop, and a send into a full exchange queue is a
// `try_send` retry loop that yields to a pending quiesce with the refused
// batch carried into the parked state — so no tuple is ever stranded
// inside a blocking call, and no batch is half-processed when the
// controller takes the pipelines back.

/// What a producer fragment's quiesce latch currently asks of it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QuiesceState {
    /// Produce normally.
    Running,
    /// Park at the next batch boundary.
    QuiesceRequested,
    /// Parked; waiting to be resumed or sealed.
    Parked,
    /// Keep producing (a quiesce was abandoned).
    Resume,
    /// Stop at the next boundary and yield the pipeline back.
    Seal,
}

/// Shared latch between one producer thread and the controller.
#[derive(Debug)]
struct QuiesceShared {
    state: Mutex<QuiesceState>,
    cv: Condvar,
    /// Producer ran to natural completion (fragment finished, queue
    /// closed); it will never park, but its yield is ready to join.
    finished: AtomicBool,
    /// CPU µs (timeline) this producer has charged so far, refreshed at
    /// every batch boundary — the controller's warmup `unit_us`
    /// calibration needs whole-plan measured CPU, not just its own.
    cpu_us: AtomicU64,
}

impl QuiesceShared {
    fn new() -> QuiesceShared {
        QuiesceShared {
            state: Mutex::new(QuiesceState::Running),
            cv: Condvar::new(),
            finished: AtomicBool::new(false),
            cpu_us: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, QuiesceState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Whether the producer should stop what it is doing at the next
    /// opportunity (a quiesce or seal is pending).
    fn wants_stop(&self) -> bool {
        matches!(
            *self.lock(),
            QuiesceState::QuiesceRequested | QuiesceState::Seal
        )
    }
}

/// Live progress one producer fragment publishes for each real source it
/// owns: readable by the controller while the producer runs (the
/// corrective monitor's view of relations it does not poll itself) and
/// after it parked (the protocol's high-water marks).
#[derive(Debug)]
pub struct FragmentSourceProgress {
    rel_id: u32,
    consumed: AtomicU64,
    eof: AtomicBool,
    /// Bit pattern of the source's `fraction_read` (`f64::NAN` = unknown).
    fraction_bits: AtomicU64,
    /// Latest arrival schedule the source published, if self-profiling.
    schedule: Mutex<Option<tukwila_stats::ArrivalSchedule>>,
}

impl FragmentSourceProgress {
    fn new(rel_id: u32) -> FragmentSourceProgress {
        FragmentSourceProgress {
            rel_id,
            consumed: AtomicU64::new(0),
            eof: AtomicBool::new(false),
            fraction_bits: AtomicU64::new(f64::NAN.to_bits()),
            schedule: Mutex::new(None),
        }
    }

    /// The base relation this progress entry tracks.
    pub fn rel_id(&self) -> u32 {
        self.rel_id
    }

    /// Tuples the producer has pushed into its pipeline from this source
    /// — the high-water mark of the quiesce protocol.
    pub fn consumed(&self) -> u64 {
        self.consumed.load(Ordering::Acquire)
    }

    /// Whether the source reached end of stream.
    pub fn eof(&self) -> bool {
        self.eof.load(Ordering::Acquire)
    }

    /// The source's latest self-reported read fraction, if it knows one.
    pub fn fraction_read(&self) -> Option<f64> {
        let f = f64::from_bits(self.fraction_bits.load(Ordering::Acquire));
        if f.is_nan() {
            None
        } else {
            Some(f)
        }
    }

    /// The source's latest observed arrival schedule, if self-profiling.
    pub fn schedule(&self) -> Option<tukwila_stats::ArrivalSchedule> {
        self.schedule
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .clone()
    }

    fn refresh(&self, newly_consumed: u64, src: &dyn Source) {
        if newly_consumed > 0 {
            self.consumed.fetch_add(newly_consumed, Ordering::AcqRel);
        }
        let p = src.progress();
        if p.eof {
            self.eof.store(true, Ordering::Release);
        }
        self.fraction_bits.store(
            p.fraction_read.unwrap_or(f64::NAN).to_bits(),
            Ordering::Release,
        );
        if let Some(s) = src.observed_schedule() {
            *self.schedule.lock().unwrap_or_else(|p| p.into_inner()) = Some(s);
        }
    }
}

/// Controller-side handle to one threaded producer fragment: request a
/// park, observe that it happened, read the producer's high-water marks,
/// and resume it. (Sealing goes through [`ThreadedFragmentRun::seal`],
/// which needs every producer at once to reassemble the plan.)
#[derive(Debug)]
pub struct QuiesceHandle {
    shared: Arc<QuiesceShared>,
    progress: Vec<Arc<FragmentSourceProgress>>,
}

impl QuiesceHandle {
    /// Ask the producer to park at its next batch boundary. Idempotent;
    /// a no-op once the producer finished or a seal is pending.
    pub fn request_quiesce(&self) {
        let mut s = self.shared.lock();
        if *s == QuiesceState::Running || *s == QuiesceState::Resume {
            *s = QuiesceState::QuiesceRequested;
            self.shared.cv.notify_all();
        }
    }

    /// Whether the producer is parked at a batch boundary — or has run to
    /// natural completion, which is just as quiescent.
    pub fn is_stopped(&self) -> bool {
        self.shared.finished.load(Ordering::Acquire) || *self.shared.lock() == QuiesceState::Parked
    }

    /// Abandon a quiesce: wake a parked (or about-to-park) producer and
    /// let it keep producing into the same exchange queue.
    pub fn resume(&self) {
        let mut s = self.shared.lock();
        if matches!(*s, QuiesceState::QuiesceRequested | QuiesceState::Parked) {
            *s = QuiesceState::Resume;
            self.shared.cv.notify_all();
        }
    }

    /// Per-source high-water marks (consumed tuples, EOF, fraction,
    /// latest schedule) this producer reports, in its source order.
    pub fn high_water_marks(&self) -> &[Arc<FragmentSourceProgress>] {
        &self.progress
    }

    /// CPU µs (timeline) this producer has charged so far (live).
    pub fn cpu_us(&self) -> u64 {
        self.shared.cpu_us.load(Ordering::Acquire)
    }

    fn request_seal(&self) {
        let mut s = self.shared.lock();
        *s = QuiesceState::Seal;
        self.shared.cv.notify_all();
    }
}

/// A source owned by one producer fragment thread.
enum ProducerSource {
    /// A caller-provided base-relation source, tagged with the slot it
    /// came from so it can be recovered after a seal.
    Real {
        slot: usize,
        src: Box<dyn Source>,
        progress: Arc<FragmentSourceProgress>,
    },
    /// The consumer end of an upstream exchange (multi-level chains: a
    /// producer feeding another producer).
    Exchange(ExchangeSource),
}

impl ProducerSource {
    fn as_source_mut(&mut self) -> &mut dyn Source {
        match self {
            ProducerSource::Real { src, .. } => src.as_mut(),
            ProducerSource::Exchange(ex) => ex,
        }
    }
}

/// What a producer thread hands back when it stops — by natural
/// completion, a seal, or an error. The pipeline always comes back, so
/// sealing can register its state no matter how the thread ended.
struct ProducerYield {
    frag_index: usize,
    pipeline: PipelinePlan,
    sources: Vec<ProducerSource>,
    report: ExecReport,
    /// Output produced but not yet shipped into the exchange queue (a
    /// quiesce arrived while the queue was full).
    pending: Batch,
    /// A producer-side failure (consumer hangups are recorded as `None`:
    /// benign teardown).
    error: Option<Error>,
}

/// What the producer does after a batch boundary's quiesce check.
#[derive(PartialEq)]
enum Directive {
    Continue,
    Seal,
}

/// The quiesce check at a producer's batch boundary: fast path when
/// running, otherwise park (pausing the sources' own delivery
/// accounting), wait to be resumed or sealed, and resume the sources on
/// the way out.
fn quiesce_point(
    shared: &QuiesceShared,
    sources: &mut [ProducerSource],
    clock: &Arc<dyn Clock>,
) -> Directive {
    {
        let s = shared.lock();
        match *s {
            QuiesceState::Running => return Directive::Continue,
            QuiesceState::Seal => return Directive::Seal,
            _ => {}
        }
    }
    // Parking: tell self-accounting sources (the threaded federation
    // adapter) that the coming silence is ours, not theirs — their races
    // keep running, only the backpressure/stall bookkeeping pauses.
    for s in sources.iter_mut() {
        s.as_source_mut().quiesce_delivery();
    }
    let directive = {
        let mut s = shared.lock();
        loop {
            match *s {
                QuiesceState::QuiesceRequested => {
                    *s = QuiesceState::Parked;
                    shared.cv.notify_all();
                }
                QuiesceState::Parked => {
                    s = shared.cv.wait(s).unwrap_or_else(|p| p.into_inner());
                }
                QuiesceState::Resume | QuiesceState::Running => {
                    *s = QuiesceState::Running;
                    break Directive::Continue;
                }
                QuiesceState::Seal => break Directive::Seal,
            }
        }
    };
    if directive == Directive::Continue {
        let now = clock.now_us();
        for s in sources.iter_mut() {
            s.as_source_mut().resume_delivery(now);
        }
    }
    // On Seal the sources stay paused: they are about to be recovered and
    // re-spawned into the next phase, whose producer resumes them.
    directive
}

/// The quiesce-aware producer driver loop: the standard poll/push/idle
/// sweep over this fragment's sources, with a batch-boundary quiesce
/// check and non-blocking exchange shipping. Always returns its
/// [`ProducerYield`] — the pipeline survives every exit path.
#[allow(clippy::too_many_arguments)]
fn run_producer(
    frag_index: usize,
    ex_id: u32,
    mut pipeline: PipelinePlan,
    mut sources: Vec<ProducerSource>,
    mut writer: QueueWriter,
    shared: Arc<QuiesceShared>,
    clock: Arc<dyn Clock>,
    batch_size: usize,
    cpu: CpuCostModel,
    retry_tick_us: u64,
    trace: TraceSink,
) -> ProducerYield {
    let mut timeline = Timeline::new(Some(clock.clone()));
    let mut report = ExecReport::default();
    let mut finished = vec![false; sources.len()];
    let mut pending: Batch = Batch::new();
    // Output already encoded for the wire (columns in columnar mode). A
    // refused send hands the encoded batch back, so retry loops pay the
    // transpose at most once per batch instead of once per attempt.
    let mut staged: Option<DataBatch> = None;
    let mut error: Option<Error> = None;
    let mut completed = false;
    let mut depth_hw: u64 = 0;
    let frag_name = format!("frag-{frag_index}");
    trace.record_at(clock.now_us(), SpanKind::Fragment.begin(frag_name.clone()));

    // Sources recovered from a sealed previous phase arrive still paused;
    // fresh sources treat this as a no-op.
    {
        let now = clock.now_us();
        for s in sources.iter_mut() {
            s.as_source_mut().resume_delivery(now);
        }
    }

    'run: loop {
        // Batch boundary: the only place this thread parks. Refresh the
        // shared CPU figure here too, so the controller's calibration
        // sees producer work as it happens.
        shared
            .cpu_us
            .store(timeline.cpu_us() as u64, Ordering::Release);
        match quiesce_point(&shared, &mut sources, &clock) {
            Directive::Continue => {}
            Directive::Seal => break 'run,
        }
        // Ship parked output, uncharged (backpressure wait is not CPU)
        // and non-blocking (a full queue defers to the next boundary, so
        // a pending quiesce is honored with the batch carried along).
        // Encoding (the columnar transpose) happens exactly once here;
        // the refused batch retries already encoded.
        if staged.is_none() && !pending.is_empty() {
            staged = Some(writer.encode(std::mem::take(&mut pending)));
        }
        if let Some(batch) = staged.take() {
            match writer.try_send_data(batch) {
                Ok(None) => {
                    depth_hw = depth_hw.max(writer.depth() as u64);
                    timeline.resync();
                }
                Ok(Some(back)) => {
                    staged = Some(back);
                    if !shared.wants_stop() {
                        let now = clock.now_us();
                        clock.sleep_toward(now.saturating_add(retry_tick_us.max(1)));
                    }
                    continue 'run;
                }
                Err(e) => {
                    // Consumer hangup is benign teardown; anything else
                    // is a real producer failure.
                    if !crate::queue::is_hangup(&e) {
                        error = Some(e);
                    }
                    break 'run;
                }
            }
        }
        // One poll sweep, same discipline as `SimDriver::run_target`.
        timeline.resync();
        let mut any_ready = false;
        let mut next_ready: Option<u64> = None;
        let mut all_done = true;
        for i in 0..sources.len() {
            if finished[i] {
                continue;
            }
            all_done = false;
            // Upstream exchanges (multi-level producer chains) poll
            // representation-preserving, so columnar batches shipped by
            // the producer below ride into this pipeline's vectorized
            // push without a row detour.
            let polled = match &mut sources[i] {
                ProducerSource::Exchange(ex) => ex.poll_data(timeline.now_us(), batch_size),
                ProducerSource::Real { src, .. } => match src.poll(timeline.now_us(), batch_size) {
                    Poll::Ready(b) => ExchangePoll::Ready(DataBatch::Rows(b)),
                    Poll::Pending { next_ready_us } => ExchangePoll::Pending { next_ready_us },
                    Poll::Eof => ExchangePoll::Eof,
                },
            };
            match polled {
                ExchangePoll::Ready(batch) => {
                    any_ready = true;
                    report.batches += 1;
                    let n = batch.len();
                    let rel = sources[i].as_source_mut().rel_id();
                    let pushed = charged_cost(cpu, &timeline, n, || match &batch {
                        DataBatch::Rows(b) => pipeline.push_source(rel, b, &mut pending),
                        DataBatch::Columns(c) => pipeline.push_source_columns(rel, c, &mut pending),
                    });
                    match pushed {
                        Ok(cost) => timeline.charge(cost),
                        Err(e) => {
                            error = Some(e);
                            break 'run;
                        }
                    }
                    if let ProducerSource::Real { src, progress, .. } = &sources[i] {
                        progress.refresh(n as u64, src.as_ref());
                    }
                }
                ExchangePoll::Pending { next_ready_us } => {
                    next_ready = Some(match next_ready {
                        Some(n) => n.min(next_ready_us),
                        None => next_ready_us,
                    });
                }
                ExchangePoll::Eof => {
                    finished[i] = true;
                    let flushed = charged_cost(cpu, &timeline, 0, || {
                        let rel = sources[i].as_source_mut().rel_id();
                        pipeline.finish_source(rel, &mut pending)
                    });
                    match flushed {
                        Ok(cost) => timeline.charge(cost),
                        Err(e) => {
                            error = Some(e);
                            break 'run;
                        }
                    }
                    if let ProducerSource::Real { src, progress, .. } = &sources[i] {
                        progress.refresh(0, src.as_ref());
                    }
                }
            }
        }
        if all_done {
            completed = true;
            break 'run;
        }
        if !any_ready {
            if let Some(n) = next_ready {
                // One bounded chunk; the loop re-checks the quiesce latch
                // before sleeping again.
                timeline.idle_toward(n);
            }
        }
    }

    if completed {
        // Flush the tail and close the queue: the consumer drains every
        // buffered batch before reading Closed.
        loop {
            if staged.is_none() {
                if pending.is_empty() {
                    break;
                }
                staged = Some(writer.encode(std::mem::take(&mut pending)));
            }
            match writer.try_send_data(staged.take().expect("just filled")) {
                Ok(None) => depth_hw = depth_hw.max(writer.depth() as u64),
                Ok(Some(back)) => {
                    staged = Some(back);
                    if shared.wants_stop() {
                        break;
                    }
                    let now = clock.now_us();
                    clock.sleep_toward(now.saturating_add(retry_tick_us.max(1)));
                }
                Err(e) => {
                    if !crate::queue::is_hangup(&e) {
                        error = Some(e);
                    }
                    break;
                }
            }
        }
        if staged.is_none() && pending.is_empty() {
            let _ = writer.finish(&mut Batch::new());
        }
    }
    // Whatever is still staged re-materializes as rows *ahead of* any
    // unencoded output, so the quiesce drain sees exactly the row stream
    // the consumer would have — loss-free and order-preserving.
    if let Some(s) = staged.take() {
        let mut rows = s.into_rows();
        rows.append(&mut pending);
        pending = rows;
    }
    // Dropping the writer (on seal/error paths) closes the queue while
    // keeping buffered batches readable — the seal's drain step collects
    // them, so nothing in flight is lost.
    shared
        .cpu_us
        .store(timeline.cpu_us() as u64, Ordering::Release);
    shared.finished.store(true, Ordering::Release);
    shared.cv.notify_all();

    report.cpu_us = timeline.cpu_us() as u64;
    report.idle_us = timeline.idle_us() as u64;
    report.virtual_us = timeline.clock_us() as u64;
    report.max_queue_depth = depth_hw;
    let blocked = writer.blocked_sends();
    if blocked > 0 {
        report.blocked_by_exchange = vec![(ex_id, blocked)];
    }
    if trace.is_enabled() {
        let now = clock.now_us();
        let ex_name = format!("exchange-{}", ex_id - EXCHANGE_REL_BASE);
        trace.record_at(
            now,
            tukwila_stats::TraceEvent::Counter {
                name: "batches".into(),
                scope: frag_name.clone(),
                value: report.batches,
            },
        );
        if blocked > 0 {
            trace.record_at(
                now,
                tukwila_stats::TraceEvent::Counter {
                    name: "blocked_sends".into(),
                    scope: ex_name,
                    value: blocked,
                },
            );
        }
        trace.record_at(now, SpanKind::Fragment.end(frag_name));
    }
    ProducerYield {
        frag_index,
        pipeline,
        sources,
        report,
        pending,
        error,
    }
}

/// Everything recovered by sealing a [`ThreadedFragmentRun`]: the state
/// structures of every fragment (plan-wide node ids, same numbering as
/// [`FragmentRun::seal`] on the equivalent sequential run), the caller's
/// sources, and the producers' accounting.
pub struct SealedOutcome {
    /// Sealed state structures across every fragment, root last.
    pub states: Vec<SealedState>,
    /// Recovered base-relation sources, tagged with the slot each held in
    /// the source vector handed to [`ThreadedFragmentRun::spawn`].
    pub sources: Vec<SlottedSource>,
    /// CPU µs (timeline) the producer threads charged.
    pub producer_cpu_us: u64,
    /// Source batches the producer threads consumed.
    pub producer_batches: u64,
    /// High-water mark of exchange-queue depth (batches) across every
    /// producer, sampled after each successful send.
    pub max_queue_depth: u64,
    /// Per-exchange backpressure, ascending exchange id: every exchange
    /// whose producer found the queue full at least once.
    pub blocked_by_exchange: Vec<(u32, u64)>,
}

/// One producer fragment tracked by the controller.
struct ProducerSlot {
    handle: Option<JoinHandle<ProducerYield>>,
    quiesce: QuiesceHandle,
}

/// A base-relation source tagged with the slot it held in the source
/// vector handed to [`ThreadedFragmentRun::spawn`] (so the caller can put
/// recovered sources back where they came from).
pub type SlottedSource = (usize, Box<dyn Source>);

/// Threaded execution of a [`FragmentPlan`] as an explicit state machine
/// the corrective executor can own across plan switches:
///
/// * **spawn** — every producer fragment starts its quiesce-aware driver
///   loop on its own thread; the root fragment's pipeline and
///   [`ExchangeSource`]s stay with the caller, who polls them like any
///   other sources ([`ThreadedFragmentRun::root_split`]).
/// * **poll** — the controller reads live observations
///   ([`ThreadedFragmentRun::observations`]: counters are shared atomics)
///   and per-source high-water marks
///   ([`ThreadedFragmentRun::quiesce_handles`]) while producers run.
/// * **quiesce** — ask every producer to park at a batch boundary and
///   wait (clock-driven timeout); on timeout the caller **resumes** and
///   abandons whatever needed the quiesce.
/// * **seal** — join every thread (re-raising panics, surfacing producer
///   errors), drain every exchange's in-flight tuples into the
///   reassembled sequential plan (so nothing buffered between fragments
///   is lost), seal all pipelines, and hand back the caller's sources.
///
/// Dropping a run that was never sealed requests a seal, joins every
/// thread, and discards the yields — no leaked threads on any path.
pub struct ThreadedFragmentRun {
    producers: Vec<ProducerSlot>,
    root_pipeline: PipelinePlan,
    /// Exchange streams the root fragment consumes; the controller polls
    /// these next to its own base-relation sources.
    root_exchanges: Vec<ExchangeSource>,
    /// Output exchange of every fragment (topological order, root last).
    outputs: Vec<Option<u32>>,
    /// Observation templates with plan-wide node ids; counters are live.
    obs_templates: Vec<NodeObservation>,
    clock: Arc<dyn Clock>,
    opts: FragmentOptions,
    /// Cores actually granted by `opts.lease` for the producer threads
    /// (zero without a lease, or when the arbiter had nothing free).
    /// Returned in `join_all`, the single teardown point.
    lease_granted: usize,
    joined: bool,
}

impl ThreadedFragmentRun {
    /// Spawn the producer fragments of `plan` on their own threads.
    ///
    /// Consumes every source in `sources`; those bound by producer
    /// fragments move into the threads (to be recovered by
    /// [`ThreadedFragmentRun::seal`]), while the root fragment's sources
    /// are returned, tagged with their original slots, for the caller to
    /// poll alongside [`ThreadedFragmentRun::root_split`]'s exchanges.
    pub fn spawn(
        plan: FragmentPlan,
        sources: Vec<Box<dyn Source>>,
        clock: Arc<dyn Clock>,
        batch_size: usize,
        cpu: CpuCostModel,
        opts: &FragmentOptions,
    ) -> Result<(ThreadedFragmentRun, Vec<SlottedSource>)> {
        if !clock.is_wall() {
            return Err(Error::Plan(
                "threaded fragments need a wall clock; use run_fragments_sequential \
                 for virtual-clock runs"
                    .into(),
            ));
        }
        let nfrag = plan.fragment_count();

        // Observation templates with plan-wide node ids, captured before
        // the pipelines move into their threads. Counters are Arc-shared
        // atomics, so these stay live.
        let mut obs_templates = Vec::new();
        let mut offset = 0;
        for f in plan.fragments() {
            for mut obs in f.pipeline.observations() {
                obs.node += offset;
                obs_templates.push(obs);
            }
            offset += f.pipeline.node_count();
        }
        let outputs: Vec<Option<u32>> = plan.fragments().iter().map(|f| f.output).collect();

        // Partition the sources among the fragments that bind them.
        let mut per_fragment: Vec<Vec<ProducerSource>> = (0..nfrag).map(|_| Vec::new()).collect();
        let mut root_sources: Vec<SlottedSource> = Vec::new();
        for (slot, src) in sources.into_iter().enumerate() {
            let f = plan.fragment_of(src.rel_id()).ok_or_else(|| {
                Error::Plan(format!(
                    "no fragment binds source relation {}",
                    src.rel_id()
                ))
            })?;
            if f == nfrag - 1 {
                root_sources.push((slot, src));
            } else {
                let progress = Arc::new(FragmentSourceProgress::new(src.rel_id()));
                per_fragment[f].push(ProducerSource::Real {
                    slot,
                    src,
                    progress,
                });
            }
        }

        // Exchange → consuming fragment index, computed before the
        // fragment vec is consumed (a producer's exchange may feed
        // another producer, not only the root — multi-level chains).
        let mut consumer_of: HashMap<u32, usize> = HashMap::new();
        for (i, f) in plan.fragments.iter().enumerate() {
            for ex in f.exchange_inputs() {
                consumer_of.insert(ex, i);
            }
        }

        let mut fragments = plan.fragments;
        let root = fragments.pop().expect("validated non-empty");
        let mut root_exchanges: Vec<ExchangeSource> = Vec::new();
        let mut producers: Vec<ProducerSlot> = Vec::with_capacity(nfrag - 1);
        for (idx, frag) in fragments.into_iter().enumerate() {
            let ex = frag.output.expect("non-root fragments output an exchange");
            let (mut writer, reader) =
                queue_pair(frag.pipeline.root_schema().clone(), opts.queue_capacity);
            writer.set_columnar(opts.columnar_exchange);
            let exchange_source = ExchangeSource::new(
                ex,
                frag.pipeline.root_schema().clone(),
                reader,
                opts.poll_tick_us,
            );
            let consumer_idx = consumer_of[&ex]; // validated by FragmentPlan::new
            if consumer_idx == nfrag - 1 {
                root_exchanges.push(exchange_source);
            } else {
                per_fragment[consumer_idx].push(ProducerSource::Exchange(exchange_source));
            }

            let frag_sources = std::mem::take(&mut per_fragment[idx]);
            let progress: Vec<Arc<FragmentSourceProgress>> = frag_sources
                .iter()
                .filter_map(|s| match s {
                    ProducerSource::Real { progress, .. } => Some(progress.clone()),
                    ProducerSource::Exchange(_) => None,
                })
                .collect();
            let shared = Arc::new(QuiesceShared::new());
            let thread_shared = shared.clone();
            let thread_clock = clock.clone();
            let thread_trace = opts.trace.clone();
            let (bs, cm, tick) = (batch_size, cpu, opts.poll_tick_us);
            let pipeline = frag.pipeline;
            let spawned = std::thread::Builder::new()
                .name(format!("fragment-{idx}"))
                .spawn(move || {
                    run_producer(
                        idx,
                        ex,
                        pipeline,
                        frag_sources,
                        writer,
                        thread_shared,
                        thread_clock,
                        bs,
                        cm,
                        tick,
                        thread_trace,
                    )
                });
            match spawned {
                Ok(handle) => producers.push(ProducerSlot {
                    handle: Some(handle),
                    quiesce: QuiesceHandle { shared, progress },
                }),
                Err(e) => {
                    // Thread-resource exhaustion mid-construction: seal
                    // and join the producers already running (dropping
                    // the undistributed exchange sources hangs up their
                    // queues, so blocked sends error out promptly).
                    for p in &producers {
                        p.quiesce.request_seal();
                    }
                    drop(per_fragment);
                    drop(root_exchanges);
                    for p in &mut producers {
                        if let Some(h) = p.handle.take() {
                            let _ = h.join();
                        }
                    }
                    return Err(Error::Exec(format!("spawning fragment {idx} failed: {e}")));
                }
            }
        }

        // Charge the producer threads against the query's core lease only
        // once every spawn succeeded (the error path above has nothing to
        // return). Non-blocking: a zero grant means the fleet is saturated
        // and these threads time-share — the planner bounded their count
        // via the fragmentation config's core budget, so this is pressure
        // accounting, not a correctness gate.
        let lease_granted = opts
            .lease
            .as_ref()
            .map_or(0, |lease| lease.try_acquire(producers.len()));

        Ok((
            ThreadedFragmentRun {
                producers,
                root_pipeline: root.pipeline,
                root_exchanges,
                outputs,
                obs_templates,
                clock,
                opts: opts.clone(),
                lease_granted,
                joined: false,
            },
            root_sources,
        ))
    }

    /// Number of producer fragments running on threads.
    pub fn producer_count(&self) -> usize {
        self.producers.len()
    }

    /// Total fragment count (producers plus the root).
    pub fn fragment_count(&self) -> usize {
        self.outputs.len()
    }

    /// The root fragment's pipeline and the exchange sources it consumes,
    /// split-borrowed so the caller's poll sweep can push exchange
    /// batches into the pipeline it owns alongside its own sources.
    pub fn root_split(&mut self) -> (&mut PipelinePlan, &mut [ExchangeSource]) {
        (&mut self.root_pipeline, &mut self.root_exchanges)
    }

    /// Per-producer quiesce handles (park / observe / high-water marks /
    /// resume), in fragment order.
    pub fn quiesce_handles(&self) -> impl Iterator<Item = &QuiesceHandle> {
        self.producers.iter().map(|p| &p.quiesce)
    }

    /// Counter/signature snapshots across every fragment with plan-wide
    /// node ids — the same numbering [`FragmentRun::observations`] uses.
    /// Counters are live shared atomics: the monitor reads fragments it
    /// does not own while their producer threads run.
    pub fn observations(&self) -> Vec<NodeObservation> {
        self.obs_templates.clone()
    }

    /// Whether every producer has parked or finished.
    pub fn producers_stopped(&self) -> bool {
        self.producers.iter().all(|p| p.quiesce.is_stopped())
    }

    /// CPU µs (timeline) charged so far across every producer thread,
    /// read live from the batch-boundary snapshots. The corrective
    /// monitor adds this to its own timeline when calibrating `unit_us`,
    /// so the measured side covers the same work the cost-unit side does.
    pub fn producer_cpu_us(&self) -> u64 {
        self.producers.iter().map(|p| p.quiesce.cpu_us()).sum()
    }

    /// Ask every producer to park at its next batch boundary and wait for
    /// it to happen, up to the configured quiesce timeout (timeline µs,
    /// waited on the shared clock). Returns whether every producer is
    /// quiescent; on `false` the caller should [`ThreadedFragmentRun::
    /// resume`] and abandon the plan switch rather than stall the query.
    pub fn quiesce(&mut self) -> bool {
        self.opts
            .trace
            .record_at(self.clock.now_us(), SpanKind::Park.begin("park"));
        for p in &self.producers {
            p.quiesce.request_quiesce();
        }
        let deadline = self
            .clock
            .now_us()
            .saturating_add(self.opts.quiesce_timeout_us);
        let clock = self.clock.clone();
        let producers = &self.producers;
        let parked = tukwila_stats::clock::wait_until(clock.as_ref(), deadline, || {
            producers.iter().all(|p| p.quiesce.is_stopped())
        });
        self.opts
            .trace
            .record_at(self.clock.now_us(), SpanKind::Park.end("park"));
        parked
    }

    /// Abandon a quiesce: wake every parked producer and continue the
    /// phase unchanged.
    pub fn resume(&mut self) {
        for p in &self.producers {
            p.quiesce.resume();
        }
    }

    /// End the run: join every producer thread (re-raising the first
    /// panic; surfacing the first real producer error), drain every
    /// exchange's in-flight tuples — consumer-side carry, queued batches,
    /// and producer-side unshipped output — into the reassembled
    /// sequential plan (root output lands in `out`), seal every pipeline,
    /// and recover the caller's sources.
    ///
    /// Call after [`ThreadedFragmentRun::quiesce`] for a mid-stream plan
    /// switch, or at natural completion (every producer finished and the
    /// root ran dry) for the end-of-phase seal; both paths are loss-free.
    pub fn seal(mut self, out: &mut Batch) -> Result<SealedOutcome> {
        let (mut yields, panic_payload) = self.join_all();
        if let Some(payload) = panic_payload {
            eprintln!("fragment producer thread panicked");
            std::panic::resume_unwind(payload);
        }
        if let Some(e) = yields.iter_mut().find_map(|y| y.error.take()) {
            return Err(e);
        }

        // Collect every exchange's leftovers before reassembly: the
        // consumer side (carry + still-queued batches) in stream order,
        // then the producer's unshipped output.
        let trace = self.opts.trace.clone();
        trace.record_at(self.clock.now_us(), SpanKind::Drain.begin("drain"));
        let mut leftovers: HashMap<u32, Vec<Tuple>> = HashMap::new();
        for ex in &mut self.root_exchanges {
            leftovers.insert(ex.exchange_id(), ex.drain_buffered());
        }
        for y in &mut yields {
            for s in &mut y.sources {
                if let ProducerSource::Exchange(ex) = s {
                    leftovers.insert(ex.exchange_id(), ex.drain_buffered());
                }
            }
        }
        for y in &mut yields {
            if let Some(ex) = self.outputs[y.frag_index] {
                leftovers
                    .entry(ex)
                    .or_default()
                    .extend(std::mem::take(&mut y.pending));
            }
        }

        // Reassemble the fragments in topological order and push the
        // leftovers across their exchanges: the sequential FragmentRun
        // forwards in memory, so drained tuples cascade straight through
        // consumers (root output to `out`) with nothing re-queued.
        let mut producer_cpu_us = 0;
        let mut producer_batches = 0;
        let mut max_queue_depth = 0;
        let mut blocked_by_exchange: Vec<(u32, u64)> = Vec::new();
        let mut recovered: Vec<SlottedSource> = Vec::new();
        let mut fragments: Vec<Fragment> = Vec::with_capacity(self.outputs.len());
        for y in yields {
            producer_cpu_us += y.report.cpu_us;
            producer_batches += y.report.batches;
            max_queue_depth = max_queue_depth.max(y.report.max_queue_depth);
            blocked_by_exchange.extend(y.report.blocked_by_exchange.iter().copied());
            for s in y.sources {
                if let ProducerSource::Real { slot, src, .. } = s {
                    recovered.push((slot, src));
                }
            }
            fragments.push(Fragment {
                pipeline: y.pipeline,
                output: self.outputs[y.frag_index],
            });
        }
        fragments.push(Fragment {
            pipeline: std::mem::replace(&mut self.root_pipeline, empty_pipeline()),
            output: None,
        });
        let mut run = FragmentPlan::new(fragments)?.into_run();
        for ex in self.outputs.iter().flatten() {
            if let Some(tuples) = leftovers.remove(ex) {
                if !tuples.is_empty() {
                    run.push_source(*ex, &tuples, out)?;
                }
            }
        }
        trace.record_at(self.clock.now_us(), SpanKind::Drain.end("drain"));
        trace.record_at(self.clock.now_us(), SpanKind::Seal.begin("seal"));
        let states = run.seal();
        trace.record_at(self.clock.now_us(), SpanKind::Seal.end("seal"));
        recovered.sort_by_key(|(slot, _)| *slot);
        blocked_by_exchange.sort_by_key(|(id, _)| *id);
        Ok(SealedOutcome {
            states,
            sources: recovered,
            producer_cpu_us,
            producer_batches,
            max_queue_depth,
            blocked_by_exchange,
        })
    }

    /// Request a seal on every producer and join the threads. Yields come
    /// back sorted by fragment index; the first panic payload (if any) is
    /// returned instead of being re-raised so `Drop` can swallow it.
    fn join_all(&mut self) -> (Vec<ProducerYield>, Option<Box<dyn std::any::Any + Send>>) {
        self.joined = true;
        for p in &self.producers {
            p.quiesce.request_seal();
        }
        let mut yields = Vec::with_capacity(self.producers.len());
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
        for p in &mut self.producers {
            if let Some(h) = p.handle.take() {
                match h.join() {
                    Ok(y) => yields.push(y),
                    Err(payload) => {
                        if panic_payload.is_none() {
                            panic_payload = Some(payload);
                        }
                    }
                }
            }
        }
        yields.sort_by_key(|y| y.frag_index);
        if let Some(lease) = &self.opts.lease {
            lease.release(std::mem::take(&mut self.lease_granted));
        }
        (yields, panic_payload)
    }
}

impl Drop for ThreadedFragmentRun {
    fn drop(&mut self) {
        if !self.joined {
            // An abandoned run (error elsewhere, test teardown) must not
            // leak producer threads. Dropping the root's exchange readers
            // first errors any send still blocked on a full queue.
            self.root_exchanges.clear();
            let (_, panic_payload) = self.join_all();
            // A producer panic is the root cause even when the consumer
            // side failed first — re-raise it rather than bury it, unless
            // this drop is itself running during an unwind (a second
            // panic would abort the process).
            if let Some(payload) = panic_payload {
                if std::thread::panicking() {
                    eprintln!("fragment producer thread panicked (suppressed during unwind)");
                } else {
                    eprintln!("fragment producer thread panicked");
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

/// A minimal placeholder pipeline used to move the real root pipeline out
/// of a [`ThreadedFragmentRun`] during `seal` (the run still needs a
/// valid value for its own `Drop`).
fn empty_pipeline() -> PipelinePlan {
    let mut b = PipelinePlan::builder();
    let schema = Schema::empty();
    let op = Box::new(crate::project::ProjectOp::columns(&[], &schema));
    let id = b.add_op(op, &[None], None).expect("placeholder op");
    b.bind_source(u32::MAX, id, 0).expect("placeholder bind");
    b.build().expect("placeholder pipeline")
}

impl SimDriver {
    /// Execute a fragmented plan, dispatching on the driver's clock:
    /// threaded when a wall clock drives the run, sequential otherwise
    /// (the virtual clock is single-threaded by construction — producer
    /// naps would teleport the shared timeline).
    pub fn run_fragments(
        &self,
        plan: FragmentPlan,
        sources: Vec<Box<dyn Source>>,
        opts: &FragmentOptions,
    ) -> Result<(Batch, ExecReport)> {
        match &self.clock {
            Some(c) if c.is_wall() => self.run_fragments_threaded(plan, sources, opts),
            _ => self.run_fragments_sequential(plan, sources),
        }
    }

    /// Sequential execution of a fragmented plan: the standard driver loop
    /// over [`FragmentRun`]. Identical semantics (and, under the virtual
    /// clock, identical timing) to running the unfragmented plan.
    pub fn run_fragments_sequential(
        &self,
        plan: FragmentPlan,
        mut sources: Vec<Box<dyn Source>>,
    ) -> Result<(Batch, ExecReport)> {
        let mut run = plan.into_run();
        self.run_target(&mut run, &mut sources)
    }

    /// Threaded execution of a fragmented plan: every producer fragment
    /// runs its quiesce-aware driver loop on its own thread (a
    /// [`ThreadedFragmentRun`] driven straight to completion), shipping
    /// root output through a bounded exchange queue; the root fragment
    /// runs on the calling thread over its own sources plus the
    /// [`ExchangeSource`]s.
    ///
    /// Every fragment thread is joined before this returns; a producer
    /// panic is re-raised here (never read as EOF), and a producer error
    /// supersedes the root's (possibly truncated) result.
    pub fn run_fragments_threaded(
        &self,
        plan: FragmentPlan,
        sources: Vec<Box<dyn Source>>,
        opts: &FragmentOptions,
    ) -> Result<(Batch, ExecReport)> {
        let clock: Arc<dyn Clock> = match &self.clock {
            Some(c) if c.is_wall() => c.clone(),
            _ => {
                return Err(Error::Plan(
                    "threaded fragments need a wall clock; use run_fragments_sequential \
                     for virtual-clock runs"
                        .into(),
                ))
            }
        };
        // The driver's own sink covers runs whose caller configured
        // tracing on the driver but not on the fragment options.
        let mut opts = opts.clone();
        if !opts.trace.is_enabled() && self.trace.is_enabled() {
            opts.trace = self.trace.clone();
        }
        let (mut run, mut root_sources) = ThreadedFragmentRun::spawn(
            plan,
            sources,
            clock.clone(),
            self.batch_size,
            self.cpu,
            &opts,
        )?;

        // Root fragment on this thread, over its base relations plus the
        // exchange streams.
        let root_result = {
            let (pipeline, exchanges) = run.root_split();
            let mut refs: Vec<&mut dyn Source> = Vec::new();
            for (_, s) in root_sources.iter_mut() {
                refs.push(s.as_mut());
            }
            for ex in exchanges.iter_mut() {
                refs.push(ex);
            }
            self.run_target_refs(pipeline, &mut refs)
        };

        match root_result {
            Ok((mut out, mut report)) => {
                // Natural completion: the queues are already drained, so
                // the seal only joins threads and collects accounting.
                let mut sink = Batch::new();
                let outcome = run.seal(&mut sink)?;
                out.extend(sink);
                report.cpu_us += outcome.producer_cpu_us;
                report.tuples_out = out.len() as u64;
                report.max_queue_depth = outcome.max_queue_depth;
                report.blocked_by_exchange = outcome.blocked_by_exchange.clone();
                Ok((out, report))
            }
            Err(e) => {
                // Teardown: the run's Drop seals and joins every producer
                // (swallowing their errors — the root's failure wins, as
                // the sequential path's would).
                drop(run);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::CpuCostModel;
    use crate::join::pipelined_hash::PipelinedHashJoin;
    use tukwila_relation::{DataType, Field, Value};
    use tukwila_source::{DelayModel, DelayedSource, MemSource};
    use tukwila_stats::WallClock;

    fn schema(p: &str) -> Schema {
        Schema::new(vec![Field::new(format!("{p}.k"), DataType::Int)])
    }

    fn tuples(n: i64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(vec![Value::Int(i)])).collect()
    }

    /// (a ⋈ b) in a producer fragment, (exchange ⋈ c) in the root.
    fn two_fragment_plan() -> FragmentPlan {
        let ex = EXCHANGE_REL_BASE;
        let mut pb = PipelinePlan::builder();
        let j1 = Box::new(PipelinedHashJoin::new(schema("a"), schema("b"), 0, 0));
        let j1_schema = j1.schema().clone();
        let n1 = pb.add_op(j1, &[], None).unwrap();
        pb.bind_source(1, n1, 0).unwrap();
        pb.bind_source(2, n1, 1).unwrap();
        let producer = Fragment {
            pipeline: pb.build().unwrap(),
            output: Some(ex),
        };

        let mut rb = PipelinePlan::builder();
        let j2 = Box::new(PipelinedHashJoin::new(j1_schema, schema("c"), 0, 0));
        let n2 = rb.add_op(j2, &[], None).unwrap();
        rb.bind_source(ex, n2, 0).unwrap();
        rb.bind_source(3, n2, 1).unwrap();
        let root = Fragment {
            pipeline: rb.build().unwrap(),
            output: None,
        };
        FragmentPlan::new(vec![producer, root]).unwrap()
    }

    fn single_plan() -> PipelinePlan {
        let mut b = PipelinePlan::builder();
        let j1 = Box::new(PipelinedHashJoin::new(schema("a"), schema("b"), 0, 0));
        let j1_schema = j1.schema().clone();
        let n1 = b.add_op(j1, &[], None).unwrap();
        let j2 = Box::new(PipelinedHashJoin::new(j1_schema, schema("c"), 0, 0));
        let n2 = b.add_op(j2, &[Some(n1)], None).unwrap();
        b.bind_source(1, n1, 0).unwrap();
        b.bind_source(2, n1, 1).unwrap();
        b.bind_source(3, n2, 1).unwrap();
        b.build().unwrap()
    }

    fn mem_sources() -> Vec<Box<dyn Source>> {
        vec![
            Box::new(MemSource::new(1, "a", schema("a"), tuples(80))),
            Box::new(MemSource::new(2, "b", schema("b"), tuples(60))),
            Box::new(MemSource::new(3, "c", schema("c"), tuples(40))),
        ]
    }

    fn keys(batch: &Batch) -> Vec<i64> {
        let mut k: Vec<i64> = batch.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        k.sort_unstable();
        k
    }

    #[test]
    fn sequential_fragments_match_single_plan() {
        let driver = SimDriver::new(16, CpuCostModel::Zero);
        let (single_out, _) = driver.run(&mut single_plan(), &mut mem_sources()).unwrap();
        let (frag_out, report) = driver
            .run_fragments_sequential(two_fragment_plan(), mem_sources())
            .unwrap();
        assert_eq!(keys(&frag_out), keys(&single_out));
        assert_eq!(frag_out.len(), 40, "a⋈b⋈c over prefixes of 0..n");
        assert_eq!(report.tuples_out, 40);
    }

    #[test]
    fn threaded_fragments_match_single_plan() {
        let clock = Arc::new(WallClock::accelerated(100.0));
        let driver = SimDriver::new(16, CpuCostModel::Measured).with_clock(clock);
        let (single_out, _) = SimDriver::new(16, CpuCostModel::Zero)
            .run(&mut single_plan(), &mut mem_sources())
            .unwrap();
        let (frag_out, _) = driver
            .run_fragments(
                two_fragment_plan(),
                mem_sources(),
                &FragmentOptions::default(),
            )
            .unwrap();
        assert_eq!(keys(&frag_out), keys(&single_out));
    }

    #[test]
    fn threaded_fragments_charge_and_return_their_core_lease() {
        let arbiter = tukwila_stats::CoreArbiter::new(4);
        let lease = arbiter.lease();
        let clock = Arc::new(WallClock::accelerated(100.0));
        let driver = SimDriver::new(16, CpuCostModel::Measured).with_clock(clock);
        let opts = FragmentOptions {
            lease: Some(lease.clone()),
            ..Default::default()
        };
        let (out, _) = driver
            .run_fragments(two_fragment_plan(), mem_sources(), &opts)
            .unwrap();
        assert_eq!(out.len(), 40);
        // The run's one producer thread was charged while live and
        // returned at seal — nothing is still held afterwards.
        assert_eq!(lease.held(), 0, "seal returned the granted cores");
        assert_eq!(arbiter.granted(), 0);
        // A saturated arbiter grants nothing, and the run still works:
        // the lease is pressure accounting, never a correctness gate.
        let greedy = arbiter.lease();
        assert_eq!(greedy.try_acquire(4), 4);
        let (out2, _) = driver
            .run_fragments(two_fragment_plan(), mem_sources(), &opts)
            .unwrap();
        assert_eq!(out2.len(), 40);
        assert_eq!(lease.held(), 0);
        assert_eq!(arbiter.granted(), 4, "only the greedy lease holds cores");
    }

    #[test]
    fn threaded_fragments_with_delayed_sources_lose_nothing() {
        let clock = Arc::new(WallClock::accelerated(500.0));
        let driver = SimDriver::new(32, CpuCostModel::Measured).with_clock(clock);
        let model = DelayModel::Bandwidth {
            bytes_per_sec: 1e6,
            initial_latency_us: 5_000,
        };
        let sources: Vec<Box<dyn Source>> = vec![
            Box::new(DelayedSource::new(1, "a", schema("a"), tuples(200), &model)),
            Box::new(DelayedSource::new(2, "b", schema("b"), tuples(200), &model)),
            Box::new(DelayedSource::new(3, "c", schema("c"), tuples(200), &model)),
        ];
        let (out, report) = driver
            .run_fragments_threaded(two_fragment_plan(), sources, &FragmentOptions::default())
            .unwrap();
        assert_eq!(keys(&out), (0..200).collect::<Vec<_>>());
        assert_eq!(report.tuples_out, 200);
    }

    #[test]
    fn plan_validation_rejects_malformed_shapes() {
        // Producer without a consumer.
        let mut pb = PipelinePlan::builder();
        let j = Box::new(PipelinedHashJoin::new(schema("a"), schema("b"), 0, 0));
        let n = pb.add_op(j, &[], None).unwrap();
        pb.bind_source(1, n, 0).unwrap();
        pb.bind_source(2, n, 1).unwrap();
        let orphan = Fragment {
            pipeline: pb.build().unwrap(),
            output: Some(EXCHANGE_REL_BASE),
        };
        let mut rb = PipelinePlan::builder();
        let j2 = Box::new(PipelinedHashJoin::new(schema("a"), schema("c"), 0, 0));
        let n2 = rb.add_op(j2, &[], None).unwrap();
        rb.bind_source(4, n2, 0).unwrap();
        rb.bind_source(3, n2, 1).unwrap();
        let root = Fragment {
            pipeline: rb.build().unwrap(),
            output: None,
        };
        assert!(FragmentPlan::new(vec![orphan, root]).is_err());

        // Root in the wrong position.
        let plan = two_fragment_plan();
        let mut frags: Vec<Fragment> = plan.fragments.into_iter().collect();
        frags.swap(0, 1);
        assert!(FragmentPlan::new(frags).is_err());
    }

    #[test]
    fn exchange_source_respects_max_tuples_and_eof() {
        let (mut writer, reader) = queue_pair(schema("x"), 4);
        let mut ex = ExchangeSource::new(EXCHANGE_REL_BASE, schema("x"), reader, 100);
        assert!(matches!(
            ex.poll(0, 8),
            Poll::Pending { next_ready_us: 100 }
        ));
        writer.send(tuples(25)).unwrap();
        let mut got = Vec::new();
        loop {
            match ex.poll(0, 10) {
                Poll::Ready(b) => {
                    assert!(b.len() <= 10, "Ready respects max_tuples");
                    got.extend(b);
                }
                Poll::Pending { .. } => {
                    writer.finish(&mut Batch::new()).unwrap();
                }
                Poll::Eof => break,
            }
        }
        assert_eq!(got.len(), 25);
        assert!(ex.progress().eof);
    }

    #[test]
    fn quiesce_parks_resumes_and_completes() {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(200.0));
        let model = DelayModel::Bandwidth {
            bytes_per_sec: 1e6,
            initial_latency_us: 2_000,
        };
        let sources: Vec<Box<dyn Source>> = vec![
            Box::new(DelayedSource::new(1, "a", schema("a"), tuples(200), &model)),
            Box::new(DelayedSource::new(2, "b", schema("b"), tuples(200), &model)),
            Box::new(DelayedSource::new(3, "c", schema("c"), tuples(200), &model)),
        ];
        let (mut run, mut root_sources) = ThreadedFragmentRun::spawn(
            two_fragment_plan(),
            sources,
            clock.clone(),
            32,
            CpuCostModel::Measured,
            &FragmentOptions::default(),
        )
        .unwrap();
        assert_eq!(run.producer_count(), 1);
        assert_eq!(run.fragment_count(), 2);
        // Quiesce mid-stream: the producer parks at a batch boundary.
        assert!(run.quiesce(), "producer must park within the budget");
        assert!(run.producers_stopped());
        // Abandon the quiesce; the producer keeps racing.
        run.resume();
        let driver = SimDriver::new(32, CpuCostModel::Measured).with_clock(clock);
        let (out, _) = {
            let (pipeline, exchanges) = run.root_split();
            let mut refs: Vec<&mut dyn Source> = Vec::new();
            for (_, s) in root_sources.iter_mut() {
                refs.push(s.as_mut());
            }
            for ex in exchanges.iter_mut() {
                refs.push(ex);
            }
            driver.run_target_refs(pipeline, &mut refs).unwrap()
        };
        assert_eq!(keys(&out), (0..200).collect::<Vec<_>>());
        let mut sink = Batch::new();
        let outcome = run.seal(&mut sink).unwrap();
        assert!(sink.is_empty(), "nothing left in flight at completion");
        // The producer's sources (a, b) come back tagged with their slots.
        let slots: Vec<usize> = outcome.sources.iter().map(|(s, _)| *s).collect();
        assert_eq!(slots, vec![0, 1]);
        assert!(outcome.producer_batches > 0);
    }

    #[test]
    fn mid_stream_seal_recovers_sources_without_loss() {
        let clock: Arc<dyn Clock> = Arc::new(WallClock::accelerated(200.0));
        let model = DelayModel::Bandwidth {
            bytes_per_sec: 2e5,
            initial_latency_us: 1_000,
        };
        let sources: Vec<Box<dyn Source>> = vec![
            Box::new(DelayedSource::new(1, "a", schema("a"), tuples(300), &model)),
            Box::new(DelayedSource::new(2, "b", schema("b"), tuples(300), &model)),
            Box::new(DelayedSource::new(3, "c", schema("c"), tuples(300), &model)),
        ];
        let (mut run, _root_sources) = ThreadedFragmentRun::spawn(
            two_fragment_plan(),
            sources,
            clock.clone(),
            16,
            CpuCostModel::Measured,
            &FragmentOptions::default(),
        )
        .unwrap();
        // Let the producer make some progress, then quiesce and seal
        // while its sources are mid-stream.
        let handle = run.quiesce_handles().next().unwrap();
        let progress = handle.high_water_marks().to_vec();
        while progress.iter().all(|p| p.consumed() == 0) {
            let now = clock.now_us();
            clock.sleep_toward(now + 5_000);
        }
        assert!(run.quiesce(), "mid-stream quiesce must succeed");
        let consumed_at_seal: Vec<u64> = progress.iter().map(|p| p.consumed()).collect();
        let mut sink = Batch::new();
        let outcome = run.seal(&mut sink).unwrap();
        assert!(
            !outcome.states.is_empty(),
            "mid-stream seal must extract join state"
        );
        // Loss-freedom at the source level: what the producer consumed
        // plus what remains in the recovered source is exactly the
        // relation — nothing dropped, nothing re-read.
        for ((slot, mut src), consumed) in outcome.sources.into_iter().zip(consumed_at_seal) {
            let mut remaining = 0u64;
            loop {
                match src.poll(clock.now_us(), 1024) {
                    Poll::Ready(b) => remaining += b.len() as u64,
                    Poll::Pending { next_ready_us } => {
                        clock.sleep_toward(next_ready_us);
                    }
                    Poll::Eof => break,
                }
            }
            assert_eq!(
                consumed + remaining,
                300,
                "slot {slot}: consumed {consumed} + remaining {remaining} must cover the relation"
            );
        }
    }

    #[test]
    #[should_panic(expected = "fragment exploded")]
    fn producer_panic_is_reraised_not_read_as_eof() {
        struct Exploding {
            schema: Schema,
            sent: i64,
        }
        impl Source for Exploding {
            fn rel_id(&self) -> u32 {
                1
            }
            fn name(&self) -> &str {
                "exploding"
            }
            fn schema(&self) -> &Schema {
                &self.schema
            }
            fn poll(&mut self, _now_us: u64, _max: usize) -> Poll {
                if self.sent >= 5 {
                    panic!("fragment exploded");
                }
                self.sent += 1;
                Poll::Ready(vec![Tuple::new(vec![Value::Int(self.sent - 1)])])
            }
            fn progress(&self) -> SourceProgressView {
                SourceProgressView {
                    tuples_read: self.sent as u64,
                    fraction_read: None,
                    eof: false,
                }
            }
        }
        let clock = Arc::new(WallClock::accelerated(100.0));
        let driver = SimDriver::new(16, CpuCostModel::Measured).with_clock(clock);
        let mut sources = mem_sources();
        sources[0] = Box::new(Exploding {
            schema: schema("a"),
            sent: 0,
        });
        let _ = driver.run_fragments_threaded(
            two_fragment_plan(),
            sources,
            &FragmentOptions::default(),
        );
    }
}
