//! Threaded plan fragments: racing parallel subplans over
//! [`queue_pair`](crate::queue::queue_pair()) (the §5 parallel-subplan
//! configuration).
//!
//! A [`FragmentPlan`] is an operator tree split into *pipeline fragments*
//! at **exchange** boundaries. Each fragment is an ordinary
//! [`PipelinePlan`] whose leaves bind either real source relations or
//! exchange streams (identified by synthetic relation ids at
//! [`EXCHANGE_REL_BASE`]); a fragment's root output feeds the consumer
//! fragment's exchange leaf. The same fragment plan executes in both
//! modes of the dual-clock design:
//!
//! * **Sequential** ([`FragmentRun`], [`SimDriver::run_fragments_sequential`]):
//!   all fragments run on the driver thread; a batch produced by one
//!   fragment is pushed into its consumer immediately, so the execution
//!   is byte-for-byte the cascade of the unfragmented plan —
//!   deterministic under a [`tukwila_stats::VirtualClock`] and
//!   seed-compatible.
//! * **Threaded** ([`SimDriver::run_fragments_threaded`]): every producer
//!   fragment runs on its own thread, shipping root output through a
//!   bounded [`queue_pair`](crate::queue::queue_pair()) queue that the
//!   consumer reads as an ordinary [`Source`] ([`ExchangeSource`]). A
//!   CPU-heavy join subtree then genuinely overlaps a slow federated
//!   scan — the driver thread can block on a delivery-bound relation
//!   while another core burns through the build side.
//!
//! ## EOF, shutdown, and panic semantics
//!
//! The threaded mode reuses the lifecycle discipline of the threaded
//! federation layer (`federation::concurrent`):
//!
//! * A producer fragment `finish`es its queue only after all of its own
//!   inputs reached EOF and its pipeline flushed; the consumer sees
//!   [`TryRecv::Closed`] only after
//!   draining every buffered batch — a producer finishing early never
//!   loses in-flight tuples.
//! * If the consumer side fails, dropping its [`ExchangeSource`]s hangs
//!   up the queues; blocked producers error out of their send and exit,
//!   and every thread is joined before the driver returns.
//! * A panicking producer thread also drops its writer, which at the
//!   queue level is indistinguishable from clean EOF. The driver
//!   therefore joins every fragment thread before returning and
//!   re-raises the first panic on the calling thread, so a dying
//!   fragment reads as a failure — never as a silently truncated answer.

use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

use tukwila_relation::{Error, Result, Schema, Tuple};
use tukwila_source::{Poll, Source, SourceDescriptor, SourceProgressView};
use tukwila_stats::Clock;

use crate::driver::{PushTarget, SimDriver};
use crate::metrics::ExecReport;
use crate::op::{Batch, IncOp};
use crate::plan::{NodeObservation, PipelinePlan, SealedState};
use crate::queue::{queue_pair, QueueReader, QueueWriter, TryRecv};

/// First synthetic relation id used for exchange streams. Real base
/// relations live far below this; the two id spaces never collide.
pub const EXCHANGE_REL_BASE: u32 = 0xF000_0000;

/// Whether a leaf relation id names an exchange stream rather than a real
/// base relation.
pub fn is_exchange(rel_id: u32) -> bool {
    rel_id >= EXCHANGE_REL_BASE
}

/// Tunables of threaded fragment execution.
#[derive(Debug, Clone)]
pub struct FragmentOptions {
    /// Bounded depth (in batches) of each exchange queue. A full queue
    /// blocks the producer fragment (backpressure) until the consumer
    /// catches up.
    pub queue_capacity: usize,
    /// How far ahead (timeline µs) an [`ExchangeSource`] schedules its
    /// next look when its queue is empty. Smaller reacts faster, wakes
    /// more.
    pub poll_tick_us: u64,
}

impl Default for FragmentOptions {
    fn default() -> Self {
        FragmentOptions {
            queue_capacity: 8,
            poll_tick_us: 200,
        }
    }
}

/// One pipeline fragment of a [`FragmentPlan`].
pub struct Fragment {
    /// The fragment's operator tree. Leaves bind real source relations
    /// and/or exchange inputs (ids ≥ [`EXCHANGE_REL_BASE`]).
    pub pipeline: PipelinePlan,
    /// The exchange stream this fragment's root output feeds, or `None`
    /// for the root fragment (whose output is the query answer).
    pub output: Option<u32>,
}

impl Fragment {
    /// Real source relations bound by this fragment's leaves.
    pub fn source_rels(&self) -> Vec<u32> {
        self.pipeline
            .leaves()
            .iter()
            .map(|l| l.rel_id)
            .filter(|&r| !is_exchange(r))
            .collect()
    }

    /// Exchange streams this fragment consumes.
    pub fn exchange_inputs(&self) -> Vec<u32> {
        self.pipeline
            .leaves()
            .iter()
            .map(|l| l.rel_id)
            .filter(|&r| is_exchange(r))
            .collect()
    }
}

/// An operator tree split into exchange-connected pipeline fragments.
///
/// Fragments are stored in topological order: every producer precedes its
/// consumer, and the last fragment is the root (its output is the query
/// answer). Built by [`FragmentPlan::new`], validated on construction.
pub struct FragmentPlan {
    fragments: Vec<Fragment>,
}

impl FragmentPlan {
    /// Validate and assemble a fragment plan.
    ///
    /// Requirements: the last fragment (and only it) has `output: None`;
    /// every other fragment outputs a distinct exchange id ≥
    /// [`EXCHANGE_REL_BASE`]; each exchange is consumed by exactly one
    /// *later* fragment; every exchange input has a producer; and each
    /// real source relation is bound by exactly one fragment.
    pub fn new(fragments: Vec<Fragment>) -> Result<FragmentPlan> {
        if fragments.is_empty() {
            return Err(Error::Plan(
                "fragment plan needs at least one fragment".into(),
            ));
        }
        let last = fragments.len() - 1;
        let mut producers: HashMap<u32, usize> = HashMap::new();
        let mut owners: HashMap<u32, usize> = HashMap::new();
        for (i, f) in fragments.iter().enumerate() {
            match f.output {
                None if i != last => {
                    return Err(Error::Plan(format!(
                        "fragment {i} has no output exchange but is not the root"
                    )));
                }
                Some(_) if i == last => {
                    return Err(Error::Plan(
                        "the root fragment must not output an exchange".into(),
                    ));
                }
                Some(ex) => {
                    if !is_exchange(ex) {
                        return Err(Error::Plan(format!(
                            "fragment {i} output {ex} is below EXCHANGE_REL_BASE"
                        )));
                    }
                    if producers.insert(ex, i).is_some() {
                        return Err(Error::Plan(format!("exchange {ex} has two producers")));
                    }
                }
                None => {}
            }
            for rel in f.source_rels() {
                if owners.insert(rel, i).is_some() {
                    return Err(Error::Plan(format!(
                        "relation {rel} is bound by two fragments"
                    )));
                }
            }
        }
        let mut consumed: HashMap<u32, usize> = HashMap::new();
        for (i, f) in fragments.iter().enumerate() {
            for ex in f.exchange_inputs() {
                match producers.get(&ex) {
                    Some(&p) if p < i => {
                        if consumed.insert(ex, i).is_some() {
                            return Err(Error::Plan(format!("exchange {ex} has two consumers")));
                        }
                    }
                    Some(_) => {
                        return Err(Error::Plan(format!(
                            "exchange {ex} consumed before its producer (fragment order)"
                        )));
                    }
                    None => {
                        return Err(Error::Plan(format!("exchange {ex} has no producer")));
                    }
                }
            }
        }
        for (&ex, &p) in &producers {
            if !consumed.contains_key(&ex) {
                return Err(Error::Plan(format!(
                    "exchange {ex} (fragment {p}) has no consumer"
                )));
            }
        }
        Ok(FragmentPlan { fragments })
    }

    /// The fragments, topological order, root last.
    pub fn fragments(&self) -> &[Fragment] {
        &self.fragments
    }

    /// Number of fragments (1 = unfragmented).
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }

    /// Output schema of the root fragment.
    pub fn root_schema(&self) -> &Schema {
        self.fragments
            .last()
            .expect("validated non-empty")
            .pipeline
            .root_schema()
    }

    /// The fragment index owning real source relation `rel_id`.
    pub fn fragment_of(&self, rel_id: u32) -> Option<usize> {
        self.fragments
            .iter()
            .position(|f| f.source_rels().contains(&rel_id))
    }

    /// Convert into the incremental sequential executor.
    pub fn into_run(self) -> FragmentRun {
        let mut owner = HashMap::new();
        let mut consumer = HashMap::new();
        let mut open_inputs = Vec::with_capacity(self.fragments.len());
        for (i, f) in self.fragments.iter().enumerate() {
            for rel in f.source_rels() {
                owner.insert(rel, i);
            }
            for ex in f.exchange_inputs() {
                consumer.insert(ex, i);
            }
            open_inputs.push(f.pipeline.leaves().len());
        }
        FragmentRun {
            fragments: self.fragments,
            owner,
            consumer,
            open_inputs,
        }
    }
}

/// Sequential, incremental execution of a [`FragmentPlan`]: one thread,
/// direct handoff across exchanges.
///
/// Implements [`PushTarget`], so the ordinary drivers (`SimDriver`, the
/// corrective executor) feed it exactly like a single [`PipelinePlan`]:
/// a pushed batch cascades through its owning fragment, any produced
/// batches are pushed across exchange boundaries immediately, and root
/// output lands in `out`. Because the handoff is immediate, nothing is
/// ever buffered *between* pushes — a mid-stream plan switch (corrective
/// execution) can seal the run at any batch boundary without losing
/// in-flight exchange tuples.
pub struct FragmentRun {
    fragments: Vec<Fragment>,
    /// Real relation → owning fragment.
    owner: HashMap<u32, usize>,
    /// Exchange id → consuming fragment.
    consumer: HashMap<u32, usize>,
    /// Unclosed leaf bindings per fragment.
    open_inputs: Vec<usize>,
}

impl FragmentRun {
    /// Number of fragments.
    pub fn fragment_count(&self) -> usize {
        self.fragments.len()
    }

    /// Counter/signature snapshots across every fragment, with node ids
    /// offset so they are unique plan-wide (fragment 0's nodes first).
    pub fn observations(&self) -> Vec<NodeObservation> {
        let mut out = Vec::new();
        let mut offset = 0;
        for f in &self.fragments {
            for mut obs in f.pipeline.observations() {
                obs.node += offset;
                out.push(obs);
            }
            offset += f.pipeline.node_count();
        }
        out
    }

    /// Seal every fragment (end of a suspended phase), extracting each
    /// operator's state structures with plan-wide node ids. State buffered
    /// on an exchange leaf carries the producer subtree's signature, so
    /// cross-phase reuse works across fragment boundaries.
    pub fn seal(self) -> Vec<SealedState> {
        let mut out = Vec::new();
        let mut offset = 0;
        for f in self.fragments {
            let count = f.pipeline.node_count();
            for mut s in f.pipeline.seal() {
                s.node += offset;
                out.push(s);
            }
            offset += count;
        }
        out
    }

    fn fragment_for(&self, rel_id: u32) -> Result<usize> {
        self.owner
            .get(&rel_id)
            .or_else(|| self.consumer.get(&rel_id))
            .copied()
            .ok_or_else(|| Error::Plan(format!("no fragment binds relation {rel_id}")))
    }

    fn push_into(&mut self, f: usize, rel: u32, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        let mut produced = Batch::new();
        self.fragments[f]
            .pipeline
            .push_source(rel, batch, &mut produced)?;
        self.forward(f, produced, out)
    }

    /// Route a fragment's produced batch: root output to `out`, otherwise
    /// across its exchange into the consumer (recursion depth is bounded
    /// by the fragment count — fragments form a DAG toward the root).
    fn forward(&mut self, f: usize, produced: Batch, out: &mut Batch) -> Result<()> {
        if produced.is_empty() {
            return Ok(());
        }
        match self.fragments[f].output {
            None => {
                out.extend(produced);
                Ok(())
            }
            Some(ex) => {
                let c = self.consumer[&ex];
                self.push_into(c, ex, &produced, out)
            }
        }
    }

    fn finish_in(&mut self, f: usize, rel: u32, out: &mut Batch) -> Result<()> {
        let mut produced = Batch::new();
        self.fragments[f]
            .pipeline
            .finish_source(rel, &mut produced)?;
        self.open_inputs[f] -= 1;
        self.forward(f, produced, out)?;
        if self.open_inputs[f] == 0 {
            // Every input of this fragment closed: its pipeline has
            // flushed, so its output stream ends — close the exchange
            // leaf downstream (which may complete the consumer, and so
            // on up to the root).
            if let Some(ex) = self.fragments[f].output {
                let c = self.consumer[&ex];
                self.finish_in(c, ex, out)?;
            }
        }
        Ok(())
    }
}

impl PushTarget for FragmentRun {
    fn push_source(&mut self, rel_id: u32, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        let f = self.fragment_for(rel_id)?;
        self.push_into(f, rel_id, batch, out)
    }

    fn finish_source(&mut self, rel_id: u32, out: &mut Batch) -> Result<()> {
        let f = self.fragment_for(rel_id)?;
        self.finish_in(f, rel_id, out)
    }
}

/// The consumer end of an exchange, adapted to the [`Source`] trait so a
/// consumer fragment's driver loop polls it exactly like a base relation:
/// `Ready` while batches are queued (respecting `max_tuples` via a carry
/// buffer), `Pending` one poll tick ahead while the producer is alive but
/// quiet, `Eof` once the producer finished and the queue drained.
pub struct ExchangeSource {
    ex_id: u32,
    name: String,
    schema: Schema,
    reader: Option<QueueReader>,
    carry: Vec<Tuple>,
    poll_tick_us: u64,
    delivered: u64,
    done: bool,
}

impl ExchangeSource {
    /// Wrap the reader half of an exchange queue.
    pub fn new(ex_id: u32, schema: Schema, reader: QueueReader, poll_tick_us: u64) -> Self {
        ExchangeSource {
            ex_id,
            name: format!("exchange-{}", ex_id - EXCHANGE_REL_BASE),
            schema,
            reader: Some(reader),
            carry: Vec::new(),
            poll_tick_us: poll_tick_us.max(1),
            delivered: 0,
            done: false,
        }
    }

    fn emit(&mut self, mut fresh: Vec<Tuple>, max_tuples: usize) -> Poll {
        let cap = max_tuples.max(1);
        if fresh.len() > cap {
            self.carry = fresh.split_off(cap);
        }
        self.delivered += fresh.len() as u64;
        Poll::Ready(fresh)
    }
}

impl Source for ExchangeSource {
    fn rel_id(&self) -> u32 {
        self.ex_id
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn poll(&mut self, now_us: u64, max_tuples: usize) -> Poll {
        if !self.carry.is_empty() {
            let cap = max_tuples.max(1).min(self.carry.len());
            let rest = self.carry.split_off(cap);
            let head = std::mem::replace(&mut self.carry, rest);
            self.delivered += head.len() as u64;
            return Poll::Ready(head);
        }
        if self.done {
            return Poll::Eof;
        }
        let status = match &self.reader {
            Some(r) => r.try_recv_status(),
            None => TryRecv::Closed,
        };
        match status {
            TryRecv::Batch(b) => self.emit(b, max_tuples),
            TryRecv::Empty => Poll::Pending {
                next_ready_us: now_us + self.poll_tick_us,
            },
            TryRecv::Closed => {
                self.done = true;
                self.reader = None;
                Poll::Eof
            }
        }
    }

    fn progress(&self) -> SourceProgressView {
        SourceProgressView {
            tuples_read: self.delivered,
            fraction_read: None,
            eof: self.done,
        }
    }

    fn descriptor(&self) -> SourceDescriptor {
        SourceDescriptor {
            rel_id: self.ex_id,
            name: self.name.clone(),
            complete: true,
            key_range: None,
        }
    }
}

/// A producer fragment's [`PushTarget`]: cascades through the fragment's
/// pipeline and ships every produced batch into the exchange queue
/// immediately (owned send, no copy), so downstream consumption overlaps
/// this fragment's remaining work.
struct PipeToQueue<'a> {
    pipeline: &'a mut PipelinePlan,
    writer: &'a mut QueueWriter,
    /// Output produced by the last push/finish, parked until the driver's
    /// uncharged [`PushTarget::ship`] call — a send into a full queue
    /// blocks on backpressure, and that wait must not be billed as CPU.
    pending: Batch,
}

impl PushTarget for PipeToQueue<'_> {
    fn push_source(&mut self, rel_id: u32, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        let _ = out;
        self.pipeline.push_source(rel_id, batch, &mut self.pending)
    }

    fn finish_source(&mut self, rel_id: u32, out: &mut Batch) -> Result<()> {
        let _ = out;
        self.pipeline.finish_source(rel_id, &mut self.pending)
    }

    fn ship(&mut self) -> Result<()> {
        if !self.pending.is_empty() {
            self.writer.send(std::mem::take(&mut self.pending))?;
        }
        Ok(())
    }
}

impl SimDriver {
    /// Execute a fragmented plan, dispatching on the driver's clock:
    /// threaded when a wall clock drives the run, sequential otherwise
    /// (the virtual clock is single-threaded by construction — producer
    /// naps would teleport the shared timeline).
    pub fn run_fragments(
        &self,
        plan: FragmentPlan,
        sources: Vec<Box<dyn Source>>,
        opts: &FragmentOptions,
    ) -> Result<(Batch, ExecReport)> {
        match &self.clock {
            Some(c) if c.is_wall() => self.run_fragments_threaded(plan, sources, opts),
            _ => self.run_fragments_sequential(plan, sources),
        }
    }

    /// Sequential execution of a fragmented plan: the standard driver loop
    /// over [`FragmentRun`]. Identical semantics (and, under the virtual
    /// clock, identical timing) to running the unfragmented plan.
    pub fn run_fragments_sequential(
        &self,
        plan: FragmentPlan,
        mut sources: Vec<Box<dyn Source>>,
    ) -> Result<(Batch, ExecReport)> {
        let mut run = plan.into_run();
        self.run_target(&mut run, &mut sources)
    }

    /// Threaded execution of a fragmented plan: every producer fragment
    /// runs the same driver loop on its own thread, shipping root output
    /// through a bounded exchange queue; the root fragment runs on the
    /// calling thread over its own sources plus the [`ExchangeSource`]s.
    ///
    /// Every fragment thread is joined before this returns; a producer
    /// panic is re-raised here (never read as EOF), and a producer error
    /// supersedes the root's (possibly truncated) result.
    pub fn run_fragments_threaded(
        &self,
        plan: FragmentPlan,
        sources: Vec<Box<dyn Source>>,
        opts: &FragmentOptions,
    ) -> Result<(Batch, ExecReport)> {
        let clock: Arc<dyn Clock> = match &self.clock {
            Some(c) if c.is_wall() => c.clone(),
            _ => {
                return Err(Error::Plan(
                    "threaded fragments need a wall clock; use run_fragments_sequential \
                     for virtual-clock runs"
                        .into(),
                ))
            }
        };

        // Partition the sources among the fragments that bind them.
        let nfrag = plan.fragment_count();
        let mut per_fragment: Vec<Vec<Box<dyn Source>>> = (0..nfrag).map(|_| Vec::new()).collect();
        for src in sources {
            let f = plan.fragment_of(src.rel_id()).ok_or_else(|| {
                Error::Plan(format!(
                    "no fragment binds source relation {}",
                    src.rel_id()
                ))
            })?;
            per_fragment[f].push(src);
        }

        // Exchange → consuming fragment index, computed before the
        // fragment vec is consumed (a producer's exchange may feed
        // another producer, not only the root — multi-level chains).
        let mut consumer_of: HashMap<u32, usize> = HashMap::new();
        for (i, f) in plan.fragments.iter().enumerate() {
            for ex in f.exchange_inputs() {
                consumer_of.insert(ex, i);
            }
        }

        // Spawn each producer fragment (topological order: producers
        // first), handing its ExchangeSource to the consumer fragment's
        // source list. Because producers precede consumers, the
        // consumer's list is always still on this thread when we push.
        struct FragThread {
            handle: JoinHandle<Result<ExecReport>>,
        }
        let mut threads: Vec<FragThread> = Vec::with_capacity(nfrag - 1);
        let mut fragments = plan.fragments;
        let root = fragments.pop().expect("validated non-empty");
        for (idx, frag) in fragments.into_iter().enumerate() {
            let ex = frag.output.expect("non-root fragments output an exchange");
            let (mut writer, reader) =
                queue_pair(frag.pipeline.root_schema().clone(), opts.queue_capacity);
            let exchange_source = ExchangeSource::new(
                ex,
                frag.pipeline.root_schema().clone(),
                reader,
                opts.poll_tick_us,
            );
            let consumer_idx = consumer_of[&ex]; // validated by FragmentPlan::new
            per_fragment[consumer_idx].push(Box::new(exchange_source));

            let mut frag_sources = std::mem::take(&mut per_fragment[idx]);
            let driver = SimDriver {
                batch_size: self.batch_size,
                cpu: self.cpu,
                clock: Some(clock.clone()),
            };
            let mut pipeline = frag.pipeline;
            let handle = std::thread::Builder::new()
                .name(format!("fragment-{idx}"))
                .spawn(move || -> Result<ExecReport> {
                    let mut target = PipeToQueue {
                        pipeline: &mut pipeline,
                        writer: &mut writer,
                        pending: Batch::new(),
                    };
                    let (_, report) = driver.run_target(&mut target, &mut frag_sources)?;
                    let _ = writer.finish(&mut Batch::new());
                    Ok(report)
                })
                .map_err(|e| Error::Exec(format!("spawning fragment {idx} failed: {e}")))?;
            threads.push(FragThread { handle });
        }

        // Root fragment on this thread.
        let mut root_pipeline = root.pipeline;
        let mut root_sources = std::mem::take(&mut per_fragment[nfrag - 1]);
        let root_result = self.run_target(&mut root_pipeline, &mut root_sources);

        // Tear down: drop the root's exchange readers (errors any blocked
        // producer send), then join everything, re-raising panics.
        drop(root_sources);
        let mut producer_err: Option<Error> = None;
        let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
        let mut cpu_extra: u64 = 0;
        for t in threads {
            match t.handle.join() {
                Ok(Ok(report)) => cpu_extra += report.cpu_us,
                Ok(Err(e)) => {
                    // A consumer hang-up during teardown is benign; any
                    // other producer error must surface.
                    let benign = root_result.is_err() || crate::queue::is_hangup(&e);
                    if !benign && producer_err.is_none() {
                        producer_err = Some(e);
                    }
                }
                Err(payload) => {
                    if panic_payload.is_none() {
                        panic_payload = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic_payload {
            eprintln!("fragment producer thread panicked");
            std::panic::resume_unwind(payload);
        }
        if let Some(e) = producer_err {
            return Err(e);
        }
        let (out, mut report) = root_result?;
        report.cpu_us += cpu_extra;
        Ok((out, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::CpuCostModel;
    use crate::join::pipelined_hash::PipelinedHashJoin;
    use tukwila_relation::{DataType, Field, Value};
    use tukwila_source::{DelayModel, DelayedSource, MemSource};
    use tukwila_stats::WallClock;

    fn schema(p: &str) -> Schema {
        Schema::new(vec![Field::new(format!("{p}.k"), DataType::Int)])
    }

    fn tuples(n: i64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(vec![Value::Int(i)])).collect()
    }

    /// (a ⋈ b) in a producer fragment, (exchange ⋈ c) in the root.
    fn two_fragment_plan() -> FragmentPlan {
        let ex = EXCHANGE_REL_BASE;
        let mut pb = PipelinePlan::builder();
        let j1 = Box::new(PipelinedHashJoin::new(schema("a"), schema("b"), 0, 0));
        let j1_schema = j1.schema().clone();
        let n1 = pb.add_op(j1, &[], None).unwrap();
        pb.bind_source(1, n1, 0).unwrap();
        pb.bind_source(2, n1, 1).unwrap();
        let producer = Fragment {
            pipeline: pb.build().unwrap(),
            output: Some(ex),
        };

        let mut rb = PipelinePlan::builder();
        let j2 = Box::new(PipelinedHashJoin::new(j1_schema, schema("c"), 0, 0));
        let n2 = rb.add_op(j2, &[], None).unwrap();
        rb.bind_source(ex, n2, 0).unwrap();
        rb.bind_source(3, n2, 1).unwrap();
        let root = Fragment {
            pipeline: rb.build().unwrap(),
            output: None,
        };
        FragmentPlan::new(vec![producer, root]).unwrap()
    }

    fn single_plan() -> PipelinePlan {
        let mut b = PipelinePlan::builder();
        let j1 = Box::new(PipelinedHashJoin::new(schema("a"), schema("b"), 0, 0));
        let j1_schema = j1.schema().clone();
        let n1 = b.add_op(j1, &[], None).unwrap();
        let j2 = Box::new(PipelinedHashJoin::new(j1_schema, schema("c"), 0, 0));
        let n2 = b.add_op(j2, &[Some(n1)], None).unwrap();
        b.bind_source(1, n1, 0).unwrap();
        b.bind_source(2, n1, 1).unwrap();
        b.bind_source(3, n2, 1).unwrap();
        b.build().unwrap()
    }

    fn mem_sources() -> Vec<Box<dyn Source>> {
        vec![
            Box::new(MemSource::new(1, "a", schema("a"), tuples(80))),
            Box::new(MemSource::new(2, "b", schema("b"), tuples(60))),
            Box::new(MemSource::new(3, "c", schema("c"), tuples(40))),
        ]
    }

    fn keys(batch: &Batch) -> Vec<i64> {
        let mut k: Vec<i64> = batch.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        k.sort_unstable();
        k
    }

    #[test]
    fn sequential_fragments_match_single_plan() {
        let driver = SimDriver::new(16, CpuCostModel::Zero);
        let (single_out, _) = driver.run(&mut single_plan(), &mut mem_sources()).unwrap();
        let (frag_out, report) = driver
            .run_fragments_sequential(two_fragment_plan(), mem_sources())
            .unwrap();
        assert_eq!(keys(&frag_out), keys(&single_out));
        assert_eq!(frag_out.len(), 40, "a⋈b⋈c over prefixes of 0..n");
        assert_eq!(report.tuples_out, 40);
    }

    #[test]
    fn threaded_fragments_match_single_plan() {
        let clock = Arc::new(WallClock::accelerated(100.0));
        let driver = SimDriver::new(16, CpuCostModel::Measured).with_clock(clock);
        let (single_out, _) = SimDriver::new(16, CpuCostModel::Zero)
            .run(&mut single_plan(), &mut mem_sources())
            .unwrap();
        let (frag_out, _) = driver
            .run_fragments(
                two_fragment_plan(),
                mem_sources(),
                &FragmentOptions::default(),
            )
            .unwrap();
        assert_eq!(keys(&frag_out), keys(&single_out));
    }

    #[test]
    fn threaded_fragments_with_delayed_sources_lose_nothing() {
        let clock = Arc::new(WallClock::accelerated(500.0));
        let driver = SimDriver::new(32, CpuCostModel::Measured).with_clock(clock);
        let model = DelayModel::Bandwidth {
            bytes_per_sec: 1e6,
            initial_latency_us: 5_000,
        };
        let sources: Vec<Box<dyn Source>> = vec![
            Box::new(DelayedSource::new(1, "a", schema("a"), tuples(200), &model)),
            Box::new(DelayedSource::new(2, "b", schema("b"), tuples(200), &model)),
            Box::new(DelayedSource::new(3, "c", schema("c"), tuples(200), &model)),
        ];
        let (out, report) = driver
            .run_fragments_threaded(two_fragment_plan(), sources, &FragmentOptions::default())
            .unwrap();
        assert_eq!(keys(&out), (0..200).collect::<Vec<_>>());
        assert_eq!(report.tuples_out, 200);
    }

    #[test]
    fn plan_validation_rejects_malformed_shapes() {
        // Producer without a consumer.
        let mut pb = PipelinePlan::builder();
        let j = Box::new(PipelinedHashJoin::new(schema("a"), schema("b"), 0, 0));
        let n = pb.add_op(j, &[], None).unwrap();
        pb.bind_source(1, n, 0).unwrap();
        pb.bind_source(2, n, 1).unwrap();
        let orphan = Fragment {
            pipeline: pb.build().unwrap(),
            output: Some(EXCHANGE_REL_BASE),
        };
        let mut rb = PipelinePlan::builder();
        let j2 = Box::new(PipelinedHashJoin::new(schema("a"), schema("c"), 0, 0));
        let n2 = rb.add_op(j2, &[], None).unwrap();
        rb.bind_source(4, n2, 0).unwrap();
        rb.bind_source(3, n2, 1).unwrap();
        let root = Fragment {
            pipeline: rb.build().unwrap(),
            output: None,
        };
        assert!(FragmentPlan::new(vec![orphan, root]).is_err());

        // Root in the wrong position.
        let plan = two_fragment_plan();
        let mut frags: Vec<Fragment> = plan.fragments.into_iter().collect();
        frags.swap(0, 1);
        assert!(FragmentPlan::new(frags).is_err());
    }

    #[test]
    fn exchange_source_respects_max_tuples_and_eof() {
        let (mut writer, reader) = queue_pair(schema("x"), 4);
        let mut ex = ExchangeSource::new(EXCHANGE_REL_BASE, schema("x"), reader, 100);
        assert!(matches!(
            ex.poll(0, 8),
            Poll::Pending { next_ready_us: 100 }
        ));
        writer.send(tuples(25)).unwrap();
        let mut got = Vec::new();
        loop {
            match ex.poll(0, 10) {
                Poll::Ready(b) => {
                    assert!(b.len() <= 10, "Ready respects max_tuples");
                    got.extend(b);
                }
                Poll::Pending { .. } => {
                    writer.finish(&mut Batch::new()).unwrap();
                }
                Poll::Eof => break,
            }
        }
        assert_eq!(got.len(), 25);
        assert!(ex.progress().eof);
    }

    #[test]
    #[should_panic(expected = "fragment exploded")]
    fn producer_panic_is_reraised_not_read_as_eof() {
        struct Exploding {
            schema: Schema,
            sent: i64,
        }
        impl Source for Exploding {
            fn rel_id(&self) -> u32 {
                1
            }
            fn name(&self) -> &str {
                "exploding"
            }
            fn schema(&self) -> &Schema {
                &self.schema
            }
            fn poll(&mut self, _now_us: u64, _max: usize) -> Poll {
                if self.sent >= 5 {
                    panic!("fragment exploded");
                }
                self.sent += 1;
                Poll::Ready(vec![Tuple::new(vec![Value::Int(self.sent - 1)])])
            }
            fn progress(&self) -> SourceProgressView {
                SourceProgressView {
                    tuples_read: self.sent as u64,
                    fraction_read: None,
                    eof: false,
                }
            }
        }
        let clock = Arc::new(WallClock::accelerated(100.0));
        let driver = SimDriver::new(16, CpuCostModel::Measured).with_clock(clock);
        let mut sources = mem_sources();
        sources[0] = Box::new(Exploding {
            schema: schema("a"),
            sent: 0,
        });
        let _ = driver.run_fragments_threaded(
            two_fragment_plan(),
            sources,
            &FragmentOptions::default(),
        );
    }
}
