//! Pipelined plan trees: operator arenas with leaf bindings, batch
//! cascade, and sealing (state extraction at phase end).

use std::sync::Arc;

use tukwila_relation::{ColumnarBatch, Error, Result, Schema, Tuple};
use tukwila_stats::OpCounters;
use tukwila_storage::ExprSig;

use crate::op::{Batch, IncOp};

/// Identifies where a base relation's tuples enter the plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafBinding {
    /// The bound source relation (or exchange stream).
    pub rel_id: u32,
    /// Plan node the source feeds.
    pub node: usize,
    /// Input port of that node.
    pub port: usize,
}

/// A node in the plan arena, annotated with the logical signature of the
/// subexpression each input port carries (used when sealing registers
/// state structures) and of the node's own output.
struct PlanNode {
    op: Box<dyn IncOp>,
    /// `(parent node, parent port)`; `None` for the root.
    parent: Option<(usize, usize)>,
    /// Logical signature of the data arriving on each port.
    input_sigs: Vec<Option<ExprSig>>,
    /// Logical signature of this node's output.
    output_sig: Option<ExprSig>,
}

/// A state structure captured when a plan was sealed, annotated with the
/// logical subexpression it holds.
pub struct SealedState {
    /// Logical signature of the subexpression the structure buffered.
    pub sig: Option<ExprSig>,
    /// Schema of the buffered tuples.
    pub schema: Schema,
    /// The extracted state structure.
    pub structure: Arc<dyn tukwila_storage::StateStructure>,
    /// Plan node the structure came from.
    pub node: usize,
    /// Input port of that node.
    pub port: usize,
}

/// Snapshot of one operator's counters with its signature annotations,
/// used by the execution monitor. Cloning shares the live counters (they
/// are `Arc`-held atomics), so a clone taken before a pipeline moves into
/// a producer thread keeps observing it — that is how the corrective
/// monitor reads a threaded fragment plan without owning its pipelines.
#[derive(Clone)]
pub struct NodeObservation {
    /// The observed plan node.
    pub node: usize,
    /// The operator's display name.
    pub name: String,
    /// Logical signature of the node's output.
    pub output_sig: Option<ExprSig>,
    /// Logical signature of the data arriving on each input port.
    pub input_sigs: Vec<Option<ExprSig>>,
    /// The node's live counters (shared with the executor).
    pub counters: Arc<OpCounters>,
}

/// An executable pipelined plan: a tree of [`IncOp`]s plus leaf bindings.
///
/// End-of-input is tracked per port: a port closes only when *every* source
/// in the subtree feeding it has reached EOF; when all of a node's ports
/// close, the node flushes (`finish`) and its own output stream closes,
/// propagating upward. Suspended phases are *sealed* instead, which
/// extracts state without flushing blocking operators.
pub struct PipelinePlan {
    nodes: Vec<PlanNode>,
    leaves: Vec<LeafBinding>,
    root: usize,
    /// Open-source count per node per port.
    open_inputs: Vec<Vec<usize>>,
    /// Whether a node's `finish` has run.
    finished: Vec<bool>,
    /// Scratch buffers reused across pushes.
    scratch: Vec<Batch>,
}

impl PipelinePlan {
    /// Start building a plan.
    pub fn builder() -> PlanBuilder {
        PlanBuilder::default()
    }

    /// Output schema of the root operator.
    pub fn root_schema(&self) -> &Schema {
        self.nodes[self.root].op.schema()
    }

    /// The plan's source bindings.
    pub fn leaves(&self) -> &[LeafBinding] {
        &self.leaves
    }

    /// Number of operator nodes in the plan (fragmented plans use this to
    /// assign plan-wide node ids across fragments).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The binding for `rel_id`, if the plan has one.
    pub fn leaf_for(&self, rel_id: u32) -> Option<LeafBinding> {
        self.leaves.iter().copied().find(|l| l.rel_id == rel_id)
    }

    /// Push a batch of source tuples for `rel_id`; root output lands in
    /// `out`.
    pub fn push_source(&mut self, rel_id: u32, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        let leaf = self
            .leaf_for(rel_id)
            .ok_or_else(|| Error::Plan(format!("no leaf for relation {rel_id}")))?;
        self.cascade(leaf.node, leaf.port, batch, out)
    }

    /// Push a *columnar* batch of source tuples for `rel_id`: the leaf
    /// operator consumes the columns via [`IncOp::push_columns`] (its
    /// vectorized kernel, or the row-materializing default), and whatever
    /// it produces cascades upward as rows. This is how columns arriving
    /// over an exchange enter a consumer plan without an eager transpose.
    pub fn push_source_columns(
        &mut self,
        rel_id: u32,
        batch: &ColumnarBatch,
        out: &mut Batch,
    ) -> Result<()> {
        let leaf = self
            .leaf_for(rel_id)
            .ok_or_else(|| Error::Plan(format!("no leaf for relation {rel_id}")))?;
        let mut produced = self.scratch.pop().unwrap_or_default();
        produced.clear();
        self.nodes[leaf.node]
            .op
            .push_columns(leaf.port, batch, &mut produced)?;
        let res = match self.nodes[leaf.node].parent {
            Some((pn, pp)) if !produced.is_empty() => self.cascade(pn, pp, &produced, out),
            Some(_) => Ok(()),
            None => {
                out.append(&mut produced);
                Ok(())
            }
        };
        self.scratch.push(produced);
        res
    }

    /// Signal EOF of a source. When this closes the last open input of an
    /// operator, the operator flushes and the closure propagates upward, so
    /// after the final source's EOF the entire plan (including blocking
    /// operators) has emitted its results.
    pub fn finish_source(&mut self, rel_id: u32, out: &mut Batch) -> Result<()> {
        let leaf = self
            .leaf_for(rel_id)
            .ok_or_else(|| Error::Plan(format!("no leaf for relation {rel_id}")))?;
        self.close_port(leaf.node, leaf.port, out)
    }

    fn close_port(&mut self, node: usize, port: usize, out: &mut Batch) -> Result<()> {
        debug_assert!(self.open_inputs[node][port] > 0, "port closed twice");
        self.open_inputs[node][port] -= 1;
        if self.open_inputs[node][port] > 0 {
            return Ok(());
        }
        let mut emitted = Batch::new();
        self.nodes[node].op.finish_input(port, &mut emitted)?;
        let parent = self.nodes[node].parent;
        if !emitted.is_empty() {
            match parent {
                Some((pn, pp)) => self.cascade(pn, pp, &emitted, out)?,
                None => out.extend(emitted),
            }
        }
        if self.open_inputs[node].iter().all(|&c| c == 0) && !self.finished[node] {
            self.finished[node] = true;
            let mut flushed = Batch::new();
            self.nodes[node].op.finish(&mut flushed)?;
            if !flushed.is_empty() {
                match parent {
                    Some((pn, pp)) => self.cascade(pn, pp, &flushed, out)?,
                    None => out.extend(flushed),
                }
            }
            if let Some((pn, pp)) = parent {
                self.close_port(pn, pp, out)?;
            }
        }
        Ok(())
    }

    /// Iterative cascade: push into `node`/`port`, feed output to parent,
    /// repeat until the root.
    fn cascade(
        &mut self,
        node: usize,
        port: usize,
        batch: &[Tuple],
        out: &mut Batch,
    ) -> Result<()> {
        let mut cur_node = node;
        let mut cur_port = port;
        let mut input: Batch = batch.to_vec();
        loop {
            let mut produced = self.scratch.pop().unwrap_or_default();
            produced.clear();
            self.nodes[cur_node]
                .op
                .push(cur_port, &input, &mut produced)?;
            self.scratch.push(std::mem::take(&mut input));
            match self.nodes[cur_node].parent {
                Some((pn, pp)) => {
                    if produced.is_empty() {
                        self.scratch.push(produced);
                        return Ok(());
                    }
                    input = produced;
                    cur_node = pn;
                    cur_port = pp;
                }
                None => {
                    out.extend(produced);
                    return Ok(());
                }
            }
        }
    }

    /// Counter/signature snapshots for the monitor.
    pub fn observations(&self) -> Vec<NodeObservation> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| NodeObservation {
                node: i,
                name: n.op.name().to_string(),
                output_sig: n.output_sig.clone(),
                input_sigs: n.input_sigs.clone(),
                counters: n.op.counters().clone(),
            })
            .collect()
    }

    /// Seal the plan at the end of a (suspended) phase: extract every
    /// operator's state structures, annotated with the logical signature of
    /// the data each holds. Blocking operators are *not* flushed.
    pub fn seal(mut self) -> Vec<SealedState> {
        let mut out = Vec::new();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            for ex in node.op.extract_states() {
                let sig = node.input_sigs.get(ex.port).cloned().flatten();
                out.push(SealedState {
                    sig,
                    schema: ex.schema,
                    structure: ex.structure,
                    node: i,
                    port: ex.port,
                });
            }
        }
        out
    }
}

/// Builds [`PipelinePlan`]s. Nodes are added bottom-up; each child is
/// attached to a (parent, port) slot.
#[derive(Default)]
pub struct PlanBuilder {
    nodes: Vec<PlanNode>,
    leaves: Vec<LeafBinding>,
    /// Ports fed by an attached child node.
    child_fed: Vec<Vec<bool>>,
}

impl PlanBuilder {
    /// Add an operator; `children[port]` is `Some(node)` when a previously
    /// added node feeds that port, `None` when a source will be bound to it
    /// later. Trailing `None`s may be omitted. `sig` annotates the node's
    /// *output* subexpression.
    pub fn add_op(
        &mut self,
        op: Box<dyn IncOp>,
        children: &[Option<usize>],
        sig: Option<ExprSig>,
    ) -> Result<usize> {
        let id = self.nodes.len();
        if children.len() > op.inputs() {
            return Err(Error::Plan(format!(
                "operator {} has {} inputs, got {} children",
                op.name(),
                op.inputs(),
                children.len()
            )));
        }
        let nports = op.inputs();
        let mut input_sigs = vec![None; nports];
        let mut fed = vec![false; nports];
        for (port, c) in children.iter().enumerate() {
            let &Some(c) = c else { continue };
            if c >= id {
                return Err(Error::Plan(format!("child {c} not yet defined")));
            }
            if self.nodes[c].parent.is_some() {
                return Err(Error::Plan(format!("node {c} already has a parent")));
            }
            self.nodes[c].parent = Some((id, port));
            input_sigs[port] = self.nodes[c].output_sig.clone();
            fed[port] = true;
        }
        self.nodes.push(PlanNode {
            op,
            parent: None,
            input_sigs,
            output_sig: sig,
        });
        self.child_fed.push(fed);
        Ok(id)
    }

    /// Bind a source relation to an input port of a node. The port's input
    /// signature becomes the single-relation signature.
    pub fn bind_source(&mut self, rel_id: u32, node: usize, port: usize) -> Result<()> {
        self.bind_source_with_sig(rel_id, node, port, ExprSig::single(rel_id))
    }

    /// [`PlanBuilder::bind_source`] with an explicit logical signature for
    /// the port. Exchange leaves (fragmented plans) use this: the stream
    /// arriving over an exchange carries the producer *subtree's*
    /// signature, not a single base relation, and sealing must register
    /// buffered state under that subtree signature for cross-phase reuse.
    pub fn bind_source_with_sig(
        &mut self,
        rel_id: u32,
        node: usize,
        port: usize,
        sig: ExprSig,
    ) -> Result<()> {
        if node >= self.nodes.len() {
            return Err(Error::Plan(format!("node {node} not defined")));
        }
        if port >= self.nodes[node].input_sigs.len() {
            return Err(Error::Plan(format!("node {node} has no port {port}")));
        }
        if self.child_fed[node][port] {
            return Err(Error::Plan(format!(
                "node {node} port {port} already fed by a child"
            )));
        }
        self.nodes[node].input_sigs[port] = Some(sig);
        self.leaves.push(LeafBinding { rel_id, node, port });
        Ok(())
    }

    /// Finalize. Exactly one node must be parentless (the root), and every
    /// input port must be fed by a child or a source.
    pub fn build(self) -> Result<PipelinePlan> {
        let roots: Vec<usize> = self
            .nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.parent.is_none())
            .map(|(i, _)| i)
            .collect();
        if roots.len() != 1 {
            return Err(Error::Plan(format!(
                "plan must have exactly one root, found {}",
                roots.len()
            )));
        }
        let mut open_inputs: Vec<Vec<usize>> = self
            .child_fed
            .iter()
            .map(|fed| fed.iter().map(|&f| usize::from(f)).collect())
            .collect();
        for l in &self.leaves {
            open_inputs[l.node][l.port] += 1;
        }
        for (i, ports) in open_inputs.iter().enumerate() {
            for (p, &c) in ports.iter().enumerate() {
                if c == 0 {
                    return Err(Error::Plan(format!(
                        "node {i} ({}) port {p} is not fed by any child or source",
                        self.nodes[i].op.name()
                    )));
                }
            }
        }
        let n = self.nodes.len();
        Ok(PipelinePlan {
            nodes: self.nodes,
            leaves: self.leaves,
            root: roots[0],
            open_inputs,
            finished: vec![false; n],
            scratch: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::{AggSpec, GroupSpec, HashAggOp};
    use crate::filter::FilterOp;
    use crate::join::pipelined_hash::PipelinedHashJoin;
    use tukwila_relation::agg::AggFunc;
    use tukwila_relation::{CmpOp, DataType, Expr, Field, Value};

    fn schema(p: &str) -> Schema {
        Schema::new(vec![
            Field::new(format!("{p}.k"), DataType::Int),
            Field::new(format!("{p}.v"), DataType::Int),
        ])
    }

    fn t(k: i64, v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(k), Value::Int(v)])
    }

    /// a ⋈ b ⋈ c with an aggregation root; checks cascade and EOF
    /// propagation through a multi-level tree.
    fn three_way_plan() -> PipelinePlan {
        let mut b = PipelinePlan::builder();
        let j1 = Box::new(PipelinedHashJoin::new(schema("a"), schema("b"), 0, 0));
        let j1s = j1.schema().clone();
        let n1 = b.add_op(j1, &[], Some(ExprSig::new(vec![1, 2]))).unwrap();
        let j2 = Box::new(PipelinedHashJoin::new(j1s, schema("c"), 3, 0));
        let j2s = j2.schema().clone();
        let n2 = b
            .add_op(j2, &[Some(n1)], Some(ExprSig::new(vec![1, 2, 3])))
            .unwrap();
        let agg = Box::new(HashAggOp::new(
            GroupSpec::new(
                vec![0],
                vec![AggSpec {
                    func: AggFunc::Count,
                    col: 5,
                }],
            ),
            &j2s,
        ));
        let n3 = b.add_op(agg, &[Some(n2)], None).unwrap();
        let _ = n3;
        b.bind_source(1, n1, 0).unwrap();
        b.bind_source(2, n1, 1).unwrap();
        b.bind_source(3, n2, 1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn cascade_through_three_levels() {
        let mut plan = three_way_plan();
        let mut out = Batch::new();
        plan.push_source(1, &[t(1, 10), t(2, 20)], &mut out)
            .unwrap();
        plan.push_source(2, &[t(1, 100)], &mut out).unwrap();
        plan.push_source(3, &[t(100, 7)], &mut out).unwrap();
        assert!(out.is_empty(), "root agg is blocking");
        // EOF everything: the agg flushes when its last upstream source ends.
        plan.finish_source(1, &mut out).unwrap();
        plan.finish_source(2, &mut out).unwrap();
        assert!(out.is_empty(), "source 3 still open");
        plan.finish_source(3, &mut out).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).as_int().unwrap(), 1);
        assert_eq!(out[0].get(1).as_int().unwrap(), 1);
    }

    #[test]
    fn seal_collects_annotated_states() {
        let mut plan = three_way_plan();
        let mut out = Batch::new();
        plan.push_source(1, &[t(1, 10)], &mut out).unwrap();
        plan.push_source(2, &[t(1, 100), t(9, 0)], &mut out)
            .unwrap();
        plan.push_source(3, &[t(100, 7)], &mut out).unwrap();
        let states = plan.seal();
        // Two joins x two ports.
        assert_eq!(states.len(), 4);
        let leaf_a = states
            .iter()
            .find(|s| s.sig == Some(ExprSig::single(1)))
            .unwrap();
        assert_eq!(leaf_a.structure.len(), 1);
        let ab = states
            .iter()
            .find(|s| s.sig == Some(ExprSig::new(vec![1, 2])))
            .unwrap();
        assert_eq!(ab.structure.len(), 1, "a⋈b intermediate buffered");
        assert_eq!(ab.schema.arity(), 4);
    }

    #[test]
    fn observations_expose_sigs_and_counters() {
        let mut plan = three_way_plan();
        let mut out = Batch::new();
        plan.push_source(1, &[t(1, 10)], &mut out).unwrap();
        let obs = plan.observations();
        assert_eq!(obs.len(), 3);
        assert_eq!(obs[0].output_sig, Some(ExprSig::new(vec![1, 2])));
        assert_eq!(obs[0].counters.tuples_in(), 1);
    }

    #[test]
    fn filter_between_source_and_join() {
        let mut b = PipelinePlan::builder();
        let f = Box::new(FilterOp::new(
            Expr::cmp(Expr::Col(1), CmpOp::Ge, Expr::Lit(Value::Int(15))),
            schema("a"),
        ));
        let nf = b.add_op(f, &[], Some(ExprSig::single(1))).unwrap();
        let j = Box::new(PipelinedHashJoin::new(schema("a"), schema("b"), 0, 0));
        let nj = b
            .add_op(j, &[Some(nf)], Some(ExprSig::new(vec![1, 2])))
            .unwrap();
        b.bind_source(1, nf, 0).unwrap();
        b.bind_source(2, nj, 1).unwrap();
        let mut plan = b.build().unwrap();
        let mut out = Batch::new();
        plan.push_source(2, &[t(1, 0), t(2, 0)], &mut out).unwrap();
        plan.push_source(1, &[t(1, 10), t(2, 20)], &mut out)
            .unwrap();
        assert_eq!(out.len(), 1, "only (2,20) passes the filter");
    }

    #[test]
    fn builder_rejects_malformed_plans() {
        // Unfed port.
        let mut b = PipelinePlan::builder();
        let j = Box::new(PipelinedHashJoin::new(schema("a"), schema("b"), 0, 0));
        let n = b.add_op(j, &[], None).unwrap();
        b.bind_source(1, n, 0).unwrap();
        assert!(b.build().is_err());

        // Two roots.
        let mut b2 = PipelinePlan::builder();
        let f1 = Box::new(FilterOp::new(Expr::Lit(Value::Bool(true)), schema("a")));
        let f2 = Box::new(FilterOp::new(Expr::Lit(Value::Bool(true)), schema("b")));
        let a = b2.add_op(f1, &[], None).unwrap();
        let c = b2.add_op(f2, &[], None).unwrap();
        b2.bind_source(1, a, 0).unwrap();
        b2.bind_source(2, c, 0).unwrap();
        assert!(b2.build().is_err());
    }
}
