#![warn(missing_docs)]

//! Pipelined query operators and the incremental, push-based execution
//! engine (paper §3).
//!
//! Tukwila's executor is fully pipelined: joins are symmetric
//! (data-availability-driven) so that any prefix of the source data leaves
//! the plan in a *consistent state* — the property adaptive data
//! partitioning needs in order to suspend one plan mid-stream and route the
//! remaining source tuples to another. This crate provides:
//!
//! * [`op::IncOp`] — the incremental operator protocol (push batches in,
//!   cascaded outputs come out; every operator maintains the §3.3 counters
//!   and can expose its state structures for reuse, §3.1).
//! * [`plan::PipelinePlan`] — an operator tree with leaf bindings to source
//!   relations, batch cascade, and `seal()` to extract state structures
//!   into the registry when a phase ends.
//! * Operators: filter, project, pipelined (symmetric) hash join, merge
//!   join, (symmetric) nested loops, hybrid hash join, blocking hash
//!   aggregation, the shared group-by table that survives across plans
//!   (Figure 1), adjustable-window pre-aggregation and the pseudogroup
//!   operator (§3.2, §6).
//! * [`split::Split`] / [`split::combine`] / [`split::Router`] and the
//!   cross-thread [`queue::queue_pair`] — the special operators for
//!   sharing data between subplans.
//! * [`driver::SimDriver`] — single-plan execution against sources, under
//!   either clock of the dual-clock design: the simulated
//!   [`tukwila_stats::VirtualClock`] (deterministic, idle time is free) or
//!   a real [`tukwila_stats::WallClock`] (idle time really sleeps, sources
//!   may be fed by concurrent producer threads).
//! * [`reference::RefQuery`] — a naive full-materialization executor used
//!   as a correctness oracle by the test suite.

pub mod agg;
pub mod driver;
pub mod filter;
pub mod fragments;
pub mod join;
pub mod metrics;
pub mod op;
pub mod plan;
pub mod project;
pub mod queue;
pub mod reference;
pub mod split;

pub use driver::{CpuCostModel, PushTarget, SimDriver, Timeline};
pub use fragments::{
    is_exchange, ExchangePoll, ExchangeSource, Fragment, FragmentOptions, FragmentPlan,
    FragmentRun, FragmentSourceProgress, QuiesceHandle, SealedOutcome, ThreadedFragmentRun,
    EXCHANGE_REL_BASE,
};
pub use metrics::ExecReport;
pub use op::{Batch, DataBatch, ExtractedState, IncOp};
pub use plan::{PipelinePlan, PlanBuilder};
pub use queue::{queue_pair, QueueReader, QueueWriter, TryRecv, TryRecvData};
