//! Naive full-materialization query executor, used as a correctness oracle
//! by the test suite. It evaluates select-project-join-aggregate queries by
//! brute force (filters, then left-deep hash joins in declaration order,
//! then grouping), with none of the adaptive machinery — so adaptive
//! executions can be checked against it bit-for-bit.

use tukwila_relation::agg::AggState;
use tukwila_relation::value::GroupKey;
use tukwila_relation::{Error, Expr, Result, Schema, Tuple};
use tukwila_storage::fx::FxHashMap;
use tukwila_storage::TupleHashTable;

use crate::agg::{AggSpec, GroupSpec};

/// A base relation for the oracle.
#[derive(Clone)]
pub struct RefRelation {
    /// The relation's schema.
    pub schema: Schema,
    /// The relation's full contents.
    pub tuples: Vec<Tuple>,
}

/// An equi-join edge between two relations, with columns local to each
/// relation's schema.
#[derive(Debug, Clone, Copy)]
pub struct RefJoin {
    /// Index of the left relation in [`RefQuery::relations`].
    pub left_rel: usize,
    /// Join column within the left relation's schema.
    pub left_col: usize,
    /// Index of the right relation in [`RefQuery::relations`].
    pub right_rel: usize,
    /// Join column within the right relation's schema.
    pub right_col: usize,
}

/// Column address within the combined (concatenated in relation order)
/// schema.
#[derive(Debug, Clone, Copy)]
pub struct RefCol {
    /// Relation index in [`RefQuery::relations`].
    pub rel: usize,
    /// Column within that relation's schema.
    pub col: usize,
}

/// A reference SPJA query.
pub struct RefQuery {
    /// The base relations, in combined-schema order.
    pub relations: Vec<RefRelation>,
    /// Per-relation selection predicates (applied before joins).
    pub filters: Vec<(usize, Expr)>,
    /// Equi-join edges.
    pub joins: Vec<RefJoin>,
    /// Optional grouping over the combined schema.
    pub group_cols: Vec<RefCol>,
    /// Aggregates over the combined schema (empty = no aggregation).
    pub aggs: Vec<(tukwila_relation::agg::AggFunc, RefCol)>,
}

impl RefQuery {
    /// A query over `relations` with no filters, joins, or aggregates yet.
    pub fn new(relations: Vec<RefRelation>) -> RefQuery {
        RefQuery {
            relations,
            filters: Vec::new(),
            joins: Vec::new(),
            group_cols: Vec::new(),
            aggs: Vec::new(),
        }
    }

    /// Offset of `(rel, col)` in the combined schema.
    pub fn combined_col(&self, c: RefCol) -> usize {
        let offset: usize = self.relations[..c.rel]
            .iter()
            .map(|r| r.schema.arity())
            .sum();
        offset + c.col
    }

    /// Execute; returns joined (and optionally grouped) tuples.
    pub fn run(&self) -> Result<Vec<Tuple>> {
        if self.relations.is_empty() {
            return Ok(Vec::new());
        }
        // 1. Filters.
        let mut filtered: Vec<Vec<Tuple>> =
            self.relations.iter().map(|r| r.tuples.clone()).collect();
        for (rel, pred) in &self.filters {
            let mut kept = Vec::new();
            for t in &filtered[*rel] {
                if pred.matches(t)? {
                    kept.push(t.clone());
                }
            }
            filtered[*rel] = kept;
        }

        // 2. Left-deep join in relation order; each step applies every join
        //    edge connecting the new relation to already-joined ones.
        let mut acc = filtered[0].clone();
        let mut joined_rels = vec![0usize];
        // `rel` indexes `filtered`, the join-edge endpoints, and
        // `joined_rels` in parallel; an enumerate would obscure that.
        #[allow(clippy::needless_range_loop)]
        for rel in 1..self.relations.len() {
            let edges: Vec<&RefJoin> = self
                .joins
                .iter()
                .filter(|j| {
                    (j.right_rel == rel && joined_rels.contains(&j.left_rel))
                        || (j.left_rel == rel && joined_rels.contains(&j.right_rel))
                })
                .collect();
            if edges.is_empty() {
                return Err(Error::Plan(format!(
                    "relation {rel} not connected to the join graph; cross products unsupported"
                )));
            }
            // Use the first edge for hashing, the rest as residual filters.
            let first = edges[0];
            let (acc_col, new_col) = if first.right_rel == rel {
                (
                    self.combined_col(RefCol {
                        rel: first.left_rel,
                        col: first.left_col,
                    }),
                    first.right_col,
                )
            } else {
                (
                    self.combined_col(RefCol {
                        rel: first.right_rel,
                        col: first.right_col,
                    }),
                    first.left_col,
                )
            };
            let mut table = TupleHashTable::new(new_col);
            for t in &filtered[rel] {
                table.insert(t.clone())?;
            }
            let mut next = Vec::new();
            for a in &acc {
                for m in table.probe(&a.key(acc_col)) {
                    let candidate = a.concat(m);
                    let mut ok = true;
                    for e in &edges[1..] {
                        let (lc, rc) = if e.right_rel == rel {
                            (
                                self.combined_col(RefCol {
                                    rel: e.left_rel,
                                    col: e.left_col,
                                }),
                                self.combined_col(RefCol {
                                    rel: e.right_rel,
                                    col: e.right_col,
                                }),
                            )
                        } else {
                            (
                                self.combined_col(RefCol {
                                    rel: e.right_rel,
                                    col: e.right_col,
                                }),
                                self.combined_col(RefCol {
                                    rel: e.left_rel,
                                    col: e.left_col,
                                }),
                            )
                        };
                        if !candidate.get(lc).eq_total(candidate.get(rc)) {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        next.push(candidate);
                    }
                }
            }
            acc = next;
            joined_rels.push(rel);
        }

        // 3. Grouping.
        if self.group_cols.is_empty() && self.aggs.is_empty() {
            return Ok(acc);
        }
        let spec = GroupSpec::new(
            self.group_cols
                .iter()
                .map(|&c| self.combined_col(c))
                .collect(),
            self.aggs
                .iter()
                .map(|&(func, c)| AggSpec {
                    func,
                    col: self.combined_col(c),
                })
                .collect(),
        );
        let mut groups: FxHashMap<GroupKey, Vec<AggState>> = FxHashMap::default();
        for t in &acc {
            crate::agg::hash_agg::update_groups(&mut groups, &spec, t)?;
        }
        Ok(groups
            .iter()
            .map(|(k, s)| crate::agg::hash_agg::group_to_tuple(k, s))
            .collect())
    }
}

/// Canonical string form of a result set for order-insensitive comparison
/// in tests and experiments.
pub fn canonicalize(tuples: &[Tuple]) -> Vec<String> {
    let mut v: Vec<String> = tuples.iter().map(|t| format!("{t:?}")).collect();
    v.sort();
    v
}

/// Like [`canonicalize`], but floats are rounded to 6 significant digits.
/// Different plans sum floating-point measures in different orders, so
/// exact comparison across strategies is too strict.
pub fn canonicalize_approx(tuples: &[Tuple]) -> Vec<String> {
    use tukwila_relation::Value;
    let mut v: Vec<String> = tuples
        .iter()
        .map(|t| {
            let parts: Vec<String> = t
                .values()
                .iter()
                .map(|x| match x {
                    Value::Float(f) => format!("{f:.6e}"),
                    other => format!("{other}"),
                })
                .collect();
            parts.join(",")
        })
        .collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::agg::AggFunc;
    use tukwila_relation::{CmpOp, DataType, Field, Value};

    fn rel(prefix: &str, rows: &[(i64, i64)]) -> RefRelation {
        RefRelation {
            schema: Schema::new(vec![
                Field::new(format!("{prefix}.k"), DataType::Int),
                Field::new(format!("{prefix}.v"), DataType::Int),
            ]),
            tuples: rows
                .iter()
                .map(|&(k, v)| Tuple::new(vec![Value::Int(k), Value::Int(v)]))
                .collect(),
        }
    }

    #[test]
    fn two_way_join() {
        let mut q = RefQuery::new(vec![
            rel("a", &[(1, 10), (2, 20)]),
            rel("b", &[(1, 100), (1, 101), (3, 300)]),
        ]);
        q.joins.push(RefJoin {
            left_rel: 0,
            left_col: 0,
            right_rel: 1,
            right_col: 0,
        });
        let out = q.run().unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|t| t.arity() == 4));
    }

    #[test]
    fn filter_applies_before_join() {
        let mut q = RefQuery::new(vec![
            rel("a", &[(1, 10), (2, 20)]),
            rel("b", &[(1, 100), (2, 200)]),
        ]);
        q.filters.push((
            0,
            Expr::cmp(Expr::Col(1), CmpOp::Ge, Expr::Lit(Value::Int(15))),
        ));
        q.joins.push(RefJoin {
            left_rel: 0,
            left_col: 0,
            right_rel: 1,
            right_col: 0,
        });
        let out = q.run().unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0).as_int().unwrap(), 2);
    }

    #[test]
    fn three_way_with_grouping() {
        let mut q = RefQuery::new(vec![
            rel("f", &[(1, 7), (2, 8)]),
            rel("t", &[(1, 5), (1, 6), (2, 5)]),
            rel("c", &[(5, 3), (6, 1)]),
        ]);
        // f.k = t.k, t.v = c.k
        q.joins.push(RefJoin {
            left_rel: 0,
            left_col: 0,
            right_rel: 1,
            right_col: 0,
        });
        q.joins.push(RefJoin {
            left_rel: 1,
            left_col: 1,
            right_rel: 2,
            right_col: 0,
        });
        q.group_cols = vec![RefCol { rel: 0, col: 0 }];
        q.aggs = vec![(AggFunc::Max, RefCol { rel: 2, col: 1 })];
        let out = q.run().unwrap();
        assert_eq!(out.len(), 2);
        let g1 = out
            .iter()
            .find(|t| t.get(0).as_int().unwrap() == 1)
            .unwrap();
        assert_eq!(g1.get(1).as_int().unwrap(), 3, "max(c.v) for f.k=1");
    }

    #[test]
    fn disconnected_relation_is_error() {
        let q = RefQuery {
            relations: vec![rel("a", &[(1, 1)]), rel("b", &[(1, 1)])],
            filters: vec![],
            joins: vec![],
            group_cols: vec![],
            aggs: vec![],
        };
        assert!(q.run().is_err());
    }

    #[test]
    fn cycle_edges_become_residual_filters() {
        // Triangle: a.k=b.k, b.v=c.k, and a.v=c.v (cycle edge).
        let mut q = RefQuery::new(vec![
            rel("a", &[(1, 3), (1, 4)]),
            rel("b", &[(1, 5)]),
            rel("c", &[(5, 3)]),
        ]);
        q.joins.push(RefJoin {
            left_rel: 0,
            left_col: 0,
            right_rel: 1,
            right_col: 0,
        });
        q.joins.push(RefJoin {
            left_rel: 1,
            left_col: 1,
            right_rel: 2,
            right_col: 0,
        });
        q.joins.push(RefJoin {
            left_rel: 0,
            left_col: 1,
            right_rel: 2,
            right_col: 1,
        });
        let out = q.run().unwrap();
        // Only (1,3) x (1,5) x (5,3) satisfies a.v = c.v.
        assert_eq!(out.len(), 1);
    }
}
