//! The cross-thread queue operator (paper §3: Tukwila's special operators
//! include "a queuing operator that supports communication across
//! concurrent threads").
//!
//! The deterministic experiments all run on the single-driver engine, but
//! the parallel-subplan configuration of §5 (complementary plans running
//! concurrently) needs a way to ship batches between plan fragments that
//! execute on different threads. [`queue_pair`] creates a bounded channel
//! whose producer end is an [`IncOp`] (so a pipeline can *end* in a queue)
//! and whose consumer end feeds another pipeline (or is drained manually).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, SendError, Sender, TryRecvError, TrySendError};
use tukwila_relation::{ColumnarBatch, Error, Result, Schema, Tuple};
use tukwila_stats::OpCounters;

use crate::op::{Batch, DataBatch, IncOp};

/// Producer half: a pipeline sink that forwards batches to the channel.
///
/// The channel carries [`DataBatch`], so a producer can ship typed columns
/// instead of boxed rows (see [`QueueWriter::set_columnar`]); every
/// row-level API below is representation-agnostic and unchanged.
pub struct QueueWriter {
    schema: Schema,
    tx: Option<Sender<DataBatch>>,
    counters: Arc<OpCounters>,
    /// Sends that found the queue full and had to block (backpressure).
    blocked: Arc<AtomicU64>,
    /// Transpose row batches to columns before shipping.
    columnar: bool,
}

/// Consumer half: iterate received batches on another thread.
pub struct QueueReader {
    schema: Schema,
    rx: Receiver<DataBatch>,
}

/// Outcome of a non-blocking receive. `Empty` and `Closed` are distinct on
/// purpose: a consumer multiplexing several producer queues (the threaded
/// federation consumer) must be able to tell "no data *yet*" from "this
/// producer is done", or it either spins forever on a finished queue or —
/// worse — declares EOF while the final batches are still buffered.
#[derive(Debug, Clone, PartialEq)]
pub enum TryRecv {
    /// A batch was waiting.
    Batch(Batch),
    /// Nothing buffered, but the producer is still alive.
    Empty,
    /// The producer finished (or dropped its writer) and every buffered
    /// batch has been drained. Nothing more will ever arrive.
    Closed,
}

/// [`TryRecv`] preserving the shipped representation: consumers that
/// understand columns route a [`DataBatch::Columns`] straight into
/// vectorized operator kernels instead of paying the row conversion.
#[derive(Debug, Clone)]
pub enum TryRecvData {
    /// A batch was waiting, in whatever representation the producer sent.
    Batch(DataBatch),
    /// Nothing buffered, but the producer is still alive.
    Empty,
    /// The producer finished and the buffer is drained.
    Closed,
}

/// Create a connected queue pair with the given batch capacity.
///
/// The writer half moves into the producer thread (it is also an
/// [`IncOp`], so a pipeline can end in it); the reader half stays with the
/// consumer and distinguishes "no data yet" from "producer done":
///
/// ```
/// use tukwila_exec::queue::{queue_pair, TryRecv};
/// use tukwila_relation::{DataType, Field, Schema, Tuple, Value};
///
/// let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
/// let (mut writer, reader) = queue_pair(schema, 4);
///
/// let producer = std::thread::spawn(move || {
///     for i in 0..3 {
///         writer.send(vec![Tuple::new(vec![Value::Int(i)])]).unwrap();
///     }
///     // Dropping (or finishing) the writer closes the queue — but only
///     // after every buffered batch has been drained by the reader.
/// });
///
/// let mut got = 0;
/// loop {
///     match reader.try_recv_status() {
///         TryRecv::Batch(batch) => got += batch.len(),
///         TryRecv::Empty => std::thread::yield_now(), // producer still alive
///         TryRecv::Closed => break,                   // done AND drained
///     }
/// }
/// producer.join().unwrap();
/// assert_eq!(got, 3);
/// ```
pub fn queue_pair(schema: Schema, capacity: usize) -> (QueueWriter, QueueReader) {
    let (tx, rx) = bounded(capacity.max(1));
    (
        QueueWriter {
            schema: schema.clone(),
            tx: Some(tx),
            counters: OpCounters::new(),
            blocked: Arc::new(AtomicU64::new(0)),
            columnar: false,
        },
        QueueReader { schema, rx },
    )
}

/// Error message for a send into a queue whose consumer dropped its
/// reader. The single definition the teardown logic matches against
/// (see [`is_hangup`]) — do not inline the string elsewhere.
pub(crate) const CONSUMER_HANGUP: &str = "queue consumer hung up";

/// Whether an error is specifically the consumer-hangup send failure
/// (benign during teardown: the consumer went away on purpose).
pub(crate) fn is_hangup(e: &Error) -> bool {
    matches!(e, Error::Exec(msg) if msg == CONSUMER_HANGUP)
}

impl QueueWriter {
    /// Ship row batches as typed columns. Logically invisible to the
    /// reader (row APIs convert back); columnar-aware consumers receive
    /// the columns intact via [`QueueReader::try_recv_data`].
    pub fn set_columnar(&mut self, on: bool) {
        self.columnar = on;
    }

    /// Whether this writer ships columns (see
    /// [`QueueWriter::set_columnar`]).
    pub fn is_columnar(&self) -> bool {
        self.columnar
    }

    /// Encode an owned row batch into the representation this writer
    /// ships ([`DataBatch::Columns`] when columnar mode is on). Producers
    /// that retry refused sends encode once and carry the encoded batch
    /// through [`QueueWriter::try_send_data`] instead of paying the
    /// transpose on every attempt.
    pub fn encode(&self, batch: Batch) -> DataBatch {
        if self.columnar {
            DataBatch::Columns(ColumnarBatch::from_tuples(&batch))
        } else {
            DataBatch::Rows(batch)
        }
    }

    /// Ship an already-encoded batch without re-encoding: columnar
    /// producer pipelines pass their [`DataBatch::Columns`] output
    /// straight through (columns-on-the-wire), and a refused batch comes
    /// back *encoded*, so retry loops transpose at most once. Non-blocking
    /// like [`QueueWriter::try_send`]; a full queue counts as
    /// backpressure.
    pub fn try_send_data(&mut self, batch: DataBatch) -> Result<Option<DataBatch>> {
        let n = batch.len() as u64;
        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| Error::Exec("queue already closed".into()))?;
        match tx.try_send(batch) {
            Ok(()) => {
                self.counters.add_in(n);
                self.counters.add_out(n);
                Ok(None)
            }
            Err(TrySendError::Full(b)) => {
                self.blocked.fetch_add(1, Ordering::Relaxed);
                Ok(Some(b))
            }
            Err(TrySendError::Disconnected(_)) => Err(Error::Exec(CONSUMER_HANGUP.into())),
        }
    }

    /// Send an owned batch without the slice copy [`IncOp::push`] incurs.
    /// Blocks while the queue is at capacity (counting the event as
    /// backpressure); errors once the consumer hung up.
    pub fn send(&mut self, batch: Batch) -> Result<()> {
        let n = batch.len() as u64;
        let batch = self.encode(batch);
        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| Error::Exec("queue already closed".into()))?;
        let blocked_send = match tx.try_send(batch) {
            Ok(()) => {
                self.counters.add_in(n);
                self.counters.add_out(n);
                return Ok(());
            }
            Err(TrySendError::Full(b)) => {
                self.blocked.fetch_add(1, Ordering::Relaxed);
                tx.send(b)
            }
            Err(TrySendError::Disconnected(_)) => {
                return Err(Error::Exec(CONSUMER_HANGUP.into()));
            }
        };
        match blocked_send {
            Ok(()) => {
                self.counters.add_in(n);
                self.counters.add_out(n);
                Ok(())
            }
            Err(SendError(_)) => Err(Error::Exec(CONSUMER_HANGUP.into())),
        }
    }

    /// Non-blocking send: ship the batch if the queue has room, hand it
    /// back (`Ok(Some(batch))`) if the queue is full — counting the event
    /// as backpressure — and error once the consumer hung up.
    ///
    /// This is the quiesce-aware shipping primitive: a producer fragment
    /// that must be able to park at a batch boundary cannot sit inside a
    /// blocking [`QueueWriter::send`], so it loops `try_send`, checking
    /// its quiesce gate between attempts and carrying the refused batch
    /// into its parked state if asked to stop.
    pub fn try_send(&mut self, batch: Batch) -> Result<Option<Batch>> {
        let n = batch.len() as u64;
        let tx = self
            .tx
            .as_ref()
            .ok_or_else(|| Error::Exec("queue already closed".into()))?;
        if self.columnar {
            // Transpose from the borrowed rows so a refused send hands
            // the caller's batch back untouched (the quiesce carry path).
            let payload = DataBatch::Columns(ColumnarBatch::from_tuples(&batch));
            return match tx.try_send(payload) {
                Ok(()) => {
                    self.counters.add_in(n);
                    self.counters.add_out(n);
                    Ok(None)
                }
                Err(TrySendError::Full(_)) => {
                    self.blocked.fetch_add(1, Ordering::Relaxed);
                    Ok(Some(batch))
                }
                Err(TrySendError::Disconnected(_)) => Err(Error::Exec(CONSUMER_HANGUP.into())),
            };
        }
        match tx.try_send(DataBatch::Rows(batch)) {
            Ok(()) => {
                self.counters.add_in(n);
                self.counters.add_out(n);
                Ok(None)
            }
            Err(TrySendError::Full(b)) => {
                self.blocked.fetch_add(1, Ordering::Relaxed);
                Ok(Some(b.into_rows()))
            }
            Err(TrySendError::Disconnected(_)) => Err(Error::Exec(CONSUMER_HANGUP.into())),
        }
    }

    /// Handle to the backpressure counter, readable after the writer has
    /// moved into its producer thread.
    pub fn blocked_handle(&self) -> Arc<AtomicU64> {
        self.blocked.clone()
    }

    /// Batches currently buffered in the queue (0 once closed). Sampled
    /// by producers after a send to keep a queue-depth high-water mark.
    pub fn depth(&self) -> usize {
        self.tx.as_ref().map_or(0, |tx| tx.len())
    }

    /// Sends (so far) that had to block on a full queue.
    pub fn blocked_sends(&self) -> u64 {
        self.blocked.load(Ordering::Relaxed)
    }
}

impl IncOp for QueueWriter {
    fn name(&self) -> &str {
        "queue"
    }

    fn inputs(&self) -> usize {
        1
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn push(&mut self, _port: usize, batch: &[Tuple], _out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.len() as u64);
        self.counters.add_out(batch.len() as u64);
        let payload = self.encode(batch.to_vec());
        match &self.tx {
            Some(tx) => match tx.send(payload) {
                Ok(()) => Ok(()),
                Err(SendError(_)) => Err(Error::Exec(CONSUMER_HANGUP.into())),
            },
            None => Err(Error::Exec("queue already closed".into())),
        }
    }

    fn finish(&mut self, _out: &mut Batch) -> Result<()> {
        // Dropping the sender closes the channel; the reader sees EOF.
        self.tx = None;
        Ok(())
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }
}

impl QueueReader {
    /// Schema of the batches flowing through the queue.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Receive the next batch; `None` once the producer finished *and*
    /// every buffered batch has been drained. Batches buffered when the
    /// writer dropped are still delivered — a writer drop never loses
    /// in-flight data.
    pub fn recv(&self) -> Option<Batch> {
        self.rx.recv().ok().map(DataBatch::into_rows)
    }

    /// Like [`QueueReader::recv`], but preserving the representation the
    /// producer shipped.
    pub fn recv_data(&self) -> Option<DataBatch> {
        self.rx.recv().ok()
    }

    /// Non-blocking receive with explicit EOF: see [`TryRecv`]. This is
    /// the call multiplexing consumers must use — the historical
    /// [`QueueReader::try_recv`] collapsed `Empty` and `Closed` into
    /// `None`, which disagreed with [`QueueReader::recv`] after a writer
    /// drop (recv still surfaced the buffered final batches; a
    /// `try_recv`-driven loop treating `None` as EOF walked away from
    /// them).
    pub fn try_recv_status(&self) -> TryRecv {
        match self.rx.try_recv() {
            Ok(b) => TryRecv::Batch(b.into_rows()),
            Err(TryRecvError::Empty) => TryRecv::Empty,
            Err(TryRecvError::Disconnected) => TryRecv::Closed,
        }
    }

    /// [`QueueReader::try_recv_status`] preserving the shipped
    /// representation (see [`TryRecvData`]).
    pub fn try_recv_data(&self) -> TryRecvData {
        match self.rx.try_recv() {
            Ok(b) => TryRecvData::Batch(b),
            Err(TryRecvError::Empty) => TryRecvData::Empty,
            Err(TryRecvError::Disconnected) => TryRecvData::Closed,
        }
    }

    /// Non-blocking receive, conflating "empty" with "closed". Only safe
    /// when the caller never uses `None` as an EOF signal; prefer
    /// [`QueueReader::try_recv_status`].
    pub fn try_recv(&self) -> Option<Batch> {
        self.rx.try_recv().ok().map(DataBatch::into_rows)
    }

    /// Drain everything remaining (blocks until producer EOF). Built on
    /// [`QueueReader::recv`], so batches that were still buffered when the
    /// writer dropped are included.
    pub fn drain(&self) -> Vec<Tuple> {
        let mut out = Vec::new();
        while let Some(b) = self.recv() {
            out.extend(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{DataType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("x", DataType::Int)])
    }

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn ships_batches_across_threads() {
        let (mut writer, reader) = queue_pair(schema(), 4);
        let consumer = std::thread::spawn(move || reader.drain());
        let mut sink = Batch::new();
        for i in 0..10 {
            writer
                .push(0, &[t(i * 2), t(i * 2 + 1)], &mut sink)
                .unwrap();
        }
        writer.finish(&mut sink).unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got.len(), 20);
        let vals: Vec<i64> = got.iter().map(|x| x.get(0).as_int().unwrap()).collect();
        assert_eq!(vals, (0..20).collect::<Vec<_>>(), "order preserved");
        assert_eq!(writer.counters().tuples_out(), 20);
    }

    #[test]
    fn finish_signals_eof() {
        let (mut writer, reader) = queue_pair(schema(), 2);
        let mut sink = Batch::new();
        writer.push(0, &[t(1)], &mut sink).unwrap();
        writer.finish(&mut sink).unwrap();
        assert_eq!(reader.recv().unwrap().len(), 1);
        assert!(reader.recv().is_none(), "closed after finish");
        // Writing after finish is an error.
        assert!(writer.push(0, &[t(2)], &mut sink).is_err());
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        let (mut writer, reader) = queue_pair(schema(), 1);
        let mut sink = Batch::new();
        writer.push(0, &[t(1)], &mut sink).unwrap();
        // Queue full: a second push would block, so consume first.
        assert_eq!(reader.try_recv().unwrap().len(), 1);
        writer.push(0, &[t(2)], &mut sink).unwrap();
        assert_eq!(reader.try_recv().unwrap().len(), 1);
        assert!(reader.try_recv().is_none());
    }

    #[test]
    fn try_recv_status_distinguishes_empty_from_closed() {
        let (mut writer, reader) = queue_pair(schema(), 2);
        assert_eq!(reader.try_recv_status(), TryRecv::Empty);
        writer.send(vec![t(1)]).unwrap();
        assert_eq!(reader.try_recv_status(), TryRecv::Batch(vec![t(1)]));
        assert_eq!(reader.try_recv_status(), TryRecv::Empty, "alive, no data");
        writer.finish(&mut Batch::new()).unwrap();
        assert_eq!(reader.try_recv_status(), TryRecv::Closed);
        assert_eq!(reader.try_recv_status(), TryRecv::Closed, "closed latches");
    }

    #[test]
    fn writer_drop_mid_stream_loses_nothing() {
        // The writer enqueues two batches and is dropped without finish()
        // (a producer thread dying mid-batch). The buffered batches must
        // still come out, *then* the queue reads Closed — recv and
        // try_recv_status agree.
        let (mut writer, reader) = queue_pair(schema(), 4);
        writer.send(vec![t(1), t(2)]).unwrap();
        writer.send(vec![t(3)]).unwrap();
        drop(writer);
        assert_eq!(reader.try_recv_status(), TryRecv::Batch(vec![t(1), t(2)]));
        assert_eq!(reader.recv().unwrap(), vec![t(3)]);
        assert_eq!(reader.try_recv_status(), TryRecv::Closed);
        assert!(reader.recv().is_none());
    }

    #[test]
    fn send_counts_backpressure() {
        let (mut writer, reader) = queue_pair(schema(), 1);
        let blocked = writer.blocked_handle();
        writer.send(vec![t(1)]).unwrap();
        assert_eq!(writer.blocked_sends(), 0);
        // The queue is now full, so this producer's next send must take
        // the blocked path; the consumer only starts draining once the
        // backpressure event has been recorded, keeping the test
        // deterministic.
        let producer = std::thread::spawn(move || {
            writer.send(vec![t(2)]).unwrap();
            writer.finish(&mut Batch::new()).unwrap();
            writer
        });
        while blocked.load(std::sync::atomic::Ordering::Relaxed) == 0 {
            std::thread::yield_now();
        }
        assert_eq!(reader.drain().len(), 2);
        let writer = producer.join().unwrap();
        assert_eq!(writer.blocked_sends(), 1);
        assert_eq!(writer.counters().tuples_out(), 2);
    }

    #[test]
    fn try_send_hands_back_on_full_and_errors_on_hangup() {
        let (mut writer, reader) = queue_pair(schema(), 1);
        assert!(writer.try_send(vec![t(1)]).unwrap().is_none());
        // Queue full: the batch comes back instead of blocking.
        let back = writer.try_send(vec![t(2)]).unwrap().unwrap();
        assert_eq!(back, vec![t(2)]);
        assert_eq!(writer.blocked_sends(), 1);
        assert_eq!(reader.try_recv().unwrap(), vec![t(1)]);
        assert!(writer.try_send(back).unwrap().is_none());
        drop(reader);
        assert!(writer.try_send(vec![t(3)]).is_err());
    }

    #[test]
    fn columnar_shipping_is_logically_invisible() {
        let (mut writer, reader) = queue_pair(schema(), 4);
        writer.set_columnar(true);
        writer.send(vec![t(1), t(2)]).unwrap();
        // Row API converts back transparently.
        assert_eq!(reader.recv().unwrap(), vec![t(1), t(2)]);
        // Columnar-aware API sees the columns intact.
        writer.send(vec![t(3)]).unwrap();
        match reader.try_recv_data() {
            TryRecvData::Batch(DataBatch::Columns(c)) => {
                assert_eq!(c.to_tuples(), vec![t(3)]);
            }
            other => panic!("expected columnar batch, got {other:?}"),
        }
        // Full queue hands the original rows back on try_send.
        let (mut w2, r2) = queue_pair(schema(), 1);
        w2.set_columnar(true);
        assert!(w2.try_send(vec![t(1)]).unwrap().is_none());
        let back = w2.try_send(vec![t(2)]).unwrap().unwrap();
        assert_eq!(back, vec![t(2)]);
        assert_eq!(r2.recv().unwrap(), vec![t(1)]);
    }

    #[test]
    fn try_send_data_carries_encoding_across_retries() {
        let (mut writer, reader) = queue_pair(schema(), 1);
        writer.set_columnar(true);
        assert!(writer.is_columnar());
        let first = writer.encode(vec![t(1)]);
        assert!(matches!(first, DataBatch::Columns(_)));
        assert!(writer.try_send_data(first).unwrap().is_none());
        // Queue full: the *encoded* batch comes back, no re-transpose
        // needed on the retry.
        let staged = writer.encode(vec![t(2), t(3)]);
        let back = writer.try_send_data(staged).unwrap().unwrap();
        assert!(matches!(back, DataBatch::Columns(_)));
        assert_eq!(writer.blocked_sends(), 1);
        assert_eq!(reader.recv().unwrap(), vec![t(1)]);
        assert!(writer.try_send_data(back).unwrap().is_none());
        assert_eq!(reader.recv().unwrap(), vec![t(2), t(3)]);
        assert_eq!(writer.counters().tuples_out(), 3);
        drop(reader);
        assert!(writer.try_send_data(DataBatch::Rows(vec![t(4)])).is_err());
    }

    #[test]
    fn send_after_consumer_hangup_errors() {
        let (mut writer, reader) = queue_pair(schema(), 1);
        drop(reader);
        assert!(writer.send(vec![t(1)]).is_err());
    }

    /// A producer pipeline on one thread feeding a consumer join on
    /// another — the parallel-subplan shape of §5's first implementation.
    #[test]
    fn pipeline_to_pipeline_threading() {
        use crate::join::pipelined_hash::PipelinedHashJoin;
        let (mut writer, reader) = queue_pair(schema(), 8);
        let consumer = std::thread::spawn(move || {
            let mut join = PipelinedHashJoin::new(
                Schema::new(vec![Field::new("l.x", DataType::Int)]),
                Schema::new(vec![Field::new("r.x", DataType::Int)]),
                0,
                0,
            );
            let mut out = Batch::new();
            // Build side arrives over the queue...
            while let Some(batch) = reader.recv() {
                join.push(0, &batch, &mut out).unwrap();
            }
            // ...then probe locally.
            let probes: Vec<Tuple> = (0..50).map(|i| t(i % 10)).collect();
            join.push(1, &probes, &mut out).unwrap();
            out.len()
        });
        let mut sink = Batch::new();
        for i in 0..10 {
            writer.push(0, &[t(i)], &mut sink).unwrap();
        }
        writer.finish(&mut sink).unwrap();
        assert_eq!(consumer.join().unwrap(), 50);
    }
}
