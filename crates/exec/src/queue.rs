//! The cross-thread queue operator (paper §3: Tukwila's special operators
//! include "a queuing operator that supports communication across
//! concurrent threads").
//!
//! The deterministic experiments all run on the single-driver engine, but
//! the parallel-subplan configuration of §5 (complementary plans running
//! concurrently) needs a way to ship batches between plan fragments that
//! execute on different threads. [`queue_pair`] creates a bounded channel
//! whose producer end is an [`IncOp`] (so a pipeline can *end* in a queue)
//! and whose consumer end feeds another pipeline (or is drained manually).

use std::sync::Arc;

use crossbeam::channel::{bounded, Receiver, SendError, Sender};
use tukwila_relation::{Error, Result, Schema, Tuple};
use tukwila_stats::OpCounters;

use crate::op::{Batch, IncOp};

/// Producer half: a pipeline sink that forwards batches to the channel.
pub struct QueueWriter {
    schema: Schema,
    tx: Option<Sender<Batch>>,
    counters: Arc<OpCounters>,
}

/// Consumer half: iterate received batches on another thread.
pub struct QueueReader {
    schema: Schema,
    rx: Receiver<Batch>,
}

/// Create a connected queue pair with the given batch capacity.
pub fn queue_pair(schema: Schema, capacity: usize) -> (QueueWriter, QueueReader) {
    let (tx, rx) = bounded(capacity.max(1));
    (
        QueueWriter {
            schema: schema.clone(),
            tx: Some(tx),
            counters: OpCounters::new(),
        },
        QueueReader { schema, rx },
    )
}

impl IncOp for QueueWriter {
    fn name(&self) -> &str {
        "queue"
    }

    fn inputs(&self) -> usize {
        1
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn push(&mut self, _port: usize, batch: &[Tuple], _out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.len() as u64);
        self.counters.add_out(batch.len() as u64);
        match &self.tx {
            Some(tx) => match tx.send(batch.to_vec()) {
                Ok(()) => Ok(()),
                Err(SendError(_)) => Err(Error::Exec("queue consumer hung up".into())),
            },
            None => Err(Error::Exec("queue already closed".into())),
        }
    }

    fn finish(&mut self, _out: &mut Batch) -> Result<()> {
        // Dropping the sender closes the channel; the reader sees EOF.
        self.tx = None;
        Ok(())
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }
}

impl QueueReader {
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Receive the next batch; `None` once the producer finished.
    pub fn recv(&self) -> Option<Batch> {
        self.rx.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Batch> {
        self.rx.try_recv().ok()
    }

    /// Drain everything remaining (blocks until producer EOF).
    pub fn drain(&self) -> Vec<Tuple> {
        let mut out = Vec::new();
        while let Some(b) = self.recv() {
            out.extend(b);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{DataType, Field, Value};

    fn schema() -> Schema {
        Schema::new(vec![Field::new("x", DataType::Int)])
    }

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn ships_batches_across_threads() {
        let (mut writer, reader) = queue_pair(schema(), 4);
        let consumer = std::thread::spawn(move || reader.drain());
        let mut sink = Batch::new();
        for i in 0..10 {
            writer
                .push(0, &[t(i * 2), t(i * 2 + 1)], &mut sink)
                .unwrap();
        }
        writer.finish(&mut sink).unwrap();
        let got = consumer.join().unwrap();
        assert_eq!(got.len(), 20);
        let vals: Vec<i64> = got.iter().map(|x| x.get(0).as_int().unwrap()).collect();
        assert_eq!(vals, (0..20).collect::<Vec<_>>(), "order preserved");
        assert_eq!(writer.counters().tuples_out(), 20);
    }

    #[test]
    fn finish_signals_eof() {
        let (mut writer, reader) = queue_pair(schema(), 2);
        let mut sink = Batch::new();
        writer.push(0, &[t(1)], &mut sink).unwrap();
        writer.finish(&mut sink).unwrap();
        assert_eq!(reader.recv().unwrap().len(), 1);
        assert!(reader.recv().is_none(), "closed after finish");
        // Writing after finish is an error.
        assert!(writer.push(0, &[t(2)], &mut sink).is_err());
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        let (mut writer, reader) = queue_pair(schema(), 1);
        let mut sink = Batch::new();
        writer.push(0, &[t(1)], &mut sink).unwrap();
        // Queue full: a second push would block, so consume first.
        assert_eq!(reader.try_recv().unwrap().len(), 1);
        writer.push(0, &[t(2)], &mut sink).unwrap();
        assert_eq!(reader.try_recv().unwrap().len(), 1);
        assert!(reader.try_recv().is_none());
    }

    /// A producer pipeline on one thread feeding a consumer join on
    /// another — the parallel-subplan shape of §5's first implementation.
    #[test]
    fn pipeline_to_pipeline_threading() {
        use crate::join::pipelined_hash::PipelinedHashJoin;
        let (mut writer, reader) = queue_pair(schema(), 8);
        let consumer = std::thread::spawn(move || {
            let mut join = PipelinedHashJoin::new(
                Schema::new(vec![Field::new("l.x", DataType::Int)]),
                Schema::new(vec![Field::new("r.x", DataType::Int)]),
                0,
                0,
            );
            let mut out = Batch::new();
            // Build side arrives over the queue...
            while let Some(batch) = reader.recv() {
                join.push(0, &batch, &mut out).unwrap();
            }
            // ...then probe locally.
            let probes: Vec<Tuple> = (0..50).map(|i| t(i % 10)).collect();
            join.push(1, &probes, &mut out).unwrap();
            out.len()
        });
        let mut sink = Batch::new();
        for i in 0..10 {
            writer.push(0, &[t(i)], &mut sink).unwrap();
        }
        writer.finish(&mut sink).unwrap();
        assert_eq!(consumer.join().unwrap(), 50);
    }
}
