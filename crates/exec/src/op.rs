//! The incremental operator protocol.

use std::sync::Arc;

use tukwila_relation::{ColumnarBatch, Result, Schema, Tuple};
use tukwila_stats::OpCounters;
use tukwila_storage::StateStructure;

/// A batch of tuples flowing through the pipeline.
pub type Batch = Vec<Tuple>;

/// A batch in either representation. Exchanges and other transport edges
/// carry this so producers can ship typed columns instead of boxed rows;
/// consumers that only understand rows call [`DataBatch::into_rows`] and
/// stay correct unmodified.
#[derive(Debug, Clone)]
pub enum DataBatch {
    /// Row layout (`Vec<Tuple>`), the operator protocol's native form.
    Rows(Batch),
    /// Columnar layout; logically equivalent to
    /// [`ColumnarBatch::to_tuples`].
    Columns(ColumnarBatch),
}

impl DataBatch {
    /// Logical row count (columnar batches count selected rows).
    pub fn len(&self) -> usize {
        match self {
            DataBatch::Rows(b) => b.len(),
            DataBatch::Columns(c) => c.selected_rows(),
        }
    }

    /// Whether the batch holds zero logical rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Convert to the row representation (no-op for row batches).
    pub fn into_rows(self) -> Batch {
        match self {
            DataBatch::Rows(b) => b,
            DataBatch::Columns(c) => c.to_tuples(),
        }
    }

    /// Rough in-memory footprint in bytes.
    pub fn approx_bytes(&self) -> usize {
        match self {
            DataBatch::Rows(b) => b.iter().map(Tuple::approx_bytes).sum(),
            DataBatch::Columns(c) => c.approx_bytes(),
        }
    }
}

impl From<Batch> for DataBatch {
    fn from(b: Batch) -> DataBatch {
        DataBatch::Rows(b)
    }
}

impl From<ColumnarBatch> for DataBatch {
    fn from(c: ColumnarBatch) -> DataBatch {
        DataBatch::Columns(c)
    }
}

/// A state structure extracted from an operator when its plan is sealed
/// (end of a phase). `port` identifies which input the structure buffered
/// (0 = left/only input, 1 = right input); the phase manager maps ports to
/// logical subexpression signatures and registers the structure.
pub struct ExtractedState {
    /// Input port whose data the structure buffered (0 = left/only).
    pub port: usize,
    /// Schema of the buffered tuples.
    pub schema: Schema,
    /// The extracted state structure itself.
    pub structure: Arc<dyn StateStructure>,
}

/// An incremental (push-based) operator.
///
/// The engine pushes batches into an input port; the operator appends any
/// output it can produce *now* to `out`. Blocking operators (aggregation,
/// the build side of a hybrid hash join) hold data until [`IncOp::finish`].
/// Because every push fully propagates before the next one is admitted,
/// batch boundaries are consistent suspension points (§3's requirement for
/// mid-pipeline plan switching).
pub trait IncOp: Send {
    /// Operator display name.
    fn name(&self) -> &str;

    /// Number of input ports (1 or 2).
    fn inputs(&self) -> usize;

    /// Output schema.
    fn schema(&self) -> &Schema;

    /// Push a batch into `port`, appending produced tuples to `out`.
    fn push(&mut self, port: usize, batch: &[Tuple], out: &mut Batch) -> Result<()>;

    /// Push a columnar batch into `port`. The default materializes rows
    /// and delegates to [`IncOp::push`], so operators migrate to
    /// vectorized kernels one at a time while the rest stay correct.
    fn push_columns(&mut self, port: usize, batch: &ColumnarBatch, out: &mut Batch) -> Result<()> {
        let rows = batch.to_tuples();
        self.push(port, &rows, out)
    }

    /// Signal that input `port` is exhausted. May emit buffered output
    /// (e.g. a hybrid hash join starts streaming probes once the build
    /// input ends).
    fn finish_input(&mut self, port: usize, out: &mut Batch) -> Result<()> {
        let _ = (port, out);
        Ok(())
    }

    /// All inputs exhausted: flush everything (blocking operators emit
    /// their results here).
    fn finish(&mut self, out: &mut Batch) -> Result<()> {
        let _ = out;
        Ok(())
    }

    /// Per-operator counters (§3.3: every operator counts its output).
    fn counters(&self) -> &Arc<OpCounters>;

    /// Expose accumulated state structures for cross-plan reuse (§3.1).
    /// Called once, when the plan is sealed; the operator gives up
    /// ownership.
    fn extract_states(&mut self) -> Vec<ExtractedState> {
        Vec::new()
    }
}
