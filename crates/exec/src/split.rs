//! Split, combine, and router components (paper §3: "Tukwila has special
//! operators for sharing information between subplans: split, which
//! partitions data across different plans; combine, which unions data from
//! different plans").
//!
//! The router implements §3.3's "router module that helps the split
//! operator decide what subplan is most appropriate for an incoming tuple",
//! including the order-conformance test and the priority-queue
//! pre-processing used by the complementary join pair (§5).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use tukwila_relation::{Key, Tuple};

/// Output port chosen by a router.
pub type Port = usize;

/// Decides, per tuple, which subplan receives it.
pub trait Router: Send {
    /// Destination port for `t`, without buffering.
    fn route(&mut self, t: &Tuple) -> Port;

    /// Hand a tuple to the router; it may buffer it (returning `None`) or
    /// release a — possibly different — tuple with its destination.
    /// Buffering routers (priority queue) override this; the default
    /// routes immediately.
    fn offer(&mut self, t: Tuple) -> Option<(Port, Tuple)> {
        let p = self.route(&t);
        Some((p, t))
    }

    /// Flush any internally buffered tuples (port, tuple) at end of input.
    fn drain(&mut self) -> Vec<(Port, Tuple)> {
        Vec::new()
    }
}

/// Routes tuples that continue an ascending run on `key_col` to port 0
/// (the order-exploiting subplan) and order violators to port 1.
pub struct OrderRouter {
    key_col: usize,
    last_in_order: Option<Key>,
}

impl OrderRouter {
    /// A router tracking ascending runs on `key_col`.
    pub fn new(key_col: usize) -> OrderRouter {
        OrderRouter {
            key_col,
            last_in_order: None,
        }
    }

    fn classify(&mut self, t: &Tuple) -> Port {
        let k = t.key(self.key_col);
        match &self.last_in_order {
            Some(last) if k < *last => 1,
            _ => {
                self.last_in_order = Some(k);
                0
            }
        }
    }
}

impl Router for OrderRouter {
    fn route(&mut self, t: &Tuple) -> Port {
        self.classify(t)
    }
}

/// [`OrderRouter`] preceded by a bounded priority queue that re-sorts
/// recently received tuples before routing (the paper's "more
/// sophisticated implementation, which uses a priority queue (holding up
/// to 1024 tuples)").
pub struct PriorityQueueRouter {
    inner: OrderRouter,
    heap: BinaryHeap<Reverse<(Key, u64, TupleBox)>>,
    capacity: usize,
    seq: u64,
}

/// Wrapper giving `Tuple` the `Ord` the heap needs (never actually
/// compared: the `(key, seq)` prefix is unique).
struct TupleBox(Tuple);

impl PartialEq for TupleBox {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}
impl Eq for TupleBox {}
impl PartialOrd for TupleBox {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TupleBox {
    fn cmp(&self, _: &Self) -> std::cmp::Ordering {
        std::cmp::Ordering::Equal
    }
}

impl PriorityQueueRouter {
    /// An order router buffering up to `capacity` tuples for re-sorting.
    pub fn new(key_col: usize, capacity: usize) -> PriorityQueueRouter {
        PriorityQueueRouter {
            inner: OrderRouter::new(key_col),
            heap: BinaryHeap::with_capacity(capacity + 1),
            capacity: capacity.max(1),
            seq: 0,
        }
    }

    /// Push a tuple; if the queue overflows, the smallest buffered tuple is
    /// released and routed.
    pub fn push(&mut self, t: Tuple) -> Option<(Port, Tuple)> {
        let key = t.key(self.inner.key_col);
        self.heap.push(Reverse((key, self.seq, TupleBox(t))));
        self.seq += 1;
        if self.heap.len() > self.capacity {
            let Reverse((_, _, TupleBox(out))) = self.heap.pop().expect("non-empty");
            let port = self.inner.classify(&out);
            return Some((port, out));
        }
        None
    }
}

impl Router for PriorityQueueRouter {
    fn route(&mut self, t: &Tuple) -> Port {
        // Immediate-routing fallback: classify without buffering. Callers
        // that want the re-sorting behaviour must use `offer`/`drain`.
        self.inner.classify(t)
    }

    fn offer(&mut self, t: Tuple) -> Option<(Port, Tuple)> {
        self.push(t)
    }

    fn drain(&mut self) -> Vec<(Port, Tuple)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(Reverse((_, _, TupleBox(t)))) = self.heap.pop() {
            let port = self.inner.classify(&t);
            out.push((port, t));
        }
        out
    }
}

/// Splits a batch across `n` output buffers according to a router.
pub struct Split<R: Router> {
    router: R,
    n: usize,
}

impl<R: Router> Split<R> {
    /// A splitter over `n` output ports.
    pub fn new(router: R, n: usize) -> Split<R> {
        Split { router, n }
    }

    /// Route a batch; returns one buffer per output port. Allocates the
    /// port buffers every call — steady-state callers should hold a
    /// `Vec<Vec<Tuple>>` and use [`Split::split_into`] instead.
    pub fn split(&mut self, batch: &[Tuple]) -> Vec<Vec<Tuple>> {
        let mut out = Vec::new();
        self.split_into(batch, &mut out);
        out
    }

    /// Route a batch into caller-owned port buffers, clearing and reusing
    /// them (their capacity survives across batches, so a port that stays
    /// empty costs nothing after the first call).
    pub fn split_into(&mut self, batch: &[Tuple], out: &mut Vec<Vec<Tuple>>) {
        prepare_port_buffers(out, self.n);
        for t in batch {
            let p = self.router.route(t).min(self.n - 1);
            out[p].push(t.clone());
        }
    }

    /// Flush buffered tuples at end of input. Allocates like
    /// [`Split::split`]; see [`Split::drain_into`].
    pub fn drain(&mut self) -> Vec<Vec<Tuple>> {
        let mut out = Vec::new();
        self.drain_into(&mut out);
        out
    }

    /// Flush buffered tuples into caller-owned, reused port buffers.
    pub fn drain_into(&mut self, out: &mut Vec<Vec<Tuple>>) {
        prepare_port_buffers(out, self.n);
        for (p, t) in self.router.drain() {
            out[p.min(self.n - 1)].push(t);
        }
    }
}

/// Clear and resize a set of per-port buffers without dropping their
/// allocations.
fn prepare_port_buffers(out: &mut Vec<Vec<Tuple>>, n: usize) {
    for b in out.iter_mut() {
        b.clear();
    }
    out.resize_with(n, Vec::new);
}

/// Unions batches from multiple subplans (trivial, but named for symmetry
/// with the paper's operator set).
pub fn combine(parts: Vec<Vec<Tuple>>) -> Vec<Tuple> {
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend(p);
    }
    out
}

/// [`combine`] without consuming the per-port buffers: drains each into
/// `out` so the buffers can be refilled by the next
/// [`Split::split_into`] call.
pub fn combine_into(parts: &mut [Vec<Tuple>], out: &mut Vec<Tuple>) {
    out.reserve(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.append(p);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::Value;

    fn t(v: i64) -> Tuple {
        Tuple::new(vec![Value::Int(v)])
    }

    #[test]
    fn order_router_separates_violators() {
        let mut r = OrderRouter::new(0);
        let ports: Vec<Port> = [1, 2, 5, 3, 6, 4, 7]
            .iter()
            .map(|&v| r.route(&t(v)))
            .collect();
        // 3 and 4 violate the ascending run (after 5 and 6).
        assert_eq!(ports, vec![0, 0, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn order_router_equal_keys_stay_in_order() {
        let mut r = OrderRouter::new(0);
        assert_eq!(r.route(&t(5)), 0);
        assert_eq!(r.route(&t(5)), 0);
    }

    #[test]
    fn pq_router_repairs_small_disorder() {
        // Stream with adjacent swaps; queue of 4 should repair everything.
        let mut r = PriorityQueueRouter::new(0, 4);
        let mut merged = 0;
        let mut hashed = 0;
        let stream = [2, 1, 4, 3, 6, 5, 8, 7, 10, 9];
        for v in stream {
            if let Some((p, _)) = r.push(t(v)) {
                if p == 0 {
                    merged += 1;
                } else {
                    hashed += 1;
                }
            }
        }
        for (p, _) in r.drain() {
            if p == 0 {
                merged += 1;
            } else {
                hashed += 1;
            }
        }
        assert_eq!(merged, 10);
        assert_eq!(hashed, 0);
    }

    #[test]
    fn naive_router_fails_where_pq_succeeds() {
        let mut naive = OrderRouter::new(0);
        let stream = [2, 1, 4, 3, 6, 5];
        let violations = stream.iter().filter(|&&v| naive.route(&t(v)) == 1).count();
        assert!(violations >= 2, "naive router misroutes swapped pairs");
    }

    #[test]
    fn split_and_combine_roundtrip() {
        let mut s = Split::new(OrderRouter::new(0), 2);
        let batch = vec![t(1), t(3), t(2), t(4)];
        let parts = s.split(&batch);
        assert_eq!(parts[0].len() + parts[1].len(), 4);
        assert_eq!(parts[1].len(), 1, "only the 2 after 3 violates");
        let all = combine(parts);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn split_into_reuses_buffers() {
        let mut s = Split::new(OrderRouter::new(0), 2);
        let mut bufs: Vec<Vec<Tuple>> = Vec::new();
        s.split_into(&[t(1), t(3), t(2)], &mut bufs);
        assert_eq!(bufs.len(), 2);
        assert_eq!(bufs[0].len(), 2);
        assert_eq!(bufs[1].len(), 1);
        let cap0 = bufs[0].capacity();
        let mut merged = Vec::new();
        combine_into(&mut bufs, &mut merged);
        assert_eq!(merged.len(), 3);
        assert!(bufs.iter().all(Vec::is_empty), "combine_into drains");
        // Second batch reuses the same buffers (capacity survives).
        s.split_into(&[t(4), t(5)], &mut bufs);
        assert!(bufs[0].capacity() >= cap0.min(2));
        assert_eq!(bufs[0].len() + bufs[1].len(), 2);
        let mut drained = Vec::new();
        s.drain_into(&mut drained);
        assert_eq!(drained.len(), 2);
    }

    #[test]
    fn pq_drain_emits_in_sorted_order() {
        let mut r = PriorityQueueRouter::new(0, 100);
        for v in [5, 1, 9, 3] {
            assert!(r.push(t(v)).is_none());
        }
        let drained = r.drain();
        let vals: Vec<i64> = drained
            .iter()
            .map(|(_, t)| t.get(0).as_int().unwrap())
            .collect();
        assert_eq!(vals, vec![1, 3, 5, 9]);
        assert!(drained.iter().all(|(p, _)| *p == 0));
    }
}
