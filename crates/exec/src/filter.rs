//! Selection operator.

use std::sync::Arc;

use tukwila_relation::column::eval_predicate;
use tukwila_relation::{ColumnarBatch, Expr, Result, Schema, Tuple};
use tukwila_stats::OpCounters;

use crate::op::{Batch, IncOp};

/// Pipelined selection: passes tuples matching a predicate.
pub struct FilterOp {
    predicate: Expr,
    schema: Schema,
    counters: Arc<OpCounters>,
}

impl FilterOp {
    /// A filter keeping tuples for which `predicate` evaluates true.
    pub fn new(predicate: Expr, schema: Schema) -> FilterOp {
        FilterOp {
            predicate,
            schema,
            counters: OpCounters::new(),
        }
    }
}

impl IncOp for FilterOp {
    fn name(&self) -> &str {
        "filter"
    }

    fn inputs(&self) -> usize {
        1
    }

    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn push(&mut self, _port: usize, batch: &[Tuple], out: &mut Batch) -> Result<()> {
        self.counters.add_in(batch.len() as u64);
        let before = out.len();
        for t in batch {
            if self.predicate.matches(t)? {
                out.push(t.clone());
            }
        }
        self.counters.add_out((out.len() - before) as u64);
        self.counters.add_work(batch.len() as u64);
        Ok(())
    }

    fn push_columns(&mut self, _port: usize, batch: &ColumnarBatch, out: &mut Batch) -> Result<()> {
        let n = batch.selected_rows();
        self.counters.add_in(n as u64);
        let before = out.len();
        match eval_predicate(&self.predicate, batch) {
            Ok(mut mask) => {
                if let Some(sel) = batch.selection() {
                    mask.and(sel);
                }
                for r in mask.iter_ones() {
                    out.push(batch.tuple_at(r));
                }
            }
            // Predicate outside the vectorizable subset: the row path
            // reproduces exact error and short-circuit semantics.
            Err(_) => {
                for t in batch.to_tuples() {
                    if self.predicate.matches(&t)? {
                        out.push(t);
                    }
                }
            }
        }
        self.counters.add_out((out.len() - before) as u64);
        self.counters.add_work(n as u64);
        Ok(())
    }

    fn counters(&self) -> &Arc<OpCounters> {
        &self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::{CmpOp, DataType, Field, Value};

    #[test]
    fn filters_and_counts() {
        let schema = Schema::new(vec![Field::new("x", DataType::Int)]);
        let pred = Expr::cmp(Expr::Col(0), CmpOp::Ge, Expr::Lit(Value::Int(5)));
        let mut f = FilterOp::new(pred, schema);
        let batch: Vec<Tuple> = (0..10).map(|i| Tuple::new(vec![Value::Int(i)])).collect();
        let mut out = Vec::new();
        f.push(0, &batch, &mut out).unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(f.counters().tuples_in(), 10);
        assert_eq!(f.counters().tuples_out(), 5);
        assert_eq!(f.counters().ratio(), Some(0.5));
    }
}
