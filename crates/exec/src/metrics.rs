//! Execution reports.

/// Timing/volume summary of one plan execution.
///
/// All durations are **timeline µs** (the unit of
/// [`tukwila_stats::Clock::now_us`]): identical to simulated µs under the
/// virtual clock, and to `real µs × scale` under an accelerated wall
/// clock.
///
/// Derive surface: `Clone + Default + PartialEq` (no `Copy` — the
/// per-exchange backpressure table is heap-allocated, and the historical
/// `Copy` bound was never load-bearing; no `Eq` — reports are compared
/// with [`ExecReport::approx_eq`] when timing fields are involved, since
/// exact equality of measured durations is only meaningful under the
/// virtual clock).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    /// Completion time (timeline µs), including waiting for source
    /// arrivals.
    pub virtual_us: u64,
    /// CPU time charged to query processing (timeline µs).
    pub cpu_us: u64,
    /// Time spent idle waiting for sources (timeline µs).
    pub idle_us: u64,
    /// Answer tuples produced at the root (count).
    pub tuples_out: u64,
    /// Source batches processed (count).
    pub batches: u64,
    /// High-water mark of exchange-queue depth (batches buffered in any
    /// one exchange queue at once). 0 for unfragmented runs, which have
    /// no queues.
    pub max_queue_depth: u64,
    /// Per-exchange backpressure: `(exchange rel_id, blocked sends)` for
    /// every exchange whose producer found the queue full at least once,
    /// in ascending `rel_id` order. Empty for unfragmented runs.
    pub blocked_by_exchange: Vec<(u32, u64)>,
}

impl ExecReport {
    /// Completion time in timeline seconds.
    pub fn virtual_secs(&self) -> f64 {
        self.virtual_us as f64 / 1e6
    }

    /// CPU time in seconds.
    pub fn cpu_secs(&self) -> f64 {
        self.cpu_us as f64 / 1e6
    }

    /// Total blocked sends across every exchange queue.
    pub fn blocked_sends(&self) -> u64 {
        self.blocked_by_exchange.iter().map(|(_, n)| n).sum()
    }

    /// Float-safe comparison for tests and golden checks: exact on the
    /// count fields (tuples, batches, queue stats), within `tol_us`
    /// timeline µs on every duration field. Use this instead of `==`
    /// whenever wall-clock measurement noise is in play; `==` remains
    /// exact and is only meaningful for virtual-clock runs.
    pub fn approx_eq(&self, other: &ExecReport, tol_us: u64) -> bool {
        self.tuples_out == other.tuples_out
            && self.batches == other.batches
            && self.max_queue_depth == other.max_queue_depth
            && self.blocked_by_exchange == other.blocked_by_exchange
            && self.virtual_us.abs_diff(other.virtual_us) <= tol_us
            && self.cpu_us.abs_diff(other.cpu_us) <= tol_us
            && self.idle_us.abs_diff(other.idle_us) <= tol_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_conversions() {
        let r = ExecReport {
            virtual_us: 2_500_000,
            cpu_us: 1_000_000,
            ..Default::default()
        };
        assert_eq!(r.virtual_secs(), 2.5);
        assert_eq!(r.cpu_secs(), 1.0);
    }

    #[test]
    fn approx_eq_tolerates_timing_noise_only() {
        let a = ExecReport {
            virtual_us: 1_000,
            cpu_us: 500,
            idle_us: 500,
            tuples_out: 10,
            batches: 2,
            max_queue_depth: 3,
            blocked_by_exchange: vec![(0xF000_0000, 4)],
        };
        let mut b = a.clone();
        b.virtual_us += 7;
        b.idle_us -= 3;
        assert!(a.approx_eq(&b, 10), "durations within tolerance");
        assert!(!a.approx_eq(&b, 2), "durations past tolerance");
        let mut c = a.clone();
        c.tuples_out += 1;
        assert!(!a.approx_eq(&c, u64::MAX >> 1), "counts are exact");
        let mut d = a.clone();
        d.blocked_by_exchange[0].1 += 1;
        assert!(!a.approx_eq(&d, u64::MAX >> 1), "queue stats are exact");
    }

    #[test]
    fn blocked_sends_totals_exchanges() {
        let r = ExecReport {
            blocked_by_exchange: vec![(0xF000_0000, 2), (0xF000_0001, 5)],
            ..Default::default()
        };
        assert_eq!(r.blocked_sends(), 7);
    }
}
