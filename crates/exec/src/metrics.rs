//! Execution reports.

/// Timing/volume summary of one plan execution under the virtual clock.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecReport {
    /// Virtual completion time (includes waiting for source arrivals).
    pub virtual_us: u64,
    /// CPU time charged to query processing.
    pub cpu_us: u64,
    /// Time spent idle, waiting for sources.
    pub idle_us: u64,
    /// Answer tuples produced at the root.
    pub tuples_out: u64,
    /// Source batches processed.
    pub batches: u64,
}

impl ExecReport {
    /// Completion time in timeline seconds.
    pub fn virtual_secs(&self) -> f64 {
        self.virtual_us as f64 / 1e6
    }

    /// CPU time in seconds.
    pub fn cpu_secs(&self) -> f64 {
        self.cpu_us as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_conversions() {
        let r = ExecReport {
            virtual_us: 2_500_000,
            cpu_us: 1_000_000,
            ..Default::default()
        };
        assert_eq!(r.virtual_secs(), 2.5);
        assert_eq!(r.cpu_secs(), 1.0);
    }
}
