//! Seeded Zipf sampler over `{0, …, n-1}` with exponent `z`.
//!
//! `P(k) ∝ 1 / (k+1)^z`. The inverse-CDF table costs O(n) to build and
//! O(log n) per sample; the TPC generators draw millions of samples from a
//! handful of distributions, so the table is built once per attribute.

use rand::rngs::StdRng;
use rand::Rng;

/// Zipf distribution over `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    pub fn new(n: usize, z: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty domain");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(z);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draw one value in `0..n`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn z_zero_is_uniform() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 2000.0).abs() < 300.0, "counts={counts:?}");
        }
    }

    #[test]
    fn higher_z_skews_toward_zero() {
        let z = Zipf::new(100, 0.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut count0 = 0;
        let n = 50_000;
        for _ in 0..n {
            if z.sample(&mut rng) == 0 {
                count0 += 1;
            }
        }
        // Uniform would give 1%; z=0.5 gives ~5-6%.
        assert!(count0 as f64 / n as f64 > 0.03, "count0={count0}");
    }

    #[test]
    fn samples_stay_in_range_and_are_seeded() {
        let z = Zipf::new(17, 0.5);
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = z.sample(&mut a);
            assert!(x < 17);
            assert_eq!(x, z.sample(&mut b));
        }
    }
}
