//! The paper's query workload: TPC-H queries 3, 10, and 5 restricted to
//! the select-project-join-aggregation model, plus the 3A/10A variants
//! with date predicates removed (§4.4: "Since query 3 was very inexpensive
//! to compute... we altered it to be more expensive by removing its
//! date-based selection predicates").

use tukwila_optimizer::{AggRef, JoinPred, LogicalQuery, QueryAgg, QueryRel};
use tukwila_relation::agg::AggFunc;
use tukwila_relation::{CmpOp, Expr, Value};

use crate::tpch::{Dataset, TableId, DATE_MAX};

fn rel(id: TableId) -> QueryRel {
    QueryRel::new(id.rel_id(), id.name(), Dataset::schema(id))
}

fn pred(id: u64, l: TableId, lcol: &str, r: TableId, rcol: &str) -> JoinPred {
    JoinPred {
        id,
        left_rel: l.rel_id(),
        left_col: Dataset::schema(l).index_of(lcol).expect("known column"),
        right_rel: r.rel_id(),
        right_col: Dataset::schema(r).index_of(rcol).expect("known column"),
    }
}

fn col(t: TableId, name: &str) -> AggRef {
    AggRef {
        rel: t.rel_id(),
        col: Dataset::schema(t).index_of(name).expect("known column"),
    }
}

fn eq_str(t: TableId, name: &str, v: &str) -> Expr {
    let schema = Dataset::schema(t);
    Expr::eq(
        Expr::Col(schema.index_of(name).expect("known column")),
        Expr::Lit(Value::str(v)),
    )
}

fn date_cmp(t: TableId, name: &str, op: CmpOp, day: i32) -> Expr {
    let schema = Dataset::schema(t);
    Expr::cmp(
        Expr::Col(schema.index_of(name).expect("known column")),
        op,
        Expr::Lit(Value::Date(day)),
    )
}

/// TPC-H Q3 (shipping priority): customer ⋈ orders ⋈ lineitem with
/// segment + date predicates, grouped by order, summing revenue.
pub fn q3() -> LogicalQuery {
    let mid = DATE_MAX / 2;
    let customer = rel(TableId::Customer)
        .with_filter(eq_str(TableId::Customer, "c_mktsegment", "BUILDING"), 0.2);
    let orders = rel(TableId::Orders).with_filter(
        date_cmp(TableId::Orders, "o_orderdate", CmpOp::Lt, mid),
        0.5,
    );
    let lineitem = rel(TableId::Lineitem).with_filter(
        date_cmp(TableId::Lineitem, "l_shipdate", CmpOp::Gt, mid),
        0.5,
    );
    LogicalQuery::new(
        vec![customer, orders, lineitem],
        vec![
            pred(
                301,
                TableId::Customer,
                "c_custkey",
                TableId::Orders,
                "o_custkey",
            ),
            pred(
                302,
                TableId::Orders,
                "o_orderkey",
                TableId::Lineitem,
                "l_orderkey",
            ),
        ],
    )
    .with_agg(QueryAgg {
        group: vec![
            col(TableId::Lineitem, "l_orderkey"),
            col(TableId::Orders, "o_orderdate"),
            col(TableId::Orders, "o_shippriority"),
        ],
        aggs: vec![(AggFunc::Sum, col(TableId::Lineitem, "l_revenue"))],
    })
}

/// Q3A: Q3 with the date predicates removed (more expensive; the paper's
/// main 3-relation workload query).
pub fn q3a() -> LogicalQuery {
    let mut q = q3();
    for r in &mut q.rels {
        if r.rel_id != TableId::Customer.rel_id() {
            r.filter = None;
            r.filter_sel = 1.0;
        }
    }
    q
}

/// TPC-H Q10 (returned items): customer ⋈ orders ⋈ lineitem ⋈ nation,
/// returnflag = 'R' plus a date window, grouped by customer, summing
/// revenue.
pub fn q10() -> LogicalQuery {
    let d0 = DATE_MAX / 3;
    let customer = rel(TableId::Customer);
    let orders = rel(TableId::Orders).with_filter(
        Expr::And(vec![
            date_cmp(TableId::Orders, "o_orderdate", CmpOp::Ge, d0),
            date_cmp(TableId::Orders, "o_orderdate", CmpOp::Lt, d0 + 90),
        ]),
        90.0 / DATE_MAX as f64,
    );
    let lineitem = rel(TableId::Lineitem)
        .with_filter(eq_str(TableId::Lineitem, "l_returnflag", "R"), 1.0 / 3.0);
    let nation = rel(TableId::Nation);
    LogicalQuery::new(
        vec![customer, orders, lineitem, nation],
        vec![
            pred(
                1001,
                TableId::Customer,
                "c_custkey",
                TableId::Orders,
                "o_custkey",
            ),
            pred(
                1002,
                TableId::Orders,
                "o_orderkey",
                TableId::Lineitem,
                "l_orderkey",
            ),
            pred(
                1003,
                TableId::Customer,
                "c_nationkey",
                TableId::Nation,
                "n_nationkey",
            ),
        ],
    )
    .with_agg(QueryAgg {
        group: vec![
            col(TableId::Customer, "c_custkey"),
            col(TableId::Customer, "c_name"),
            col(TableId::Nation, "n_name"),
        ],
        aggs: vec![(AggFunc::Sum, col(TableId::Lineitem, "l_revenue"))],
    })
}

/// Q10A: Q10 with the date predicates removed.
pub fn q10a() -> LogicalQuery {
    let mut q = q10();
    for r in &mut q.rels {
        if r.rel_id == TableId::Orders.rel_id() {
            r.filter = None;
            r.filter_sel = 1.0;
        }
    }
    q
}

/// TPC-H Q5 (local supplier volume): customer ⋈ orders ⋈ lineitem ⋈
/// supplier ⋈ nation ⋈ region, with region-name and date predicates and
/// the cyclic condition c_nationkey = s_nationkey; grouped by nation,
/// summing revenue.
pub fn q5() -> LogicalQuery {
    let d0 = DATE_MAX / 4;
    let customer = rel(TableId::Customer);
    let orders = rel(TableId::Orders).with_filter(
        Expr::And(vec![
            date_cmp(TableId::Orders, "o_orderdate", CmpOp::Ge, d0),
            date_cmp(TableId::Orders, "o_orderdate", CmpOp::Lt, d0 + 365),
        ]),
        365.0 / DATE_MAX as f64,
    );
    let lineitem = rel(TableId::Lineitem);
    let supplier = rel(TableId::Supplier);
    let nation = rel(TableId::Nation);
    let region = rel(TableId::Region).with_filter(eq_str(TableId::Region, "r_name", "ASIA"), 0.2);
    LogicalQuery::new(
        vec![customer, orders, lineitem, supplier, nation, region],
        vec![
            pred(
                501,
                TableId::Customer,
                "c_custkey",
                TableId::Orders,
                "o_custkey",
            ),
            pred(
                502,
                TableId::Orders,
                "o_orderkey",
                TableId::Lineitem,
                "l_orderkey",
            ),
            pred(
                503,
                TableId::Lineitem,
                "l_suppkey",
                TableId::Supplier,
                "s_suppkey",
            ),
            // The cycle: customers and suppliers in the same nation.
            pred(
                504,
                TableId::Customer,
                "c_nationkey",
                TableId::Supplier,
                "s_nationkey",
            ),
            pred(
                505,
                TableId::Supplier,
                "s_nationkey",
                TableId::Nation,
                "n_nationkey",
            ),
            pred(
                506,
                TableId::Nation,
                "n_regionkey",
                TableId::Region,
                "r_regionkey",
            ),
        ],
    )
    .with_agg(QueryAgg {
        group: vec![col(TableId::Nation, "n_name")],
        aggs: vec![(AggFunc::Sum, col(TableId::Lineitem, "l_revenue"))],
    })
}

/// Relations a query touches (for wiring up sources).
pub fn tables_of(q: &LogicalQuery) -> Vec<TableId> {
    q.rels
        .iter()
        .map(|r| {
            TableId::all()
                .into_iter()
                .find(|t| t.rel_id() == r.rel_id)
                .expect("workload queries only touch TPC tables")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_queries_validate() {
        for (name, q) in [
            ("q3", q3()),
            ("q3a", q3a()),
            ("q10", q10()),
            ("q10a", q10a()),
            ("q5", q5()),
        ] {
            q.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }

    #[test]
    fn variants_drop_date_filters() {
        assert!(q3().rels.iter().all(|r| r.filter.is_some()));
        let a = q3a();
        let orders = a
            .rels
            .iter()
            .find(|r| r.rel_id == TableId::Orders.rel_id())
            .unwrap();
        assert!(orders.filter.is_none());
        // Customer keeps its segment predicate in 3A.
        let cust = a
            .rels
            .iter()
            .find(|r| r.rel_id == TableId::Customer.rel_id())
            .unwrap();
        assert!(cust.filter.is_some());
    }

    #[test]
    fn q5_has_six_relations_and_a_cycle() {
        let q = q5();
        assert_eq!(q.rels.len(), 6);
        assert_eq!(q.preds.len(), 6, "5 spanning edges + 1 cycle edge");
    }

    #[test]
    fn tables_of_maps_back() {
        assert_eq!(
            tables_of(&q10()),
            vec![
                TableId::Customer,
                TableId::Orders,
                TableId::Lineitem,
                TableId::Nation
            ]
        );
    }
}
