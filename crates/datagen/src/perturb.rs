//! Reordering perturbations for the §5 order experiments ("versions of the
//! data in which we randomly swapped 1%, 10%, or 50% of the data").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tukwila_relation::Tuple;

/// Randomly swap `fraction * n` pairs of positions (seeded).
pub fn reorder_fraction(tuples: &mut [Tuple], fraction: f64, seed: u64) {
    let n = tuples.len();
    if n < 2 {
        return;
    }
    let swaps = ((n as f64) * fraction).round() as usize;
    let mut rng = StdRng::seed_from_u64(seed);
    for _ in 0..swaps {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        tuples.swap(i, j);
    }
}

/// Fraction of adjacent pairs out of ascending order on `col` — a quick
/// disorder metric for tests and reports.
pub fn disorder(tuples: &[Tuple], col: usize) -> f64 {
    if tuples.len() < 2 {
        return 0.0;
    }
    let violations = tuples
        .windows(2)
        .filter(|w| w[0].get(col).cmp_total(w[1].get(col)) == std::cmp::Ordering::Greater)
        .count();
    violations as f64 / (tuples.len() - 1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use tukwila_relation::Value;

    fn sorted(n: i64) -> Vec<Tuple> {
        (0..n).map(|i| Tuple::new(vec![Value::Int(i)])).collect()
    }

    #[test]
    fn zero_fraction_is_identity() {
        let mut v = sorted(100);
        reorder_fraction(&mut v, 0.0, 1);
        assert_eq!(disorder(&v, 0), 0.0);
    }

    #[test]
    fn disorder_grows_with_fraction() {
        let mut d = Vec::new();
        for f in [0.01, 0.1, 0.5] {
            let mut v = sorted(10_000);
            reorder_fraction(&mut v, f, 42);
            d.push(disorder(&v, 0));
        }
        assert!(d[0] > 0.0);
        assert!(d[0] < d[1] && d[1] < d[2], "{d:?}");
    }

    #[test]
    fn preserves_multiset() {
        let mut v = sorted(1000);
        reorder_fraction(&mut v, 0.5, 9);
        let mut vals: Vec<i64> = v.iter().map(|t| t.get(0).as_int().unwrap()).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn seeded_determinism() {
        let mut a = sorted(500);
        let mut b = sorted(500);
        reorder_fraction(&mut a, 0.2, 7);
        reorder_fraction(&mut b, 0.2, 7);
        assert_eq!(a, b);
    }
}
