//! TPC-H-style table generation, uniform and Zipf-skewed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tukwila_relation::{DataType, Field, Schema, Tuple, Value};

use crate::zipf::Zipf;

/// Stable relation ids used across the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableId {
    Region = 1,
    Nation = 2,
    Supplier = 3,
    Customer = 4,
    Orders = 5,
    Lineitem = 6,
    Part = 7,
    PartSupp = 8,
}

impl TableId {
    pub fn rel_id(self) -> u32 {
        self as u32
    }

    /// Primary-key columns — the dedupe key when this table is served by
    /// mirrored/replicated sources. Single source of truth for the
    /// federation helpers and examples.
    pub fn key_cols(self) -> Vec<usize> {
        match self {
            // (l_orderkey, l_linenumber) / (ps_partkey, ps_suppkey).
            TableId::Lineitem | TableId::PartSupp => vec![0, 1],
            _ => vec![0],
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            TableId::Region => "region",
            TableId::Nation => "nation",
            TableId::Supplier => "supplier",
            TableId::Customer => "customer",
            TableId::Orders => "orders",
            TableId::Lineitem => "lineitem",
            TableId::Part => "part",
            TableId::PartSupp => "partsupp",
        }
    }

    pub fn all() -> [TableId; 8] {
        [
            TableId::Region,
            TableId::Nation,
            TableId::Supplier,
            TableId::Customer,
            TableId::Orders,
            TableId::Lineitem,
            TableId::Part,
            TableId::PartSupp,
        ]
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// TPC-H scale factor (1.0 ≈ 6M lineitems; the paper uses 0.1; our
    /// default experiments use 0.02–0.05).
    pub scale: f64,
    /// Zipf exponent on the major (foreign-key) attributes; `None` =
    /// uniform. The paper's skewed dataset uses `Some(0.5)`.
    pub zipf_z: Option<f64>,
    pub seed: u64,
}

impl DatasetConfig {
    pub fn uniform(scale: f64) -> DatasetConfig {
        DatasetConfig {
            scale,
            zipf_z: None,
            seed: 0x7u64,
        }
    }

    pub fn skewed(scale: f64) -> DatasetConfig {
        DatasetConfig {
            scale,
            zipf_z: Some(0.5),
            seed: 0x7u64,
        }
    }
}

/// A generated database: one tuple vector per table.
pub struct Dataset {
    pub config: DatasetConfig,
    pub region: Vec<Tuple>,
    pub nation: Vec<Tuple>,
    pub supplier: Vec<Tuple>,
    pub customer: Vec<Tuple>,
    pub orders: Vec<Tuple>,
    pub lineitem: Vec<Tuple>,
    pub part: Vec<Tuple>,
    pub partsupp: Vec<Tuple>,
}

pub const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
pub const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
pub const RETURN_FLAGS: [&str; 3] = ["A", "N", "R"];
/// Date domain: days 0..2556 (≈ 1992-01-01 .. 1998-12-31).
pub const DATE_MAX: i32 = 2556;

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(1)
}

impl Dataset {
    /// Table sizes at this scale (TPC-H proportions).
    pub fn sizes(config: &DatasetConfig) -> [(TableId, usize); 8] {
        let s = config.scale;
        [
            (TableId::Region, 5),
            (TableId::Nation, 25),
            (TableId::Supplier, scaled(10_000, s)),
            (TableId::Customer, scaled(150_000, s)),
            (TableId::Orders, scaled(1_500_000, s)),
            (TableId::Lineitem, 0), // derived: ~4 per order
            (TableId::Part, scaled(200_000, s)),
            (TableId::PartSupp, 0), // derived: 4 per part
        ]
    }

    pub fn generate(config: DatasetConfig) -> Dataset {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let sizes: std::collections::HashMap<TableId, usize> =
            Dataset::sizes(&config).into_iter().collect();
        let n_supp = sizes[&TableId::Supplier];
        let n_cust = sizes[&TableId::Customer];
        let n_orders = sizes[&TableId::Orders];
        let n_part = sizes[&TableId::Part];

        let region: Vec<Tuple> = (0..5)
            .map(|i| Tuple::new(vec![Value::Int(i), Value::str(REGIONS[i as usize])]))
            .collect();

        let nation: Vec<Tuple> = (0..25)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::str(&format!("NATION{i:02}")),
                    Value::Int(i % 5), // n_regionkey
                ])
            })
            .collect();

        let supplier: Vec<Tuple> = (0..n_supp as i64)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::str(&format!("Supplier{i:07}")),
                    Value::Int(rng.gen_range(0..25)), // s_nationkey
                    Value::Float(rng.gen_range(-999.0..10_000.0)), // s_acctbal
                ])
            })
            .collect();

        let customer: Vec<Tuple> = (0..n_cust as i64)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::str(&format!("Customer{i:09}")),
                    Value::Int(rng.gen_range(0..25)), // c_nationkey
                    Value::str(SEGMENTS[rng.gen_range(0..SEGMENTS.len())]),
                    Value::Float(rng.gen_range(-999.0..10_000.0)), // c_acctbal
                ])
            })
            .collect();

        // Skew applies to the "major attributes": the foreign keys drawn by
        // the fact tables.
        let cust_pick = config.zipf_z.map(|z| Zipf::new(n_cust, z));
        let supp_pick = config.zipf_z.map(|z| Zipf::new(n_supp, z));
        let part_pick = config.zipf_z.map(|z| Zipf::new(n_part, z));

        // ORDERS: clustered (sorted) by o_orderkey.
        let mut orders = Vec::with_capacity(n_orders);
        let mut lineitem = Vec::new();
        for okey in 0..n_orders as i64 {
            let custkey = match &cust_pick {
                Some(z) => z.sample(&mut rng) as i64,
                None => rng.gen_range(0..n_cust as i64),
            };
            let odate = rng.gen_range(0..DATE_MAX);
            let total: f64 = rng.gen_range(1_000.0..500_000.0);
            orders.push(Tuple::new(vec![
                Value::Int(okey),
                Value::Int(custkey),
                Value::Date(odate),
                Value::Int(rng.gen_range(0..5)), // o_shippriority
                Value::Float(total),
            ]));
            // LINEITEM: 1..=7 lines per order (mean ≈ 4), clustered by
            // l_orderkey.
            let lines = rng.gen_range(1..=7);
            for line in 0..lines {
                let partkey = match &part_pick {
                    Some(z) => z.sample(&mut rng) as i64,
                    None => rng.gen_range(0..n_part as i64),
                };
                let suppkey = match &supp_pick {
                    Some(z) => z.sample(&mut rng) as i64,
                    None => rng.gen_range(0..n_supp as i64),
                };
                let qty = rng.gen_range(1..=50) as f64;
                let price: f64 = rng.gen_range(900.0..100_000.0);
                let discount: f64 = rng.gen_range(0.0..0.1);
                let shipdate = (odate + rng.gen_range(1..=121)).min(DATE_MAX + 121);
                let flag = RETURN_FLAGS[rng.gen_range(0..3)];
                lineitem.push(Tuple::new(vec![
                    Value::Int(okey),
                    Value::Int(line),
                    Value::Int(partkey),
                    Value::Int(suppkey),
                    Value::Float(qty),
                    Value::Float(price),
                    Value::Float(discount),
                    Value::str(flag),
                    Value::Date(shipdate),
                    Value::Float(price * (1.0 - discount)), // l_revenue
                ]));
            }
        }

        let part: Vec<Tuple> = (0..n_part as i64)
            .map(|i| {
                Tuple::new(vec![
                    Value::Int(i),
                    Value::str(&format!("Part{i:08}")),
                    Value::Float(rng.gen_range(900.0..2_000.0)), // p_retailprice
                ])
            })
            .collect();

        let mut partsupp = Vec::with_capacity(n_part * 4);
        for pkey in 0..n_part as i64 {
            for _ in 0..4 {
                let suppkey = match &supp_pick {
                    Some(z) => z.sample(&mut rng) as i64,
                    None => rng.gen_range(0..n_supp as i64),
                };
                partsupp.push(Tuple::new(vec![
                    Value::Int(pkey),
                    Value::Int(suppkey),
                    Value::Int(rng.gen_range(1..10_000)), // ps_availqty
                    Value::Float(rng.gen_range(1.0..1_000.0)), // ps_supplycost
                ]));
            }
        }

        Dataset {
            config,
            region,
            nation,
            supplier,
            customer,
            orders,
            lineitem,
            part,
            partsupp,
        }
    }

    pub fn table(&self, id: TableId) -> &[Tuple] {
        match id {
            TableId::Region => &self.region,
            TableId::Nation => &self.nation,
            TableId::Supplier => &self.supplier,
            TableId::Customer => &self.customer,
            TableId::Orders => &self.orders,
            TableId::Lineitem => &self.lineitem,
            TableId::Part => &self.part,
            TableId::PartSupp => &self.partsupp,
        }
    }

    pub fn schema(id: TableId) -> Schema {
        match id {
            TableId::Region => Schema::new(vec![
                Field::new("region.r_regionkey", DataType::Int),
                Field::new("region.r_name", DataType::Str),
            ]),
            TableId::Nation => Schema::new(vec![
                Field::new("nation.n_nationkey", DataType::Int),
                Field::new("nation.n_name", DataType::Str),
                Field::new("nation.n_regionkey", DataType::Int),
            ]),
            TableId::Supplier => Schema::new(vec![
                Field::new("supplier.s_suppkey", DataType::Int),
                Field::new("supplier.s_name", DataType::Str),
                Field::new("supplier.s_nationkey", DataType::Int),
                Field::new("supplier.s_acctbal", DataType::Float),
            ]),
            TableId::Customer => Schema::new(vec![
                Field::new("customer.c_custkey", DataType::Int),
                Field::new("customer.c_name", DataType::Str),
                Field::new("customer.c_nationkey", DataType::Int),
                Field::new("customer.c_mktsegment", DataType::Str),
                Field::new("customer.c_acctbal", DataType::Float),
            ]),
            TableId::Orders => Schema::new(vec![
                Field::new("orders.o_orderkey", DataType::Int),
                Field::new("orders.o_custkey", DataType::Int),
                Field::new("orders.o_orderdate", DataType::Date),
                Field::new("orders.o_shippriority", DataType::Int),
                Field::new("orders.o_totalprice", DataType::Float),
            ]),
            TableId::Lineitem => Schema::new(vec![
                Field::new("lineitem.l_orderkey", DataType::Int),
                Field::new("lineitem.l_linenumber", DataType::Int),
                Field::new("lineitem.l_partkey", DataType::Int),
                Field::new("lineitem.l_suppkey", DataType::Int),
                Field::new("lineitem.l_quantity", DataType::Float),
                Field::new("lineitem.l_extendedprice", DataType::Float),
                Field::new("lineitem.l_discount", DataType::Float),
                Field::new("lineitem.l_returnflag", DataType::Str),
                Field::new("lineitem.l_shipdate", DataType::Date),
                Field::new("lineitem.l_revenue", DataType::Float),
            ]),
            TableId::Part => Schema::new(vec![
                Field::new("part.p_partkey", DataType::Int),
                Field::new("part.p_name", DataType::Str),
                Field::new("part.p_retailprice", DataType::Float),
            ]),
            TableId::PartSupp => Schema::new(vec![
                Field::new("partsupp.ps_partkey", DataType::Int),
                Field::new("partsupp.ps_suppkey", DataType::Int),
                Field::new("partsupp.ps_availqty", DataType::Int),
                Field::new("partsupp.ps_supplycost", DataType::Float),
            ]),
        }
    }

    /// Total tuple count across tables.
    pub fn total_tuples(&self) -> usize {
        TableId::all().iter().map(|&t| self.table(t).len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Dataset {
        Dataset::generate(DatasetConfig::uniform(0.001))
    }

    #[test]
    fn sizes_scale() {
        let d = tiny();
        assert_eq!(d.region.len(), 5);
        assert_eq!(d.nation.len(), 25);
        assert_eq!(d.supplier.len(), 10);
        assert_eq!(d.customer.len(), 150);
        assert_eq!(d.orders.len(), 1500);
        let per_order = d.lineitem.len() as f64 / d.orders.len() as f64;
        assert!(per_order > 3.0 && per_order < 5.0, "{per_order}");
    }

    #[test]
    fn schemas_match_tuples() {
        let d = tiny();
        for t in TableId::all() {
            let schema = Dataset::schema(t);
            for tuple in d.table(t).iter().take(5) {
                assert_eq!(tuple.arity(), schema.arity(), "table {}", t.name());
            }
        }
    }

    #[test]
    fn orders_and_lineitem_sorted_by_orderkey() {
        let d = tiny();
        let sorted = |ts: &[Tuple]| {
            ts.windows(2)
                .all(|w| w[0].get(0).as_int().unwrap() <= w[1].get(0).as_int().unwrap())
        };
        assert!(sorted(&d.orders));
        assert!(sorted(&d.lineitem));
    }

    #[test]
    fn foreign_keys_are_valid() {
        let d = tiny();
        let n_cust = d.customer.len() as i64;
        for o in &d.orders {
            let ck = o.get(1).as_int().unwrap();
            assert!(ck >= 0 && ck < n_cust);
        }
        let n_supp = d.supplier.len() as i64;
        let n_orders = d.orders.len() as i64;
        for l in &d.lineitem {
            assert!(l.get(0).as_int().unwrap() < n_orders);
            let sk = l.get(3).as_int().unwrap();
            assert!(sk >= 0 && sk < n_supp);
        }
    }

    #[test]
    fn revenue_column_is_consistent() {
        let d = tiny();
        for l in d.lineitem.iter().take(100) {
            let price = l.get(5).as_float().unwrap();
            let disc = l.get(6).as_float().unwrap();
            let rev = l.get(9).as_float().unwrap();
            assert!((rev - price * (1.0 - disc)).abs() < 1e-9);
        }
    }

    #[test]
    fn skew_concentrates_foreign_keys() {
        let us = Dataset::generate(DatasetConfig::uniform(0.002));
        let sk = Dataset::generate(DatasetConfig::skewed(0.002));
        let top_share = |d: &Dataset| {
            let mut counts = std::collections::HashMap::new();
            for o in &d.orders {
                *counts.entry(o.get(1).as_int().unwrap()).or_insert(0usize) += 1;
            }
            let max = counts.values().copied().max().unwrap_or(0);
            max as f64 / d.orders.len() as f64
        };
        assert!(
            top_share(&sk) > 2.0 * top_share(&us),
            "skewed top customer share {} vs uniform {}",
            top_share(&sk),
            top_share(&us)
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(DatasetConfig::uniform(0.001));
        let b = Dataset::generate(DatasetConfig::uniform(0.001));
        assert_eq!(a.orders.len(), b.orders.len());
        assert_eq!(a.orders[42], b.orders[42]);
        assert_eq!(a.lineitem[100], b.lineitem[100]);
    }
}
