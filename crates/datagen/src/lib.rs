//! Synthetic TPC-H-style data and the paper's query workload (§3.5).
//!
//! The paper evaluates on TPC-H at scale factor 0.1 plus "a similar
//! \[dataset\] that has a skewed distribution ... using a Zipf factor z of
//! 0.5 on the major attributes". This crate regenerates both worlds,
//! schema-faithfully (same key/foreign-key structure and
//! selectivity-bearing attributes), at any scale factor:
//!
//! * [`tpch::Dataset`] — REGION, NATION, SUPPLIER, CUSTOMER, ORDERS,
//!   LINEITEM, PART, PARTSUPP; uniform or Zipf(z)-skewed foreign keys.
//!   ORDERS and LINEITEM are generated clustered by order key (the
//!   sortedness §4.5 and §5 exploit). LINEITEM carries a materialized
//!   `l_revenue = l_extendedprice * (1 - l_discount)` column so the
//!   workload's aggregate is a plain column reference.
//! * [`queries`] — Q3, Q3A, Q10, Q10A, Q5 as [`LogicalQuery`] values
//!   (A-variants drop the date predicates, exactly as the paper does).
//! * [`flights`] — the flights/travelers/children schema of Example 2.1.
//! * [`perturb`] — k-swap reordering used by the §5 order experiments.
//! * [`zipf`] — a seeded Zipf sampler (implemented here; `rand`'s
//!   distribution adapters are not part of the offline dependency set).
//!
//! [`LogicalQuery`]: tukwila_optimizer::LogicalQuery

pub mod flights;
pub mod perturb;
pub mod queries;
pub mod tpch;
pub mod zipf;

pub use tpch::{Dataset, DatasetConfig, TableId};
pub use zipf::Zipf;
