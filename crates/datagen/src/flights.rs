//! The flights/travelers/children schema of the paper's Example 2.1:
//! `F(fid, from, to, when)`, `T(ssn, flight)`, `C(p, num)` and the query
//! "the flight with the traveler who has the most children":
//! `Γ[fid, from] max(num) (F ⋈ T ⋈ C)`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tukwila_optimizer::{AggRef, JoinPred, LogicalQuery, QueryAgg, QueryRel};
use tukwila_relation::agg::AggFunc;
use tukwila_relation::{DataType, Field, Schema, Tuple, Value};

pub const FLIGHTS: u32 = 101;
pub const TRAVELERS: u32 = 102;
pub const CHILDREN: u32 = 103;

const CITIES: [&str; 8] = ["SEA", "SFO", "JFK", "ORD", "LAX", "BOS", "PHL", "DEN"];

pub fn flights_schema() -> Schema {
    Schema::new(vec![
        Field::new("F.fid", DataType::Int),
        Field::new("F.from", DataType::Str),
        Field::new("F.to", DataType::Str),
        Field::new("F.when", DataType::Date),
    ])
}

pub fn travelers_schema() -> Schema {
    Schema::new(vec![
        Field::new("T.ssn", DataType::Int),
        Field::new("T.flight", DataType::Int),
    ])
}

pub fn children_schema() -> Schema {
    Schema::new(vec![
        Field::new("C.p", DataType::Int),
        Field::new("C.num", DataType::Int),
    ])
}

/// Generated Example-2.1 data.
pub struct FlightsData {
    pub flights: Vec<Tuple>,
    pub travelers: Vec<Tuple>,
    pub children: Vec<Tuple>,
}

/// `trips_per_traveler` controls whether "a traveler flies multiple times"
/// (Example 2.3's pre-aggregation discussion).
pub fn generate(
    n_flights: usize,
    n_travelers: usize,
    trips_per_traveler: usize,
    seed: u64,
) -> FlightsData {
    let mut rng = StdRng::seed_from_u64(seed);
    let flights = (0..n_flights as i64)
        .map(|fid| {
            Tuple::new(vec![
                Value::Int(fid),
                Value::str(CITIES[rng.gen_range(0..CITIES.len())]),
                Value::str(CITIES[rng.gen_range(0..CITIES.len())]),
                Value::Date(rng.gen_range(0..365)),
            ])
        })
        .collect();
    let mut travelers = Vec::with_capacity(n_travelers * trips_per_traveler);
    for ssn in 0..n_travelers as i64 {
        for _ in 0..trips_per_traveler.max(1) {
            travelers.push(Tuple::new(vec![
                Value::Int(ssn),
                Value::Int(rng.gen_range(0..n_flights as i64)),
            ]));
        }
    }
    let children = (0..n_travelers as i64)
        .map(|ssn| Tuple::new(vec![Value::Int(ssn), Value::Int(rng.gen_range(0..6))]))
        .collect();
    FlightsData {
        flights,
        travelers,
        children,
    }
}

/// The Example 2.1 query as a [`LogicalQuery`].
pub fn query() -> LogicalQuery {
    LogicalQuery::new(
        vec![
            QueryRel::new(FLIGHTS, "F", flights_schema()),
            QueryRel::new(TRAVELERS, "T", travelers_schema()),
            QueryRel::new(CHILDREN, "C", children_schema()),
        ],
        vec![
            JoinPred {
                id: 9001,
                left_rel: FLIGHTS,
                left_col: 0, // fid
                right_rel: TRAVELERS,
                right_col: 1, // flight
            },
            JoinPred {
                id: 9002,
                left_rel: TRAVELERS,
                left_col: 0, // ssn
                right_rel: CHILDREN,
                right_col: 0, // p
            },
        ],
    )
    .with_agg(QueryAgg {
        group: vec![
            AggRef {
                rel: FLIGHTS,
                col: 0,
            },
            AggRef {
                rel: FLIGHTS,
                col: 1,
            },
        ],
        aggs: vec![(
            AggFunc::Max,
            AggRef {
                rel: CHILDREN,
                col: 1,
            },
        )],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_query_validate() {
        let d = generate(50, 200, 3, 1);
        assert_eq!(d.flights.len(), 50);
        assert_eq!(d.travelers.len(), 600);
        assert_eq!(d.children.len(), 200);
        query().validate().unwrap();
    }

    #[test]
    fn travelers_reference_valid_flights() {
        let d = generate(10, 50, 2, 2);
        for t in &d.travelers {
            let f = t.get(1).as_int().unwrap();
            assert!((0..10).contains(&f));
        }
    }
}
