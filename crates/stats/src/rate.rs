//! Online source-delivery profiling: EWMA inter-arrival gaps, burst
//! variance, and stall thresholds.
//!
//! The paper's premise is that source properties — delivery rate,
//! burstiness — are unknown until observed at runtime. [`RateEstimator`]
//! is the observation half: it is fed every batch arrival (virtual
//! timestamp + tuple count) and maintains
//!
//! * the cumulative delivery rate (tuples per virtual second),
//! * an EWMA of the inter-arrival gap (recent behavior, for ranking), and
//! * the gap variance (Welford), which separates a *bursty* source whose
//!   long gap is normal from a smooth source whose long gap means trouble.
//!
//! The federation scheduler turns these into a profile-derived stall
//! threshold: a source is considered stalled once its current silence
//! exceeds `mean_gap + k·σ(gap)`.

/// Online estimator of a source's delivery behavior under the virtual
/// clock. All state updates are O(1) per batch.
#[derive(Debug, Clone)]
pub struct RateEstimator {
    alpha: f64,
    ewma_gap_us: Option<f64>,
    /// Welford accumulators over inter-arrival gaps (µs).
    gaps: u64,
    gap_mean: f64,
    gap_m2: f64,
    first_event_us: Option<u64>,
    last_event_us: Option<u64>,
    tuples: u64,
}

impl Default for RateEstimator {
    fn default() -> Self {
        RateEstimator::new(0.2)
    }
}

impl RateEstimator {
    /// `alpha` is the EWMA smoothing factor in (0, 1]; higher reacts
    /// faster to recent gaps.
    pub fn new(alpha: f64) -> RateEstimator {
        RateEstimator {
            alpha: alpha.clamp(1e-3, 1.0),
            ewma_gap_us: None,
            gaps: 0,
            gap_mean: 0.0,
            gap_m2: 0.0,
            first_event_us: None,
            last_event_us: None,
            tuples: 0,
        }
    }

    /// Record a batch of `tuples` arriving at virtual time `now_us`.
    pub fn observe_arrival(&mut self, now_us: u64, tuples: u64) {
        if let Some(last) = self.last_event_us {
            let gap = now_us.saturating_sub(last) as f64;
            self.ewma_gap_us = Some(match self.ewma_gap_us {
                Some(e) => e + self.alpha * (gap - e),
                None => gap,
            });
            self.gaps += 1;
            let delta = gap - self.gap_mean;
            self.gap_mean += delta / self.gaps as f64;
            self.gap_m2 += delta * (gap - self.gap_mean);
        }
        self.first_event_us.get_or_insert(now_us);
        self.last_event_us = Some(now_us);
        self.tuples += tuples;
    }

    /// Total tuples delivered so far.
    pub fn tuples(&self) -> u64 {
        self.tuples
    }

    /// Virtual time of the most recent arrival, if any.
    pub fn last_arrival_us(&self) -> Option<u64> {
        self.last_event_us
    }

    /// Smoothed inter-arrival gap (µs); `None` until two arrivals.
    pub fn ewma_gap_us(&self) -> Option<f64> {
        self.ewma_gap_us
    }

    /// Sample standard deviation of inter-arrival gaps (µs).
    pub fn gap_std_us(&self) -> f64 {
        if self.gaps < 2 {
            0.0
        } else {
            (self.gap_m2 / (self.gaps - 1) as f64).sqrt()
        }
    }

    /// Cumulative delivery rate in tuples per virtual second, measured
    /// from first to last arrival. `None` until the window is non-empty.
    pub fn rate_tuples_per_sec(&self) -> Option<f64> {
        let (first, last) = (self.first_event_us?, self.last_event_us?);
        if last <= first {
            return None;
        }
        Some(self.tuples as f64 / ((last - first) as f64 / 1e6))
    }

    /// Profile-derived stall threshold: silence longer than
    /// `ewma_gap + k·σ(gap)` (floored at `min_us`) is anomalous for this
    /// source. Until a gap has been observed, the floor applies.
    pub fn stall_threshold_us(&self, k: f64, min_us: u64) -> u64 {
        match self.ewma_gap_us {
            Some(gap) => ((gap + k * self.gap_std_us()) as u64).max(min_us),
            None => min_us,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_source_has_tight_threshold() {
        let mut r = RateEstimator::new(0.2);
        for i in 0..100u64 {
            r.observe_arrival(i * 1000, 10);
        }
        assert_eq!(r.tuples(), 1000);
        let gap = r.ewma_gap_us().unwrap();
        assert!((gap - 1000.0).abs() < 1.0, "gap={gap}");
        assert!(r.gap_std_us() < 1.0);
        // 1000 tuples over 99ms.
        let rate = r.rate_tuples_per_sec().unwrap();
        assert!((rate - 10_101.0).abs() < 10.0, "rate={rate}");
        assert_eq!(r.stall_threshold_us(4.0, 500), 1000);
    }

    #[test]
    fn bursty_source_widens_threshold() {
        let mut smooth = RateEstimator::new(0.2);
        let mut bursty = RateEstimator::new(0.2);
        let mut t = 0u64;
        for i in 0..200u64 {
            smooth.observe_arrival(i * 1000, 1);
            // Bursts of 10 arrivals 100µs apart, then a 10ms gap.
            t += if i % 10 == 9 { 10_000 } else { 100 };
            bursty.observe_arrival(t, 1);
        }
        assert!(bursty.gap_std_us() > 10.0 * smooth.gap_std_us());
        assert!(
            bursty.stall_threshold_us(4.0, 500) > smooth.stall_threshold_us(4.0, 500),
            "burst variance must widen the stall threshold"
        );
    }

    #[test]
    fn unobserved_estimator_uses_floor() {
        let r = RateEstimator::default();
        assert_eq!(r.stall_threshold_us(4.0, 2500), 2500);
        assert_eq!(r.rate_tuples_per_sec(), None);
        let mut one = RateEstimator::default();
        one.observe_arrival(5, 3);
        assert_eq!(one.rate_tuples_per_sec(), None, "single arrival: no window");
        assert_eq!(one.last_arrival_us(), Some(5));
    }

    #[test]
    fn ewma_tracks_recent_gaps() {
        let mut r = RateEstimator::new(0.5);
        r.observe_arrival(0, 1);
        for i in 1..=10u64 {
            r.observe_arrival(i * 100, 1);
        }
        // Rate shifts to 10x slower; EWMA should move most of the way
        // there within a few observations.
        for i in 1..=10u64 {
            r.observe_arrival(1000 + i * 1000, 1);
        }
        let gap = r.ewma_gap_us().unwrap();
        assert!(gap > 900.0, "ewma lagging: {gap}");
    }
}
