//! Streaming order and uniqueness detection (paper §4.5 and §5).
//!
//! The complementary-join router and the §4.5 estimator both need to know,
//! cheaply and incrementally, whether a source "appears sorted" on an
//! attribute — and, when it is, whether the attribute is also unique
//! ("uniqueness can be quickly detected in the special case where the
//! values are sorted").

use std::cmp::Ordering;

use tukwila_relation::Value;

/// Current belief about a column's ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orderedness {
    /// No data yet or still compatible with both directions.
    Unknown,
    /// Compatible with ascending order (within tolerance).
    Ascending,
    /// Compatible with descending order (within tolerance).
    Descending,
    /// Violations observed in both directions beyond tolerance.
    Unordered,
}

/// Incremental order detector over one attribute.
#[derive(Debug, Clone)]
pub struct OrderDetector {
    prev: Option<Value>,
    n: u64,
    asc_violations: u64,
    desc_violations: u64,
}

impl Default for OrderDetector {
    fn default() -> Self {
        OrderDetector::new()
    }
}

impl OrderDetector {
    /// A detector that has seen no values yet.
    pub fn new() -> OrderDetector {
        OrderDetector {
            prev: None,
            n: 0,
            asc_violations: 0,
            desc_violations: 0,
        }
    }

    /// Feed the next value in arrival order.
    pub fn observe(&mut self, v: &Value) {
        if let Some(prev) = &self.prev {
            match prev.cmp_total(v) {
                Ordering::Greater => self.asc_violations += 1,
                Ordering::Less => self.desc_violations += 1,
                Ordering::Equal => {}
            }
        }
        self.prev = Some(v.clone());
        self.n += 1;
    }

    /// Values observed so far.
    pub fn observed(&self) -> u64 {
        self.n
    }

    /// Fraction of adjacent pairs violating ascending order.
    pub fn asc_violation_rate(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.asc_violations as f64 / (self.n - 1) as f64
        }
    }

    /// Fraction of adjacent pairs violating descending order.
    pub fn desc_violation_rate(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.desc_violations as f64 / (self.n - 1) as f64
        }
    }

    /// Classification under a violation tolerance (0 = strict).
    pub fn orderedness(&self, tolerance: f64) -> Orderedness {
        if self.n < 2 {
            return Orderedness::Unknown;
        }
        let asc_ok = self.asc_violation_rate() <= tolerance;
        let desc_ok = self.desc_violation_rate() <= tolerance;
        match (asc_ok, desc_ok) {
            (true, true) => Orderedness::Unknown, // constant so far
            (true, false) => Orderedness::Ascending,
            (false, true) => Orderedness::Descending,
            (false, false) => Orderedness::Unordered,
        }
    }

    /// Strictly sorted ascending so far?
    pub fn is_sorted_asc(&self) -> bool {
        self.asc_violations == 0 && self.n >= 1
    }
}

/// Uniqueness detector for *sorted* streams: a duplicate must be adjacent,
/// so one comparison per tuple suffices. For unsorted streams it reports
/// `unknown` rather than paying a hash-set per value.
#[derive(Debug, Clone, Default)]
pub struct UniquenessDetector {
    prev: Option<Value>,
    duplicates: u64,
    order: OrderDetector,
}

impl UniquenessDetector {
    /// A detector that has seen no values yet.
    pub fn new() -> UniquenessDetector {
        UniquenessDetector::default()
    }

    /// Feed the next value in arrival order.
    pub fn observe(&mut self, v: &Value) {
        if let Some(prev) = &self.prev {
            if prev.eq_total(v) {
                self.duplicates += 1;
            }
        }
        self.order.observe(v);
        self.prev = Some(v.clone());
    }

    /// `Some(true)` iff the stream is sorted and no adjacent duplicates were
    /// seen; `Some(false)` iff duplicates were seen; `None` when the stream
    /// is unsorted (adjacent comparison is inconclusive).
    pub fn is_unique(&self) -> Option<bool> {
        if self.duplicates > 0 {
            return Some(false);
        }
        if self.order.is_sorted_asc() || self.order.desc_violation_rate() == 0.0 {
            Some(true)
        } else {
            None
        }
    }

    /// Adjacent duplicates observed so far.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(vals: &[i64]) -> OrderDetector {
        let mut d = OrderDetector::new();
        for &v in vals {
            d.observe(&Value::Int(v));
        }
        d
    }

    #[test]
    fn detects_ascending() {
        let d = feed(&[1, 2, 2, 3, 10]);
        assert_eq!(d.orderedness(0.0), Orderedness::Ascending);
        assert!(d.is_sorted_asc());
    }

    #[test]
    fn detects_descending() {
        let d = feed(&[10, 8, 8, 3]);
        assert_eq!(d.orderedness(0.0), Orderedness::Descending);
        assert!(!d.is_sorted_asc());
    }

    #[test]
    fn detects_unordered() {
        let d = feed(&[1, 5, 2, 9, 0]);
        assert_eq!(d.orderedness(0.0), Orderedness::Unordered);
    }

    #[test]
    fn tolerance_allows_mostly_sorted() {
        // 1 violation out of 99 pairs ≈ 1%.
        let mut vals: Vec<i64> = (0..100).collect();
        vals.swap(40, 41);
        let d = feed(&vals);
        assert_eq!(d.orderedness(0.0), Orderedness::Unordered);
        assert_eq!(d.orderedness(0.05), Orderedness::Ascending);
    }

    #[test]
    fn unknown_until_data() {
        let d = feed(&[]);
        assert_eq!(d.orderedness(0.0), Orderedness::Unknown);
        let one = feed(&[5]);
        assert_eq!(one.orderedness(0.0), Orderedness::Unknown);
        let constant = feed(&[5, 5, 5]);
        assert_eq!(constant.orderedness(0.0), Orderedness::Unknown);
    }

    #[test]
    fn uniqueness_on_sorted_stream() {
        let mut u = UniquenessDetector::new();
        for v in [1, 2, 3, 4] {
            u.observe(&Value::Int(v));
        }
        assert_eq!(u.is_unique(), Some(true));
        u.observe(&Value::Int(4));
        assert_eq!(u.is_unique(), Some(false));
        assert_eq!(u.duplicates(), 1);
    }

    #[test]
    fn uniqueness_inconclusive_when_unsorted() {
        let mut u = UniquenessDetector::new();
        for v in [3, 1, 2, 1] {
            // 1 appears twice but never adjacently.
            u.observe(&Value::Int(v));
        }
        assert_eq!(u.is_unique(), None);
    }
}
