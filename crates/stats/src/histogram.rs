//! Incremental histograms in the spirit of the Dynamic Compressed
//! histograms the paper cites (Donjerkovic, Ioannidis, Ramakrishnan,
//! ICDE'00): equi-depth-ish *range buckets* maintained incrementally by
//! split/merge, plus a *compressed* part holding exact counts for heavy
//! hitters. Section 4.5 of the paper evaluates these for predicting join
//! result sizes mid-stream.

use tukwila_relation::Value;

/// A contiguous value range `[lo, hi]` with a tuple count and a distinct
/// count estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Inclusive lower bound of the bucket's value range.
    pub lo: f64,
    /// Inclusive upper bound of the bucket's value range.
    pub hi: f64,
    /// Tuples counted into the bucket.
    pub count: u64,
}

impl Bucket {
    fn width(&self) -> f64 {
        (self.hi - self.lo).max(0.0)
    }

    /// Distinct-value estimate: integer-grain width capped by count. Join
    /// keys in the workloads this engine targets are integer surrogates, so
    /// a range bucket can hold at most `width + 1` distinct values.
    fn distinct(&self) -> f64 {
        (self.width() + 1.0).min(self.count as f64).max(1.0)
    }
}

/// Space-saving heavy-hitter tracker (the "compressed" buckets).
#[derive(Debug, Default, Clone)]
struct HeavyHitters {
    capacity: usize,
    entries: Vec<(i64, u64)>,
}

impl HeavyHitters {
    fn new(capacity: usize) -> HeavyHitters {
        HeavyHitters {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    fn add(&mut self, v: i64) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.0 == v) {
            e.1 += 1;
            return;
        }
        if self.entries.len() < self.capacity {
            self.entries.push((v, 1));
            return;
        }
        // Space-saving: replace the minimum, inheriting its count.
        if let Some(min) = self.entries.iter_mut().min_by_key(|e| e.1) {
            *min = (v, min.1 + 1);
        }
    }

    fn count(&self, v: i64) -> Option<u64> {
        self.entries.iter().find(|e| e.0 == v).map(|e| e.1)
    }
}

/// Incrementally maintained histogram over a numeric attribute.
#[derive(Debug, Clone)]
pub struct DynamicHistogram {
    buckets: Vec<Bucket>,
    heavy: HeavyHitters,
    max_buckets: usize,
    total: u64,
}

impl DynamicHistogram {
    /// `max_buckets` range buckets (paper's experiment used 50) and a
    /// quarter as many heavy-hitter slots.
    pub fn new(max_buckets: usize) -> DynamicHistogram {
        DynamicHistogram {
            buckets: Vec::new(),
            heavy: HeavyHitters::new((max_buckets / 4).max(4)),
            max_buckets: max_buckets.max(2),
            total: 0,
        }
    }

    /// Total values inserted.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Current number of range buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// Insert one value. Non-numeric values hash into the numeric domain so
    /// string keys still get frequency statistics.
    pub fn insert_value(&mut self, v: &Value) {
        let x = match v {
            Value::Int(i) => *i as f64,
            Value::Float(f) => *f,
            Value::Date(d) => *d as f64,
            Value::Bool(b) => *b as i64 as f64,
            Value::Str(s) => tukwila_storage::fx::hash_one(&s.as_bytes()) as u32 as f64,
            Value::Null => return,
        };
        self.insert(x);
    }

    /// Insert one numeric value.
    pub fn insert(&mut self, x: f64) {
        self.total += 1;
        if x.fract() == 0.0 && x.abs() < 9e15 {
            self.heavy.add(x as i64);
        }
        match self.buckets.binary_search_by(|b| cmp_range(b.lo, b.hi, x)) {
            Ok(i) => {
                self.buckets[i].count += 1;
                if self.buckets[i].count > self.split_threshold() {
                    self.split(i);
                    if self.buckets.len() > self.max_buckets {
                        self.merge_smallest_pair();
                    }
                }
            }
            Err(i) => {
                // Outside every bucket: extend a neighbor or start fresh.
                self.buckets.insert(
                    i,
                    Bucket {
                        lo: x,
                        hi: x,
                        count: 1,
                    },
                );
                if self.buckets.len() > self.max_buckets {
                    self.merge_smallest_pair();
                }
            }
        }
    }

    fn split_threshold(&self) -> u64 {
        ((self.total / self.max_buckets as u64) * 2).max(8)
    }

    fn split(&mut self, i: usize) {
        let b = self.buckets[i];
        if b.width() <= 0.0 {
            return; // singleton value bucket cannot split
        }
        let mid = b.lo + b.width() / 2.0;
        let left = Bucket {
            lo: b.lo,
            hi: mid,
            count: b.count / 2,
        };
        let right = Bucket {
            lo: mid,
            hi: b.hi,
            count: b.count - b.count / 2,
        };
        self.buckets[i] = left;
        self.buckets.insert(i + 1, right);
    }

    fn merge_smallest_pair(&mut self) {
        if self.buckets.len() < 2 {
            return;
        }
        let mut best = 0;
        let mut best_count = u64::MAX;
        for i in 0..self.buckets.len() - 1 {
            let c = self.buckets[i].count + self.buckets[i + 1].count;
            if c < best_count {
                best_count = c;
                best = i;
            }
        }
        let right = self.buckets.remove(best + 1);
        let left = &mut self.buckets[best];
        left.hi = right.hi;
        left.count += right.count;
    }

    /// Estimated frequency of value `x` (heavy hitters answer exactly;
    /// otherwise uniform-within-bucket).
    pub fn estimate_eq(&self, x: f64) -> f64 {
        if x.fract() == 0.0 && x.abs() < 9e15 {
            if let Some(c) = self.heavy.count(x as i64) {
                return c as f64;
            }
        }
        match self.buckets.binary_search_by(|b| cmp_range(b.lo, b.hi, x)) {
            Ok(i) => {
                let b = &self.buckets[i];
                b.count as f64 / b.distinct()
            }
            Err(_) => 0.0,
        }
    }

    /// Estimated equi-join output cardinality against another histogram:
    /// per overlapping bucket pair, `c_r * c_s / max(d_r, d_s)` under
    /// containment-of-value-sets, the standard histogram join estimate.
    pub fn estimate_join(&self, other: &DynamicHistogram) -> f64 {
        let mut total = 0.0;
        for b in &self.buckets {
            for c in &other.buckets {
                let lo = b.lo.max(c.lo);
                let hi = b.hi.min(c.hi);
                if lo > hi {
                    continue;
                }
                let bf = overlap_fraction(b, lo, hi);
                let cf = overlap_fraction(c, lo, hi);
                let br = b.count as f64 * bf;
                let cr = c.count as f64 * cf;
                let bd = (b.distinct() * bf).max(1.0);
                let cd = (c.distinct() * cf).max(1.0);
                total += br * cr / bd.max(cd);
            }
        }
        total
    }

    /// Scale all counts by `1/fraction` — extrapolation to the full
    /// relation when only a prefix has been observed.
    pub fn extrapolate(&self, fraction: f64) -> DynamicHistogram {
        let f = if fraction > 1e-9 { 1.0 / fraction } else { 1.0 };
        let mut out = self.clone();
        for b in &mut out.buckets {
            b.count = (b.count as f64 * f).round() as u64;
        }
        for e in &mut out.heavy.entries {
            e.1 = (e.1 as f64 * f).round() as u64;
        }
        out.total = (out.total as f64 * f).round() as u64;
        out
    }
}

fn cmp_range(lo: f64, hi: f64, x: f64) -> std::cmp::Ordering {
    if x < lo {
        std::cmp::Ordering::Greater
    } else if x > hi {
        std::cmp::Ordering::Less
    } else {
        std::cmp::Ordering::Equal
    }
}

fn overlap_fraction(b: &Bucket, lo: f64, hi: f64) -> f64 {
    if b.width() <= 0.0 {
        1.0
    } else {
        ((hi - lo) / b.width()).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_tracks_inserts() {
        let mut h = DynamicHistogram::new(50);
        for i in 0..1000 {
            h.insert((i % 100) as f64);
        }
        assert_eq!(h.total(), 1000);
        assert!(h.bucket_count() <= 50);
    }

    #[test]
    fn heavy_hitters_are_exact() {
        let mut h = DynamicHistogram::new(50);
        for _ in 0..500 {
            h.insert(7.0);
        }
        for i in 0..100 {
            h.insert(1000.0 + i as f64);
        }
        let est = h.estimate_eq(7.0);
        assert!((est - 500.0).abs() < 1.0, "est={est}");
    }

    #[test]
    fn uniform_self_join_estimate_close() {
        // 10k tuples uniform over 1k keys: true self-join = 10 per key *
        // 10k = 100k output tuples.
        let mut h = DynamicHistogram::new(50);
        for i in 0..10_000u64 {
            h.insert((i % 1000) as f64);
        }
        let est = h.estimate_join(&h);
        let truth = 100_000.0;
        assert!(
            est > truth * 0.3 && est < truth * 3.0,
            "est={est} truth={truth}"
        );
    }

    #[test]
    fn key_fk_join_estimate_close() {
        // R: 1000 distinct keys once each; S: 10k rows, keys uniform over
        // the same 1000. True join = 10k.
        let mut r = DynamicHistogram::new(50);
        for i in 0..1000u64 {
            r.insert(i as f64);
        }
        let mut s = DynamicHistogram::new(50);
        for i in 0..10_000u64 {
            s.insert(((i * 17) % 1000) as f64);
        }
        let est = r.estimate_join(&s);
        assert!(est > 3_000.0 && est < 30_000.0, "est={est}");
    }

    #[test]
    fn extrapolation_scales_counts() {
        let mut h = DynamicHistogram::new(20);
        for i in 0..250u64 {
            h.insert((i % 50) as f64);
        }
        let full = h.extrapolate(0.25);
        assert_eq!(full.total(), 1000);
        assert!(full.estimate_eq(10.0) >= 2.0 * h.estimate_eq(10.0));
    }

    #[test]
    fn nulls_are_ignored() {
        let mut h = DynamicHistogram::new(10);
        h.insert_value(&Value::Null);
        assert_eq!(h.total(), 0);
        h.insert_value(&Value::Int(5));
        h.insert_value(&Value::str("x"));
        assert_eq!(h.total(), 2);
    }

    #[test]
    fn disjoint_histograms_estimate_zero() {
        let mut a = DynamicHistogram::new(10);
        let mut b = DynamicHistogram::new(10);
        for i in 0..100 {
            a.insert(i as f64);
            b.insert(10_000.0 + i as f64);
        }
        assert_eq!(a.estimate_join(&b), 0.0);
    }
}
