//! Mid-stream join-size prediction combining histograms and order
//! detection — the §4.5 experiment ("Evidence that Selectivity Is
//! Predictable").
//!
//! The paper's finding: histograms alone need randomized arrival order,
//! order detection alone needs sorted data; *combined*, a near-precise
//! 2-way join estimate is available by ~75% of the data, and a 3-way
//! estimate by 50–60%. [`JoinEstimator`] reproduces that combination: each
//! input column carries a histogram, an order detector, and a uniqueness
//! detector; estimation extrapolates histograms by fraction read, and when
//! a side is detected sorted-and-unique (a key), it switches to the exact
//! key–foreign-key model `|R ⋈ S| = |S|`.

use crate::histogram::DynamicHistogram;
use crate::order_detect::{OrderDetector, UniquenessDetector};
use tukwila_relation::Value;

/// Statistics collector for one join column of one input.
#[derive(Debug, Clone)]
pub struct ColumnStats {
    /// Value-distribution histogram over the column.
    pub histogram: DynamicHistogram,
    /// Streaming sort-order detector.
    pub order: OrderDetector,
    /// Streaming key-uniqueness detector.
    pub unique: UniquenessDetector,
    rows: u64,
}

impl ColumnStats {
    /// A fresh collector with `buckets` histogram range buckets.
    pub fn new(buckets: usize) -> ColumnStats {
        ColumnStats {
            histogram: DynamicHistogram::new(buckets),
            order: OrderDetector::new(),
            unique: UniquenessDetector::new(),
            rows: 0,
        }
    }

    /// Feed the next value in arrival order.
    pub fn observe(&mut self, v: &Value) {
        self.histogram.insert_value(v);
        self.order.observe(v);
        self.unique.observe(v);
        self.rows += 1;
    }

    /// Values observed so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Detected as a sorted key column (sorted + no adjacent duplicates)?
    pub fn is_sorted_key(&self) -> bool {
        self.order.is_sorted_asc() && self.unique.is_unique() == Some(true)
    }
}

/// Two-input equi-join estimator fed by prefixes of both inputs.
#[derive(Debug, Clone)]
pub struct JoinEstimator {
    /// Statistics over the left input's join column.
    pub left: ColumnStats,
    /// Statistics over the right input's join column.
    pub right: ColumnStats,
}

impl JoinEstimator {
    /// An estimator with `buckets` histogram range buckets per side.
    pub fn new(buckets: usize) -> JoinEstimator {
        JoinEstimator {
            left: ColumnStats::new(buckets),
            right: ColumnStats::new(buckets),
        }
    }

    /// Estimate the *full* join output cardinality, given the fraction of
    /// each input consumed so far.
    pub fn estimate_full(&self, left_fraction: f64, right_fraction: f64) -> f64 {
        let lf = left_fraction.clamp(1e-9, 1.0);
        let rf = right_fraction.clamp(1e-9, 1.0);
        // Order + uniqueness shortcut: a sorted unique column is a key, so
        // a key–foreign-key join emits (at most) one row per foreign-key
        // row. This is what makes prediction work even on sorted inputs,
        // where histograms alone are biased by the scanned prefix.
        if self.left.is_sorted_key() {
            return self.right.rows() as f64 / rf;
        }
        if self.right.is_sorted_key() {
            return self.left.rows() as f64 / lf;
        }
        let lh = self.left.histogram.extrapolate(lf);
        let rh = self.right.histogram.extrapolate(rf);
        lh.estimate_join(&rh)
    }

    /// Estimated join selectivity `|out| / (|L| * |R|)` over full inputs.
    pub fn estimate_selectivity(&self, left_fraction: f64, right_fraction: f64) -> f64 {
        let lf = left_fraction.clamp(1e-9, 1.0);
        let rf = right_fraction.clamp(1e-9, 1.0);
        let l = self.left.rows() as f64 / lf;
        let r = self.right.rows() as f64 / rf;
        if l <= 0.0 || r <= 0.0 {
            return 0.0;
        }
        self.estimate_full(left_fraction, right_fraction) / (l * r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_key_detected_and_used() {
        let mut e = JoinEstimator::new(50);
        // Left: sorted unique key 0..999 (prefix: first half).
        for i in 0..500 {
            e.left.observe(&Value::Int(i));
        }
        // Right: foreign keys, random-ish order, 4k of 8k rows seen.
        for i in 0..4000i64 {
            e.right.observe(&Value::Int((i * 2654435761) % 1000));
        }
        assert!(e.left.is_sorted_key());
        let est = e.estimate_full(0.5, 0.5);
        // True output = 8000 (every FK row matches exactly one key).
        assert!((est - 8000.0).abs() < 1.0, "est={est}");
    }

    #[test]
    fn histogram_path_for_random_order() {
        let mut e = JoinEstimator::new(50);
        for i in 0..2000i64 {
            e.left.observe(&Value::Int((i * 7919) % 500));
        }
        for i in 0..2000i64 {
            e.right.observe(&Value::Int((i * 104729) % 500));
        }
        assert!(!e.left.is_sorted_key());
        // True full-size: both 4000 rows over 500 keys -> 8 * 8 * 500 = 32k.
        let est = e.estimate_full(0.5, 0.5);
        assert!(est > 8_000.0 && est < 130_000.0, "est={est}");
    }

    #[test]
    fn selectivity_bounded() {
        let mut e = JoinEstimator::new(20);
        for i in 0..100 {
            e.left.observe(&Value::Int(i));
            e.right.observe(&Value::Int(i));
        }
        let s = e.estimate_selectivity(1.0, 1.0);
        assert!(s > 0.0 && s <= 1.0, "s={s}");
    }

    #[test]
    fn empty_estimator_is_zero() {
        let e = JoinEstimator::new(10);
        assert_eq!(e.estimate_selectivity(1.0, 1.0), 0.0);
    }
}
