//! The global core-budget arbiter for multi-query serving.
//!
//! Single-query runs size their parallelism off
//! `std::thread::available_parallelism()`: the query is alone, so the
//! host is its budget. A serving front end admitting N concurrent
//! queries cannot let each one believe it owns the machine — N queries ×
//! `available_parallelism` fragment producers and hedge races would
//! oversubscribe every core and the "busy core" waste term of the hedge
//! gate would price against a fiction. The [`CoreArbiter`] holds the one
//! host-wide budget; each admitted query takes a [`QueryLease`] and
//! acquires/releases cores through it.
//!
//! Two different consumers, two different disciplines:
//!
//! * **Decision inputs** (the hedge gate's `cores`, the fragmentation
//!   pass's core budget) use [`CoreArbiter::fair_share`] — a pure
//!   function of the budget and the admitted-query count, fixed at
//!   admission. Decisions must stay a pure function of the timeline (the
//!   dual-clock contract), so they cannot read the arbiter's fluctuating
//!   free count.
//! * **Thread accounting** (fragment producers, hedge-race lanes) uses
//!   [`QueryLease::try_acquire`] / [`QueryLease::release`]. Spawning is
//!   never *blocked* on a grant — correctness may require the thread
//!   (a hedge race is how a dead mirror is survived) — but the grant
//!   ledger keeps Σ held ≤ budget, so fleet metrics see true concurrent
//!   core use and a finished query's cores return to the pool the
//!   instant its lease drops.
//! * **Throttling** ([`QueryLease::acquire`]) blocks until a core frees
//!   up, with FIFO ticket fairness: a starved query is served before any
//!   later arrival, so no query waits forever while neighbors churn
//!   (the no-livelock property the serving tests pin).
//!
//! With `budget = 1` (this CI host) every fair share is 1 and at most
//! one core is ever granted — exactly the degenerate single-core
//! behavior the single-query engine has today.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Shared state behind the arbiter and all its leases.
#[derive(Debug)]
struct ArbiterInner {
    /// Host-wide core budget (≥ 1, fixed at construction).
    budget: usize,
    state: Mutex<ArbiterState>,
    cv: Condvar,
}

#[derive(Debug)]
struct ArbiterState {
    /// Cores currently granted across all leases. Invariant: ≤ budget.
    granted: usize,
    /// FIFO tickets of blocked [`QueryLease::acquire`] calls; the head
    /// ticket is served first when cores free up.
    waiting: VecDeque<u64>,
    next_ticket: u64,
    /// Leases ever registered (for [`CoreArbiter::fair_share`] callers
    /// that size by admission count).
    registered: usize,
}

/// The global core-budget arbiter: one per serving process, shared by
/// every admitted query via [`QueryLease`]s.
///
/// ```
/// use tukwila_stats::CoreArbiter;
///
/// let arbiter = CoreArbiter::new(4);
/// let a = arbiter.lease();
/// let b = arbiter.lease();
/// assert_eq!(arbiter.fair_share(2), 2);
/// assert_eq!(a.try_acquire(3), 3);
/// assert_eq!(b.try_acquire(3), 1, "only one core left in the budget");
/// drop(a); // a finished query returns everything it held
/// assert_eq!(b.try_acquire(3), 3);
/// ```
#[derive(Debug, Clone)]
pub struct CoreArbiter {
    inner: Arc<ArbiterInner>,
}

impl CoreArbiter {
    /// An arbiter over `budget` cores (clamped to ≥ 1).
    pub fn new(budget: usize) -> CoreArbiter {
        CoreArbiter {
            inner: Arc::new(ArbiterInner {
                budget: budget.max(1),
                state: Mutex::new(ArbiterState {
                    granted: 0,
                    waiting: VecDeque::new(),
                    next_ticket: 0,
                    registered: 0,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// An arbiter budgeted at the host's `available_parallelism` — the
    /// serving replacement for every per-query read of that value.
    pub fn host() -> CoreArbiter {
        CoreArbiter::new(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// The fixed host-wide budget.
    pub fn budget(&self) -> usize {
        self.inner.budget
    }

    /// Cores currently granted across all leases (≤ budget, always).
    pub fn granted(&self) -> usize {
        self.lock().granted
    }

    /// Leases registered so far (admitted queries, finished or not).
    pub fn registered(&self) -> usize {
        self.lock().registered
    }

    /// The deterministic per-query core share when `queries` run
    /// concurrently: `max(1, budget / queries)`. Decision inputs (hedge
    /// gate, fragmentation pass) use this — fixed at admission — instead
    /// of the fluctuating free count, so scheduling decisions stay a
    /// pure function of the timeline.
    pub fn fair_share(&self, queries: usize) -> usize {
        (self.inner.budget / queries.max(1)).max(1)
    }

    /// Register a query and hand it its lease. Dropping the lease (or an
    /// explicit [`QueryLease::release`] of everything held) returns its
    /// cores to the pool and wakes blocked acquirers — the fair
    /// reclamation path when a query finishes.
    pub fn lease(&self) -> QueryLease {
        self.lock().registered += 1;
        QueryLease {
            shared: Arc::new(LeaseShared {
                arbiter: self.inner.clone(),
                held: Mutex::new(0),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ArbiterState> {
        self.inner.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// Lease-side shared state; all clones of one lease draw on one ledger,
/// and the *last* clone dropped returns whatever is still held.
#[derive(Debug)]
struct LeaseShared {
    arbiter: Arc<ArbiterInner>,
    /// Cores this lease currently holds.
    held: Mutex<usize>,
}

/// One admitted query's handle on the global core budget. Cheap to
/// clone (clones share the ledger); dropping the last clone releases
/// every core still held.
#[derive(Debug, Clone)]
pub struct QueryLease {
    shared: Arc<LeaseShared>,
}

impl QueryLease {
    /// Grab up to `want` cores without blocking; returns how many were
    /// actually granted (possibly 0 when the pool is empty). The grant
    /// total across all leases never exceeds the budget.
    pub fn try_acquire(&self, want: usize) -> usize {
        let inner = &self.shared.arbiter;
        // Lock discipline (here and in `acquire`): the global state lock
        // is never held while taking the lease-local `held` lock —
        // `release` takes them in the opposite order.
        let take = {
            let mut state = inner.state.lock().unwrap_or_else(|p| p.into_inner());
            let free = inner.budget - state.granted;
            let take = want.min(free);
            state.granted += take;
            take
        };
        if take > 0 {
            *self.shared.held.lock().unwrap_or_else(|p| p.into_inner()) += take;
        }
        take
    }

    /// Block until at least one core is free *and* every earlier blocked
    /// acquirer has been served (FIFO tickets), then grab up to `want`
    /// cores (≥ 1). The ticket discipline is the no-livelock guarantee:
    /// releases wake the queue head first, so a starved query is served
    /// before any later arrival no matter how often neighbors recycle
    /// cores.
    pub fn acquire(&self, want: usize) -> usize {
        let want = want.max(1);
        let inner = &self.shared.arbiter;
        let mut state = inner.state.lock().unwrap_or_else(|p| p.into_inner());
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.waiting.push_back(ticket);
        loop {
            let at_head = state.waiting.front() == Some(&ticket);
            let free = inner.budget - state.granted;
            if at_head && free > 0 {
                let take = want.min(free);
                state.granted += take;
                state.waiting.pop_front();
                // Another waiter may be satisfiable with what's left.
                inner.cv.notify_all();
                drop(state);
                *self.shared.held.lock().unwrap_or_else(|p| p.into_inner()) += take;
                return take;
            }
            state = inner.cv.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Return up to `n` of the held cores to the pool (clamped at what
    /// this lease actually holds) and wake blocked acquirers. Returns
    /// how many were released.
    pub fn release(&self, n: usize) -> usize {
        let give = {
            let mut held = self.shared.held.lock().unwrap_or_else(|p| p.into_inner());
            let give = n.min(*held);
            *held -= give;
            give
        };
        if give > 0 {
            let inner = &self.shared.arbiter;
            let mut state = inner.state.lock().unwrap_or_else(|p| p.into_inner());
            state.granted -= give;
            inner.cv.notify_all();
        }
        give
    }

    /// Cores this lease currently holds.
    pub fn held(&self) -> usize {
        *self.shared.held.lock().unwrap_or_else(|p| p.into_inner())
    }
}

impl Drop for LeaseShared {
    fn drop(&mut self) {
        let held = *self.held.lock().unwrap_or_else(|p| p.into_inner());
        if held > 0 {
            let mut state = self.arbiter.state.lock().unwrap_or_else(|p| p.into_inner());
            state.granted -= held;
            self.arbiter.cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_never_exceed_budget() {
        let arb = CoreArbiter::new(3);
        let a = arb.lease();
        let b = arb.lease();
        assert_eq!(a.try_acquire(2), 2);
        assert_eq!(b.try_acquire(5), 1, "pool capped at the budget");
        assert_eq!(b.try_acquire(1), 0, "empty pool grants nothing");
        assert_eq!(arb.granted(), 3);
        assert_eq!(a.release(1), 1);
        assert_eq!(arb.granted(), 2);
        assert_eq!(b.try_acquire(9), 1);
        assert_eq!(arb.granted(), 3);
    }

    #[test]
    fn finished_query_returns_cores_on_drop() {
        let arb = CoreArbiter::new(2);
        let a = arb.lease();
        assert_eq!(a.try_acquire(2), 2);
        assert_eq!(arb.granted(), 2);
        drop(a);
        assert_eq!(arb.granted(), 0, "dropping the lease reclaims its cores");
        let b = arb.lease();
        assert_eq!(b.try_acquire(2), 2);
    }

    #[test]
    fn clones_share_one_ledger() {
        let arb = CoreArbiter::new(4);
        let a = arb.lease();
        let a2 = a.clone();
        assert_eq!(a.try_acquire(3), 3);
        assert_eq!(a2.held(), 3, "clone sees the shared ledger");
        assert_eq!(a2.release(2), 2);
        assert_eq!(a.held(), 1);
        drop(a);
        assert_eq!(arb.granted(), 1, "surviving clone keeps the grant alive");
        drop(a2);
        assert_eq!(arb.granted(), 0);
    }

    #[test]
    fn release_clamps_at_held() {
        let arb = CoreArbiter::new(2);
        let a = arb.lease();
        assert_eq!(a.try_acquire(1), 1);
        assert_eq!(a.release(10), 1, "cannot return cores never granted");
        assert_eq!(a.release(1), 0);
        assert_eq!(arb.granted(), 0);
    }

    #[test]
    fn fair_share_is_deterministic_and_floored() {
        let arb = CoreArbiter::new(8);
        assert_eq!(arb.fair_share(0), 8);
        assert_eq!(arb.fair_share(2), 4);
        assert_eq!(arb.fair_share(3), 2);
        assert_eq!(arb.fair_share(100), 1, "never starves a query below 1");
        let one = CoreArbiter::new(1);
        for n in 1..10 {
            assert_eq!(one.fair_share(n), 1, "single-core host: everyone gets 1");
        }
    }

    #[test]
    fn single_core_budget_degenerates_to_serial_grants() {
        let arb = CoreArbiter::new(1);
        let a = arb.lease();
        let b = arb.lease();
        assert_eq!(a.try_acquire(1), 1);
        assert_eq!(b.try_acquire(1), 0, "one core, one holder");
        a.release(1);
        assert_eq!(b.try_acquire(1), 1);
    }

    /// The no-livelock property: a blocked acquirer is eventually served
    /// even while other leases keep grabbing and releasing — the FIFO
    /// ticket puts the starved query ahead of every later request.
    #[test]
    fn blocked_acquire_is_eventually_served() {
        let arb = CoreArbiter::new(1);
        let greedy = arb.lease();
        assert_eq!(greedy.try_acquire(1), 1);
        let starved = arb.lease();
        let waiter = std::thread::spawn({
            let starved = starved.clone();
            move || starved.acquire(1)
        });
        // Let the waiter queue up, then churn the core through the
        // greedy lease a few times before finally letting go.
        std::thread::sleep(std::time::Duration::from_millis(20));
        for _ in 0..5 {
            greedy.release(1);
            // The waiter holds the head ticket, so this re-grab can only
            // land after the waiter was served (or fail to grab at all).
            let _ = greedy.try_acquire(1);
        }
        greedy.release(greedy.held());
        let got = waiter.join().expect("waiter must not deadlock");
        assert_eq!(got, 1);
        assert!(arb.granted() <= arb.budget());
        starved.release(1);
    }

    /// Concurrent stress over the Σ held ≤ budget invariant: many leases
    /// hammering try_acquire/release on several threads can never drive
    /// the grant total past the budget.
    #[test]
    fn concurrent_grants_respect_budget_invariant() {
        let arb = CoreArbiter::new(3);
        let mut threads = Vec::new();
        for t in 0..4 {
            let lease = arb.lease();
            let watcher = arb.clone();
            threads.push(std::thread::spawn(move || {
                for i in 0..500 {
                    let want = 1 + ((t + i) % 3);
                    let got = lease.try_acquire(want);
                    assert!(watcher.granted() <= watcher.budget());
                    if got > 0 {
                        lease.release(got);
                    }
                }
            }));
        }
        for th in threads {
            th.join().unwrap();
        }
        assert_eq!(arb.granted(), 0, "all churn returned to the pool");
    }
}
