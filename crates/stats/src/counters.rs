//! Per-operator execution counters (paper §3.3).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Counters every operator maintains. Shared (`Arc`) so the monitor thread
/// reads them while the executor writes.
#[derive(Debug, Default)]
pub struct OpCounters {
    tuples_in: AtomicU64,
    tuples_out: AtomicU64,
    /// Probe/comparison work performed; a proxy for CPU cost.
    work: AtomicU64,
}

impl OpCounters {
    /// Fresh zeroed counters, already wrapped for sharing with a monitor.
    pub fn new() -> Arc<OpCounters> {
        Arc::new(OpCounters::default())
    }

    /// Count `n` tuples arriving at the operator.
    #[inline]
    pub fn add_in(&self, n: u64) {
        self.tuples_in.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` tuples emitted by the operator.
    #[inline]
    pub fn add_out(&self, n: u64) {
        self.tuples_out.fetch_add(n, Ordering::Relaxed);
    }

    /// Count `n` units of probe/comparison work.
    #[inline]
    pub fn add_work(&self, n: u64) {
        self.work.fetch_add(n, Ordering::Relaxed);
    }

    /// Total tuples the operator has consumed.
    pub fn tuples_in(&self) -> u64 {
        self.tuples_in.load(Ordering::Relaxed)
    }

    /// Total tuples the operator has produced.
    pub fn tuples_out(&self) -> u64 {
        self.tuples_out.load(Ordering::Relaxed)
    }

    /// Accumulated probe/comparison work (a proxy for CPU cost).
    pub fn work(&self) -> u64 {
        self.work.load(Ordering::Relaxed)
    }

    /// Observed output/input ratio; `None` until input has been seen.
    pub fn ratio(&self) -> Option<f64> {
        let i = self.tuples_in();
        if i == 0 {
            None
        } else {
            Some(self.tuples_out() as f64 / i as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_accumulate() {
        let c = OpCounters::new();
        c.add_in(10);
        c.add_in(5);
        c.add_out(3);
        c.add_work(100);
        assert_eq!(c.tuples_in(), 15);
        assert_eq!(c.tuples_out(), 3);
        assert_eq!(c.work(), 100);
        assert_eq!(c.ratio(), Some(0.2));
    }

    #[test]
    fn ratio_none_without_input() {
        let c = OpCounters::new();
        assert_eq!(c.ratio(), None);
    }
}
