//! The dual-clock abstraction: one timeline, two drivers.
//!
//! Everything adaptive in this system — stall thresholds, delivery rates,
//! permutation re-ranking — is a pure function of *timestamps*, not of who
//! produced them. The seed ran exclusively on a simulated ("virtual")
//! clock advanced by the single-threaded driver, which makes runs
//! deterministic and replayable but means concurrency is only ever
//! modeled, never real. [`Clock`] abstracts the timeline so the same
//! scheduling logic runs in both modes:
//!
//! * [`VirtualClock`] — a shared monotonic counter in timeline µs,
//!   advanced explicitly by whoever drives execution (the `SimDriver`
//!   passes its simulated now through [`Clock::observe`]). Waiting is
//!   free: [`Clock::sleep_toward`] just jumps the counter.
//! * [`WallClock`] — timeline µs derived from a real [`Instant`] epoch,
//!   optionally *accelerated* so a schedule authored in timeline µs (e.g.
//!   a `DelayModel` arrival script) plays back faster in real time.
//!   Waiting really sleeps, in bounded chunks so sleepers remain
//!   responsive to cancellation.
//!
//! The invariant tests lean on: for sources whose content is identical
//! (mirrors) or jointly covering (partial replicas), the *deduped answer
//! set* of a federated run is independent of the clock driving it — wall
//! and virtual runs may interleave arbitrarily differently yet must agree
//! byte-for-byte after canonicalization.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A source of timeline instants (µs) shared by every party of one
/// execution: driver, scheduler, and any producer threads.
///
/// Implementations must be monotonic per observer: two successive
/// `now_us` calls from the same thread never go backwards.
///
/// The two implementations expose the same timeline with opposite
/// authorities — the virtual clock follows whoever calls
/// [`Clock::observe`], the wall clock follows real elapsed time:
///
/// ```
/// use tukwila_stats::{Clock, VirtualClock, WallClock};
///
/// // Virtual: waiting is free and external instants are authoritative.
/// let virt = VirtualClock::new();
/// assert_eq!(virt.observe(1_000), 1_000);   // driver advances the timeline
/// assert_eq!(virt.sleep_toward(5_000), 5_000); // "sleeping" just jumps
/// assert!(!virt.is_wall());
///
/// // Wall: real time is authoritative, optionally accelerated. At 1000×,
/// // one real millisecond spans one timeline second.
/// let wall = WallClock::accelerated(1000.0);
/// let before = wall.now_us();
/// std::thread::sleep(std::time::Duration::from_millis(2));
/// assert!(wall.now_us() > before, "wall time advances on its own");
/// assert_eq!(wall.scale_to_timeline(10.0), 10_000.0);
/// ```
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// The current timeline instant in µs.
    fn now_us(&self) -> u64;

    /// Fold an externally supplied timeline instant (e.g. the driver's
    /// simulated now) into the clock and return the instant to use for
    /// decisions. Virtual clocks advance to `external_us`; wall clocks
    /// ignore it — real time is the only authority.
    fn observe(&self, external_us: u64) -> u64;

    /// Make progress toward `deadline_us` and return the new now. A
    /// virtual clock jumps straight to the deadline; a wall clock sleeps
    /// — but only a bounded real interval per call, so callers must loop
    /// (`while clock.now_us() < deadline ...`) and can interleave
    /// cancellation checks between chunks.
    fn sleep_toward(&self, deadline_us: u64) -> u64;

    /// Whether waiting on this clock costs real time.
    fn is_wall(&self) -> bool;

    /// Convert a *measured real* duration (µs) into timeline µs, so CPU
    /// costs land in the same unit as [`Clock::now_us`]. Identity except
    /// for accelerated wall clocks, where a real µs spans `scale`
    /// timeline µs.
    fn scale_to_timeline(&self, real_us: f64) -> f64 {
        real_us
    }
}

/// Wait on `clock` until `cond()` holds or the timeline reaches
/// `deadline_us`, returning whether the condition was met. Between checks
/// the clock makes bounded progress toward the deadline (a virtual clock
/// jumps, a wall clock naps one chunk), so callers stay responsive and a
/// stuck condition cannot block past the deadline by more than one chunk.
///
/// This is the quiesce-timeout primitive of the threaded corrective
/// executor: "wait for every producer fragment to park, but give up after
/// a timeline budget" is exactly a clock-driven condition wait.
///
/// ```
/// use tukwila_stats::clock::{wait_until, Clock, VirtualClock};
///
/// let clock = VirtualClock::new();
/// let mut polls = 0;
/// let met = wait_until(&clock, 10_000, || {
///     polls += 1;
///     polls >= 2
/// });
/// assert!(met);
/// // An impossible condition gives up at the deadline instead of hanging.
/// assert!(!wait_until(&clock, 20_000, || false));
/// assert!(clock.now_us() >= 20_000);
/// ```
pub fn wait_until(clock: &dyn Clock, deadline_us: u64, mut cond: impl FnMut() -> bool) -> bool {
    loop {
        if cond() {
            return true;
        }
        if clock.now_us() >= deadline_us {
            return false;
        }
        clock.sleep_toward(deadline_us);
    }
}

/// The simulated clock: a shared monotonic µs counter.
///
/// The single-threaded drivers advance it via [`Clock::observe`] with
/// their own simulated now, so components holding the clock (e.g. a
/// `FederatedSource`) see exactly the timeline the driver sees.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_us: AtomicU64,
}

impl VirtualClock {
    /// A fresh virtual clock starting at timeline instant 0.
    pub fn new() -> VirtualClock {
        VirtualClock::default()
    }
}

impl Clock for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now_us.load(Ordering::Acquire)
    }

    fn observe(&self, external_us: u64) -> u64 {
        self.now_us
            .fetch_max(external_us, Ordering::AcqRel)
            .max(external_us)
    }

    fn sleep_toward(&self, deadline_us: u64) -> u64 {
        self.observe(deadline_us)
    }

    fn is_wall(&self) -> bool {
        false
    }
}

/// Real time, mapped onto the timeline as `elapsed_real_µs × scale`.
///
/// `scale > 1` accelerates playback: a source script authored at
/// millisecond cadence runs in a fraction of the real time while every
/// *relative* property of the schedule (gaps, bursts, stall windows) is
/// preserved. Tests and benches use this to race real threads over
/// multi-second timelines in tens of milliseconds.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
    scale: f64,
    max_chunk: Duration,
}

/// Upper bound on a single [`Clock::sleep_toward`] nap (real time), so
/// producer threads blocked on far-future deadlines stay responsive to
/// cancellation and never wedge a join on shutdown.
const DEFAULT_MAX_SLEEP_CHUNK: Duration = Duration::from_millis(2);

impl WallClock {
    /// Real time, 1 timeline µs = 1 real µs.
    pub fn new() -> WallClock {
        WallClock::accelerated(1.0)
    }

    /// Timeline runs `scale`× faster than real time (`scale` is clamped
    /// to be positive).
    pub fn accelerated(scale: f64) -> WallClock {
        WallClock {
            epoch: Instant::now(),
            scale: if scale > 0.0 { scale } else { 1.0 },
            max_chunk: DEFAULT_MAX_SLEEP_CHUNK,
        }
    }

    /// The acceleration factor.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Real time elapsed since the clock's epoch.
    pub fn real_elapsed(&self) -> Duration {
        self.epoch.elapsed()
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        (self.epoch.elapsed().as_secs_f64() * self.scale * 1e6) as u64
    }

    fn observe(&self, _external_us: u64) -> u64 {
        self.now_us()
    }

    fn sleep_toward(&self, deadline_us: u64) -> u64 {
        let now = self.now_us();
        if deadline_us > now {
            let remaining_real =
                Duration::from_secs_f64((deadline_us - now) as f64 / self.scale / 1e6);
            std::thread::sleep(remaining_real.min(self.max_chunk));
        } else {
            // Already past the deadline: still yield so tight poll loops
            // (a consumer waiting on racing producers) don't spin a core.
            std::thread::yield_now();
        }
        self.now_us()
    }

    fn is_wall(&self) -> bool {
        true
    }

    fn scale_to_timeline(&self, real_us: f64) -> f64 {
        real_us * self.scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn virtual_clock_is_monotone_and_free() {
        let c = VirtualClock::new();
        assert_eq!(c.now_us(), 0);
        assert_eq!(c.observe(100), 100);
        assert_eq!(c.observe(50), 100, "never goes backwards");
        let start = Instant::now();
        assert_eq!(c.sleep_toward(1_000_000_000), 1_000_000_000);
        assert!(start.elapsed() < Duration::from_millis(100), "no real wait");
        assert!(!c.is_wall());
    }

    #[test]
    fn wall_clock_advances_with_real_time() {
        let c = WallClock::accelerated(1000.0); // 1 real ms = 1000 timeline ms
        let a = c.now_us();
        std::thread::sleep(Duration::from_millis(2));
        let b = c.now_us();
        assert!(b > a, "wall time must advance: {a} -> {b}");
        assert!(c.is_wall());
        // observe ignores the external instant.
        assert!(c.observe(u64::MAX / 2) < u64::MAX / 4);
    }

    #[test]
    fn wall_sleep_is_chunked() {
        let c = WallClock::accelerated(1.0);
        let start = Instant::now();
        // A deadline hours away must not block longer than one chunk.
        c.sleep_toward(u64::MAX / 2);
        assert!(start.elapsed() < Duration::from_millis(500));
    }

    #[test]
    fn shared_across_threads() {
        let c: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        let c2 = c.clone();
        let h = std::thread::spawn(move || c2.observe(42));
        assert_eq!(h.join().unwrap(), 42);
        assert_eq!(c.now_us(), 42);
    }
}
