//! Adaptivity tracing: a clock-aware event journal with decision
//! provenance.
//!
//! The engine's whole point is that it *adapts mid-flight* — hedged
//! source races, mid-stream re-optimization, plan switches — yet those
//! decisions are invisible in the terse end-of-run reports. This module
//! is the journal the adaptive layers write to as they decide:
//!
//! * **Spans** ([`SpanKind`]) bracket query/phase/fragment lifetimes and
//!   the quiesce protocol's park/drain/seal/respawn sub-steps.
//! * **Counters** record bounded per-run tallies (tuples, batches,
//!   blocked sends, dedup hits) — never per-tuple events.
//! * **Decisions** carry full provenance: the hedge gate logs every
//!   candidate's [`RaceDecision`](crate::schedule::RaceDecision)-derived
//!   win/waste score and which
//!   standby (if any) it woke; the corrective monitor logs observed vs
//!   estimated costs and the switch/no-switch verdict; the cut chooser
//!   logs each cut's net win against its threshold.
//!
//! Timestamps come from the shared [`Clock`] trait, so a virtual run and
//! a threaded wall run produce *comparable* traces: the timeline unit is
//! the same, and the decision sequence — which excludes raw timings via
//! [`hedge_signatures`] — must match exactly between clocks on the same
//! scenario. That is a strictly stronger equivalence check than
//! comparing answers.
//!
//! The sink is lock-cheap: a disabled [`TraceSink`] is a `None` check,
//! and an enabled one takes one short mutex per *event* (events are per
//! decision/per batch-wave, not per tuple).
//!
//! ```
//! use std::sync::Arc;
//! use tukwila_stats::trace::{TraceEvent, TraceSink};
//! use tukwila_stats::{Clock, VirtualClock};
//!
//! let clock = Arc::new(VirtualClock::new());
//! let sink = TraceSink::unbounded(clock.clone());
//! clock.observe(250);
//! sink.record(TraceEvent::Counter {
//!     name: "tuples".into(),
//!     scope: "scan(orders)".into(),
//!     value: 42,
//! });
//! let records = sink.snapshot();
//! assert_eq!(records.len(), 1);
//! assert_eq!(records[0].at_us, 250);
//! assert!(records[0].to_json().contains("\"type\":\"counter\""));
//!
//! // Disabled sinks cost one branch and record nothing.
//! let off = TraceSink::disabled();
//! off.record(TraceEvent::Counter {
//!     name: "tuples".into(),
//!     scope: "scan(orders)".into(),
//!     value: 1,
//! });
//! assert!(off.snapshot().is_empty());
//! ```

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::Clock;

/// What a [`TraceEvent::SpanBegin`]/[`TraceEvent::SpanEnd`] pair covers.
///
/// The hierarchy nests: a `Query` contains `Phase`s, a phase contains
/// `Fragment`s, a switch interposes a `Quiesce` whose sub-steps are
/// `Park` → `Drain` → `Seal` → `Respawn`, and `Drive` brackets one
/// driver run over a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanKind {
    /// One whole query execution.
    Query,
    /// One corrective phase (one plan's tenure).
    Phase,
    /// One plan fragment's producer lifetime.
    Fragment,
    /// The whole quiesce protocol around a plan switch.
    Quiesce,
    /// Producers parking at batch boundaries (inside a quiesce).
    Park,
    /// Draining in-flight exchange tuples into the sealed plan.
    Drain,
    /// Sealing operator state into the registry.
    Seal,
    /// Spawning the next phase's producers.
    Respawn,
    /// One driver run over a pipeline (e.g. `SimDriver::run_target`).
    Drive,
}

impl SpanKind {
    /// Stable lowercase label used in JSONL and rollup keys.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::Phase => "phase",
            SpanKind::Fragment => "fragment",
            SpanKind::Quiesce => "quiesce",
            SpanKind::Park => "park",
            SpanKind::Drain => "drain",
            SpanKind::Seal => "seal",
            SpanKind::Respawn => "respawn",
            SpanKind::Drive => "drive",
        }
    }

    /// Build the [`TraceEvent::SpanBegin`] for this kind.
    pub fn begin(self, name: impl Into<String>) -> TraceEvent {
        TraceEvent::SpanBegin {
            kind: self,
            name: name.into(),
        }
    }

    /// Build the matching [`TraceEvent::SpanEnd`].
    pub fn end(self, name: impl Into<String>) -> TraceEvent {
        TraceEvent::SpanEnd {
            kind: self,
            name: name.into(),
        }
    }
}

/// One candidate standby's score inside a hedge-gate decision: the
/// [`RaceDecision`](crate::RaceDecision) win/waste the delivery model
/// predicted for racing it, and whether it paid.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// The candidate source's name.
    pub candidate: String,
    /// The rate (tuples/sec) the gate assumed for the candidate.
    pub rate_tps: f64,
    /// Predicted timeline µs saved if this standby wins the race.
    pub win_us: f64,
    /// Predicted timeline µs of wasted overlap work if it loses.
    pub waste_us: f64,
    /// Whether the model said racing this candidate pays.
    pub pays: bool,
}

/// A typed journal entry. Everything the adaptive layers decide or
/// measure is one of these; see the module docs for the taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A span opens. `name` identifies the instance (query name,
    /// fragment index, phase number).
    SpanBegin {
        /// What the span covers.
        kind: SpanKind,
        /// Which instance (e.g. `"frag-2"`, `"phase-0"`).
        name: String,
    },
    /// The matching span closes.
    SpanEnd {
        /// What the span covers.
        kind: SpanKind,
        /// Which instance; pairs with the [`TraceEvent::SpanBegin`].
        name: String,
    },
    /// A bounded tally (tuples, batches, blocked sends, dedup hits…).
    /// Emitted at span or run boundaries, never per tuple.
    Counter {
        /// Which tally (e.g. `"tuples"`, `"blocked_sends"`).
        name: String,
        /// What it is scoped to (an operator, exchange, or source name).
        scope: String,
        /// The tally's value.
        value: u64,
    },
    /// The hedge gate evaluated standbys for a stalled source. Carries
    /// every candidate's score, the chosen standby, and the chosen
    /// [`RaceDecision`](crate::RaceDecision)'s win/waste — whether or
    /// not the gate fired.
    HedgeDecision {
        /// The federated relation being fed.
        relation: String,
        /// The stalled/pending candidate that triggered the gate.
        stalled: String,
        /// All scored standbys, in scheduler order.
        scores: Vec<CandidateScore>,
        /// The standby the gate woke, if any.
        chosen: Option<String>,
        /// Predicted win (timeline µs) of the chosen race.
        win_us: f64,
        /// Predicted waste (timeline µs) of the chosen race.
        waste_us: f64,
        /// Whether a standby was actually activated.
        fired: bool,
    },
    /// A standby was activated outside the cost gate (the EOF sweep:
    /// every live candidate finished without completing the relation).
    Activation {
        /// The federated relation being fed.
        relation: String,
        /// The standby that was woken.
        candidate: String,
        /// True when this came from the EOF sweep rather than the gate.
        sweep: bool,
    },
    /// The corrective monitor compared the running plan against a
    /// re-optimized candidate.
    CorrectiveDecision {
        /// Which phase the monitor was watching.
        phase: u64,
        /// The running plan's description.
        current_plan: String,
        /// The candidate plan's description.
        candidate_plan: String,
        /// Estimated remaining cost of the running plan.
        current_cost: f64,
        /// Estimated cost of the candidate.
        candidate_cost: f64,
        /// The switch threshold in force (candidate must beat
        /// `threshold × current_cost`).
        threshold: f64,
        /// Whether the monitor ordered a plan switch.
        switched: bool,
    },
    /// The monitor calibrated the optimizer's cost unit against
    /// measured CPU (phase-0 `Measured` calibration).
    Calibration {
        /// Which phase the calibration ran in.
        phase: u64,
        /// Measured CPU so far, timeline µs.
        measured_cpu_us: f64,
        /// The estimate the measurement was compared against.
        estimated_cpu_us: f64,
        /// The resulting cost-unit multiplier (clamped).
        unit_us: f64,
    },
    /// The cut chooser scored one candidate cut.
    CutDecision {
        /// Which plan edge the cut would sever.
        site: String,
        /// Predicted net win (timeline µs) of cutting here.
        net_win_us: f64,
        /// The threshold the net win was gated on.
        min_net_win_us: f64,
        /// Whether the cut was taken.
        accepted: bool,
    },
}

impl TraceEvent {
    /// Stable lowercase type tag used in JSONL (`"type":…`) and rollups.
    pub fn type_tag(&self) -> &'static str {
        match self {
            TraceEvent::SpanBegin { .. } => "span_begin",
            TraceEvent::SpanEnd { .. } => "span_end",
            TraceEvent::Counter { .. } => "counter",
            TraceEvent::HedgeDecision { .. } => "hedge_decision",
            TraceEvent::Activation { .. } => "activation",
            TraceEvent::CorrectiveDecision { .. } => "corrective_decision",
            TraceEvent::Calibration { .. } => "calibration",
            TraceEvent::CutDecision { .. } => "cut_decision",
        }
    }
}

/// One journal entry: a sequence number (total order of emission), a
/// timeline timestamp from the sink's [`Clock`], and the typed event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Emission order, dense from 0 even when a bounded sink drops old
    /// records.
    pub seq: u64,
    /// Timeline instant (µs) the event was recorded at.
    pub at_us: u64,
    /// The event itself.
    pub event: TraceEvent,
}

/// Escape a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as a JSON value. Non-finite values (an unbounded win
/// when no healthy candidate exists) have no JSON representation, so
/// they become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".to_string()
    }
}

impl TraceRecord {
    /// Serialize this record as one line of JSON (hand-rolled; the
    /// workspace deliberately carries no serde). Schema is documented in
    /// `results/README.md`.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"seq\":{},\"at_us\":{},\"type\":\"{}\"",
            self.seq,
            self.at_us,
            self.event.type_tag()
        );
        match &self.event {
            TraceEvent::SpanBegin { kind, name } | TraceEvent::SpanEnd { kind, name } => {
                s.push_str(&format!(
                    ",\"kind\":\"{}\",\"name\":\"{}\"",
                    kind.label(),
                    json_escape(name)
                ));
            }
            TraceEvent::Counter { name, scope, value } => {
                s.push_str(&format!(
                    ",\"name\":\"{}\",\"scope\":\"{}\",\"value\":{}",
                    json_escape(name),
                    json_escape(scope),
                    value
                ));
            }
            TraceEvent::HedgeDecision {
                relation,
                stalled,
                scores,
                chosen,
                win_us,
                waste_us,
                fired,
            } => {
                s.push_str(&format!(
                    ",\"relation\":\"{}\",\"stalled\":\"{}\",\"scores\":[",
                    json_escape(relation),
                    json_escape(stalled)
                ));
                for (i, c) in scores.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&format!(
                        "{{\"candidate\":\"{}\",\"rate_tps\":{},\"win_us\":{},\
                         \"waste_us\":{},\"pays\":{}}}",
                        json_escape(&c.candidate),
                        json_f64(c.rate_tps),
                        json_f64(c.win_us),
                        json_f64(c.waste_us),
                        c.pays
                    ));
                }
                s.push(']');
                match chosen {
                    Some(name) => {
                        s.push_str(&format!(",\"chosen\":\"{}\"", json_escape(name)));
                    }
                    None => s.push_str(",\"chosen\":null"),
                }
                s.push_str(&format!(
                    ",\"win_us\":{},\"waste_us\":{},\"fired\":{}",
                    json_f64(*win_us),
                    json_f64(*waste_us),
                    fired
                ));
            }
            TraceEvent::Activation {
                relation,
                candidate,
                sweep,
            } => {
                s.push_str(&format!(
                    ",\"relation\":\"{}\",\"candidate\":\"{}\",\"sweep\":{}",
                    json_escape(relation),
                    json_escape(candidate),
                    sweep
                ));
            }
            TraceEvent::CorrectiveDecision {
                phase,
                current_plan,
                candidate_plan,
                current_cost,
                candidate_cost,
                threshold,
                switched,
            } => {
                s.push_str(&format!(
                    ",\"phase\":{},\"current_plan\":\"{}\",\"candidate_plan\":\"{}\",\
                     \"current_cost\":{},\"candidate_cost\":{},\"threshold\":{},\
                     \"switched\":{}",
                    phase,
                    json_escape(current_plan),
                    json_escape(candidate_plan),
                    json_f64(*current_cost),
                    json_f64(*candidate_cost),
                    json_f64(*threshold),
                    switched
                ));
            }
            TraceEvent::Calibration {
                phase,
                measured_cpu_us,
                estimated_cpu_us,
                unit_us,
            } => {
                s.push_str(&format!(
                    ",\"phase\":{},\"measured_cpu_us\":{},\"estimated_cpu_us\":{},\
                     \"unit_us\":{}",
                    phase,
                    json_f64(*measured_cpu_us),
                    json_f64(*estimated_cpu_us),
                    json_f64(*unit_us)
                ));
            }
            TraceEvent::CutDecision {
                site,
                net_win_us,
                min_net_win_us,
                accepted,
            } => {
                s.push_str(&format!(
                    ",\"site\":\"{}\",\"net_win_us\":{},\"min_net_win_us\":{},\
                     \"accepted\":{}",
                    json_escape(site),
                    json_f64(*net_win_us),
                    json_f64(*min_net_win_us),
                    accepted
                ));
            }
        }
        s.push('}');
        s
    }
}

/// Journal storage: unbounded vector or bounded ring.
#[derive(Debug)]
enum Store {
    Unbounded(Vec<TraceRecord>),
    Ring {
        buf: VecDeque<TraceRecord>,
        cap: usize,
    },
}

#[derive(Debug)]
struct SinkInner {
    clock: Arc<dyn Clock>,
    store: Mutex<Store>,
    seq: AtomicU64,
    dropped: AtomicU64,
}

/// The shared, clone-cheap journal handle every instrumented layer
/// holds. A disabled sink (the default) is a `None` inside and records
/// nothing at the cost of one branch; enabled sinks share one journal
/// through an `Arc`, so cloning a sink clones a handle, not the buffer.
#[derive(Debug, Clone, Default)]
pub struct TraceSink {
    inner: Option<Arc<SinkInner>>,
}

impl TraceSink {
    /// The no-op sink: records nothing, allocates nothing. This is also
    /// the `Default`, so configs gain tracing without breaking callers.
    pub fn disabled() -> TraceSink {
        TraceSink { inner: None }
    }

    /// An unbounded journal stamped by `clock`. Event volume is bounded
    /// by design (per-decision / per-run, never per-tuple), so
    /// unbounded storage is safe for query-scale runs.
    pub fn unbounded(clock: Arc<dyn Clock>) -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                clock,
                store: Mutex::new(Store::Unbounded(Vec::new())),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// A bounded ring keeping the most recent `cap` records; older ones
    /// are dropped and tallied in [`TraceSink::dropped`]. For long-lived
    /// serving processes where only the recent window matters.
    pub fn bounded(clock: Arc<dyn Clock>, cap: usize) -> TraceSink {
        TraceSink {
            inner: Some(Arc::new(SinkInner {
                clock,
                store: Mutex::new(Store::Ring {
                    buf: VecDeque::with_capacity(cap.max(1)),
                    cap: cap.max(1),
                }),
                seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Whether events are being recorded. Callers building expensive
    /// provenance payloads (candidate score vectors) should check this
    /// first.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Record `event` stamped with the sink clock's current instant.
    pub fn record(&self, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            let at = inner.clock.now_us();
            Self::push(inner, at, event);
        }
    }

    /// Record `event` stamped with an explicit timeline instant — for
    /// emitters that are handed a more authoritative `now` than the
    /// shared clock (the virtual scheduler receives the driver's
    /// simulated now as an argument).
    pub fn record_at(&self, at_us: u64, event: TraceEvent) {
        if let Some(inner) = &self.inner {
            Self::push(inner, at_us, event);
        }
    }

    fn push(inner: &SinkInner, at_us: u64, event: TraceEvent) {
        let seq = inner.seq.fetch_add(1, Ordering::Relaxed);
        let rec = TraceRecord { seq, at_us, event };
        let mut store = inner.store.lock();
        match &mut *store {
            Store::Unbounded(v) => v.push(rec),
            Store::Ring { buf, cap } => {
                if buf.len() == *cap {
                    buf.pop_front();
                    inner.dropped.fetch_add(1, Ordering::Relaxed);
                }
                buf.push_back(rec);
            }
        }
    }

    /// Convenience: record a [`TraceEvent::SpanBegin`].
    pub fn span_begin(&self, kind: SpanKind, name: impl Into<String>) {
        if self.is_enabled() {
            self.record(TraceEvent::SpanBegin {
                kind,
                name: name.into(),
            });
        }
    }

    /// Convenience: record a [`TraceEvent::SpanEnd`].
    pub fn span_end(&self, kind: SpanKind, name: impl Into<String>) {
        if self.is_enabled() {
            self.record(TraceEvent::SpanEnd {
                kind,
                name: name.into(),
            });
        }
    }

    /// Convenience: record a [`TraceEvent::Counter`]. Only non-zero
    /// values are recorded, so quiet scopes don't pad the journal.
    pub fn counter(&self, name: impl Into<String>, scope: impl Into<String>, value: u64) {
        if self.is_enabled() && value > 0 {
            self.record(TraceEvent::Counter {
                name: name.into(),
                scope: scope.into(),
                value,
            });
        }
    }

    /// The journal so far, in emission order. Copies the buffer; call at
    /// run boundaries, not in hot loops.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => match &*inner.store.lock() {
                Store::Unbounded(v) => v.clone(),
                Store::Ring { buf, .. } => buf.iter().cloned().collect(),
            },
        }
    }

    /// How many records are currently retained.
    pub fn len(&self) -> usize {
        match &self.inner {
            None => 0,
            Some(inner) => match &*inner.store.lock() {
                Store::Unbounded(v) => v.len(),
                Store::Ring { buf, .. } => buf.len(),
            },
        }
    }

    /// Whether the journal is empty (always true for a disabled sink).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many records a bounded ring has evicted.
    pub fn dropped(&self) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.dropped.load(Ordering::Relaxed))
    }

    /// Serialize the whole journal as JSONL (one record per line, `\n`
    /// terminated; empty string for an empty journal).
    pub fn export_jsonl(&self) -> String {
        let mut out = String::new();
        for rec in self.snapshot() {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }
}

/// Per-query rollup of a journal: span tallies, counter sums, and
/// decision counts. Built once at the end of a run with
/// [`QuerySummary::from_records`]; rendered with
/// [`QuerySummary::render`] for the `repro --trace` tables and
/// [`QuerySummary::decision_counts`] for the CI golden.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QuerySummary {
    /// Completed spans per [`SpanKind::label`].
    pub spans: BTreeMap<String, u64>,
    /// Counter sums keyed `name` → total across scopes.
    pub counters: BTreeMap<String, u64>,
    /// Hedge-gate evaluations that woke a standby.
    pub hedges_fired: u64,
    /// Hedge-gate evaluations that declined every standby.
    pub hedges_declined: u64,
    /// EOF-sweep activations (standbys woken outside the cost gate).
    pub sweep_activations: u64,
    /// Corrective-monitor polls that ordered a switch.
    pub switches: u64,
    /// Corrective-monitor polls that held the current plan.
    pub holds: u64,
    /// Cost-unit calibrations performed.
    pub calibrations: u64,
    /// Cut-chooser decisions that took the cut.
    pub cuts_accepted: u64,
    /// Cut-chooser decisions that declined the cut.
    pub cuts_rejected: u64,
    /// Timestamp of the first record (timeline µs), if any.
    pub first_us: Option<u64>,
    /// Timestamp of the last record (timeline µs), if any.
    pub last_us: Option<u64>,
}

impl QuerySummary {
    /// Aggregate a journal into a rollup.
    pub fn from_records(records: &[TraceRecord]) -> QuerySummary {
        let mut s = QuerySummary::default();
        for rec in records {
            s.first_us = Some(s.first_us.map_or(rec.at_us, |f| f.min(rec.at_us)));
            s.last_us = Some(s.last_us.map_or(rec.at_us, |l| l.max(rec.at_us)));
            match &rec.event {
                TraceEvent::SpanBegin { .. } => {}
                TraceEvent::SpanEnd { kind, .. } => {
                    *s.spans.entry(kind.label().to_string()).or_insert(0) += 1;
                }
                TraceEvent::Counter { name, value, .. } => {
                    *s.counters.entry(name.clone()).or_insert(0) += value;
                }
                TraceEvent::HedgeDecision { fired, .. } => {
                    if *fired {
                        s.hedges_fired += 1;
                    } else {
                        s.hedges_declined += 1;
                    }
                }
                TraceEvent::Activation { sweep, .. } => {
                    if *sweep {
                        s.sweep_activations += 1;
                    }
                }
                TraceEvent::CorrectiveDecision { switched, .. } => {
                    if *switched {
                        s.switches += 1;
                    } else {
                        s.holds += 1;
                    }
                }
                TraceEvent::Calibration { .. } => s.calibrations += 1,
                TraceEvent::CutDecision { accepted, .. } => {
                    if *accepted {
                        s.cuts_accepted += 1;
                    } else {
                        s.cuts_rejected += 1;
                    }
                }
            }
        }
        s
    }

    /// Render the human-facing rollup table (aligned `key value` lines).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str("  decisions:\n");
        for (k, v) in self.decision_pairs() {
            out.push_str(&format!("    {k:<18} {v}\n"));
        }
        if !self.spans.is_empty() {
            out.push_str("  spans (completed):\n");
            for (k, v) in &self.spans {
                out.push_str(&format!("    {k:<18} {v}\n"));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("  counters:\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("    {k:<18} {v}\n"));
            }
        }
        if let (Some(f), Some(l)) = (self.first_us, self.last_us) {
            out.push_str(&format!("  window: [{f} .. {l}] timeline us\n"));
        }
        out
    }

    fn decision_pairs(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("hedges_fired", self.hedges_fired),
            ("hedges_declined", self.hedges_declined),
            ("sweep_activations", self.sweep_activations),
            ("switches", self.switches),
            ("holds", self.holds),
            ("calibrations", self.calibrations),
            ("cuts_accepted", self.cuts_accepted),
            ("cuts_rejected", self.cuts_rejected),
        ]
    }

    /// The decision-count summary diffed as a CI golden: one
    /// `key=value` line per decision class, stable order. Timing-free
    /// by construction, so it is deterministic for virtual-clock runs.
    pub fn decision_counts(&self) -> String {
        let mut out = String::new();
        for (k, v) in self.decision_pairs() {
            out.push_str(&format!("{k}={v}\n"));
        }
        out
    }
}

/// The timing-free signature of one hedge-gate decision: which relation,
/// which stalled candidate triggered it, which standby was chosen (or
/// `-` for a decline), and whether it fired. Two runs of the same
/// scenario under different clocks must produce, per relation, the same
/// ordered signature list — win/waste magnitudes differ with the clock,
/// the *decisions* must not.
pub fn decision_signature(event: &TraceEvent) -> Option<String> {
    match event {
        TraceEvent::HedgeDecision {
            relation,
            stalled,
            chosen,
            fired,
            ..
        } => Some(format!(
            "{relation}|stalled={stalled}|chosen={}|fired={fired}",
            chosen.as_deref().unwrap_or("-")
        )),
        _ => None,
    }
}

/// Group the hedge-decision signatures of a journal by relation, in
/// emission order. Threaded runs interleave *relations*
/// nondeterministically, but within one relation the gate's decision
/// sequence is the scheduler's own total order, so per-relation lists
/// are the right unit of cross-clock comparison.
pub fn hedge_signatures(records: &[TraceRecord]) -> BTreeMap<String, Vec<String>> {
    let mut map: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for rec in records {
        if let TraceEvent::HedgeDecision { relation, .. } = &rec.event {
            if let Some(sig) = decision_signature(&rec.event) {
                map.entry(relation.clone()).or_default().push(sig);
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    fn sample_hedge(fired: bool) -> TraceEvent {
        TraceEvent::HedgeDecision {
            relation: "fed(a×2)".into(),
            stalled: "a-primary".into(),
            scores: vec![CandidateScore {
                candidate: "a-mirror".into(),
                rate_tps: 1000.0,
                win_us: 5000.0,
                waste_us: 100.0,
                pays: fired,
            }],
            chosen: fired.then(|| "a-mirror".to_string()),
            win_us: if fired { 5000.0 } else { 0.0 },
            waste_us: if fired { 100.0 } else { 0.0 },
            fired,
        }
    }

    #[test]
    fn disabled_sink_is_inert() {
        let sink = TraceSink::disabled();
        sink.record(sample_hedge(true));
        sink.counter("tuples", "x", 5);
        assert!(!sink.is_enabled());
        assert!(sink.is_empty());
        assert_eq!(sink.export_jsonl(), "");
    }

    #[test]
    fn unbounded_sink_stamps_with_clock() {
        let clock = Arc::new(VirtualClock::new());
        let sink = TraceSink::unbounded(clock.clone());
        clock.observe(10);
        sink.record(sample_hedge(true));
        clock.observe(20);
        sink.record_at(15, sample_hedge(false));
        let recs = sink.snapshot();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].seq, 0);
        assert_eq!(recs[0].at_us, 10);
        assert_eq!(recs[1].at_us, 15, "record_at overrides the clock");
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let clock = Arc::new(VirtualClock::new());
        let sink = TraceSink::bounded(clock, 2);
        for i in 0..5 {
            sink.counter("n", "s", i + 1);
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        let recs = sink.snapshot();
        assert_eq!(recs[0].seq, 3, "oldest retained is seq 3");
    }

    #[test]
    fn zero_counters_are_elided() {
        let clock = Arc::new(VirtualClock::new());
        let sink = TraceSink::unbounded(clock);
        sink.counter("blocked_sends", "ex", 0);
        assert!(sink.is_empty());
    }

    #[test]
    fn rehash_counter_reaches_rollup() {
        // The stitch-up executor reports `rehashes` through the generic
        // counter channel; the rollup must carry it by name so `--trace`
        // output surfaces key-mismatch rebuilds without a schema change.
        let clock = Arc::new(VirtualClock::new());
        let sink = TraceSink::unbounded(clock);
        sink.counter("rehashes", "stitchup", 2);
        let summary = QuerySummary::from_records(&sink.snapshot());
        assert_eq!(summary.counters.get("rehashes"), Some(&2));
    }

    #[test]
    fn json_is_escaped_and_finite() {
        let clock = Arc::new(VirtualClock::new());
        let sink = TraceSink::unbounded(clock);
        sink.record(TraceEvent::HedgeDecision {
            relation: "r\"x\"".into(),
            stalled: "s\\t".into(),
            scores: vec![CandidateScore {
                candidate: "c".into(),
                rate_tps: f64::INFINITY,
                win_us: f64::NAN,
                waste_us: 1.5,
                pays: true,
            }],
            chosen: None,
            win_us: f64::INFINITY,
            waste_us: 0.0,
            fired: false,
        });
        let line = sink.export_jsonl();
        assert!(line.contains("r\\\"x\\\""));
        assert!(line.contains("s\\\\t"));
        assert!(line.contains("\"rate_tps\":null"));
        assert!(line.contains("\"win_us\":null"));
        assert!(line.contains("\"chosen\":null"));
        assert!(!line.contains("inf") && !line.contains("NaN"));
    }

    #[test]
    fn summary_rollup_counts_decisions() {
        let clock = Arc::new(VirtualClock::new());
        let sink = TraceSink::unbounded(clock);
        sink.record(sample_hedge(true));
        sink.record(sample_hedge(false));
        sink.record(TraceEvent::Activation {
            relation: "fed(a×2)".into(),
            candidate: "a-backup".into(),
            sweep: true,
        });
        sink.record(TraceEvent::CorrectiveDecision {
            phase: 0,
            current_plan: "p0".into(),
            candidate_plan: "p1".into(),
            current_cost: 10.0,
            candidate_cost: 5.0,
            threshold: 0.9,
            switched: true,
        });
        sink.record(TraceEvent::CutDecision {
            site: "join#1".into(),
            net_win_us: 100.0,
            min_net_win_us: 2000.0,
            accepted: false,
        });
        sink.span_begin(SpanKind::Phase, "phase-0");
        sink.span_end(SpanKind::Phase, "phase-0");
        sink.counter("tuples", "a", 7);
        sink.counter("tuples", "b", 3);

        let summary = QuerySummary::from_records(&sink.snapshot());
        assert_eq!(summary.hedges_fired, 1);
        assert_eq!(summary.hedges_declined, 1);
        assert_eq!(summary.sweep_activations, 1);
        assert_eq!(summary.switches, 1);
        assert_eq!(summary.cuts_rejected, 1);
        assert_eq!(summary.spans.get("phase"), Some(&1));
        assert_eq!(summary.counters.get("tuples"), Some(&10));
        let golden = summary.decision_counts();
        assert!(golden.contains("hedges_fired=1\n"));
        assert!(golden.contains("switches=1\n"));
    }

    #[test]
    fn signatures_group_by_relation_and_drop_timing() {
        let clock = Arc::new(VirtualClock::new());
        let sink = TraceSink::unbounded(clock.clone());
        clock.observe(123);
        sink.record(sample_hedge(true));
        clock.observe(456_789);
        sink.record(sample_hedge(false));
        let sigs = hedge_signatures(&sink.snapshot());
        let list = sigs.get("fed(a×2)").expect("relation present");
        assert_eq!(list.len(), 2);
        assert_eq!(
            list[0],
            "fed(a×2)|stalled=a-primary|chosen=a-mirror|fired=true"
        );
        assert_eq!(list[1], "fed(a×2)|stalled=a-primary|chosen=-|fired=false");
        assert!(
            !list[0].contains("123"),
            "signatures must exclude timestamps"
        );
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let clock = Arc::new(VirtualClock::new());
        let sink = TraceSink::unbounded(clock);
        let s2 = sink.clone();
        let h = std::thread::spawn(move || {
            s2.counter("tuples", "thread", 9);
        });
        h.join().unwrap();
        assert_eq!(sink.len(), 1);
    }
}
